//! Classic reaching-definitions over the [`Cfg`](crate::cfg::Cfg).
//!
//! A *definition* is a statement that writes a tracked variable (a frame
//! temporary or a hop-0 slot local); the synthetic definition
//! [`Def::Entry`] stands for the value a variable has at activation
//! entry. A definition *reaches* a program point if some path from the
//! definition to the point has no intervening write to the same
//! variable. Havoc edges (catch entries, finally bypasses) and
//! call/eval clobbers count as definitions of everything they may
//! write, attributed to [`Def::Havoc`].
//!
//! The constant propagation in [`crate::dataflow`] is the primary
//! consumer-facing analysis; reaching definitions exist for consumers
//! that need *which write* rather than *which value* — e.g. diagnosing
//! why a fact failed to be determinate — and as an independently
//! testable baseline for the CFG construction.

use crate::cfg::{build_cfg, Havoc};
use mujs_ir::ir::{Function, Place, StmtId, StmtKind};
use std::collections::{BTreeMap, BTreeSet};

/// A variable the analysis tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Var {
    /// A frame temporary.
    Temp(u32),
    /// A hop-0 slot local (by slot index).
    Local(u32),
}

/// A definition site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Def {
    /// The value established at activation entry.
    Entry,
    /// A write performed by the statement.
    Stmt(StmtId),
    /// A conservative clobber (call, eval, exceptional edge).
    Havoc(StmtId),
    /// A clobber on a synthetic edge with no owning statement (catch
    /// entry, finally bypass).
    EdgeHavoc,
}

/// The reaching-definition sets of one function, queryable per
/// statement.
#[derive(Debug, Clone, Default)]
pub struct ReachingDefs {
    /// For each statement, the definitions of each variable that reach
    /// the point *before* it executes.
    before: BTreeMap<StmtId, BTreeMap<Var, BTreeSet<Def>>>,
}

impl ReachingDefs {
    /// The definitions of `v` reaching the point just before `at`.
    pub fn reaching(&self, at: StmtId, v: Var) -> Option<&BTreeSet<Def>> {
        self.before.get(&at).and_then(|m| m.get(&v))
    }

    /// The unique definition of `v` reaching `at`, if there is exactly
    /// one.
    pub fn unique(&self, at: StmtId, v: Var) -> Option<Def> {
        let defs = self.reaching(at, v)?;
        if defs.len() == 1 {
            defs.iter().next().copied()
        } else {
            None
        }
    }
}

type Env = BTreeMap<Var, BTreeSet<Def>>;

/// Computes reaching definitions for `f`'s body.
pub fn reaching_definitions(f: &Function) -> ReachingDefs {
    let cfg = build_cfg(f);
    let mut entry_env: Env = BTreeMap::new();
    for t in 0..f.n_temps {
        entry_env.insert(Var::Temp(t), BTreeSet::from([Def::Entry]));
    }
    for slot in 0..f.locals.len() as u32 {
        entry_env.insert(Var::Local(slot), BTreeSet::from([Def::Entry]));
    }
    let mut states: Vec<Option<Env>> = vec![None; cfg.blocks.len()];
    states[cfg.entry] = Some(entry_env);
    let mut work = vec![cfg.entry];
    while let Some(b) = work.pop() {
        let Some(entry) = states[b].clone() else {
            continue;
        };
        let mut env = entry;
        let blk = &cfg.blocks[b];
        apply_havoc(f, &blk.havoc, Def::EdgeHavoc, &mut env);
        for s in &blk.stmts {
            transfer(f, s, &mut env);
        }
        for &succ in &blk.succs {
            let changed = match &mut states[succ] {
                Some(existing) => join(existing, &env),
                slot @ None => {
                    *slot = Some(env.clone());
                    true
                }
            };
            if changed && !work.contains(&succ) {
                work.push(succ);
            }
        }
    }
    // Second pass: record per-statement before-sets.
    let mut out = ReachingDefs::default();
    for (b, blk) in cfg.blocks.iter().enumerate() {
        let Some(entry) = &states[b] else { continue };
        let mut env = entry.clone();
        apply_havoc(f, &blk.havoc, Def::EdgeHavoc, &mut env);
        for s in &blk.stmts {
            out.before.insert(s.id, env.clone());
            transfer(f, s, &mut env);
        }
    }
    out
}

fn join(into: &mut Env, from: &Env) -> bool {
    let mut changed = false;
    for (v, defs) in from {
        let mine = into.entry(*v).or_default();
        for d in defs {
            changed |= mine.insert(*d);
        }
    }
    changed
}

fn var_of(p: &Place) -> Option<Var> {
    match p {
        Place::Temp(t) => Some(Var::Temp(t.0)),
        Place::Slot { hops: 0, slot, .. } => Some(Var::Local(*slot)),
        _ => None,
    }
}

/// Replaces the defs of everything `havoc` may write with `cause`.
fn apply_havoc(f: &Function, havoc: &Havoc, cause: Def, env: &mut Env) {
    let mut clobber = |v: Var| {
        env.insert(v, BTreeSet::from([cause]));
    };
    for p in &havoc.places {
        match p {
            Place::Temp(t) => clobber(Var::Temp(t.0)),
            Place::Slot { hops: 0, slot, .. } => clobber(Var::Local(*slot)),
            Place::Slot { .. } => {}
            Place::Named(sym) => {
                for (i, l) in f.locals.iter().enumerate() {
                    if l == sym {
                        clobber(Var::Local(i as u32));
                    }
                }
            }
        }
    }
    if havoc.all_locals {
        for slot in 0..f.locals.len() as u32 {
            clobber(Var::Local(slot));
        }
    }
}

fn transfer(f: &Function, s: &mujs_ir::Stmt, env: &mut Env) {
    let mut defined: Vec<Var> = Vec::new();
    let mut havocked: Vec<Var> = Vec::new();
    // A Named write may dynamically alias same-named tracked locals
    // (shadow-blocked and catch-poisoned references stay by-name).
    let dst_write = |p: &Place, defined: &mut Vec<Var>, havocked: &mut Vec<Var>| match p {
        Place::Named(sym) => {
            for (i, l) in f.locals.iter().enumerate() {
                if l == sym {
                    havocked.push(Var::Local(i as u32));
                }
            }
        }
        _ => defined.extend(var_of(p)),
    };
    match &s.kind {
        StmtKind::Const { dst, .. }
        | StmtKind::Copy { dst, .. }
        | StmtKind::Closure { dst, .. }
        | StmtKind::NewObject { dst, .. }
        | StmtKind::GetProp { dst, .. }
        | StmtKind::DeleteProp { dst, .. }
        | StmtKind::BinOp { dst, .. }
        | StmtKind::UnOp { dst, .. }
        | StmtKind::LoadThis { dst }
        | StmtKind::TypeofName { dst, .. }
        | StmtKind::HasProp { dst, .. }
        | StmtKind::InstanceOf { dst, .. }
        | StmtKind::EnumProps { dst, .. } => dst_write(dst, &mut defined, &mut havocked),
        StmtKind::Call { dst, .. } | StmtKind::New { dst, .. } => {
            // A call can run nested closures; conservatively clobber
            // every local (reaching-defs consumers need soundness, not
            // the closure-writes precision of the constant propagation).
            havocked.extend((0..f.locals.len() as u32).map(Var::Local));
            dst_write(dst, &mut defined, &mut havocked);
        }
        StmtKind::Eval { dst, .. } => {
            havocked.extend((0..f.locals.len() as u32).map(Var::Local));
            dst_write(dst, &mut defined, &mut havocked);
        }
        StmtKind::SetProp { .. } => {}
        _ => {}
    }
    for v in havocked {
        env.insert(v, BTreeSet::from([Def::Havoc(s.id)]));
    }
    for v in defined {
        env.insert(v, BTreeSet::from([Def::Stmt(s.id)]));
    }
}
