//! Interning must be invisible in every exported artifact.
//!
//! The symbol-interning / slot-resolution work rewires how the machines
//! represent names, but the fact exports and batch reports are external
//! contracts: their bytes were captured from the pre-interning engine
//! (`tests/golden/`) and must never change. Regenerate with
//! `UPDATE_GOLDEN=1 cargo test --test intern_determinism` **only** when a
//! change is *supposed* to alter analysis results.
//!
//! Also re-checks the PR 2 scheduling guarantee end-to-end: `detjobs`
//! batch reports are byte-identical for any worker count (the 1-vs-8
//! pattern from `crates/jobs/tests/scheduler.rs`), now across the full
//! built-in corpus.

use determinacy::multirun::export_json;
use determinacy::{AnalysisConfig, DetHarness};
use mujs_jobs::{run_manifest, JobPool, JobSpec, Manifest};
use std::fmt::Write as _;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `actual` against the checked-in golden bytes, or rewrites the
/// golden when `UPDATE_GOLDEN` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        expected, actual,
        "{name}: exported bytes changed — interning/slot work must not \
         alter analysis output (regenerate goldens only for intentional \
         analysis changes)"
    );
}

/// One sorted JSON fact export per Table 1 corpus version, byte-compared
/// against the pre-interning capture.
#[test]
fn table1_fact_exports_match_pre_interning_bytes() {
    let mut all = String::new();
    for v in mujs_corpus::jquery_like::all_versions() {
        let mut h = DetHarness::from_src(&v.src).expect("corpus parses");
        let out = determinacy::supervised_analyze_dom(
            &mut h,
            AnalysisConfig::default(),
            v.doc.clone(),
            &v.plan,
            &determinacy::RunHooks::supervised(),
        )
        .expect("corpus analyzes");
        let json = export_json(&out.facts, &h.program, &h.source, &out.ctxs);
        let _ = writeln!(all, "=== jquery-like {} ===\n{json}", v.version);
    }
    assert_golden("table1_exports.txt", &all);
}

/// Fact exports over the runnable §5.2 eval suite.
#[test]
fn evalbench_fact_exports_match_pre_interning_bytes() {
    let mut all = String::new();
    for b in mujs_corpus::evalbench::all().iter().filter(|b| b.runnable) {
        let mut h = match DetHarness::from_src(&b.src) {
            Ok(h) => h,
            Err(_) => continue,
        };
        let out = determinacy::supervised_analyze_dom(
            &mut h,
            AnalysisConfig::default(),
            b.doc(),
            &b.plan(),
            &determinacy::RunHooks::supervised(),
        );
        let json = match out {
            Ok(out) => export_json(&out.facts, &h.program, &h.source, &out.ctxs),
            Err(e) => format!("run failed: {e}"),
        };
        let _ = writeln!(all, "=== {} ===\n{json}", b.name);
    }
    assert_golden("evalbench_exports.txt", &all);
}

fn full_corpus_manifest() -> Manifest {
    let mut jobs = Vec::new();
    for (name, src) in mujs_corpus::jquery_like::named_sources() {
        jobs.push(JobSpec::new(name, src));
    }
    for (name, src) in mujs_corpus::evalbench::named_sources() {
        jobs.push(JobSpec::new(name, src));
    }
    jobs.push(JobSpec {
        seeds: Some(vec![1, 2, 3, 4]),
        ..JobSpec::new(
            "coin-multiseed",
            "var coin = Math.random() < 0.5;\n\
             if (coin) { var a = 11; } else { var b = 22; }",
        )
    });
    Manifest::new(jobs)
}

/// The `detjobs` batch report over the full built-in corpus: identical
/// for 1 and 8 workers, and identical to the pre-interning bytes.
#[test]
fn detjobs_full_corpus_report_is_schedule_and_interning_invariant() {
    let m = full_corpus_manifest();
    let sequential = run_manifest(&m, &JobPool::new(1));
    let parallel = run_manifest(&m, &JobPool::new(8));
    let seq_report = sequential.report_json(true);
    assert_eq!(
        seq_report,
        parallel.report_json(true),
        "batch report must not depend on worker count"
    );
    assert_golden("detjobs_full_corpus_report.json", &seq_report);
}
