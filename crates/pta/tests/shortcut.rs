//! Determinism, budget, and provenance tests for the dynamic-shortcut
//! layer (`PtaConfig::shortcuts`).
//!
//! The shortcut contract: (1) summaries are applied in the sequential
//! barrier phase, so exports are byte-identical for every thread count
//! *and* every shard count; (2) summary insertions flow through the
//! ordinary budget accounting, so exact-budget completion and
//! budget-exact truncation are preserved; (3) every summary-inserted
//! tuple carries a [`BlameCause::Shortcut`] tag that survives SCC
//! collapse and budget rollback, and provenance stays a pure side
//! channel (on or off, the points-to exports do not move a byte);
//! (4) with `shortcuts` unset nothing about a solve changes.
//!
//! Like `tests/blame.rs`, thread matrices honor `PTA_EQ_THREADS`
//! (comma-separated; default `{1, 2, 8}`).

use mujs_ir::{FuncId, Program};
use mujs_pta::{
    solve, AbsObj, BlameCause, Node, PtaConfig, PtaResult, PtaStatus, RegionSummary,
    ShortcutSummaries,
};
use std::sync::Arc;

fn thread_matrix() -> Vec<usize> {
    match std::env::var("PTA_EQ_THREADS") {
        Ok(s) => {
            let m: Vec<usize> = s.split(',').filter_map(|t| t.trim().parse().ok()).collect();
            assert!(!m.is_empty(), "PTA_EQ_THREADS set but empty: {s:?}");
            m
        }
        Err(_) => vec![1, 2, 8],
    }
}

/// Wide + deep program (cross-shard traffic over many epochs) with a
/// ⋆-smearing dynamic access; same shape as the parallel solver tests.
fn big_src() -> String {
    let mut s = String::new();
    s.push_str("function id(x) { return x; }\n");
    for i in 0..60 {
        s.push_str(&format!(
            "function mk{i}() {{ return {{ tag: mk{i}, lift: id }}; }}\n"
        ));
        s.push_str(&format!("var v{i} = mk{i}();\n"));
    }
    for i in 0..60 {
        let j = (i + 23) % 60;
        s.push_str(&format!("v{i} = id(v{j});\n"));
        s.push_str(&format!("var f{i} = v{i}.tag;\n"));
        s.push_str(&format!("var w{i} = f{i}();\n"));
    }
    s.push_str("var key = somethingUnknown;\n");
    s.push_str("var smeared = v0[key];\n");
    s
}

fn lower(src: &str) -> Program {
    let ast = mujs_syntax::parse(src).expect("source parses");
    mujs_ir::lower_program(&ast)
}

fn func_named(prog: &Program, name: &str) -> FuncId {
    prog.funcs
        .iter()
        .find(|f| f.name.is_some_and(|s| prog.interner.resolve(s) == name))
        .map(|f| f.id)
        .unwrap_or_else(|| panic!("no function named {name}"))
}

/// A hand-built summary for `id`: its return node points at a spread of
/// `mk*` closures — enough fan-out that callers keep shards busy for
/// several epochs — plus the identity flow a real replay would record.
/// (Solver-side tests need no producer; the summary's *content* only has
/// to be well-formed, its effect on determinism is what's under test.)
fn test_summaries(prog: &Program) -> ShortcutSummaries {
    let id = func_named(prog, "id");
    let mut tuples: Vec<(Node, AbsObj)> = (0..60)
        .map(|i| {
            (
                Node::Ret(id),
                AbsObj::Closure(func_named(prog, &format!("mk{i}"))),
            )
        })
        .collect();
    tuples.push((Node::Ret(id), AbsObj::Opaque));
    tuples.sort();
    let mut sums = ShortcutSummaries::default();
    sums.regions.insert(
        id,
        RegionSummary {
            tuples,
            calls: vec![],
        },
    );
    sums
}

fn with_shortcuts(prog: &Program, cfg: PtaConfig) -> PtaConfig {
    PtaConfig {
        shortcuts: Some(Arc::new(test_summaries(prog))),
        ..cfg
    }
}

fn unlimited() -> PtaConfig {
    PtaConfig {
        budget: u64::MAX,
        ..Default::default()
    }
}

/// Exports are byte-identical for every thread count and shard count —
/// summary application rides the sequential barrier phase of the epoch
/// schedule, which neither knob perturbs.
#[test]
fn shortcut_exports_identical_across_threads_and_shards() {
    let prog = lower(&big_src());
    let mut want: Option<String> = None;
    let mut threads = thread_matrix();
    threads.push(3);
    for &t in &threads {
        for shards in [16usize, 32] {
            let r = solve(
                &prog,
                &with_shortcuts(
                    &prog,
                    PtaConfig {
                        threads: t,
                        shards,
                        ..unlimited()
                    },
                ),
            );
            assert_eq!(
                r.status,
                PtaStatus::Completed,
                "threads={t} shards={shards}"
            );
            assert_eq!(r.stats.shortcut_regions, 1, "threads={t} shards={shards}");
            assert!(r.stats.shortcut_tuples > 0);
            let got = r.export_json();
            match &want {
                None => want = Some(got),
                Some(w) => assert_eq!(
                    &got, w,
                    "threads={t} shards={shards}: shortcut export moved"
                ),
            }
        }
    }
}

/// The summarized region changes the solve: the region's constraints are
/// never generated, and the summary's tuples are present verbatim.
#[test]
fn summaries_replace_region_constraints() {
    let prog = lower(&big_src());
    let plain = solve(&prog, &unlimited());
    let sc = solve(&prog, &with_shortcuts(&prog, unlimited()));
    assert_eq!(plain.status, PtaStatus::Completed);
    assert_eq!(sc.status, PtaStatus::Completed);
    assert_eq!(plain.stats.shortcut_regions, 0);
    assert_eq!(plain.stats.shortcut_tuples, 0);
    let id = func_named(&prog, "id");
    let ret = sc.points_to(&Node::Ret(id));
    assert!(
        ret.contains(&AbsObj::Opaque),
        "summary tuple missing from Ret(id): {ret:?}"
    );
    assert_ne!(
        plain.export_json(),
        sc.export_json(),
        "the summary had no observable effect"
    );
}

/// Budget semantics survive: a budget equal to the fixpoint work
/// completes, one less truncates budget-exactly — for every thread
/// count, with identical truncated exports (the word-log rollback also
/// rolls back summary insertions).
#[test]
fn shortcut_budgets_stay_exact() {
    let prog = lower(&big_src());
    let collapse_free = PtaConfig {
        budget: u64::MAX,
        scc_interval: u64::MAX,
        ..Default::default()
    };
    let full = solve(&prog, &with_shortcuts(&prog, collapse_free.clone()));
    assert_eq!(full.status, PtaStatus::Completed);
    let needed = full.stats.propagations;
    assert!(needed > 1_000, "program too small: {needed}");
    // Exact budget completes.
    for threads in thread_matrix() {
        let r = solve(
            &prog,
            &with_shortcuts(
                &prog,
                PtaConfig {
                    budget: needed,
                    threads,
                    scc_interval: u64::MAX,
                    ..Default::default()
                },
            ),
        );
        assert_eq!(r.status, PtaStatus::Completed, "threads={threads}");
        assert_eq!(r.stats.propagations, needed);
    }
    // Truncation points are budget-exact for every thread count, and
    // the kept facts are identical across the epoch-path runs (threads
    // >= 2; the sequential worklist truncates in its own order — same
    // contract as `tests/parallel.rs`).
    for budget in [needed / 3, needed / 2 + 1, needed - 1] {
        let mut want: Option<String> = None;
        for threads in thread_matrix() {
            let r = solve(
                &prog,
                &with_shortcuts(
                    &prog,
                    PtaConfig {
                        budget,
                        threads,
                        scc_interval: u64::MAX,
                        ..Default::default()
                    },
                ),
            );
            assert_eq!(
                r.status,
                PtaStatus::BudgetExceeded,
                "threads={threads} budget={budget}"
            );
            assert_eq!(r.stats.propagations, budget, "threads={threads}");
            if threads < 2 {
                continue;
            }
            let got = r.export_json();
            match &want {
                None => want = Some(got),
                Some(w) => assert_eq!(&got, w, "threads={threads} budget={budget}"),
            }
        }
    }
}

fn shortcut_blamed(r: &PtaResult) -> u64 {
    r.blame_histogram()
        .into_iter()
        .filter(|(c, _)| matches!(c, BlameCause::Shortcut(_)))
        .map(|(_, n)| n)
        .sum()
}

/// Shortcut-blamed tuples survive aggressive SCC collapse, and the blame
/// export is byte-identical across the thread matrix.
#[test]
fn shortcut_blame_survives_collapse_and_is_deterministic() {
    let prog = lower(&big_src());
    for scc_interval in [1u64, u64::MAX] {
        let mut want: Option<String> = None;
        for threads in thread_matrix() {
            let r = solve(
                &prog,
                &with_shortcuts(
                    &prog,
                    PtaConfig {
                        budget: u64::MAX,
                        scc_interval,
                        provenance: true,
                        threads,
                        ..Default::default()
                    },
                ),
            );
            assert_eq!(r.status, PtaStatus::Completed, "threads={threads}");
            assert!(
                shortcut_blamed(&r) > 0,
                "scc={scc_interval} threads={threads}: no shortcut-blamed tuples survive"
            );
            let got = r.export_blame_json().expect("provenance was on");
            assert!(got.contains("shortcut"), "blame export lacks the new kind");
            match &want {
                None => want = Some(got),
                Some(w) => assert_eq!(
                    &got, w,
                    "scc={scc_interval} threads={threads}: blame export moved"
                ),
            }
        }
    }
}

/// Shortcut blame survives budget rollback: a truncated provenance solve
/// keeps blame exactly on the kept tuples, still carrying the shortcut
/// kind once the summary was applied.
#[test]
fn shortcut_blame_survives_budget_rollback() {
    let prog = lower(&big_src());
    let collapse_free = PtaConfig {
        budget: u64::MAX,
        scc_interval: u64::MAX,
        provenance: true,
        ..Default::default()
    };
    let full = solve(&prog, &with_shortcuts(&prog, collapse_free.clone()));
    assert_eq!(full.status, PtaStatus::Completed);
    let needed = full.stats.propagations;
    let r = solve(
        &prog,
        &with_shortcuts(
            &prog,
            PtaConfig {
                budget: needed - 1,
                ..collapse_free
            },
        ),
    );
    assert_eq!(r.status, PtaStatus::BudgetExceeded);
    assert_eq!(r.stats.propagations, needed - 1);
    assert!(
        shortcut_blamed(&r) > 0,
        "rollback dropped every shortcut-blamed tuple"
    );
    // Blame still covers the surviving sets exactly.
    for (node, objs) in r.all_points_to() {
        let blamed: Vec<AbsObj> = r.blame_of(&node).into_iter().map(|(o, _)| o).collect();
        assert_eq!(blamed, objs, "node {node:?}: blame diverged from sets");
    }
}

/// Provenance is a pure side channel in shortcut mode too: toggling it
/// moves no export byte.
#[test]
fn provenance_toggle_moves_no_shortcut_export_byte() {
    let prog = lower(&big_src());
    let off = solve(&prog, &with_shortcuts(&prog, unlimited()));
    assert!(!off.has_blame());
    for threads in thread_matrix() {
        let on = solve(
            &prog,
            &with_shortcuts(
                &prog,
                PtaConfig {
                    provenance: true,
                    threads,
                    ..unlimited()
                },
            ),
        );
        assert!(on.has_blame());
        assert_eq!(
            on.export_json(),
            off.export_json(),
            "threads={threads}: provenance moved a shortcut export byte"
        );
    }
}

/// `shortcuts: None` is exactly the old solver: explicit-None and
/// default configs agree byte-for-byte on exports and work, with zero
/// shortcut stats.
#[test]
fn unset_shortcuts_change_nothing() {
    let prog = lower(&big_src());
    let default = solve(&prog, &unlimited());
    let explicit = solve(
        &prog,
        &PtaConfig {
            shortcuts: None,
            ..unlimited()
        },
    );
    assert_eq!(default.export_json(), explicit.export_json());
    assert_eq!(default.stats.propagations, explicit.stats.propagations);
    assert_eq!(explicit.stats.shortcut_regions, 0);
    assert_eq!(explicit.stats.shortcut_tuples, 0);
    // An *empty* summary table is also a no-op.
    let empty = solve(
        &prog,
        &PtaConfig {
            shortcuts: Some(Arc::new(ShortcutSummaries::default())),
            ..unlimited()
        },
    );
    assert_eq!(default.export_json(), empty.export_json());
    assert_eq!(default.stats.propagations, empty.stats.propagations);
}
