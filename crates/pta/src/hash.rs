//! A fast, non-cryptographic hasher for the solver's hot maps.
//!
//! The solver performs a node-id or edge-key lookup on nearly every
//! constraint application; `std`'s default SipHash is a measurable cost
//! there. This is the classic Fx multiply-rotate mix (as used by rustc):
//! not DoS-resistant, which is fine for maps keyed by analysis-internal
//! ids, never attacker-controlled strings.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` with the fast hasher.
pub type FastMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the fast hasher.
pub type FastSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate word hasher.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_differently() {
        let h = |f: &dyn Fn(&mut FxHasher)| {
            let mut x = FxHasher::default();
            f(&mut x);
            x.finish()
        };
        assert_ne!(h(&|x| x.write_u64(1)), h(&|x| x.write_u64(2)));
        assert_ne!(h(&|x| x.write_u32(7)), h(&|x| x.write_u32(8)));
        assert_ne!(h(&|x| x.write(b"abc")), h(&|x| x.write(b"abd")));
        // Same value through the same write path must agree.
        assert_eq!(h(&|x| x.write_u64(42)), h(&|x| x.write_u64(42)));
    }

    #[test]
    fn maps_work_end_to_end() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        for i in 0..1000u64 {
            m.insert(i, i as u32 * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&500), Some(&1000));
        let mut s: FastSet<(u32, u32)> = FastSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
    }
}
