//! State and plumbing of the instrumented machine: the annotated heap and
//! scopes, the epoch-counter heap flush (§4), write logs for the
//! conditional rules (Figure 9), and counterfactual rollback.
//!
//! Statement execution lives in [`crate::exec`]; native models in
//! [`crate::natives`] and [`crate::dom_models`].

use crate::config::{AnalysisConfig, AnalysisStats, AnalysisStatus};
use crate::det::{Det, DValue, SlotAnn};
use crate::facts::FactDb;
use crate::supervisor::{CancelToken, RunHooks};
use mujs_dom::document::Document;
use mujs_dom::events::EventRegistry;
use mujs_interp::context::{ContextTable, CtxId};
use mujs_interp::machine::Protos;
use mujs_interp::{ObjClass, ObjId, Object, ScopeId, Slot, Value};
use mujs_ir::{FuncId, Program, StmtId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::rc::Rc;

/// Epoch sentinel for slots installed by the standard library setup: they
/// stay determinate across flushes (documented assumption: unanalyzed code
/// does not overwrite built-ins; user overwrites replace the sentinel with
/// a normal epoch and are tracked precisely).
pub const BUILTIN_EPOCH: u64 = u64::MAX;

/// Abrupt, non-[`DFlow`] outcomes.
#[derive(Debug, Clone, PartialEq)]
pub enum DErr {
    /// A JavaScript exception; the flag records whether the throw is
    /// control-dependent on indeterminate data (other executions may not
    /// throw).
    Thrown(DValue, bool),
    /// Abort the innermost counterfactual execution (native with unknown
    /// effects, exception, or budget exhaustion inside a counterfactual).
    CfAbort,
    /// Stop the whole analysis (step limit / flush cap).
    Stop(AnalysisStatus),
}

/// Statement completions.
#[derive(Debug, Clone, PartialEq)]
pub enum DFlow {
    /// Fall through.
    Normal,
    /// `break`; the flag is the indeterminate-control marker.
    Break(bool),
    /// `continue`; the flag is the indeterminate-control marker.
    Continue(bool),
    /// `return v`; the flag is the indeterminate-control marker.
    Return(DValue, bool),
}

impl DFlow {
    /// The indeterminate-control marker of an abrupt completion.
    pub fn indet_ctl(&self) -> bool {
        match self {
            DFlow::Normal => false,
            DFlow::Break(b) | DFlow::Continue(b) | DFlow::Return(_, b) => *b,
        }
    }

    /// The same completion with the marker forced on.
    #[must_use]
    pub fn taint(self) -> DFlow {
        match self {
            DFlow::Normal => DFlow::Normal,
            DFlow::Break(_) => DFlow::Break(true),
            DFlow::Continue(_) => DFlow::Continue(true),
            DFlow::Return(v, _) => DFlow::Return(v, true),
        }
    }
}

/// A scope with annotated bindings.
#[derive(Debug, Clone)]
pub struct DScope {
    pub(crate) vars: HashMap<Rc<str>, (Value, SlotAnn)>,
    pub(crate) parent: Option<ScopeId>,
    /// The function whose activation this scope belongs to (for the
    /// closure-written flush policy).
    pub(crate) func: FuncId,
    /// Captured scopes can be written by callees (closures), so heap
    /// flushes must invalidate them; never-captured scopes are immune —
    /// the paper's "local variables cannot possibly be written by any
    /// called function".
    pub(crate) captured: bool,
}

/// An activation record of the instrumented machine.
#[derive(Debug)]
pub struct DFrame {
    /// The executing function.
    pub func: FuncId,
    /// Scope for named lookups (`None` ⇒ global object).
    pub scope: Option<ScopeId>,
    /// Temporaries with flags.
    pub temps: Vec<DValue>,
    /// The `this` binding.
    pub this_val: DValue,
    /// This activation's calling context.
    pub ctx: CtxId,
    /// Per-site occurrence counters (must match the concrete machine's).
    pub occurrences: HashMap<StmtId, u32>,
    /// Unique id for temp-write logging across frame lifetimes.
    pub serial: u64,
}

/// Per-object analysis state kept outside the shared [`Object`] struct.
#[derive(Debug, Clone, Copy)]
pub struct ObjExtra {
    /// Epoch at creation; a record created before the last flush is open.
    pub created_epoch: u64,
    /// Set by stores with indeterminate property names (rule ŜTO) and by
    /// deletions under indeterminate control.
    pub forced_open: bool,
    /// Determinacy of the prototype link (from the `F.prototype` slot the
    /// object was constructed with).
    pub proto_det: Det,
}

/// One undoable/markable mutation.
#[derive(Debug)]
pub enum LogEntry {
    /// A property write or delete; `old == None` means the property did
    /// not exist before.
    Prop {
        /// Receiver.
        obj: ObjId,
        /// Key.
        key: Rc<str>,
        /// Previous slot.
        old: Option<(Value, SlotAnn)>,
    },
    /// A named-variable write.
    Var {
        /// Owning scope.
        scope: ScopeId,
        /// Name.
        name: Rc<str>,
        /// Previous binding (a variable write never creates a binding —
        /// declaration handles that — but eval hoisting can).
        old: Option<(Value, SlotAnn)>,
    },
    /// A temp write in some activation.
    Temp {
        /// The activation's serial.
        frame: u64,
        /// Temp index.
        idx: u32,
        /// Previous value.
        old: DValue,
    },
    /// A record's open flag transition.
    Opened {
        /// The record.
        obj: ObjId,
        /// Previous flag.
        was: bool,
    },
}

/// A write-log region (one per active Figure 9 conditional rule).
#[derive(Debug, Default)]
pub struct LogFrame {
    pub(crate) entries: Vec<LogEntry>,
}

/// Instrumented observation for the soundness harness.
#[derive(Debug, Clone, PartialEq)]
pub struct DObservation {
    /// Program point.
    pub point: StmtId,
    /// Calling context.
    pub ctx: CtxId,
    /// Observed annotated value.
    pub value: DValue,
}

/// Native model signature.
pub type DNativeFn = fn(&mut DMachine<'_>, DValue, &[DValue]) -> Result<DValue, DErr>;

/// Well-known constructor objects.
#[derive(Debug, Clone, Copy, Default)]
pub struct DSpecials {
    pub(crate) array_ctor: Option<ObjId>,
    pub(crate) error_ctor: Option<ObjId>,
    pub(crate) object_ctor: Option<ObjId>,
    pub(crate) eval_fn: Option<ObjId>,
}

/// The instrumented determinacy machine.
pub struct DMachine<'p> {
    /// The program (mutable: `eval` appends chunks).
    pub prog: &'p mut Program,
    pub(crate) heap: Vec<Object<SlotAnn>>,
    pub(crate) extras: Vec<ObjExtra>,
    pub(crate) scopes: Vec<DScope>,
    pub(crate) global: ObjId,
    /// Built-in prototype objects.
    pub protos: Protos,
    pub(crate) specials: DSpecials,
    pub(crate) natives: Vec<(&'static str, DNativeFn)>,
    /// The emulated document, if installed.
    pub doc: Option<Document>,
    /// Registered event handlers.
    pub events: EventRegistry<ObjId>,
    pub(crate) dom_nodes: HashMap<mujs_dom::document::NodeId, ObjId>,
    pub(crate) dom_document_obj: Option<ObjId>,
    pub(crate) dom_element_proto: Option<ObjId>,
    pub(crate) rng: StdRng,
    pub(crate) now: f64,
    /// The global epoch counter; incrementing it is the O(1) heap flush.
    pub(crate) epoch: u64,
    pub(crate) steps: u64,
    pub(crate) cf_depth: u32,
    pub(crate) cf_steps: u64,
    pub(crate) next_frame_serial: u64,
    pub(crate) logs: Vec<LogFrame>,
    pub(crate) closure_writes: mujs_ir::closure_writes::ClosureWrites,
    pub(crate) cw_funcs_len: usize,
    /// Analysis configuration.
    pub cfg: AnalysisConfig,
    /// Run statistics (flush counts feed Table 1).
    pub stats: AnalysisStats,
    /// Captured output.
    pub output: Vec<String>,
    /// Interned contexts.
    pub ctxs: ContextTable,
    /// The fact database.
    pub facts: FactDb,
    /// Observations for the soundness harness (real execution only, no
    /// counterfactual hits).
    pub observations: Vec<DObservation>,
    pub(crate) setup_mode: bool,
    /// Wall-clock point after which the run stops with
    /// [`AnalysisStatus::Deadline`], from `cfg.deadline_ms` (measured from
    /// machine construction, so stdlib setup counts toward the budget).
    pub(crate) deadline: Option<std::time::Instant>,
    /// External cancellation, polled at statement boundaries.
    pub(crate) cancel: Option<CancelToken>,
    /// Live statement counter shared with the supervisor; written at every
    /// poll so it stays meaningful even if the machine later panics.
    pub(crate) progress: Option<std::sync::Arc<std::sync::atomic::AtomicU64>>,
    /// Cumulative heap cells allocated: objects plus newly created
    /// property slots. Monotone (slot deletes and counterfactual undos do
    /// not decrement), so `cfg.mem_cell_budget` bounds total allocation
    /// work rather than instantaneous residency — which is what keeps a
    /// runaway allocation loop from exhausting the host.
    pub(crate) cells_allocated: u64,
    /// Fault-injection state (testing only).
    #[cfg(feature = "fault-inject")]
    pub(crate) faults: Option<crate::supervisor::FaultState>,
    /// Set by the injected allocation fault; the next poll reports
    /// [`AnalysisStatus::MemLimit`].
    #[cfg(feature = "fault-inject")]
    pub(crate) forced_memfail: bool,
}

impl<'p> DMachine<'p> {
    /// Creates a machine and installs the standard-library models.
    pub fn new(prog: &'p mut Program, cfg: AnalysisConfig) -> Self {
        let mut heap = Vec::new();
        let mut extras = Vec::new();
        let mut alloc = |class: ObjClass, proto: Option<ObjId>| {
            let id = ObjId(heap.len() as u32);
            heap.push(Object::new(class, proto));
            extras.push(ObjExtra {
                created_epoch: BUILTIN_EPOCH,
                forced_open: false,
                proto_det: Det::D,
            });
            id
        };
        let object = alloc(ObjClass::Plain, None);
        let function = alloc(ObjClass::Plain, Some(object));
        let array = alloc(ObjClass::Plain, Some(object));
        let string = alloc(ObjClass::Plain, Some(object));
        let number = alloc(ObjClass::Plain, Some(object));
        let boolean = alloc(ObjClass::Plain, Some(object));
        let error = alloc(ObjClass::Plain, Some(object));
        let global = alloc(ObjClass::Plain, Some(object));
        let max_facts = cfg.max_facts;
        let deadline = cfg
            .deadline_ms
            .map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms));
        let mut m = DMachine {
            prog,
            heap,
            extras,
            scopes: Vec::new(),
            global,
            protos: Protos {
                object,
                function,
                array,
                string,
                number,
                boolean,
                error,
            },
            specials: DSpecials::default(),
            natives: Vec::new(),
            doc: None,
            events: EventRegistry::new(),
            dom_nodes: HashMap::new(),
            dom_document_obj: None,
            dom_element_proto: None,
            rng: StdRng::seed_from_u64(cfg.seed),
            now: 1.6e12,
            epoch: 0,
            steps: 0,
            cf_depth: 0,
            cf_steps: 0,
            next_frame_serial: 0,
            logs: Vec::new(),
            closure_writes: mujs_ir::closure_writes::ClosureWrites::default(),
            cw_funcs_len: 0,
            cfg,
            stats: AnalysisStats::default(),
            output: Vec::new(),
            ctxs: ContextTable::new(),
            facts: FactDb::new(max_facts),
            observations: Vec::new(),
            setup_mode: true,
            deadline,
            cancel: None,
            progress: None,
            cells_allocated: 0,
            #[cfg(feature = "fault-inject")]
            faults: None,
            #[cfg(feature = "fault-inject")]
            forced_memfail: false,
        };
        crate::natives::install_models(&mut m);
        m.setup_mode = false;
        m.refresh_closure_writes();
        m
    }

    /// Installs supervision hooks (cancellation, progress, fault plan).
    /// Call before [`DMachine::run`]; the drivers do this automatically.
    pub fn install_hooks(&mut self, hooks: &RunHooks) {
        self.cancel = hooks.cancel.clone();
        self.progress = hooks.progress.clone();
        #[cfg(feature = "fault-inject")]
        {
            self.faults = hooks
                .faults
                .clone()
                .map(crate::supervisor::FaultState::new);
        }
    }

    /// Checks the cooperative stop conditions — cancellation, wall-clock
    /// deadline, heap-cell budget — and publishes progress. Called from
    /// the step loop every `cfg.poll_interval` statements; each stop
    /// reason preserves the sound fact prefix exactly like the flush cap.
    pub(crate) fn poll_budgets(&mut self) -> Result<(), DErr> {
        if let Some(p) = &self.progress {
            p.store(self.steps, std::sync::atomic::Ordering::Relaxed);
        }
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Err(DErr::Stop(AnalysisStatus::Cancelled));
        }
        if let Some(dl) = self.deadline {
            if std::time::Instant::now() >= dl {
                return Err(DErr::Stop(AnalysisStatus::Deadline));
            }
        }
        let over_budget = self
            .cfg
            .mem_cell_budget
            .is_some_and(|b| self.cells_allocated > b);
        #[cfg(feature = "fault-inject")]
        let over_budget = over_budget || self.forced_memfail;
        if over_budget {
            return Err(DErr::Stop(AnalysisStatus::MemLimit));
        }
        Ok(())
    }

    /// Recomputes the closure-written-variable set; must be called after
    /// `eval` appends new functions to the program.
    pub(crate) fn refresh_closure_writes(&mut self) {
        if self.prog.funcs.len() != self.cw_funcs_len {
            self.closure_writes =
                mujs_ir::closure_writes::ClosureWrites::compute(self.prog);
            self.cw_funcs_len = self.prog.funcs.len();
        }
    }

    // ---------------------------------------------------------- accessors

    /// The global (`window`) object.
    pub fn global(&self) -> ObjId {
        self.global
    }

    /// Statements executed (including counterfactual ones).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The current epoch (number of heap flushes so far).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether execution is currently counterfactual.
    pub fn in_counterfactual(&self) -> bool {
        self.cf_depth > 0
    }

    /// Borrows an object.
    ///
    /// # Panics
    ///
    /// Panics on an invalid id.
    pub fn obj(&self, id: ObjId) -> &Object<SlotAnn> {
        &self.heap[id.0 as usize]
    }

    /// Mutably borrows an object (bypasses logging; analysis internals
    /// only).
    ///
    /// # Panics
    ///
    /// Panics on an invalid id.
    pub fn obj_mut(&mut self, id: ObjId) -> &mut Object<SlotAnn> {
        &mut self.heap[id.0 as usize]
    }

    /// Allocates an object; its record is closed as of the current epoch.
    pub fn alloc(&mut self, class: ObjClass, proto: Option<ObjId>, proto_det: Det) -> ObjId {
        self.cells_allocated += 1;
        #[cfg(feature = "fault-inject")]
        if let Some(fs) = self.faults.as_mut() {
            fs.allocs += 1;
            if fs.plan.alloc_fail_at == Some(fs.allocs) {
                self.forced_memfail = true;
            }
        }
        let id = ObjId(self.heap.len() as u32);
        self.heap.push(Object::new(class, proto));
        self.extras.push(ObjExtra {
            created_epoch: if self.setup_mode {
                BUILTIN_EPOCH
            } else {
                self.epoch
            },
            forced_open: false,
            proto_det,
        });
        id
    }

    /// Whether the record is open (unknown properties may exist in other
    /// executions). Setup-created objects (globals, prototypes) count as
    /// created at epoch 0: their *slots* survive flushes via the sentinel
    /// epoch, but once any flush has happened an unknown callee may have
    /// added properties, so absent-property reads become indeterminate.
    pub fn is_open(&self, id: ObjId) -> bool {
        let e = &self.extras[id.0 as usize];
        let created = if e.created_epoch == BUILTIN_EPOCH {
            0
        } else {
            e.created_epoch
        };
        e.forced_open || created < self.epoch
    }

    /// The determinacy of the object's prototype link.
    pub fn proto_det(&self, id: ObjId) -> Det {
        self.extras[id.0 as usize].proto_det
    }

    /// Draws from the seeded RNG (`Math.random`) — must match the
    /// concrete machine's stream for soundness testing.
    pub fn random(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// `Date.now` tick.
    pub fn now_tick(&mut self) -> f64 {
        self.now += 1.0 + self.rng.gen::<f64>() * 10.0;
        self.now
    }

    // ------------------------------------------------------------ flushes

    /// The heap flush: one epoch increment invalidates every non-builtin
    /// property slot and every captured-scope variable (§4).
    pub fn flush_heap(&mut self) -> Result<(), DErr> {
        self.epoch += 1;
        self.stats.heap_flushes += 1;
        if let Some(cap) = self.cfg.flush_cap {
            if self.stats.heap_flushes > cap {
                return Err(DErr::Stop(AnalysisStatus::FlushCapReached));
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------- slots

    fn slot_flushable(ann: &SlotAnn) -> bool {
        ann.epoch != BUILTIN_EPOCH
    }

    /// Effective determinacy of a property slot right now.
    pub fn prop_slot_det(&self, ann: &SlotAnn) -> Det {
        ann.effective(self.epoch, Self::slot_flushable(ann))
    }

    /// Reads an own property with its effective determinacy; absent
    /// properties yield `undefined` flagged by the record's openness.
    pub fn own_prop(&self, obj: ObjId, key: &str) -> DValue {
        match self.heap[obj.0 as usize].props.get(key) {
            Some(Slot { value, ann }) => DValue {
                v: value.clone(),
                d: self.prop_slot_det(ann),
            },
            None => {
                if self.is_open(obj) {
                    DValue::indet(Value::Undefined)
                } else {
                    DValue::det(Value::Undefined)
                }
            }
        }
    }

    /// Whether the object has an own (live) property.
    pub fn has_own(&self, obj: ObjId, key: &str) -> bool {
        self.heap[obj.0 as usize].props.contains(key)
    }

    /// Writes a property slot, logging the old state for the active write
    /// regions.
    pub fn write_prop(&mut self, obj: ObjId, key: &str, dv: DValue) {
        let key: Rc<str> = Rc::from(key);
        let ann = SlotAnn {
            det: dv.d,
            epoch: if self.setup_mode {
                BUILTIN_EPOCH
            } else {
                self.epoch
            },
        };
        let old = self.heap[obj.0 as usize]
            .props
            .insert(key.clone(), Slot { value: dv.v, ann })
            .map(|s| (s.value, s.ann));
        if old.is_none() {
            self.cells_allocated += 1;
        }
        if let Some(top) = self.logs.last_mut() {
            top.entries.push(LogEntry::Prop { obj, key, old });
        }
    }

    /// Deletes a property, logging it.
    pub fn delete_prop(&mut self, obj: ObjId, key: &str) {
        let old = self.heap[obj.0 as usize]
            .props
            .remove(key)
            .map(|s| (s.value, s.ann));
        if old.is_some() {
            if let Some(top) = self.logs.last_mut() {
                top.entries.push(LogEntry::Prop {
                    obj,
                    key: Rc::from(key),
                    old,
                });
            }
        }
    }

    /// Forces a record open (indeterminate-name store, rule ŜTO) and marks
    /// all its properties indeterminate.
    pub fn open_record(&mut self, obj: ObjId) {
        let was = self.extras[obj.0 as usize].forced_open;
        self.extras[obj.0 as usize].forced_open = true;
        if let Some(top) = self.logs.last_mut() {
            top.entries.push(LogEntry::Opened { obj, was });
        }
        // Mark every property indeterminate (these are *marks*, not value
        // writes; counterfactual undo restores the slots wholesale via the
        // Opened + Prop entries of actual writes, so marks need no log).
        for (_, slot) in self.heap[obj.0 as usize].props.iter_mut() {
            slot.ann.det = Det::I;
        }
    }

    // -------------------------------------------------------- scope slots

    pub(crate) fn new_scope(&mut self, parent: Option<ScopeId>, func: FuncId) -> ScopeId {
        let id = ScopeId(self.scopes.len() as u32);
        self.scopes.push(DScope {
            vars: HashMap::new(),
            parent,
            func,
            captured: false,
        });
        id
    }

    pub(crate) fn mark_captured(&mut self, scope: Option<ScopeId>) {
        let mut cur = scope;
        while let Some(sid) = cur {
            let s = &mut self.scopes[sid.0 as usize];
            if s.captured {
                break;
            }
            s.captured = true;
            cur = s.parent;
        }
    }

    /// Declares a binding (not logged as a write: declarations happen at
    /// activation entry, outside conditional regions; eval hoisting logs
    /// via [`DMachine::assign_var`]).
    pub(crate) fn declare(&mut self, scope: Option<ScopeId>, name: &Rc<str>, dv: DValue) {
        match scope {
            Some(sid) => {
                let ann = SlotAnn {
                    det: dv.d,
                    epoch: self.epoch,
                };
                self.scopes[sid.0 as usize]
                    .vars
                    .insert(name.clone(), (dv.v, ann));
            }
            None => self.write_prop(self.global, name, dv),
        }
    }

    /// Reads a variable through the scope chain; `None` if unbound.
    pub(crate) fn lookup_var(&self, scope: Option<ScopeId>, name: &str) -> Option<DValue> {
        let mut cur = scope;
        while let Some(sid) = cur {
            let s = &self.scopes[sid.0 as usize];
            if let Some((v, ann)) = s.vars.get(name) {
                // A flush models an unknown call; it can only have written
                // this local if the scope is captured *and* some closure
                // actually assigns the name (see `mujs_ir::closure_writes`).
                let flushable = Self::slot_flushable(ann)
                    && s.captured
                    && self.closure_writes.is_written(s.func, name);
                return Some(DValue {
                    v: v.clone(),
                    d: ann.effective(self.epoch, flushable),
                });
            }
            cur = s.parent;
        }
        if self.has_own(self.global, name) {
            Some(self.own_prop(self.global, name))
        } else {
            None
        }
    }

    /// Assigns a variable through the scope chain (creates a global when
    /// unbound), logging the write.
    pub(crate) fn assign_var(&mut self, scope: Option<ScopeId>, name: &Rc<str>, dv: DValue) {
        let mut cur = scope;
        while let Some(sid) = cur {
            if self.scopes[sid.0 as usize].vars.contains_key(name) {
                let ann = SlotAnn {
                    det: dv.d,
                    epoch: self.epoch,
                };
                let old = self.scopes[sid.0 as usize]
                    .vars
                    .insert(name.clone(), (dv.v, ann));
                if let Some(top) = self.logs.last_mut() {
                    top.entries.push(LogEntry::Var {
                        scope: sid,
                        name: name.clone(),
                        old,
                    });
                }
                return;
            }
            cur = self.scopes[sid.0 as usize].parent;
        }
        self.write_prop(self.global, name, dv);
    }

    /// Writes a temp, logging it.
    pub(crate) fn write_temp(&mut self, frame: &mut DFrame, idx: u32, dv: DValue) {
        let old = std::mem::replace(&mut frame.temps[idx as usize], dv);
        if let Some(top) = self.logs.last_mut() {
            top.entries.push(LogEntry::Temp {
                frame: frame.serial,
                idx,
                old,
            });
        }
    }

    // ------------------------------------------------------- log regions

    /// Opens a write-log region.
    pub(crate) fn push_log(&mut self, _counterfactual: bool) {
        self.logs.push(LogFrame {
            entries: Vec::new(),
        });
    }

    /// Closes the current region, marking every written location
    /// indeterminate (rule ÎF1 with `d = ?`), and propagates the entries
    /// to the enclosing region.
    ///
    /// # Panics
    ///
    /// Panics if no region is open.
    pub(crate) fn pop_log_mark(&mut self, frame: &mut DFrame) {
        let region = self.logs.pop().expect("log region open");
        for e in &region.entries {
            self.mark_entry(e, frame);
        }
        self.propagate_entries(region.entries);
    }

    /// Closes the current region, undoing every write in reverse order and
    /// marking the (restored) locations indeterminate — rule ĈNTR's
    /// `ρ̂′[vd(t̂) := ρ̂?]` / `ĥ′[pd(t̂) := ĥ?]`.
    ///
    /// # Panics
    ///
    /// Panics if no region is open.
    pub(crate) fn pop_log_undo_mark(&mut self, frame: &mut DFrame) {
        let region = self.logs.pop().expect("log region open");
        for e in region.entries.iter().rev() {
            self.undo_entry(e, frame);
        }
        for e in &region.entries {
            self.mark_entry(e, frame);
        }
        self.propagate_entries(region.entries);
    }

    fn propagate_entries(&mut self, entries: Vec<LogEntry>) {
        if let Some(parent) = self.logs.last_mut() {
            parent.entries.extend(entries);
        }
    }

    /// Marks the location of a log entry indeterminate in the current
    /// state.
    fn mark_entry(&mut self, e: &LogEntry, frame: &mut DFrame) {
        match e {
            LogEntry::Prop { obj, key, .. } => {
                match self.heap[obj.0 as usize].props.get_mut(key) {
                    Some(slot) => slot.ann.det = Det::I,
                    // The property is now absent (deleted in the region, or
                    // the undo removed it): other executions may have it,
                    // so the record's contents are unknown.
                    None => {
                        self.extras[obj.0 as usize].forced_open = true;
                    }
                }
            }
            LogEntry::Var { scope, name, .. } => {
                if let Some((_, ann)) = self.scopes[scope.0 as usize].vars.get_mut(name) {
                    ann.det = Det::I;
                }
            }
            LogEntry::Temp { frame: fs, idx, .. } => {
                if *fs == frame.serial {
                    frame.temps[*idx as usize].d = Det::I;
                }
            }
            LogEntry::Opened { .. } => {}
        }
    }

    /// Restores the pre-region state for one entry.
    fn undo_entry(&mut self, e: &LogEntry, frame: &mut DFrame) {
        match e {
            LogEntry::Prop { obj, key, old } => match old {
                Some((v, ann)) => {
                    self.heap[obj.0 as usize].props.insert(
                        key.clone(),
                        Slot {
                            value: v.clone(),
                            ann: *ann,
                        },
                    );
                }
                None => {
                    self.heap[obj.0 as usize].props.remove(key);
                }
            },
            LogEntry::Var { scope, name, old } => match old {
                Some((v, ann)) => {
                    self.scopes[scope.0 as usize]
                        .vars
                        .insert(name.clone(), (v.clone(), *ann));
                }
                None => {
                    self.scopes[scope.0 as usize].vars.remove(name);
                }
            },
            LogEntry::Temp { frame: fs, idx, old } => {
                if *fs == frame.serial {
                    frame.temps[*idx as usize] = old.clone();
                }
            }
            LogEntry::Opened { obj, was } => {
                self.extras[obj.0 as usize].forced_open = *was;
            }
        }
    }

    /// The conservative ĈNTRABORT: flush the heap and mark the static
    /// write domain of the unexecuted code indeterminate. With `eval`
    /// inside, the whole visible scope chain is poisoned.
    pub(crate) fn cntr_abort(
        &mut self,
        frame: &mut DFrame,
        blocks: &[&[mujs_ir::Stmt]],
    ) -> Result<(), DErr> {
        self.stats.cf_aborts += 1;
        self.flush_heap()?;
        for block in blocks {
            let wd = mujs_ir::vd::write_domain(block);
            if wd.contains_eval {
                self.mark_scope_chain_indet(frame.scope);
            }
            for place in &wd.places {
                match place {
                    mujs_ir::Place::Temp(t) => {
                        if let Some(slot) = frame.temps.get_mut(t.0 as usize) {
                            slot.d = Det::I;
                        }
                    }
                    mujs_ir::Place::Named(name) => {
                        self.mark_var_indet(frame.scope, name);
                    }
                }
            }
        }
        Ok(())
    }

    fn mark_var_indet(&mut self, scope: Option<ScopeId>, name: &str) {
        let mut cur = scope;
        while let Some(sid) = cur {
            if let Some((_, ann)) = self.scopes[sid.0 as usize].vars.get_mut(name) {
                ann.det = Det::I;
                return;
            }
            cur = self.scopes[sid.0 as usize].parent;
        }
        if let Some(slot) = self.heap[self.global.0 as usize].props.get_mut(name) {
            slot.ann.det = Det::I;
        }
    }

    fn mark_scope_chain_indet(&mut self, scope: Option<ScopeId>) {
        let mut cur = scope;
        while let Some(sid) = cur {
            for (_, (_, ann)) in self.scopes[sid.0 as usize].vars.iter_mut() {
                ann.det = Det::I;
            }
            cur = self.scopes[sid.0 as usize].parent;
        }
    }

    // -------------------------------------------------------- registration

    /// Registers a native model.
    pub fn register_native(&mut self, name: &'static str, f: DNativeFn) -> ObjId {
        let nid = mujs_interp::NativeId(self.natives.len() as u32);
        self.natives.push((name, f));
        let obj = self.alloc(
            ObjClass::Native(nid),
            Some(self.protos.function),
            Det::D,
        );
        self.heap[obj.0 as usize].builtin = true;
        obj
    }

    /// Raw determinate property install (library setup).
    pub fn set_raw(&mut self, obj: ObjId, name: &str, v: Value) {
        self.write_prop(obj, name, DValue::det(v));
    }

    /// Raw own-property read.
    pub fn get_raw(&self, obj: ObjId, name: &str) -> Option<Value> {
        self.heap[obj.0 as usize]
            .props
            .get(name)
            .map(|s| s.value.clone())
    }

    /// Builds and throws a fresh error object. `indet_ctl` says whether
    /// other executions might not throw here.
    pub fn throw_error(&mut self, kind: &str, msg: &str, indet_ctl: bool) -> DErr {
        let e = self.alloc(ObjClass::Plain, Some(self.protos.error), Det::D);
        self.write_prop(e, "name", DValue::det(Value::Str(Rc::from(kind))));
        self.write_prop(e, "message", DValue::det(Value::Str(Rc::from(msg))));
        DErr::Thrown(DValue::det(Value::Object(e)), indet_ctl)
    }

    /// Renders a value for output capture (mirrors the concrete machine).
    pub fn display(&self, v: &Value) -> String {
        match v {
            Value::Str(s) => s.to_string(),
            Value::Object(id) => match &self.obj(*id).class {
                ObjClass::Array => {
                    let len = match self.get_raw(*id, "length") {
                        Some(Value::Num(n)) => n as usize,
                        _ => 0,
                    };
                    let items: Vec<String> = (0..len.min(100))
                        .map(|i| {
                            self.get_raw(*id, &i.to_string())
                                .map(|v| self.display(&v))
                                .unwrap_or_default()
                        })
                        .collect();
                    items.join(",")
                }
                c if c.is_callable() => "function".to_owned(),
                _ => "[object Object]".to_owned(),
            },
            other => mujs_interp::coerce::to_string(other)
                .map(|s| s.to_string())
                .unwrap_or_else(|_| "[object]".to_owned()),
        }
    }
}
