// Fully deterministic: every write the analysis sees is determinate.
var count = 0;
function bump() {
  count = count + 1;
  return count;
}
bump();
bump();
var total = bump();
