//! JavaScript-facing DOM bindings for the concrete machine: wires the
//! `mujs-dom` substrate into the heap as `window`/`document`/element
//! objects and implements the natives declared in [`mujs_dom::api`].

use crate::machine::{Interp, RunError};
use crate::values::{ObjClass, ObjId, Value};
use mujs_dom::document::{Document, NodeId};
use mujs_dom::events::{EventPlan, EventTarget, EventTargetSel};
use std::rc::Rc;

impl Interp<'_> {
    /// Installs the DOM: `document`, element wrappers, event natives.
    /// Must be called before [`Interp::run`] for programs that touch the
    /// DOM.
    pub fn install_dom(&mut self, doc: Document) {
        self.doc = Some(doc);
        let g = self.global();

        // Element prototype with element natives.
        let el_proto = self.alloc(ObjClass::Plain, Some(self.protos.object));
        self.obj_mut(el_proto).builtin = true;
        self.dom_element_proto = Some(el_proto);
        let defs: &[(&'static str, crate::machine::NativeFn)] = &[
            ("appendChild", |it, this, a| {
                let (Some(p), Some(c)) = (it.as_node(&this), it.arg_node(a, 0)) else {
                    return Err(it.throw_error("TypeError", "appendChild needs elements"));
                };
                it.doc.as_mut().expect("dom installed").append_child(p, c);
                Ok(a.first().cloned().unwrap_or(Value::Undefined))
            }),
            ("removeChild", |it, this, a| {
                let (Some(p), Some(c)) = (it.as_node(&this), it.arg_node(a, 0)) else {
                    return Err(it.throw_error("TypeError", "removeChild needs elements"));
                };
                it.doc.as_mut().expect("dom installed").remove_child(p, c);
                Ok(a.first().cloned().unwrap_or(Value::Undefined))
            }),
            ("setAttribute", |it, this, a| {
                let Some(n) = it.as_node(&this) else {
                    return Err(it.throw_error("TypeError", "setAttribute needs an element"));
                };
                let name = it.value_to_string(a.first().unwrap_or(&Value::Undefined))?;
                let val = it.value_to_string(a.get(1).unwrap_or(&Value::Undefined))?;
                it.doc
                    .as_mut()
                    .expect("dom installed")
                    .set_attribute(n, &name, &val);
                Ok(Value::Undefined)
            }),
            ("getAttribute", |it, this, a| {
                let Some(n) = it.as_node(&this) else {
                    return Err(it.throw_error("TypeError", "getAttribute needs an element"));
                };
                let name = it.value_to_string(a.first().unwrap_or(&Value::Undefined))?;
                Ok(
                    match it
                        .doc
                        .as_ref()
                        .expect("dom installed")
                        .get_attribute(n, &name)
                    {
                        Some(v) => Value::Str(Rc::from(v)),
                        None => Value::Null,
                    },
                )
            }),
            ("addEventListener", |it, this, a| {
                it.add_listener(&this, a)?;
                Ok(Value::Undefined)
            }),
            ("removeEventListener", |it, this, a| {
                let target = it.event_target_of(&this)?;
                let ty = it.value_to_string(a.first().unwrap_or(&Value::Undefined))?;
                it.events.remove(target, &ty);
                Ok(Value::Undefined)
            }),
        ];
        for (name, f) in defs {
            let n = self.register_native(name, *f);
            self.set_raw(el_proto, name, Value::Object(n));
        }

        // The document object.
        let doc_obj = self.alloc(ObjClass::DomDocument, Some(self.protos.object));
        self.dom_document_obj = Some(doc_obj);
        let defs: &[(&'static str, crate::machine::NativeFn)] = &[
            ("getElementById", |it, _, a| {
                let id = it.value_to_string(a.first().unwrap_or(&Value::Undefined))?;
                match it
                    .doc
                    .as_ref()
                    .expect("dom installed")
                    .get_element_by_id(&id)
                {
                    Some(n) => Ok(Value::Object(it.element_obj(n))),
                    None => Ok(Value::Null),
                }
            }),
            ("getElementsByTagName", |it, _, a| {
                let tag = it.value_to_string(a.first().unwrap_or(&Value::Undefined))?;
                let nodes = it
                    .doc
                    .as_ref()
                    .expect("dom installed")
                    .get_elements_by_tag_name(&tag);
                let arr = it.alloc(ObjClass::Array, Some(it.protos.array));
                it.set_raw(arr, "length", Value::Num(nodes.len() as f64));
                for (i, n) in nodes.into_iter().enumerate() {
                    let w = it.element_obj(n);
                    it.set_raw(arr, &i.to_string(), Value::Object(w));
                }
                Ok(Value::Object(arr))
            }),
            ("createElement", |it, _, a| {
                let tag = it.value_to_string(a.first().unwrap_or(&Value::Undefined))?;
                let n = it.doc.as_mut().expect("dom installed").create_element(&tag);
                Ok(Value::Object(it.element_obj(n)))
            }),
            ("addEventListener", |it, this, a| {
                it.add_listener(&this, a)?;
                Ok(Value::Undefined)
            }),
        ];
        for (name, f) in defs {
            let n = self.register_native(name, *f);
            self.set_raw(doc_obj, name, Value::Object(n));
        }
        self.set_raw(g, "document", Value::Object(doc_obj));

        // Window-level natives.
        let alert = self.register_native("alert", |it, _, a| {
            let msg = match a.first() {
                Some(v) => it.display(v),
                None => String::new(),
            };
            it.output.push(format!("alert: {msg}"));
            Ok(Value::Undefined)
        });
        self.set_raw(g, "alert", Value::Object(alert));
        let add = self.register_native("addEventListener", |it, this, a| {
            it.add_listener(&this, a)?;
            Ok(Value::Undefined)
        });
        self.set_raw(g, "addEventListener", Value::Object(add));
    }

    /// The JS wrapper object for a DOM node (cached, one per node).
    pub fn element_obj(&mut self, node: NodeId) -> ObjId {
        if let Some(&o) = self.dom_nodes.get(&node) {
            return o;
        }
        let proto = self.dom_element_proto;
        let o = self.alloc(ObjClass::DomElement(node), proto);
        self.dom_nodes.insert(node, o);
        o
    }

    fn as_node(&self, v: &Value) -> Option<NodeId> {
        match v {
            Value::Object(o) => match self.obj(*o).class {
                ObjClass::DomElement(n) => Some(n),
                _ => None,
            },
            _ => None,
        }
    }

    fn arg_node(&self, args: &[Value], i: usize) -> Option<NodeId> {
        args.get(i).and_then(|v| self.as_node(v))
    }

    fn event_target_of(&mut self, this: &Value) -> Result<EventTarget, RunError> {
        match this {
            Value::Object(o) if *o == self.global() => Ok(EventTarget::Window),
            Value::Object(o) if Some(*o) == self.dom_document_obj => Ok(EventTarget::Document),
            v => match self.as_node(v) {
                Some(n) => Ok(EventTarget::Element(n)),
                None => Err(self.throw_error("TypeError", "not an event target")),
            },
        }
    }

    fn add_listener(&mut self, this: &Value, args: &[Value]) -> Result<(), RunError> {
        let target = self.event_target_of(this)?;
        let ty = self.value_to_string(args.first().unwrap_or(&Value::Undefined))?;
        let Some(Value::Object(handler)) = args.get(1) else {
            return Err(self.throw_error("TypeError", "listener must be a function"));
        };
        if !self.obj(*handler).class.is_callable() {
            return Err(self.throw_error("TypeError", "listener must be a function"));
        }
        self.events.add(target, &ty, *handler);
        Ok(())
    }

    /// Intercepted DOM property reads (`None` falls through to ordinary
    /// property lookup).
    pub(crate) fn dom_get_hook(&mut self, obj: ObjId, key: mujs_ir::Sym) -> Option<Value> {
        match self.obj(obj).class {
            ObjClass::DomDocument => {
                let key = self.prog.interner.name(key).clone();
                let doc = self.doc.as_ref()?;
                match &*key {
                    "title" => Some(Value::Str(Rc::from(doc.title.as_str()))),
                    "body" => {
                        let b = doc.body();
                        Some(Value::Object(self.element_obj(b)))
                    }
                    "documentElement" => {
                        let r = doc.root();
                        Some(Value::Object(self.element_obj(r)))
                    }
                    _ => None,
                }
            }
            ObjClass::DomElement(n) => {
                let key = self.prog.interner.name(key).clone();
                let doc = self.doc.as_ref()?;
                if !doc.contains(n) {
                    return None;
                }
                match &*key {
                    "tagName" => Some(Value::Str(Rc::from(
                        doc.node(n).tag.to_uppercase().as_str(),
                    ))),
                    "id" => Some(Value::Str(Rc::from(
                        doc.get_attribute(n, "id").unwrap_or(""),
                    ))),
                    "className" => Some(Value::Str(Rc::from(
                        doc.get_attribute(n, "class").unwrap_or(""),
                    ))),
                    "innerHTML" => Some(Value::Str(Rc::from(doc.node(n).text.as_str()))),
                    "parentNode" => match doc.node(n).parent {
                        Some(p) => Some(Value::Object(self.element_obj(p))),
                        None => Some(Value::Null),
                    },
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// Intercepted DOM property writes; returns `true` if handled.
    pub(crate) fn dom_set_hook(&mut self, obj: ObjId, key: mujs_ir::Sym, value: &Value) -> bool {
        let ObjClass::DomElement(n) = self.obj(obj).class else {
            return false;
        };
        let key = self.prog.interner.name(key).clone();
        let Ok(s) = crate::coerce::to_string(value) else {
            return false;
        };
        let Some(doc) = self.doc.as_mut() else {
            return false;
        };
        match &*key {
            "id" => {
                doc.set_attribute(n, "id", &s);
                true
            }
            "className" => {
                doc.set_attribute(n, "class", &s);
                true
            }
            "innerHTML" => {
                doc.node_mut(n).text = s.to_string();
                true
            }
            _ => false,
        }
    }

    /// Fires the implicit `load` event and then the plan's steps, calling
    /// each registered handler with an event object.
    ///
    /// # Errors
    ///
    /// Propagates uncaught exceptions from handlers.
    pub fn fire_events(&mut self, plan: &EventPlan) -> Result<(), RunError> {
        self.dispatch(EventTarget::Window, "load")?;
        self.dispatch(EventTarget::Document, "ready")?;
        for step in plan.steps() {
            let target = match &step.target {
                EventTargetSel::Window => EventTarget::Window,
                EventTargetSel::Document => EventTarget::Document,
                EventTargetSel::ById(id) => {
                    match self.doc.as_ref().and_then(|d| d.get_element_by_id(id)) {
                        Some(n) => EventTarget::Element(n),
                        None => continue,
                    }
                }
            };
            self.dispatch(target, &step.event_type)?;
        }
        Ok(())
    }

    fn dispatch(&mut self, target: EventTarget, ty: &str) -> Result<(), RunError> {
        let handlers = self.events.handlers_for(target, ty);
        if handlers.is_empty() {
            return Ok(());
        }
        let this = match target {
            EventTarget::Window => Value::Object(self.global()),
            EventTarget::Document => self
                .dom_document_obj
                .map(Value::Object)
                .unwrap_or(Value::Undefined),
            EventTarget::Element(n) => Value::Object(self.element_obj(n)),
        };
        let ev = self.alloc(ObjClass::Plain, Some(self.protos.object));
        self.set_raw(ev, "type", Value::Str(Rc::from(ty)));
        self.set_raw(ev, "target", this.clone());
        for h in handlers {
            self.call_closure_by_id(h, this.clone(), &[Value::Object(ev)])?;
        }
        Ok(())
    }
}
