//! Crash-safety tests under deterministic fault injection (`--features
//! fault-inject`): injected native failures, panics, counterfactual-abort
//! storms, and allocation failures must all be contained by the
//! supervisor, surface with the matching status or failure value, and
//! leave the surviving fact databases sound.

#![cfg(feature = "fault-inject")]

use determinacy::driver::{AnalysisOutcome, DetHarness};
use determinacy::multirun::analyze_many_hooked;
use determinacy::{
    supervised_analyze, AnalysisConfig, AnalysisStatus, FactDb, FaultPlan, RunFailure, RunHooks,
};
use mujs_dom::events::EventPlan;
use mujs_interp::context::ContextTable;
use proptest::prelude::*;

fn combine(outs: &[&AnalysisOutcome]) -> u64 {
    let mut db = FactDb::new(0);
    let mut master = ContextTable::new();
    let mut conflicts = 0;
    for o in outs {
        conflicts += db.absorb_reinterned(&o.facts, &o.ctxs, &mut master);
    }
    conflicts
}

fn run_with(
    src: &str,
    cfg: AnalysisConfig,
    plan: FaultPlan,
) -> Result<AnalysisOutcome, RunFailure> {
    let mut h = DetHarness::from_src(src).expect("test program parses");
    supervised_analyze(&mut h, cfg, &RunHooks::supervised().with_faults(plan))
}

#[test]
fn injected_native_panic_is_caught_and_structured() {
    let src = r#"var a = 1; console.log(a); console.log(a + 1);"#;
    let cfg = AnalysisConfig {
        seed: 7,
        ..Default::default()
    };
    let plan = FaultPlan {
        native_panic_at: Some(2),
        ..Default::default()
    };
    let err = run_with(src, cfg, plan).expect_err("the injected panic must surface as a failure");
    let RunFailure::EnginePanic {
        payload,
        steps,
        seed,
    } = err
    else {
        panic!("expected an engine panic, got {err}");
    };
    assert!(payload.contains("injected native fault"), "{payload}");
    assert_eq!(seed, 7, "the failure must carry the failing seed");
    // The progress counter survives the panic, so the report says how far
    // the run got (the first statement has executed by the second call).
    assert!(
        steps > 0,
        "progress should have been recorded before the panic"
    );
}

#[test]
fn injected_native_error_is_an_exception_not_a_panic() {
    // A native call that *fails* (rather than crashes) becomes a thrown
    // JS error: the run ends with UncaughtException, keeping the facts
    // collected before the failure.
    let src = r#"var before = 1 + 1; console.log(before);"#;
    let plan = FaultPlan {
        native_error_at: Some(1),
        ..Default::default()
    };
    let out = run_with(src, AnalysisConfig::default(), plan)
        .expect("a failing native is handled inside the machine");
    assert_eq!(out.status, AnalysisStatus::UncaughtException);
    assert!(
        !out.facts.is_empty(),
        "prefix facts survive the thrown error"
    );
}

#[test]
fn injected_alloc_failure_stops_with_mem_limit() {
    let src = r#"
var early = 2 + 3;
for (var i = 0; i < 1000; i++) { var o = {}; o.p = i; }
"#;
    let plan = FaultPlan {
        alloc_fail_at: Some(4),
        ..Default::default()
    };
    let out = run_with(src, AnalysisConfig::default(), plan)
        .expect("heap exhaustion is a stop, not a failure");
    assert_eq!(out.status, AnalysisStatus::MemLimit);
    assert!(
        !out.facts.is_empty(),
        "prefix facts survive the allocation failure"
    );
}

/// The acceptance scenario: one seed of a multi-run batch hits a
/// panicking native model. The batch must not abort — the failed seed
/// becomes a structured failure entry and the surviving seeds combine
/// into a conflict-free database.
#[test]
fn multirun_batch_survives_panicking_seed() {
    // With counterfactual execution off, the branch body only runs (and
    // only makes its native calls) on seeds whose coin-flip is true — so
    // a fault keyed on the call count hits exactly those seeds.
    let src = r#"
var r = Math.random();
var stable = 40 + 2;
if (r < 0.5) { console.log("taken"); console.log("deep"); }
"#;
    let cfg = AnalysisConfig {
        counterfactual: false,
        ..Default::default()
    };
    let seeds: Vec<u64> = (0..16).collect();
    let mut h = DetHarness::from_src(src).expect("test program parses");

    // Probe run (no faults): find which seeds take the branch.
    let probe = analyze_many_hooked(
        &mut h,
        &seeds,
        cfg.clone(),
        None,
        &EventPlan::new(),
        &RunHooks::supervised(),
    );
    assert_eq!(probe.runs.len(), seeds.len());
    assert!(probe.failures.is_empty());
    let taken: Vec<u64> = seeds
        .iter()
        .zip(&probe.runs)
        .filter(|(_, out)| out.output.iter().any(|l| l == "taken"))
        .map(|(s, _)| *s)
        .collect();
    assert!(
        !taken.is_empty() && taken.len() < seeds.len(),
        "need both branch-taking and branch-skipping seeds, got {taken:?}"
    );

    // Faulted run: the third native call (Math.random + two logs) only
    // happens on branch-taking seeds, and it panics.
    let hooks = RunHooks::supervised().with_faults(FaultPlan {
        native_panic_at: Some(3),
        ..Default::default()
    });
    let out = analyze_many_hooked(&mut h, &seeds, cfg, None, &EventPlan::new(), &hooks);
    assert_eq!(
        out.failures.len(),
        taken.len(),
        "every branch-taking seed fails"
    );
    assert_eq!(
        out.runs.len(),
        seeds.len() - taken.len(),
        "the others complete"
    );
    assert_eq!(out.conflicts, 0, "surviving seeds combine conflict-free");
    assert!(
        !out.facts.is_empty(),
        "surviving seeds still contribute facts"
    );
    for f in &out.failures {
        let RunFailure::EnginePanic { payload, seed, .. } = f else {
            panic!("expected an engine panic, got {f}");
        };
        assert!(taken.contains(seed), "failure for unexpected seed {seed}");
        assert!(payload.contains("injected native fault"), "{payload}");
    }

    // The same program under an already-elapsed deadline: no hang, no
    // panic — a clean Deadline stop with the fact prefix intact.
    let deadline_cfg = AnalysisConfig {
        deadline_ms: Some(0),
        poll_interval: 3,
        counterfactual: false,
        ..Default::default()
    };
    let cut = h.analyze(deadline_cfg);
    assert_eq!(cut.status, AnalysisStatus::Deadline);
    assert!(!cut.facts.is_empty(), "deadline stop keeps the fact prefix");
}

// A program whose indeterminate branches exercise counterfactual
// execution (the arm not taken concretely runs under the undo log).
const CF_SRC: &str = r#"
var r = Math.random();
var x = 0;
var o = {};
if (r < 0.25) { x = 1; o.low = x; } else { x = 2; o.high = x; }
if (r < 0.75) { o.p = x + 1; } else { o.p = x + 2; }
console.log(x);
console.log(o.p);
"#;

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Undo-log restoration: forcing every counterfactual to abort
    /// (ĈNTRABORT storm) must not change the concrete execution — same
    /// output, same status — and the fact databases of the stormed and
    /// unstormed runs stay mutually consistent (both are sound, so their
    /// determinate facts cannot disagree).
    #[test]
    fn cf_abort_storm_is_transparent_to_concrete_execution(seed in any::<u64>()) {
        let cfg = AnalysisConfig { seed, ..Default::default() };
        let baseline = run_with(CF_SRC, cfg.clone(), FaultPlan::default())
            .expect("baseline run succeeds");
        let stormed = run_with(
            CF_SRC,
            cfg,
            FaultPlan { cf_abort_storm: true, ..Default::default() },
        )
        .expect("stormed run succeeds");
        prop_assert_eq!(&baseline.output, &stormed.output);
        prop_assert_eq!(&baseline.status, &stormed.status);
        prop_assert!(
            stormed.stats.cf_aborts >= stormed.stats.counterfactuals,
            "the storm must abort every counterfactual"
        );
        prop_assert_eq!(combine(&[&baseline, &stormed]), 0);
    }

    /// Panic isolation: wherever in the run a native panic is injected,
    /// it never escapes the supervisor — the call returns either a clean
    /// outcome (fault point never reached) or a structured failure
    /// carrying the right seed.
    #[test]
    fn injected_panics_never_escape_the_supervisor(
        seed in any::<u64>(),
        at in 1u64..8,
    ) {
        let cfg = AnalysisConfig { seed, ..Default::default() };
        let plan = FaultPlan { native_panic_at: Some(at), ..Default::default() };
        match run_with(CF_SRC, cfg, plan) {
            Ok(out) => prop_assert!(
                out.status == AnalysisStatus::Completed
                    || out.status == AnalysisStatus::UncaughtException,
                "unexpected status {:?}",
                out.status
            ),
            Err(RunFailure::EnginePanic { payload, seed: s, .. }) => {
                prop_assert!(payload.contains("injected native fault"), "{}", payload);
                prop_assert_eq!(s, seed);
            }
            Err(other) => prop_assert!(false, "unexpected failure {}", other),
        }
    }
}
