//! Ablation: cost of counterfactual execution as the nesting cut-off `k`
//! varies, and with counterfactual execution disabled entirely
//! (ĈNTRABORT-only, the paper's conservative fallback).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use determinacy::AnalysisConfig;
use mujs_corpus::workload;

fn analyze(src: &str, k: u32, enabled: bool) -> u32 {
    let mut h = determinacy::DetHarness::from_src(src).expect("parses");
    let cfg = AnalysisConfig {
        cf_depth_k: k,
        counterfactual: enabled,
        flush_cap: None,
        ..Default::default()
    };
    let out = h.analyze(cfg);
    out.stats.heap_flushes
}

fn bench(c: &mut Criterion) {
    let flat = workload::counterfactual_chain(40, 8);
    let nested = workload::nested_counterfactuals(10);
    let mut g = c.benchmark_group("counterfactual_depth");
    g.sample_size(10);
    for k in [0u32, 2, 4, 8, 16] {
        g.bench_with_input(BenchmarkId::new("nested_k", k), &nested, |b, s| {
            b.iter(|| analyze(s, k, true))
        });
    }
    g.bench_function("chain_counterfactual_on", |b| {
        b.iter(|| analyze(&flat, 8, true))
    });
    g.bench_function("chain_counterfactual_off", |b| {
        b.iter(|| analyze(&flat, 8, false))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
