//! The naive reference solver: the pre-optimization algorithm, kept as a
//! small, obviously-correct oracle for the delta-propagating solver.
//!
//! It propagates one `(node, object)` pair at a time over `HashSet`
//! points-to sets, with no difference propagation and no cycle
//! collapsing. The equivalence tests solve every corpus program with both
//! solvers at unlimited budget and require byte-identical
//! [`PtaResult::export_json`] output; intentionally duplicated from
//! `solver.rs` so a bug in the optimized propagation machinery cannot
//! hide in shared code.

use crate::nodes::{AbsObj, Node};
use crate::pts::Pts;
use crate::solver::{wf_ret, InjectedFacts, Pending, PtaConfig, PtaResult, PtaStats, PtaStatus};
use mujs_ir::ir::{Place, PropKey, StmtKind};
use mujs_ir::resolve::{Binding, Resolver};
use mujs_ir::{FuncId, FuncKind, Program, Stmt, StmtId, Sym};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

/// Runs the reference analysis over every function of `prog`.
/// `cfg.scc_interval` is ignored — this solver never collapses cycles.
pub fn solve_reference(prog: &Program, cfg: &PtaConfig) -> PtaResult {
    RefSolver::new(prog, cfg.clone()).run()
}

struct RefSolver<'p> {
    prog: &'p Program,
    cfg: PtaConfig,
    resolver: Resolver,
    node_ids: HashMap<Node, u32>,
    nodes: Vec<Node>,
    obj_ids: HashMap<AbsObj, u32>,
    objs: Vec<AbsObj>,
    pts: Vec<HashSet<u32>>,
    edges: Vec<Vec<u32>>,
    pending: Vec<Vec<Pending>>,
    worklist: VecDeque<(u32, u32)>, // (node, new obj)
    call_graph: BTreeMap<StmtId, BTreeSet<FuncId>>,
    processed_funcs: HashSet<FuncId>,
    func_queue: VecDeque<FuncId>,
    stats: PtaStats,
    exhausted: bool,
}

impl<'p> RefSolver<'p> {
    fn new(prog: &'p Program, cfg: PtaConfig) -> Self {
        RefSolver {
            prog,
            cfg,
            resolver: Resolver::new(prog),
            node_ids: HashMap::new(),
            nodes: Vec::new(),
            obj_ids: HashMap::new(),
            objs: Vec::new(),
            pts: Vec::new(),
            edges: Vec::new(),
            pending: Vec::new(),
            worklist: VecDeque::new(),
            call_graph: BTreeMap::new(),
            processed_funcs: HashSet::new(),
            func_queue: VecDeque::new(),
            stats: PtaStats::default(),
            exhausted: false,
        }
    }

    fn node(&mut self, n: Node) -> u32 {
        if let Some(&id) = self.node_ids.get(&n) {
            return id;
        }
        let id = self.nodes.len() as u32;
        self.node_ids.insert(n.clone(), id);
        self.nodes.push(n.clone());
        self.pts.push(HashSet::new());
        self.edges.push(Vec::new());
        self.pending.push(Vec::new());
        // Materializing a named property wires it into the ⋆ join.
        if let Node::Prop(o, _) = &n {
            let star = self.node(Node::StarProps(o.clone()));
            self.add_edge(id, star);
        }
        id
    }

    fn obj(&mut self, o: AbsObj) -> u32 {
        if let Some(&id) = self.obj_ids.get(&o) {
            return id;
        }
        let id = self.objs.len() as u32;
        self.obj_ids.insert(o.clone(), id);
        self.objs.push(o);
        id
    }

    fn add_edge(&mut self, from: u32, to: u32) {
        if from == to || self.edges[from as usize].contains(&to) {
            return;
        }
        self.edges[from as usize].push(to);
        self.stats.edges += 1;
        let existing: Vec<u32> = self.pts[from as usize].iter().copied().collect();
        for o in existing {
            self.insert(to, o);
        }
    }

    fn insert(&mut self, node: u32, obj: u32) {
        if self.exhausted || self.pts[node as usize].contains(&obj) {
            return;
        }
        // Check *before* inserting: a solve that needs exactly `budget`
        // insertions completes, and the recorded propagation count always
        // equals the number of facts actually inserted.
        if self.stats.propagations == self.cfg.budget {
            self.exhausted = true;
            return;
        }
        self.pts[node as usize].insert(obj);
        self.stats.propagations += 1;
        self.worklist.push_back((node, obj));
    }

    fn seed(&mut self, node: u32, o: AbsObj) {
        let oid = self.obj(o);
        self.insert(node, oid);
    }

    // ------------------------------------------------------------ naming

    fn place_node(&mut self, func: FuncId, place: &Place) -> u32 {
        match place {
            Place::Temp(t) => self.node(Node::Temp(func, t.0)),
            p => {
                let name = p.as_var_sym().expect("non-temp place");
                self.named_node(func, name)
            }
        }
    }

    fn named_node(&mut self, func: FuncId, name: Sym) -> u32 {
        match self.resolver.resolve(self.prog, func, name) {
            Binding::Local(f) => {
                let f = self.canon(f);
                self.node(Node::Local(f, name))
            }
            Binding::Global => self.node(Node::Prop(AbsObj::Global, name)),
        }
    }

    /// Follows `specialized_from` links to the original function.
    fn canon(&self, mut f: FuncId) -> FuncId {
        let mut fuel = 64;
        while let Some(orig) = self.prog.func(f).specialized_from {
            f = orig;
            fuel -= 1;
            if fuel == 0 {
                break;
            }
        }
        f
    }

    // -------------------------------------------------------- constraints

    fn run(mut self) -> PtaResult {
        if let Some(entry) = self.prog.entry() {
            self.enqueue_func(entry);
            let this_entry = self.node(Node::This(entry));
            self.seed(this_entry, AbsObj::Global);
        }
        while !self.exhausted {
            if let Some(f) = self.func_queue.pop_front() {
                self.gen_function(f);
                continue;
            }
            let Some((node, obj)) = self.worklist.pop_front() else {
                break;
            };
            self.propagate(node, obj);
        }
        self.stats.nodes = self.nodes.len();
        self.stats.call_edges = self.call_graph.values().map(|s| s.len()).sum();
        // The optimized result stores hybrid sets behind an (identity,
        // here) union-find.
        let pts: Vec<Pts> = self
            .pts
            .iter()
            .map(|s| {
                let mut p = Pts::new();
                for &o in s {
                    p.insert(o);
                }
                p
            })
            .collect();
        let parent: Vec<u32> = (0..self.nodes.len() as u32).collect();
        PtaResult {
            status: if self.exhausted {
                PtaStatus::BudgetExceeded
            } else {
                PtaStatus::Completed
            },
            stats: self.stats,
            pts,
            parent,
            node_ids: self.node_ids,
            objs: self.objs,
            call_graph: self.call_graph,
            // The oracle checks sets and call graphs, not provenance;
            // `cfg.provenance` is ignored like `cfg.threads`.
            blame: None,
        }
    }

    fn propagate(&mut self, node: u32, obj: u32) {
        let targets = self.edges[node as usize].clone();
        for t in targets {
            self.insert(t, obj);
        }
        let pendings = self.pending[node as usize].clone();
        let o = self.objs[obj as usize].clone();
        for p in pendings {
            self.apply_pending(&p, &o);
        }
    }

    fn attach(&mut self, node: u32, p: Pending) {
        let existing: Vec<u32> = self.pts[node as usize].iter().copied().collect();
        self.pending[node as usize].push(p.clone());
        for oid in existing {
            let o = self.objs[oid as usize].clone();
            self.apply_pending(&p, &o);
        }
    }

    fn apply_pending(&mut self, p: &Pending, o: &AbsObj) {
        match p {
            Pending::Load { key, dst } => self.apply_load(o, *key, *dst),
            Pending::Store { key, src } => self.apply_store(o, *key, *src),
            Pending::Call {
                site,
                this,
                args,
                dst,
                is_new,
            } => self.apply_call(o, *site, *this, args.clone(), *dst, *is_new),
        }
    }

    fn apply_load(&mut self, o: &AbsObj, key: Option<Sym>, dst: u32) {
        let unknown = self.node(Node::UnknownProps(o.clone()));
        self.add_edge(unknown, dst);
        match key {
            Some(k) => {
                let f = self.node(Node::Prop(o.clone(), k));
                self.add_edge(f, dst);
            }
            None => {
                let star = self.node(Node::StarProps(o.clone()));
                self.add_edge(star, dst);
            }
        }
        // Loads fall through the prototype chain.
        let pv = self.node(Node::ProtoVar(o.clone()));
        self.attach(pv, Pending::Load { key, dst });
    }

    fn apply_store(&mut self, o: &AbsObj, key: Option<Sym>, src: u32) {
        match key {
            Some(k) => {
                let f = self.node(Node::Prop(o.clone(), k));
                self.add_edge(src, f);
            }
            None => {
                let unknown = self.node(Node::UnknownProps(o.clone()));
                self.add_edge(src, unknown);
            }
        }
    }

    fn apply_call(
        &mut self,
        o: &AbsObj,
        site: StmtId,
        this: Option<u32>,
        args: Vec<u32>,
        dst: u32,
        is_new: bool,
    ) {
        match o {
            AbsObj::Closure(f) => {
                let f = *f;
                self.call_graph.entry(site).or_default().insert(f);
                self.enqueue_func(f);
                let func = self.prog.func(f).clone();
                let pf = self.canon(f);
                for (i, &p) in func.params.iter().enumerate() {
                    if let Some(&a) = args.get(i) {
                        let pn = self.node(Node::Local(pf, p));
                        self.add_edge(a, pn);
                    }
                }
                let ret = self.node(Node::Ret(f));
                self.add_edge(ret, dst);
                if is_new {
                    let alloc = AbsObj::Alloc(site);
                    self.seed(dst, alloc.clone());
                    let this_n = self.node(Node::This(f));
                    let alloc_id = self.obj(alloc.clone());
                    self.insert(this_n, alloc_id);
                    let fproto = self.node(Node::Prop(AbsObj::Closure(f), Sym::PROTOTYPE));
                    let pv = self.node(Node::ProtoVar(alloc));
                    self.add_edge(fproto, pv);
                } else if let Some(t) = this {
                    let this_n = self.node(Node::This(f));
                    self.add_edge(t, this_n);
                }
            }
            AbsObj::Opaque => {
                let sink = self.node(Node::UnknownProps(AbsObj::Opaque));
                for a in args {
                    self.add_edge(a, sink);
                }
                self.seed(dst, AbsObj::Opaque);
            }
            _ => {
                // Calling a non-function abstract object: no effect.
            }
        }
    }

    fn enqueue_func(&mut self, f: FuncId) {
        if self.processed_funcs.insert(f) {
            self.func_queue.push_back(f);
        }
    }

    // ----------------------------------------------------- per-statement

    fn site_key(&mut self, site: StmtId, key: &PropKey) -> Option<Sym> {
        match key {
            PropKey::Static(k) => Some(*k),
            PropKey::Dynamic(_) => {
                let injected = self
                    .cfg
                    .facts
                    .as_ref()
                    .and_then(|f: &InjectedFacts| f.prop_keys.get(&site))
                    .copied();
                if injected.is_some() {
                    self.stats.injected_keys += 1;
                }
                injected
            }
        }
    }

    fn site_callee(&self, site: StmtId) -> Option<FuncId> {
        self.cfg
            .facts
            .as_ref()
            .and_then(|f| f.callees.get(&site))
            .copied()
    }

    fn gen_function(&mut self, fid: FuncId) {
        let f = self.prog.func(fid).clone();
        for &(name, nested) in &f.decls.funcs {
            let n = self.named_node(fid, name);
            self.seed(n, AbsObj::Closure(nested));
            self.init_closure(nested);
        }
        if f.kind == FuncKind::Function {
            let cf = self.canon(fid);
            let n = self.node(Node::Local(cf, Sym::ARGUMENTS));
            self.seed(n, AbsObj::Opaque);
        }
        let stmts = f.body.clone();
        self.gen_block(fid, &stmts);
    }

    fn init_closure(&mut self, f: FuncId) {
        let protos = self.node(Node::Prop(AbsObj::Closure(f), Sym::PROTOTYPE));
        self.seed(protos, AbsObj::ProtoOf(f));
        let ctor = self.node(Node::Prop(AbsObj::ProtoOf(f), Sym::CONSTRUCTOR));
        self.seed(ctor, AbsObj::Closure(f));
    }

    fn gen_block(&mut self, fid: FuncId, block: &[Stmt]) {
        let wf = fid;
        for s in block {
            if self.exhausted {
                return;
            }
            match &s.kind {
                StmtKind::Const { .. } => {}
                StmtKind::Copy { dst, src } => {
                    let d = self.place_node(wf, dst);
                    let sn = self.place_node(wf, src);
                    self.add_edge(sn, d);
                }
                StmtKind::Closure { dst, func } => {
                    let d = self.place_node(wf, dst);
                    self.seed(d, AbsObj::Closure(*func));
                    self.init_closure(*func);
                }
                StmtKind::NewObject { dst, .. } => {
                    let d = self.place_node(wf, dst);
                    self.seed(d, AbsObj::Alloc(s.id));
                }
                StmtKind::GetProp { dst, obj, key } => {
                    let d = self.place_node(wf, dst);
                    let o = self.place_node(wf, obj);
                    let key = self.site_key(s.id, key);
                    self.attach(o, Pending::Load { key, dst: d });
                }
                StmtKind::SetProp { obj, key, val } => {
                    let o = self.place_node(wf, obj);
                    let v = self.place_node(wf, val);
                    let key = self.site_key(s.id, key);
                    self.attach(o, Pending::Store { key, src: v });
                }
                StmtKind::DeleteProp { .. } => {}
                StmtKind::BinOp { .. } | StmtKind::UnOp { .. } => {}
                StmtKind::Call {
                    dst,
                    callee,
                    this_arg,
                    args,
                } => {
                    let d = self.place_node(wf, dst);
                    let t = this_arg.as_ref().map(|p| self.place_node(wf, p));
                    let a: Vec<u32> = args.iter().map(|p| self.place_node(wf, p)).collect();
                    if let Some(target) = self.site_callee(s.id) {
                        self.stats.injected_calls += 1;
                        self.init_closure(target);
                        self.apply_call(&AbsObj::Closure(target), s.id, t, a, d, false);
                    } else {
                        let c = self.place_node(wf, callee);
                        self.attach(
                            c,
                            Pending::Call {
                                site: s.id,
                                this: t,
                                args: a,
                                dst: d,
                                is_new: false,
                            },
                        );
                    }
                }
                StmtKind::New { dst, callee, args } => {
                    let d = self.place_node(wf, dst);
                    let a: Vec<u32> = args.iter().map(|p| self.place_node(wf, p)).collect();
                    if let Some(target) = self.site_callee(s.id) {
                        self.stats.injected_calls += 1;
                        self.init_closure(target);
                        self.apply_call(&AbsObj::Closure(target), s.id, None, a, d, true);
                    } else {
                        let c = self.place_node(wf, callee);
                        self.attach(
                            c,
                            Pending::Call {
                                site: s.id,
                                this: None,
                                args: a,
                                dst: d,
                                is_new: true,
                            },
                        );
                    }
                }
                StmtKind::If {
                    then_blk, else_blk, ..
                } => {
                    self.gen_block(fid, then_blk);
                    self.gen_block(fid, else_blk);
                }
                StmtKind::Loop {
                    cond_blk,
                    body,
                    update,
                    ..
                } => {
                    self.gen_block(fid, cond_blk);
                    self.gen_block(fid, body);
                    self.gen_block(fid, update);
                }
                StmtKind::Breakable { body } => self.gen_block(fid, body),
                StmtKind::Try {
                    block,
                    catch,
                    finally,
                } => {
                    self.gen_block(fid, block);
                    if let Some((name, b)) = catch {
                        let exc = self.node(Node::ExcPool);
                        let v = self.named_node(wf, *name);
                        self.add_edge(exc, v);
                        self.gen_block(fid, b);
                    }
                    if let Some(b) = finally {
                        self.gen_block(fid, b);
                    }
                }
                StmtKind::Return { arg } => {
                    if let Some(p) = arg {
                        let r = self.node(Node::Ret(wf_ret(self.prog, fid)));
                        let v = self.place_node(wf, p);
                        self.add_edge(v, r);
                    }
                }
                StmtKind::Break | StmtKind::Continue => {}
                StmtKind::Throw { arg } => {
                    let exc = self.node(Node::ExcPool);
                    let v = self.place_node(wf, arg);
                    self.add_edge(v, exc);
                }
                StmtKind::LoadThis { dst } => {
                    let d = self.place_node(wf, dst);
                    let t = self.node(Node::This(wf_ret(self.prog, fid)));
                    self.add_edge(t, d);
                }
                StmtKind::TypeofName { .. } => {}
                StmtKind::HasProp { .. } | StmtKind::InstanceOf { .. } => {}
                StmtKind::EnumProps { dst, .. } => {
                    let d = self.place_node(wf, dst);
                    self.seed(d, AbsObj::Alloc(s.id));
                }
                StmtKind::Eval { dst, .. } => {
                    let d = self.place_node(wf, dst);
                    self.seed(d, AbsObj::Opaque);
                }
            }
        }
    }
}
