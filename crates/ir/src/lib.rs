//! # mujs-ir
//!
//! The structured three-address IR at the heart of the reproduction — the
//! paper's µJS (Figure 5) extended with "a small number of additional
//! statement forms" (§4) — together with:
//!
//! * [`lower`]: translation from the [`mujs_syntax`] AST (hoisting,
//!   expression flattening, `for`/`for-in`/`switch`/`&&`/`?:` desugaring,
//!   direct-`eval` detection);
//! * [`vd`]: the static write-domain function `vd(s)` used by the
//!   instrumented semantics' (ĈNTRABORT) rule;
//! * [`resolve`]: static lexical name resolution for the pointer analysis
//!   and the specializer;
//! * [`pretty`]: a textual dump.
//!
//! Control flow stays structured because the dynamic determinacy analysis
//! needs the lexical extent of branches to compute write domains and to
//! roll back counterfactual execution.

pub mod closure_writes;
pub mod intern;
pub mod ir;
pub mod lower;
pub mod pretty;
pub mod resolve;
pub mod slots;
pub mod vd;

pub use intern::{Interner, Sym};
pub use ir::{
    BinOp, Block, Decls, FuncId, FuncKind, Function, Place, Program, PropKey, Stmt, StmtId,
    StmtInfo, StmtKind, TempId, UnOp,
};
pub use lower::{lower_chunk, lower_program};
