//! `detblame` — imprecision root-cause triage over the Table 1 corpus.
//!
//! For each jQuery-like corpus version, runs the DetDOM dynamic analysis,
//! solves the uninjected baseline pointer analysis with provenance
//! tracking, and prints the ranked root-cause report distilled by
//! `mujs_analysis::blame_report`: which ⋆-smears, eval chunks, unmodeled
//! natives, and havoc edges the surviving points-to tuples are blamed on,
//! with the concrete fact-injection sites that would remove them. Each
//! suggestion is cross-referenced against `determinacy::injectable_facts`
//! — the facts the dynamic run can already prove — so the report
//! separates *actionable today* (`injectable`) from *needs more
//! determinacy* (`unproven`).
//!
//! ```console
//! $ cargo run --release -p mujs-bench --bin detblame
//! $ cargo run --release -p mujs-bench --bin detblame -- --version 1.0 --json
//! $ cargo run --release -p mujs-bench --bin detblame -- --budget 150000 --top 5 --out blame.json
//! ```
//!
//! Exit status: `0` on success, `1` when any version that misses its
//! budgeted fixpoint yields an *empty* ranked cause list (the provenance
//! layer failed to explain the starvation — a bug, not a corpus
//! property), `2` for usage errors.

use determinacy::AnalysisConfig;
use mujs_analysis::blame::func_name;
use mujs_analysis::{blame_report, BlameReport, FixKind};
use mujs_bench::pipeline::{analyze_page, TABLE1_PTA_BUDGET};
use mujs_ir::Program;
use mujs_pta::{InjectedFacts, PtaConfig, PtaStatus};
use serde_json::Value;

fn usage(problem: &str) -> ! {
    if !problem.is_empty() {
        eprintln!("error: {problem}");
    }
    eprintln!(
        "usage: detblame [--version V[,V...]] [--budget N] [--top K] [--json] [--out FILE]\n\
         \n\
         \x20 --version V   corpus versions to triage (default: all Table 1 versions)\n\
         \x20 --budget N    PTA propagation budget (default {TABLE1_PTA_BUDGET}, Table 1's)\n\
         \x20 --top K       ranked causes per version (default 10)\n\
         \x20 --json        machine-readable output (one JSON document)\n\
         \x20 --out FILE    write the report there instead of stdout\n\
         \n\
         exit status: 0 ok; 1 a budget-starved version has no ranked causes;\n\
         \x20             2 usage errors"
    );
    std::process::exit(2);
}

struct Options {
    versions: Vec<String>,
    budget: u64,
    top: usize,
    json: bool,
    out: Option<String>,
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut o = Options {
        versions: Vec::new(),
        budget: TABLE1_PTA_BUDGET,
        top: 10,
        json: false,
        out: None,
    };
    let mut i = 0;
    while i < args.len() {
        let need = |i: &mut usize, flag: &str| -> String {
            *i += 1;
            args.get(*i)
                .cloned()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match args[i].as_str() {
            "--version" => o
                .versions
                .extend(need(&mut i, "--version").split(',').map(str::to_owned)),
            "--budget" => {
                o.budget = need(&mut i, "--budget")
                    .parse()
                    .unwrap_or_else(|_| usage("--budget wants an integer"));
            }
            "--top" => {
                o.top = need(&mut i, "--top")
                    .parse()
                    .unwrap_or_else(|_| usage("--top wants an integer"));
            }
            "--json" => o.json = true,
            "--out" => o.out = Some(need(&mut i, "--out")),
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    o
}

/// Whether the dynamic run already proves the fact a suggestion asks for.
fn injectable(facts: &InjectedFacts, fix: FixKind, site: mujs_ir::StmtId) -> bool {
    match fix {
        FixKind::PropKey => facts.prop_keys.contains_key(&site),
        FixKind::Callee => facts.callees.contains_key(&site),
    }
}

/// One triaged version, everything the two renderers need.
struct Triage {
    version: String,
    status: PtaStatus,
    propagations: u64,
    injectable_sites: usize,
    report: BlameReport,
    prog: Program,
    facts: InjectedFacts,
}

fn render_text(t: &Triage, budget: u64) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let status = match t.status {
        PtaStatus::Completed => "fixpoint",
        PtaStatus::BudgetExceeded => "budget exceeded",
    };
    let _ = writeln!(
        s,
        "{}: {status} at budget {budget} ({} propagations, {} injectable sites)",
        t.version, t.propagations, t.injectable_sites
    );
    let r = &t.report;
    let _ = writeln!(
        s,
        "  {} tuples: {} precise, {} injected, {} from {} imprecision cause(s)",
        r.total_tuples,
        r.precise_tuples,
        r.injected_tuples,
        r.total_tuples - r.precise_tuples - r.injected_tuples,
        r.distinct_causes
    );
    for (i, c) in r.causes.iter().enumerate() {
        let anchor = match (c.site, c.func) {
            (Some(site), Some(f)) => format!(" at {site} in {}", func_name(&t.prog, f)),
            (None, Some(f)) => format!(" in {}", func_name(&t.prog, f)),
            _ => String::new(),
        };
        let _ = writeln!(
            s,
            "  {:>3}. {:>8} tuples  {}{}",
            i + 1,
            c.tuples,
            c.cause.label(),
            anchor
        );
        for sg in &c.suggestions {
            let mark = if injectable(&t.facts, sg.fix, sg.site) {
                "injectable"
            } else {
                "unproven"
            };
            let _ = writeln!(
                s,
                "         fix: inject {} fact at {} in {} [{mark}]",
                sg.fix.as_str(),
                sg.site,
                func_name(&t.prog, sg.func)
            );
        }
    }
    s
}

fn render_json(t: &Triage, budget: u64) -> Value {
    let num = |n: u64| Value::Num(n as f64);
    let r = &t.report;
    let causes: Vec<Value> = r
        .causes
        .iter()
        .map(|c| {
            let mut fields = vec![
                ("label".to_owned(), Value::Str(c.cause.label())),
                ("kind".to_owned(), Value::Str(c.cause.kind().to_owned())),
                ("tuples".to_owned(), num(c.tuples)),
            ];
            if let Some(site) = c.site {
                fields.push(("site".to_owned(), num(u64::from(site.0))));
            }
            if let Some(f) = c.func {
                fields.push(("func".to_owned(), Value::Str(func_name(&t.prog, f))));
            }
            let suggest: Vec<Value> = c
                .suggestions
                .iter()
                .map(|sg| {
                    Value::Object(vec![
                        ("fix".to_owned(), Value::Str(sg.fix.as_str().to_owned())),
                        ("site".to_owned(), num(u64::from(sg.site.0))),
                        ("func".to_owned(), Value::Str(func_name(&t.prog, sg.func))),
                        (
                            "injectable".to_owned(),
                            Value::Bool(injectable(&t.facts, sg.fix, sg.site)),
                        ),
                    ])
                })
                .collect();
            fields.push(("suggest".to_owned(), Value::Array(suggest)));
            Value::Object(fields)
        })
        .collect();
    Value::Object(vec![
        ("version".to_owned(), Value::Str(t.version.clone())),
        ("budget".to_owned(), num(budget)),
        (
            "status".to_owned(),
            Value::Str(
                match t.status {
                    PtaStatus::Completed => "completed",
                    PtaStatus::BudgetExceeded => "budget exceeded",
                }
                .to_owned(),
            ),
        ),
        ("propagations".to_owned(), num(t.propagations)),
        (
            "injectable_sites".to_owned(),
            num(t.injectable_sites as u64),
        ),
        ("total_tuples".to_owned(), num(r.total_tuples)),
        ("precise_tuples".to_owned(), num(r.precise_tuples)),
        ("injected_tuples".to_owned(), num(r.injected_tuples)),
        ("distinct_causes".to_owned(), num(r.distinct_causes as u64)),
        ("causes".to_owned(), Value::Array(causes)),
    ])
}

fn main() {
    let o = parse_args();
    let all = mujs_corpus::jquery_like::all_versions();
    let versions: Vec<_> = if o.versions.is_empty() {
        all
    } else {
        for want in &o.versions {
            if !all.iter().any(|v| v.version == want.as_str()) {
                usage(&format!("unknown corpus version `{want}`"));
            }
        }
        all.into_iter()
            .filter(|v| o.versions.iter().any(|w| w.as_str() == v.version))
            .collect()
    };

    let mut failed = false;
    let mut text = String::new();
    let mut rows = Vec::new();
    for v in &versions {
        let cfg = AnalysisConfig {
            det_dom: true,
            ..Default::default()
        };
        let (h, analysis) = match analyze_page(&v.src, &v.doc, &v.plan, cfg) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("detblame {}: {e}", v.version);
                std::process::exit(1);
            }
        };
        let mut prog = h.program;
        let facts = determinacy::injectable_facts(&analysis.facts, &mut prog);
        let r = mujs_pta::solve(
            &prog,
            &PtaConfig {
                budget: o.budget,
                provenance: true,
                ..Default::default()
            },
        );
        let report = blame_report(&prog, &r, o.top).expect("provenance solve carries blame");
        if r.status == PtaStatus::BudgetExceeded && report.causes.is_empty() {
            eprintln!(
                "detblame {}: budget-starved solve has NO ranked root causes — \
                 the provenance layer failed to explain the starvation",
                v.version
            );
            failed = true;
        }
        let t = Triage {
            version: v.version.to_owned(),
            status: r.status,
            propagations: r.stats.propagations,
            injectable_sites: facts.len(),
            report,
            prog,
            facts,
        };
        if o.json {
            rows.push(render_json(&t, o.budget));
        } else {
            text.push_str(&render_text(&t, o.budget));
        }
    }

    let rendered = if o.json {
        let doc = Value::Object(vec![
            ("budget".to_owned(), Value::Num(o.budget as f64)),
            ("rows".to_owned(), Value::Array(rows)),
        ]);
        format!(
            "{}\n",
            serde_json::to_string_pretty(&doc).expect("report serializes")
        )
    } else {
        text
    };
    match &o.out {
        Some(p) => {
            if let Err(e) = std::fs::write(p, &rendered) {
                eprintln!("detblame: cannot write {p}: {e}");
                std::process::exit(1);
            }
            eprintln!("detblame: report written to {p}");
        }
        None => print!("{rendered}"),
    }
    if failed {
        std::process::exit(1);
    }
}
