//! Tests for the fact-driven specializer: branch pruning, static keys,
//! loop unrolling, eval elimination, cloning — and semantic preservation
//! of the rewrites (the specialized program behaves like the original on
//! the observed input).

use determinacy::driver::DetHarness;
use determinacy::AnalysisConfig;
use mujs_interp::{Interp, InterpOptions};
use mujs_ir::ir::{PropKey, StmtKind};
use mujs_ir::Program;
use mujs_specialize::{specialize, EvalStatus, SpecConfig, Specialized};

fn run_spec(src: &str) -> (DetHarness, Specialized) {
    run_spec_cfg(src, SpecConfig::default())
}

fn run_spec_cfg(src: &str, cfg: SpecConfig) -> (DetHarness, Specialized) {
    let mut h = DetHarness::from_src(src).expect("parses");
    let mut out = h.analyze(AnalysisConfig::default());
    let spec = specialize(&h.program, &out.facts, &mut out.ctxs, &cfg);
    (h, spec)
}

/// Runs a program on the concrete interpreter and returns its output.
fn run_concrete(prog: &Program) -> Vec<String> {
    let mut p = prog.clone();
    let mut interp = Interp::new(&mut p, InterpOptions::default());
    interp
        .run()
        .unwrap_or_else(|e| panic!("specialized program failed: {e}"));
    interp.output.clone()
}

fn count_stmts(prog: &Program, pred: impl Fn(&StmtKind) -> bool) -> usize {
    let mut n = 0;
    for f in &prog.funcs {
        Program::walk_block(&f.body, &mut |s| {
            if pred(&s.kind) {
                n += 1;
            }
        });
    }
    n
}

#[test]
fn prunes_determinately_false_branches() {
    let src = r#"
var mode = "production";
if (mode === "debug") { console.log("dbg"); } else { console.log("prod"); }
"#;
    let (_, spec) = run_spec(src);
    assert_eq!(spec.report.branches_pruned, 1);
    assert_eq!(run_concrete(&spec.program), vec!["prod"]);
}

#[test]
fn keeps_indeterminate_branches() {
    let src = r#"
if (__indet(true)) { console.log("a"); } else { console.log("b"); }
"#;
    let (_, spec) = run_spec(src);
    assert_eq!(spec.report.branches_pruned, 0);
}

#[test]
fn staticizes_determinate_dynamic_keys() {
    let src = r#"
var k = "wi" + "dth";
var o = {};
o[k] = 20;
console.log(o[k]);
"#;
    let (_, spec) = run_spec(src);
    assert_eq!(spec.report.keys_staticized, 2);
    assert_eq!(
        count_stmts(&spec.program, |k| matches!(
            k,
            StmtKind::SetProp {
                key: PropKey::Dynamic(_),
                ..
            } | StmtKind::GetProp {
                key: PropKey::Dynamic(_),
                ..
            }
        )),
        0
    );
    assert_eq!(run_concrete(&spec.program), vec!["20"]);
}

#[test]
fn indeterminate_keys_stay_dynamic() {
    let src = r#"
var k = __indet("x");
var o = {};
o[k] = 1;
"#;
    let (_, spec) = run_spec(src);
    assert_eq!(spec.report.keys_staticized, 0);
}

#[test]
fn unrolls_determinate_loops_with_calls() {
    let src = r#"
function handle(x) { console.log(x); }
var items = ["a", "b", "c"];
for (var i = 0; i < items.length; i++) { handle(items[i]); }
"#;
    let (_, spec) = run_spec(src);
    assert_eq!(spec.report.loops_unrolled, 1);
    assert_eq!(
        count_stmts(&spec.program, |k| matches!(k, StmtKind::Loop { .. })),
        0
    );
    assert_eq!(run_concrete(&spec.program), vec!["a", "b", "c"]);
}

#[test]
fn does_not_unroll_indeterminate_loops() {
    let src = r#"
function f(i) { return i; }
var n = __indet(3);
for (var i = 0; i < n; i++) { f(i); }
"#;
    let (_, spec) = run_spec(src);
    assert_eq!(spec.report.loops_unrolled, 0);
}

#[test]
fn does_not_unroll_loops_without_benefit() {
    let src = r#"
var s = 0;
for (var i = 0; i < 3; i++) { s = s + i; }
console.log(s);
"#;
    let (_, spec) = run_spec(src);
    assert_eq!(spec.report.loops_unrolled, 0);
    assert_eq!(run_concrete(&spec.program), vec!["3"]);
}

#[test]
fn eliminates_determinate_eval() {
    let src = r#"
var r = eval("21 * 2");
console.log(r);
"#;
    let (_, spec) = run_spec(src);
    assert_eq!(spec.report.evals_eliminated, 1);
    assert_eq!(spec.report.evals_remaining, 0);
    assert_eq!(run_concrete(&spec.program), vec!["42"]);
}

#[test]
fn eval_with_variable_declarations_inlines_correctly() {
    let src = r#"
eval("var injected = 7;");
console.log(injected);
"#;
    let (_, spec) = run_spec(src);
    assert_eq!(spec.report.evals_eliminated, 1);
    assert_eq!(run_concrete(&spec.program), vec!["7"]);
}

#[test]
fn figure4_ivymap_eval_elimination() {
    // The paper's Figure 4: eval with a string *concatenation* argument —
    // the case unevalizer cannot handle but determinacy facts can (§5.2).
    let src = r#"
ivymap = window.ivymap || {};
ivymap["pc.sy.banner.tcck."] = function() { console.log("handler tcck"); };
function showIvyViaJs(locationId) {
  var _f = undefined;
  var _fconv = "ivymap['" + locationId + "']";
  try {
    _f = eval(_fconv);
    if (_f != undefined) { _f(); }
  } catch (e) {}
}
showIvyViaJs('pc.sy.banner.tcck.');
showIvyViaJs('pc.sy.banner.duilian.');
"#;
    let (_, spec) = run_spec(src);
    // Both specialized call contexts eliminate their eval.
    assert!(spec.report.evals_eliminated >= 2, "{:?}", spec.report);
    assert_eq!(spec.report.evals_remaining, 1); // the original function survives unspecialized
    assert!(spec.report.clones >= 2);
    assert_eq!(run_concrete(&spec.program), vec!["handler tcck"]);
}

#[test]
fn indeterminate_eval_reported() {
    let src = r#"
var code = __indet("1+1");
var r = eval(code);
"#;
    let (_, spec) = run_spec(src);
    assert_eq!(spec.report.evals_eliminated, 0);
    assert!(spec
        .report
        .eval_events
        .iter()
        .any(|(_, s)| *s == EvalStatus::IndeterminateArg));
}

#[test]
fn uncovered_eval_reported() {
    let src = r#"
if (__indet(false)) {
  // Never runs concretely; counterfactual execution aborts at eval
  // because it cannot be undone... it actually records a fact. Use an
  // unreached function instead.
}
function never() { eval("1"); }
var keep = never;
"#;
    let (_, spec) = run_spec(src);
    assert_eq!(spec.report.evals_eliminated, 0);
    assert_eq!(spec.report.evals_remaining, 1);
}

#[test]
fn clones_functions_per_context() {
    let src = r#"
function dispatch(kind) {
  if (kind === "a") { console.log("A"); } else { console.log("B"); }
}
dispatch("a");
dispatch("b");
"#;
    let (_, spec) = run_spec(src);
    assert_eq!(spec.report.clones, 2);
    assert_eq!(spec.report.calls_redirected, 2);
    // Each clone has its branch pruned.
    assert_eq!(spec.report.branches_pruned, 2);
    assert_eq!(run_concrete(&spec.program), vec!["A", "B"]);
}

#[test]
fn cloning_disabled_by_config() {
    let src = r#"
function dispatch(kind) { if (kind === "a") { console.log("A"); } }
dispatch("a");
"#;
    let cfg = SpecConfig {
        clone_functions: false,
        ..Default::default()
    };
    let (_, spec) = run_spec_cfg(src, cfg);
    assert_eq!(spec.report.clones, 0);
    assert_eq!(run_concrete(&spec.program), vec!["A"]);
}

#[test]
fn figure3_full_pipeline() {
    // Accessor definition via dynamic names (§2.2): after specialization
    // the property writes are static and the program still works.
    let src = r#"
function Rectangle(w, h) { this.width = w; this.height = h; }
Rectangle.prototype.toString = function() {
  return "[" + this.width + "x" + this.height + "]";
};
String.prototype.cap = function() {
  return this[0].toUpperCase() + this.substr(1);
};
function defAccessors(prop) {
  Rectangle.prototype["get" + prop.cap()] = function() { return this[prop]; };
  Rectangle.prototype["set" + prop.cap()] = function(v) { this[prop] = v; };
}
var props = ["width", "height"];
for (var i = 0; i < props.length; i++) defAccessors(props[i]);
var r = new Rectangle(20, 30);
r.setWidth(r.getWidth() + 20);
console.log(r.toString());
"#;
    let (_, spec) = run_spec(src);
    // The loop is unrolled and defAccessors is cloned per iteration with
    // its dynamic stores staticized.
    assert_eq!(spec.report.loops_unrolled, 1, "{:?}", spec.report);
    assert!(spec.report.clones >= 2, "{:?}", spec.report);
    assert!(spec.report.keys_staticized >= 4, "{:?}", spec.report);
    assert_eq!(run_concrete(&spec.program), vec!["[40x30]"]);
}

#[test]
fn figure3_specialization_makes_pta_precise() {
    // End-to-end §2.2: baseline PTA is imprecise on the accessor pattern;
    // PTA over the specialized program is precise.
    let src = r#"
function Rectangle(w, h) { this.width = w; this.height = h; }
function defAccessors(prop) {
  Rectangle.prototype["get" + prop] = function getter() { return this[prop]; };
  Rectangle.prototype["set" + prop] = function setter(v) { this[prop] = v; };
}
var props = ["Width", "Height"];
for (var i = 0; i < props.length; i++) defAccessors(props[i]);
var r = new Rectangle(20, 30);
r.getWidth();
"#;
    let (h, spec) = run_spec(src);
    let baseline = mujs_pta::solve(&h.program, &mujs_pta::PtaConfig::default());
    let specialized = mujs_pta::solve(&spec.program, &mujs_pta::PtaConfig::default());
    let getter = |prog: &Program| {
        prog.funcs
            .iter()
            .filter(|f| f.name.is_some_and(|n| prog.interner.resolve(n) == "getter"))
            .map(|f| f.id)
            .collect::<Vec<_>>()
    };
    let setters = |prog: &Program| {
        prog.funcs
            .iter()
            .filter(|f| f.name.is_some_and(|n| prog.interner.resolve(n) == "setter"))
            .map(|f| f.id)
            .collect::<Vec<_>>()
    };
    // Baseline: some call site sees both getter and setter (smeared).
    let base_smeared = baseline.call_graph().values().any(|callees| {
        getter(&h.program).iter().any(|g| callees.contains(g))
            && setters(&h.program).iter().any(|s| callees.contains(s))
    });
    assert!(base_smeared, "baseline should be imprecise");
    // Specialized: no call site mixes getters and setters.
    let spec_smeared = specialized.call_graph().values().any(|callees| {
        getter(&spec.program).iter().any(|g| callees.contains(g))
            && setters(&spec.program).iter().any(|s| callees.contains(s))
    });
    assert!(!spec_smeared, "specialized PTA should be precise");
}

#[test]
fn specialization_is_idempotent_on_fact_free_programs() {
    let src = "var x = __indet(1); if (x) { x = 2; }";
    let (h, spec) = run_spec(src);
    // Nothing to do: no clones, no pruning (indeterminate), program
    // equivalent modulo statement ids.
    assert_eq!(spec.report.clones, 0);
    assert_eq!(spec.report.branches_pruned, 0);
    assert_eq!(spec.program.funcs.len(), h.program.funcs.len());
}

#[test]
fn figure1_dead_branch_elimination_per_site() {
    // §2.1: under $(function(){}) the "string" branch is determinately
    // dead; cloning exposes that.
    let src = r#"
function $(selector) {
  if (typeof selector === "string") { console.log("css"); }
  else { if (typeof selector === "function") { console.log("ready"); }
         else { console.log("wrap"); } }
}
$(function() {});
"#;
    let (_, spec) = run_spec(src);
    assert!(spec.report.clones >= 1);
    assert!(spec.report.branches_pruned >= 2, "{:?}", spec.report);
    assert_eq!(run_concrete(&spec.program), vec!["ready"]);
}
