//! Regenerates Table 1: pointer-analysis scalability on the jQuery-like
//! corpus under Baseline / Spec / Spec+DetDOM, with heap-flush counts.
//!
//! Run with `cargo run -p mujs-bench --bin table1 --release`. Pass
//! `--workers N` to run the corpus versions as parallel jobs; the table
//! is printed in version order either way and contains no timing data,
//! so the output is identical for any worker count. A positional integer
//! overrides the PTA propagation budget.

use mujs_bench::{run_table1, run_table1_pooled, Table1Row, TABLE1_PTA_BUDGET};
use mujs_jobs::JobPool;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut budget = TABLE1_PTA_BUDGET;
    let mut workers = 1usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workers" => {
                i += 1;
                workers = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => {
                        eprintln!("usage: table1 [PTA_BUDGET] [--workers N]");
                        std::process::exit(2);
                    }
                };
            }
            other => match other.parse() {
                Ok(b) => budget = b,
                Err(_) => {
                    eprintln!("usage: table1 [PTA_BUDGET] [--workers N]");
                    std::process::exit(2);
                }
            },
        }
        i += 1;
    }

    println!("Table 1 reproduction — PTA budget {budget} propagations");
    println!("(✓ = completes within budget, ✗ = budget exceeded; parentheses: heap flushes of the dynamic analysis)");
    println!();
    println!(
        "{:<16} {:<12} {:<16} {:<16}   [PTA work: baseline / spec / detdom]",
        "jQuery-like", "Baseline", "Spec", "Spec+DetDOM"
    );
    let versions = mujs_corpus::jquery_like::all_versions();
    let labels: Vec<&'static str> = versions.iter().map(|v| v.version).collect();
    // A failing version (engine panic, parse error) degrades to one
    // reported row instead of aborting the whole table.
    let rows = if workers > 1 {
        run_table1_pooled(versions, budget, &JobPool::new(workers))
    } else {
        versions.iter().map(|v| run_table1(v, budget)).collect()
    };
    let mut failed = false;
    for (label, row) in labels.iter().zip(rows) {
        let row = match row {
            Ok(row) => row,
            Err(e) => {
                println!("{label:<16} {e}");
                failed = true;
                continue;
            }
        };
        println!(
            "{:<16} {:<12} {:<16} {:<16}   [{} / {} / {}]",
            row.version,
            Table1Row::cell(row.baseline_ok, None),
            Table1Row::cell(row.spec_ok, Some((row.spec_flushes, row.spec_capped))),
            Table1Row::cell(row.detdom_ok, Some((row.detdom_flushes, row.detdom_capped))),
            row.baseline_work,
            row.spec_work,
            row.detdom_work,
        );
    }
    println!();
    println!("Paper's Table 1 for reference:");
    println!("  1.0   ✗   ✓ (82)      ✓ (2)");
    println!("  1.1   ✗   ✗ (107)     ✓ (4)");
    println!("  1.2   ✓   ✓ (>1000)   ✓ (0)");
    println!("  1.3   ✗   ✗ (>1000)   ✗ (>1000)");
    if failed {
        std::process::exit(1);
    }
}
