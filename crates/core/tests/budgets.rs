//! Budget-exhaustion behavior: every early-stop path — step limit, flush
//! cap, wall-clock deadline, memory budget, cancellation — must end the
//! run with the matching [`AnalysisStatus`] while keeping the facts
//! collected before the stop sound (they combine conflict-free with a
//! full run of the same program).

use determinacy::driver::{AnalysisOutcome, DetHarness};
use determinacy::{supervised_analyze, AnalysisConfig, AnalysisStatus, FactDb, RunHooks};
use mujs_interp::context::ContextTable;

/// A program with a fact-producing straight-line prefix followed by a
/// long, allocation-heavy loop the budgets can interrupt.
const PREFIX_THEN_LOOP: &str = r#"
var early = 2 + 3;
var tag = "prefix";
for (var i = 0; i < 100000; i++) {
    var o = {};
    o.p = i;
}
var after = early + 1;
"#;

fn analyze(src: &str, cfg: AnalysisConfig) -> AnalysisOutcome {
    let mut h = DetHarness::from_src(src).expect("test program parses");
    h.analyze(cfg)
}

/// Absorbs all outcomes into one database, returning the number of
/// determinate-vs-determinate conflicts (sound runs must produce zero).
fn combine(outs: &[&AnalysisOutcome]) -> u64 {
    let mut db = FactDb::new(0);
    let mut master = ContextTable::new();
    let mut conflicts = 0;
    for o in outs {
        conflicts += db.absorb_reinterned(&o.facts, &o.ctxs, &mut master);
    }
    conflicts
}

/// The truncated run stopped with `expected` status, collected a
/// non-empty fact prefix, and that prefix agrees with the full run.
fn assert_sound_prefix(
    truncated: &AnalysisOutcome,
    full: &AnalysisOutcome,
    expected: AnalysisStatus,
) {
    assert_eq!(truncated.status, expected);
    assert!(
        !truncated.facts.is_empty(),
        "the {expected:?} stop should keep the prefix facts"
    );
    assert_eq!(full.status, AnalysisStatus::Completed);
    assert_eq!(
        combine(&[truncated, full]),
        0,
        "prefix facts must not conflict with the full run"
    );
}

#[test]
fn step_limit_preserves_sound_prefix() {
    let cut = analyze(
        PREFIX_THEN_LOOP,
        AnalysisConfig {
            max_steps: 200,
            ..Default::default()
        },
    );
    let full = analyze(PREFIX_THEN_LOOP, AnalysisConfig::default());
    assert_sound_prefix(&cut, &full, AnalysisStatus::StepLimit);
}

#[test]
fn flush_cap_preserves_sound_prefix() {
    // `__opaque()` forces heap flushes; a tiny cap stops the run early.
    let src = r#"
var early = 2 + 3;
for (var i = 0; i < 100; i++) { __opaque(); }
var after = 1;
"#;
    let cut = analyze(
        src,
        AnalysisConfig {
            flush_cap: Some(5),
            ..Default::default()
        },
    );
    let full = analyze(src, AnalysisConfig::default());
    assert_sound_prefix(&cut, &full, AnalysisStatus::FlushCapReached);
}

#[test]
fn tight_deadline_returns_deadline_not_hang() {
    // An already-elapsed deadline: the machine must stop at the first
    // poll (after `poll_interval` statements, so the prefix still runs)
    // instead of hanging or panicking.
    let cut = analyze(
        PREFIX_THEN_LOOP,
        AnalysisConfig {
            deadline_ms: Some(0),
            poll_interval: 64,
            ..Default::default()
        },
    );
    let full = analyze(PREFIX_THEN_LOOP, AnalysisConfig::default());
    assert_sound_prefix(&cut, &full, AnalysisStatus::Deadline);
}

#[test]
fn mem_cell_budget_preserves_sound_prefix() {
    let cut = analyze(
        PREFIX_THEN_LOOP,
        AnalysisConfig {
            mem_cell_budget: Some(50),
            poll_interval: 8,
            ..Default::default()
        },
    );
    let full = analyze(PREFIX_THEN_LOOP, AnalysisConfig::default());
    assert_sound_prefix(&cut, &full, AnalysisStatus::MemLimit);
}

#[test]
fn cancellation_stops_with_sound_prefix() {
    let hooks = RunHooks::supervised();
    hooks.cancel.as_ref().expect("supervised hooks").cancel();
    let mut h = DetHarness::from_src(PREFIX_THEN_LOOP).expect("test program parses");
    let cut = supervised_analyze(
        &mut h,
        AnalysisConfig {
            poll_interval: 64,
            ..Default::default()
        },
        &hooks,
    )
    .expect("cancellation is a stop, not a failure");
    let full = analyze(PREFIX_THEN_LOOP, AnalysisConfig::default());
    assert_sound_prefix(&cut, &full, AnalysisStatus::Cancelled);
}

#[test]
fn deadline_zero_poll_every_statement_still_terminates() {
    // The most aggressive polling configuration must not break the run
    // loop's error handling.
    let out = analyze(
        PREFIX_THEN_LOOP,
        AnalysisConfig {
            deadline_ms: Some(0),
            poll_interval: 1,
            ..Default::default()
        },
    );
    assert_eq!(out.status, AnalysisStatus::Deadline);
}
