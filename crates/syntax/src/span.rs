//! Source positions and spans.
//!
//! Every AST node carries a [`Span`] pointing back into the original source
//! text. Spans survive lowering into the IR, so determinacy facts can be
//! reported against source lines, mirroring the `J e K 16→4` notation of the
//! paper.

use std::fmt;

/// A half-open byte range `[start, end)` into a source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    pub fn new(start: u32, end: u32) -> Self {
        Span { start, end }
    }

    /// The empty span at offset zero, used for synthesized nodes.
    pub fn synthetic() -> Self {
        Span { start: 0, end: 0 }
    }

    /// Returns the smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Whether this span is the synthetic (zero-length at origin) span.
    pub fn is_synthetic(self) -> bool {
        self.start == 0 && self.end == 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A line/column position (both 1-based) resolved from a [`Span`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes).
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A source file together with a precomputed line index.
///
/// # Examples
///
/// ```
/// use mujs_syntax::span::{SourceFile, Span};
/// let sf = SourceFile::new("test.js", "var x = 1;\nvar y = 2;");
/// assert_eq!(sf.line_col(Span::new(11, 14)).line, 2);
/// ```
#[derive(Debug, Clone)]
pub struct SourceFile {
    name: String,
    text: String,
    line_starts: Vec<u32>,
}

impl SourceFile {
    /// Creates a source file and indexes its line starts.
    pub fn new(name: impl Into<String>, text: impl Into<String>) -> Self {
        let text = text.into();
        let mut line_starts = vec![0u32];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        SourceFile {
            name: name.into(),
            text,
            line_starts,
        }
    }

    /// The file name supplied at construction.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The full source text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Resolves the start of `span` to a 1-based line/column pair.
    pub fn line_col(&self, span: Span) -> LineCol {
        let pos = span.start;
        let line_idx = match self.line_starts.binary_search(&pos) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol {
            line: line_idx as u32 + 1,
            col: pos - self.line_starts[line_idx] + 1,
        }
    }

    /// Returns the source text covered by `span`.
    ///
    /// # Panics
    ///
    /// Panics if the span is out of bounds or not on a char boundary.
    pub fn snippet(&self, span: Span) -> &str {
        &self.text[span.start as usize..span.end as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.to(b), Span::new(3, 12));
        assert_eq!(b.to(a), Span::new(3, 12));
    }

    #[test]
    fn line_col_resolution() {
        let sf = SourceFile::new("t.js", "ab\ncd\nef");
        assert_eq!(sf.line_col(Span::new(0, 1)), LineCol { line: 1, col: 1 });
        assert_eq!(sf.line_col(Span::new(3, 4)), LineCol { line: 2, col: 1 });
        assert_eq!(sf.line_col(Span::new(7, 8)), LineCol { line: 3, col: 2 });
    }

    #[test]
    fn snippet_extracts_text() {
        let sf = SourceFile::new("t.js", "var x = 42;");
        assert_eq!(sf.snippet(Span::new(8, 10)), "42");
    }

    #[test]
    fn synthetic_span_detected() {
        assert!(Span::synthetic().is_synthetic());
        assert!(!Span::new(0, 1).is_synthetic());
    }
}
