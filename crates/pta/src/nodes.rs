//! Abstract objects and pointer nodes of the points-to analysis.

use mujs_ir::{FuncId, StmtId, Sym};

/// An abstract heap object.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AbsObj {
    /// Objects allocated at a site (`{}`/`[]`/object literal/`new F`
    /// result/`arguments` array materialized per site).
    Alloc(StmtId),
    /// The closure value(s) of a function (context-insensitive).
    Closure(FuncId),
    /// The implicit `.prototype` object created with each function.
    ProtoOf(FuncId),
    /// The global (`window`) object.
    Global,
    /// Everything the analysis does not model: native functions and their
    /// results, DOM values, `eval` results.
    Opaque,
}

impl AbsObj {
    /// Whether calling this object can be resolved to user code.
    pub fn as_closure(&self) -> Option<FuncId> {
        match self {
            AbsObj::Closure(f) => Some(*f),
            _ => None,
        }
    }
}

/// A pointer node (holds a points-to set).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Node {
    /// A frame temporary of a function.
    Temp(FuncId, u32),
    /// A named local, resolved to its declaring function.
    Local(FuncId, Sym),
    /// A named property of an abstract object (globals are
    /// `Prop(Global, name)`).
    Prop(AbsObj, Sym),
    /// Join of all statically-named properties of an object (feeds
    /// dynamic *reads*).
    StarProps(AbsObj),
    /// Values stored under unknown names (feeds *all* reads).
    UnknownProps(AbsObj),
    /// The synthetic variable holding an object's prototype chain parents.
    ProtoVar(AbsObj),
    /// A function's return value.
    Ret(FuncId),
    /// A function's `this`.
    This(FuncId),
    /// The pool of thrown values (coarse exception modeling).
    ExcPool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_extraction() {
        assert_eq!(AbsObj::Closure(FuncId(3)).as_closure(), Some(FuncId(3)));
        assert_eq!(AbsObj::Global.as_closure(), None);
    }

    #[test]
    fn nodes_are_hashable_keys() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Node::Temp(FuncId(0), 1));
        s.insert(Node::Prop(AbsObj::Global, Sym(42)));
        s.insert(Node::Prop(AbsObj::Global, Sym(42)));
        assert_eq!(s.len(), 2);
    }
}
