//! The structured three-address IR (the paper's µJS, Figure 5, plus "a
//! small number of additional statement forms", §4).
//!
//! Expressions are flattened into three-address instructions over
//! [`Place`]s, but control flow stays structured (`if`/`loop`/`try`) because
//! the instrumented semantics needs the lexical extent of branches to
//! compute write domains (`vd`/`pd`) and to roll back counterfactual
//! execution.
//!
//! All identifiers and static property keys are interned [`Sym`]s; the
//! owning [`Program`] carries the [`Interner`] that resolves them back to
//! strings. Statically resolvable variable references are additionally
//! rewritten to [`Place::Slot`] coordinates by [`crate::slots`], so the
//! interpreters index activation frames directly instead of hashing names.

use crate::intern::{Interner, Sym};
use mujs_syntax::ast::Lit;
use mujs_syntax::span::Span;
use std::fmt;
use std::rc::Rc;

/// Index of a function within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Index of a temporary slot within a function's frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TempId(pub u32);

impl fmt::Display for TempId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// Program-wide statement identifier; doubles as the *program point* that
/// determinacy facts are attached to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StmtId(pub u32);

impl fmt::Display for StmtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A readable/writable location: a frame temporary, a named variable, or
/// a statically resolved variable slot.
///
/// Temporaries are invisible to closures and `eval`, so they can be stored
/// in a flat per-activation array. Named variables go through the scope
/// chain at runtime. `Slot` places are named variables whose binding was
/// resolved at lowering time ([`crate::slots`]): `hops` enclosing function
/// activations up, then a direct index into that activation's locals —
/// no name comparison at all.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Place {
    /// A frame-local temporary.
    Temp(TempId),
    /// A named variable, resolved through the scope chain.
    Named(Sym),
    /// A named variable with a statically resolved coordinate.
    Slot {
        /// How many *function* activations to walk up (0 = the current
        /// function's own activation; catch scopes don't count).
        hops: u32,
        /// Index into the target activation's local slots.
        slot: u32,
        /// The original name — kept for write-domain identity, fact
        /// values, and diagnostics.
        sym: Sym,
    },
}

impl Place {
    /// The variable name behind this place, if it is a variable
    /// (`Named` or `Slot`). Slot places canonicalize to their name so
    /// write-domain identity is unaffected by resolution.
    pub fn as_var_sym(&self) -> Option<Sym> {
        match self {
            Place::Temp(_) => None,
            Place::Named(s) => Some(*s),
            Place::Slot { sym, .. } => Some(*sym),
        }
    }
}

/// A property key in a load/store: statically known or computed.
///
/// The specializer's "making dynamic property accesses static" rewrite
/// (§5.1) turns `Dynamic` keys with determinate string facts into `Static`
/// ones.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PropKey {
    /// `o.name` — the name is fixed.
    Static(Sym),
    /// `o[k]` — the name is the string coercion of the place's value.
    Dynamic(Place),
}

/// Binary operators on primitive values (`PrimOp` of Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+` (addition or string concatenation)
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    NotEq,
    /// `===`
    StrictEq,
    /// `!==`
    StrictNotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `>>>`
    UShr,
}

impl BinOp {
    /// Source text of the operator.
    pub fn as_str(self) -> &'static str {
        use BinOp::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Rem => "%",
            Eq => "==",
            NotEq => "!=",
            StrictEq => "===",
            StrictNotEq => "!==",
            Lt => "<",
            LtEq => "<=",
            Gt => ">",
            GtEq => ">=",
            BitAnd => "&",
            BitOr => "|",
            BitXor => "^",
            Shl => "<<",
            Shr => ">>",
            UShr => ">>>",
        }
    }
}

/// Unary operators on primitive values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `+` (numeric coercion)
    Pos,
    /// `!`
    Not,
    /// `~`
    BitNot,
    /// `typeof`
    Typeof,
    /// `void`
    Void,
}

impl UnOp {
    /// Source text of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Pos => "+",
            UnOp::Not => "!",
            UnOp::BitNot => "~",
            UnOp::Typeof => "typeof",
            UnOp::Void => "void",
        }
    }
}

/// A sequence of statements.
pub type Block = Vec<Stmt>;

/// A statement with its program point and source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// The program point.
    pub id: StmtId,
    /// The originating source span.
    pub span: Span,
    /// The statement's shape.
    pub kind: StmtKind,
}

/// The statement forms of the IR.
///
/// The first group mirrors µJS's simple statements (Figure 5); the second
/// group is the structured control flow; the third covers the "additional
/// statement forms" needed for full JavaScript (§4).
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    // ----- µJS simple statements ---------------------------------------
    /// `x = pv` — literal load.
    Const {
        /// Destination.
        dst: Place,
        /// The literal.
        lit: Lit,
    },
    /// `x = y` — variable copy.
    Copy {
        /// Destination.
        dst: Place,
        /// Source.
        src: Place,
    },
    /// `x = fun(..){..}` — closure creation.
    Closure {
        /// Destination.
        dst: Place,
        /// The function being closed over the current scope.
        func: FuncId,
    },
    /// `x = {}` — record creation (also used for object literals; array
    /// literals set `is_array`).
    NewObject {
        /// Destination.
        dst: Place,
        /// Whether the object is an array (gets a `length` property and
        /// array coercion behavior).
        is_array: bool,
    },
    /// `x = y[z]` — property load (walks the prototype chain).
    GetProp {
        /// Destination.
        dst: Place,
        /// Receiver.
        obj: Place,
        /// Property key.
        key: PropKey,
    },
    /// `x[y] = z` — property store.
    SetProp {
        /// Receiver.
        obj: Place,
        /// Property key.
        key: PropKey,
        /// Stored value.
        val: Place,
    },
    /// `x = delete y[z]`.
    DeleteProp {
        /// Destination (receives `true`).
        dst: Place,
        /// Receiver.
        obj: Place,
        /// Property key.
        key: PropKey,
    },
    /// `x = y ⊕ z` — primitive operator.
    BinOp {
        /// Destination.
        dst: Place,
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Place,
        /// Right operand.
        rhs: Place,
    },
    /// `x = ⊖ y` — unary primitive operator.
    UnOp {
        /// Destination.
        dst: Place,
        /// The operator.
        op: UnOp,
        /// Operand.
        src: Place,
    },
    /// `x = f(y, ...)` — function call; `this_arg` carries the receiver
    /// for method calls.
    Call {
        /// Destination for the return value.
        dst: Place,
        /// The callee value.
        callee: Place,
        /// Receiver bound to `this` in the callee (global object if
        /// `None`).
        this_arg: Option<Place>,
        /// Argument values.
        args: Vec<Place>,
    },
    /// `x = new F(y, ...)` — constructor call.
    New {
        /// Destination for the constructed object.
        dst: Place,
        /// The constructor value.
        callee: Place,
        /// Argument values.
        args: Vec<Place>,
    },

    // ----- structured control flow --------------------------------------
    /// `if (x) { .. } else { .. }`.
    If {
        /// The condition place (tested for truthiness).
        cond: Place,
        /// Taken when truthy.
        then_blk: Block,
        /// Taken when falsy (empty for one-armed ifs).
        else_blk: Block,
    },
    /// A general loop: evaluate `cond_blk` then test `cond`; run `body`;
    /// run `update` (the `for`-loop update clause, also the target of
    /// `continue`); repeat.
    Loop {
        /// Instructions recomputing the condition each iteration.
        cond_blk: Block,
        /// The condition place.
        cond: Place,
        /// The loop body.
        body: Block,
        /// Update clause run after the body (and after `continue`).
        update: Block,
        /// `false` for `do..while`: the first iteration skips the test.
        check_cond_first: bool,
    },
    /// A block that `break` exits (used to desugar `switch`).
    Breakable {
        /// The body.
        body: Block,
    },
    /// `try { .. } catch (x) { .. } finally { .. }`.
    Try {
        /// The protected block.
        block: Block,
        /// Catch clause: bound name and handler.
        catch: Option<(Sym, Block)>,
        /// Finally clause.
        finally: Option<Block>,
    },

    // ----- abrupt completions -------------------------------------------
    /// `return x?`.
    Return {
        /// Returned value (`undefined` if absent).
        arg: Option<Place>,
    },
    /// `break` out of the nearest `Loop`/`Breakable`.
    Break,
    /// `continue` the nearest `Loop`.
    Continue,
    /// `throw x`.
    Throw {
        /// The thrown value.
        arg: Place,
    },

    // ----- additional statement forms (§4) --------------------------------
    /// `x = this`.
    LoadThis {
        /// Destination.
        dst: Place,
    },
    /// `x = typeof name` where `name` may be unbound (no ReferenceError).
    TypeofName {
        /// Destination.
        dst: Place,
        /// The possibly-unbound name (always resolved by name at runtime).
        name: Sym,
    },
    /// `x = y in z` — property-existence test along the prototype chain.
    HasProp {
        /// Destination.
        dst: Place,
        /// Key operand (coerced to string).
        key: Place,
        /// Receiver.
        obj: Place,
    },
    /// `x = y instanceof F` — prototype-chain walk.
    InstanceOf {
        /// Destination.
        dst: Place,
        /// The tested value.
        val: Place,
        /// The constructor.
        ctor: Place,
    },
    /// `x = ownKeys(y)` — snapshot of enumerable own+inherited property
    /// names as a fresh array; used to desugar `for-in`.
    EnumProps {
        /// Destination (an array of strings).
        dst: Place,
        /// The enumerated object.
        obj: Place,
    },
    /// `x = eval(y)` — *direct* eval in the current scope. Indirect calls
    /// to the `eval` value go through a native and evaluate globally.
    Eval {
        /// Destination.
        dst: Place,
        /// The code string.
        arg: Place,
    },
}

impl StmtKind {
    /// Visits every [`Place`] appearing directly in this statement,
    /// including the inner place of a [`PropKey::Dynamic`] key and the
    /// condition places of `If`/`Loop` — but *not* the places of
    /// statements nested inside child blocks (pair with
    /// [`Program::walk_block`] for those).
    ///
    /// Destination places are visited too: a "place" here is a syntactic
    /// operand slot, not a read. Static consumers that need the
    /// read/write split use [`crate::vd::write_domain`] for writes.
    pub fn for_each_place<'a>(&'a self, visit: &mut dyn FnMut(&'a Place)) {
        use StmtKind::*;
        let key = |k: &'a PropKey, visit: &mut dyn FnMut(&'a Place)| {
            if let PropKey::Dynamic(p) = k {
                visit(p);
            }
        };
        match self {
            Const { dst, .. }
            | NewObject { dst, .. }
            | Closure { dst, .. }
            | LoadThis { dst }
            | TypeofName { dst, .. } => visit(dst),
            Copy { dst, src } | UnOp { dst, src, .. } => {
                visit(dst);
                visit(src);
            }
            BinOp { dst, lhs, rhs, .. } => {
                visit(dst);
                visit(lhs);
                visit(rhs);
            }
            GetProp { dst, obj, key: k } | DeleteProp { dst, obj, key: k } => {
                visit(dst);
                visit(obj);
                key(k, visit);
            }
            SetProp { obj, key: k, val } => {
                visit(obj);
                key(k, visit);
                visit(val);
            }
            Call {
                dst,
                callee,
                this_arg,
                args,
            } => {
                visit(dst);
                visit(callee);
                if let Some(t) = this_arg {
                    visit(t);
                }
                for a in args {
                    visit(a);
                }
            }
            New { dst, callee, args } => {
                visit(dst);
                visit(callee);
                for a in args {
                    visit(a);
                }
            }
            If { cond, .. } => visit(cond),
            Loop { cond, .. } => visit(cond),
            Breakable { .. } | Try { .. } | Break | Continue => {}
            Return { arg } => {
                if let Some(a) = arg {
                    visit(a);
                }
            }
            Throw { arg } => visit(arg),
            HasProp { dst, key: k, obj } => {
                visit(dst);
                visit(k);
                visit(obj);
            }
            InstanceOf { dst, val, ctor } => {
                visit(dst);
                visit(val);
                visit(ctor);
            }
            EnumProps { dst, obj } | Eval { dst, arg: obj } => {
                visit(dst);
                visit(obj);
            }
        }
    }

    /// Mutable counterpart of [`StmtKind::for_each_place`], visiting the
    /// same operand slots in the same order.
    pub fn for_each_place_mut(&mut self, visit: &mut dyn FnMut(&mut Place)) {
        use StmtKind::*;
        let key = |k: &mut PropKey, visit: &mut dyn FnMut(&mut Place)| {
            if let PropKey::Dynamic(p) = k {
                visit(p);
            }
        };
        match self {
            Const { dst, .. }
            | NewObject { dst, .. }
            | Closure { dst, .. }
            | LoadThis { dst }
            | TypeofName { dst, .. } => visit(dst),
            Copy { dst, src } | UnOp { dst, src, .. } => {
                visit(dst);
                visit(src);
            }
            BinOp { dst, lhs, rhs, .. } => {
                visit(dst);
                visit(lhs);
                visit(rhs);
            }
            GetProp { dst, obj, key: k } | DeleteProp { dst, obj, key: k } => {
                visit(dst);
                visit(obj);
                key(k, visit);
            }
            SetProp { obj, key: k, val } => {
                visit(obj);
                key(k, visit);
                visit(val);
            }
            Call {
                dst,
                callee,
                this_arg,
                args,
            } => {
                visit(dst);
                visit(callee);
                if let Some(t) = this_arg {
                    visit(t);
                }
                for a in args {
                    visit(a);
                }
            }
            New { dst, callee, args } => {
                visit(dst);
                visit(callee);
                for a in args {
                    visit(a);
                }
            }
            If { cond, .. } => visit(cond),
            Loop { cond, .. } => visit(cond),
            Breakable { .. } | Try { .. } | Break | Continue => {}
            Return { arg } => {
                if let Some(a) = arg {
                    visit(a);
                }
            }
            Throw { arg } => visit(arg),
            HasProp { dst, key: k, obj } => {
                visit(dst);
                visit(k);
                visit(obj);
            }
            InstanceOf { dst, val, ctor } => {
                visit(dst);
                visit(val);
                visit(ctor);
            }
            EnumProps { dst, obj } | Eval { dst, arg: obj } => {
                visit(dst);
                visit(obj);
            }
        }
    }
}

/// Variables that carry a function's scope: parameters, `var`-declared
/// names, and hoisted function declarations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Decls {
    /// `var`-declared names (in declaration order, deduplicated).
    pub vars: Vec<Sym>,
    /// Hoisted function declarations, bound at activation entry.
    pub funcs: Vec<(Sym, FuncId)>,
}

/// What kind of code a [`Function`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuncKind {
    /// The top-level script (runs in the global scope).
    Script,
    /// An ordinary function.
    Function,
    /// A chunk produced by `eval`: has no scope of its own — its `var`
    /// declarations belong to the nearest enclosing function.
    EvalChunk,
}

/// A lowered function.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Its id in the owning [`Program`].
    pub id: FuncId,
    /// Source-level name, if any.
    pub name: Option<Sym>,
    /// Parameter names.
    pub params: Vec<Sym>,
    /// Hoisted declarations.
    pub decls: Decls,
    /// Number of temporary slots the frame needs.
    pub n_temps: u32,
    /// The body.
    pub body: Block,
    /// Source span of the whole function.
    pub span: Span,
    /// What kind of code this is.
    pub kind: FuncKind,
    /// The lexically enclosing function (`None` for the entry script).
    pub parent: Option<FuncId>,
    /// For named function expressions: bind `name` to the closure itself
    /// inside the activation.
    pub bind_self: bool,
    /// For clones made by the specializer: the original function.
    pub specialized_from: Option<FuncId>,
    /// The activation's local slot layout, in slot order: params,
    /// `arguments`, the self-binding (if any), hoisted function names,
    /// then `var`s — deduplicated keeping the first occurrence. Empty
    /// for scripts and eval chunks, which have no activation of their
    /// own. Computed by [`crate::slots::resolve_slots`].
    pub locals: Vec<Sym>,
    /// Whether the body contains a *direct* `eval` statement (which can
    /// introduce bindings invisible to static resolution). Computed by
    /// [`crate::slots::resolve_slots`].
    pub has_direct_eval: bool,
}

impl Function {
    /// The slot index of a local, if `sym` is one of this function's
    /// locals. Linear scan: locals lists are short and syms compare as
    /// `u32`s.
    pub fn local_slot(&self, sym: Sym) -> Option<u32> {
        self.locals.iter().position(|&l| l == sym).map(|i| i as u32)
    }
}

/// Side-table entry for a statement id.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StmtInfo {
    /// The statement's source span.
    pub span: Span,
    /// The function containing the statement.
    pub func: FuncId,
    /// Dense index of the statement within its function (assignment
    /// order). Per-frame occurrence counters index a flat vector with
    /// this instead of hashing the global `StmtId`.
    pub local: u32,
}

/// A whole lowered program: an arena of functions plus statement
/// side-tables. Functions may be appended after initial lowering (by
/// `eval` at runtime, or by the specializer).
///
/// Functions are stored behind `Rc` so the interpreters can keep the
/// function they are executing alive for O(1) instead of deep-cloning
/// its body on every call; the specializer mutates via
/// [`Program::func_mut`] (copy-on-write).
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// All functions; `FuncId` indexes into this.
    pub funcs: Vec<Rc<Function>>,
    /// Per-statement info; `StmtId` indexes into this.
    pub stmt_info: Vec<StmtInfo>,
    /// The symbol table resolving every [`Sym`] in the program.
    pub interner: Interner,
    /// Per-function statement counts (the next `StmtInfo::local` index).
    func_stmts: Vec<u32>,
}

impl Program {
    /// Creates an empty program (with the well-known names pre-interned).
    pub fn new() -> Self {
        Program::default()
    }

    /// The entry function (the first one lowered), if any.
    pub fn entry(&self) -> Option<FuncId> {
        if self.funcs.is_empty() {
            None
        } else {
            Some(FuncId(0))
        }
    }

    /// Looks up a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.0 as usize]
    }

    /// A shared handle to a function — what the machines hold while
    /// executing it (an O(1) clone).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn func_rc(&self, id: FuncId) -> Rc<Function> {
        Rc::clone(&self.funcs[id.0 as usize])
    }

    /// Mutable access to a function (copy-on-write if the machines hold
    /// a live handle to it).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        Rc::make_mut(&mut self.funcs[id.0 as usize])
    }

    /// Source span of a statement.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn span_of(&self, id: StmtId) -> Span {
        self.stmt_info[id.0 as usize].span
    }

    /// The function containing a statement.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn func_of(&self, id: StmtId) -> FuncId {
        self.stmt_info[id.0 as usize].func
    }

    /// Dense within-function index of a statement.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn local_of(&self, id: StmtId) -> u32 {
        self.stmt_info[id.0 as usize].local
    }

    /// Number of statements allocated to `func` so far — the size a
    /// per-frame dense occurrence vector needs.
    pub fn stmt_count_of(&self, func: FuncId) -> u32 {
        self.func_stmts.get(func.0 as usize).copied().unwrap_or(0)
    }

    /// Allocates a fresh statement id.
    pub fn fresh_stmt(&mut self, span: Span, func: FuncId) -> StmtId {
        let id = StmtId(self.stmt_info.len() as u32);
        let fidx = func.0 as usize;
        if self.func_stmts.len() <= fidx {
            self.func_stmts.resize(fidx + 1, 0);
        }
        let local = self.func_stmts[fidx];
        self.func_stmts[fidx] += 1;
        self.stmt_info.push(StmtInfo { span, func, local });
        id
    }

    /// Reserves a function id; the caller fills the slot via
    /// [`Program::set_func`].
    pub fn reserve_func(&mut self) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(Rc::new(Function {
            id,
            name: None,
            params: Vec::new(),
            decls: Decls::default(),
            n_temps: 0,
            body: Vec::new(),
            span: Span::synthetic(),
            kind: FuncKind::Function,
            parent: None,
            bind_self: false,
            specialized_from: None,
            locals: Vec::new(),
            has_direct_eval: false,
        }));
        if self.func_stmts.len() <= id.0 as usize {
            self.func_stmts.resize(id.0 as usize + 1, 0);
        }
        id
    }

    /// Replaces a reserved slot with its real function.
    ///
    /// # Panics
    ///
    /// Panics if `f.id` does not name a reserved slot.
    pub fn set_func(&mut self, f: Function) {
        let idx = f.id.0 as usize;
        self.funcs[idx] = Rc::new(f);
    }

    /// Total number of statements lowered so far.
    pub fn stmt_count(&self) -> usize {
        self.stmt_info.len()
    }

    /// Iterates over all statements of a block tree, depth-first, without
    /// descending into other functions.
    pub fn walk_block<'a>(block: &'a [Stmt], visit: &mut dyn FnMut(&'a Stmt)) {
        for s in block {
            visit(s);
            match &s.kind {
                StmtKind::If {
                    then_blk, else_blk, ..
                } => {
                    Self::walk_block(then_blk, visit);
                    Self::walk_block(else_blk, visit);
                }
                StmtKind::Loop {
                    cond_blk,
                    body,
                    update,
                    ..
                } => {
                    Self::walk_block(cond_blk, visit);
                    Self::walk_block(body, visit);
                    Self::walk_block(update, visit);
                }
                StmtKind::Breakable { body } => Self::walk_block(body, visit),
                StmtKind::Try {
                    block,
                    catch,
                    finally,
                } => {
                    Self::walk_block(block, visit);
                    if let Some((_, b)) = catch {
                        Self::walk_block(b, visit);
                    }
                    if let Some(b) = finally {
                        Self::walk_block(b, visit);
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_stmt_ids_are_sequential() {
        let mut p = Program::new();
        let f = p.reserve_func();
        let a = p.fresh_stmt(Span::synthetic(), f);
        let b = p.fresh_stmt(Span::synthetic(), f);
        assert_eq!(a, StmtId(0));
        assert_eq!(b, StmtId(1));
        assert_eq!(p.func_of(b), f);
    }

    #[test]
    fn local_indices_are_dense_per_function() {
        let mut p = Program::new();
        let f = p.reserve_func();
        let g = p.reserve_func();
        let a = p.fresh_stmt(Span::synthetic(), f);
        let b = p.fresh_stmt(Span::synthetic(), g);
        let c = p.fresh_stmt(Span::synthetic(), f);
        assert_eq!(p.local_of(a), 0);
        assert_eq!(p.local_of(b), 0);
        assert_eq!(p.local_of(c), 1);
        assert_eq!(p.stmt_count_of(f), 2);
        assert_eq!(p.stmt_count_of(g), 1);
    }

    #[test]
    fn walk_visits_nested_statements() {
        let mut p = Program::new();
        let f = p.reserve_func();
        let mk = |p: &mut Program, kind| Stmt {
            id: p.fresh_stmt(Span::synthetic(), f),
            span: Span::synthetic(),
            kind,
        };
        let inner = mk(
            &mut p,
            StmtKind::Const {
                dst: Place::Temp(TempId(0)),
                lit: mujs_syntax::ast::Lit::Num(1.0),
            },
        );
        let iff = mk(
            &mut p,
            StmtKind::If {
                cond: Place::Temp(TempId(0)),
                then_blk: vec![inner],
                else_blk: vec![],
            },
        );
        let block = vec![iff];
        let mut seen = 0;
        Program::walk_block(&block, &mut |_| seen += 1);
        assert_eq!(seen, 2);
    }

    #[test]
    fn func_mut_is_copy_on_write() {
        let mut p = Program::new();
        let f = p.reserve_func();
        let held = p.func_rc(f);
        p.func_mut(f).n_temps = 7;
        assert_eq!(held.n_temps, 0, "live handle must not see the mutation");
        assert_eq!(p.func(f).n_temps, 7);
    }
}
