//! Scheduler determinism and cancellation: the two batch-level guarantees
//! the job subsystem makes on top of the per-run supervisor.
//!
//! * **Determinism** — a mixed-corpus manifest produces a byte-identical
//!   report (merged facts included) with 1 worker and with N workers;
//!   the pooled seed fan-out merges identically to the sequential path.
//! * **Cancellation** — cancelling mid-batch keeps every completed job's
//!   outcome, stops the in-flight job cooperatively with its sound fact
//!   prefix (`AnalysisStatus::Cancelled`), and marks queued jobs as never
//!   started.
//!
//! CI runs this suite under `DETJOBS_TEST_WORKERS` ∈ {1, 8}; the
//! determinism tests always compare against a 1-worker baseline, so each
//! matrix leg checks a different schedule against the same bytes.

use determinacy::multirun::{analyze_many, export_json};
use determinacy::{AnalysisConfig, AnalysisStatus, DetHarness};
use mujs_jobs::{
    analyze_many_pooled, run_manifest, JobEvent, JobPool, JobSpec, JobStatus, Manifest,
};
use std::sync::mpsc::channel;

/// Worker count for the "parallel" side of determinism comparisons.
fn test_workers() -> usize {
    std::env::var("DETJOBS_TEST_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8)
}

/// A mixed corpus: branchy seeded programs, a corpus library version, and
/// eval benchmarks — enough shape diversity that scheduling bugs (wrong
/// combination order, cross-job state) would show up in the merged facts.
fn mixed_manifest() -> Manifest {
    let mut jobs = vec![
        JobSpec {
            seeds: Some(vec![1, 2, 3, 4]),
            ..JobSpec::new(
                "coin",
                "var coin = Math.random() < 0.5;\n\
                 var picked = 0;\n\
                 if (coin) { var a = 11; picked = 1; } else { var b = 22; picked = 2; }",
            )
        },
        JobSpec {
            seeds: Some(vec![7, 8]),
            ..JobSpec::new(
                "calls",
                "function id(v) { var echo = v; return echo; }\n\
                 id(1); id(1); id(2); var r = id(Math.random());",
            )
        },
        JobSpec::new("syntax-error", "var x = ;"),
    ];
    let (name, src) = mujs_corpus::jquery_like::named_sources().swap_remove(0);
    jobs.push(JobSpec::new(name, src));
    for (name, src) in mujs_corpus::evalbench::named_sources().into_iter().take(3) {
        jobs.push(JobSpec::new(name, src));
    }
    Manifest::new(jobs)
}

#[test]
fn one_worker_and_many_workers_produce_identical_reports() {
    let m = mixed_manifest();
    let sequential = run_manifest(&m, &JobPool::new(1));
    let parallel = run_manifest(&m, &JobPool::new(test_workers()));
    // Byte-identical merged fact report — the headline guarantee.
    assert_eq!(
        sequential.report_json(true),
        parallel.report_json(true),
        "batch report must not depend on worker count"
    );
    // And the structured view agrees job by job.
    assert_eq!(sequential.jobs.len(), parallel.jobs.len());
    for (a, b) in sequential.jobs.iter().zip(&parallel.jobs) {
        assert_eq!(a.name, b.name);
        match (&a.outcome, &b.outcome) {
            (Some(x), Some(y)) => {
                assert_eq!(x.multi.facts.len(), y.multi.facts.len(), "{}", a.name);
                assert_eq!(
                    x.multi.facts.det_count(),
                    y.multi.facts.det_count(),
                    "{}",
                    a.name
                );
                assert_eq!(x.export_facts_json(), y.export_facts_json(), "{}", a.name);
            }
            (None, None) => {}
            _ => panic!("{}: outcomes diverge between schedules", a.name),
        }
    }
    // The syntax-error job degrades, it does not poison the batch.
    let bad = &sequential.jobs[2];
    assert!(matches!(bad.status, JobStatus::Syntax(_)));
    assert_eq!(sequential.completed(), m.jobs.len() - 1);
}

#[test]
fn pooled_seed_fanout_matches_the_sequential_path() {
    let src = "var coin = Math.random() < 0.5;\n\
               if (coin) { var a = 11; } else { var b = 22; }\n\
               var tail = 5;";
    let seeds: Vec<u64> = (0..8).collect();
    let mut h = DetHarness::from_src(src).unwrap();
    let sequential = analyze_many(&mut h, &seeds, AnalysisConfig::default());
    let pooled = analyze_many_pooled(
        src,
        &seeds,
        AnalysisConfig::default(),
        None,
        &mujs_dom::events::EventPlan::new(),
        &JobPool::new(test_workers()),
    )
    .unwrap();
    assert_eq!(pooled.runs.len(), sequential.runs.len());
    assert_eq!(pooled.conflicts, 0);
    assert_eq!(pooled.facts.len(), sequential.facts.len());
    assert_eq!(pooled.facts.det_count(), sequential.facts.det_count());
    // Byte-identical export: combination happened in seed order even
    // though completion order was arbitrary.
    assert_eq!(
        export_json(&pooled.facts, &h.program, &h.source, &pooled.ctxs),
        export_json(&sequential.facts, &h.program, &h.source, &sequential.ctxs),
    );
}

#[test]
fn pooled_fanout_surfaces_parse_errors_eagerly() {
    let err = analyze_many_pooled(
        "var x = ;",
        &[1, 2],
        AnalysisConfig::default(),
        None,
        &mujs_dom::events::EventPlan::new(),
        &JobPool::new(2),
    );
    assert!(err.is_err());
}

/// Cancelling mid-batch: completed jobs keep their outcomes, the
/// in-flight job stops cooperatively with `AnalysisStatus::Cancelled`
/// (sound fact prefix intact), queued jobs never start.
#[test]
fn cancellation_preserves_completed_jobs_and_stops_in_flight_ones() {
    // Job 2 runs a long loop; jobs 0 and 1 are trivial. One worker makes
    // the schedule deterministic: 0 and 1 complete, 2 is in flight when
    // the cancel fires, 3 and 4 are still queued.
    let long_loop = "var i = 0;\n\
                     var sink = 0;\n\
                     while (i < 100000000) { i = i + 1; sink = sink + i; }";
    let m = Manifest::new(vec![
        JobSpec::new("done-0", "var a = 1 + 2;"),
        JobSpec::new("done-1", "var b = 3 * 4;"),
        JobSpec::new("in-flight", long_loop),
        JobSpec::new("queued-0", "var c = 5;"),
        JobSpec::new("queued-1", "var d = 6;"),
    ]);
    let (tx, rx) = channel();
    let pool = JobPool::new(1).with_events(tx);
    let token = pool.cancel_token();
    // Cancel as soon as the long job starts — event-driven, so the test
    // does not depend on timing.
    let watcher = std::thread::spawn(move || {
        for e in rx {
            if matches!(&e, JobEvent::Started { job: 2, .. }) {
                token.cancel();
            }
        }
    });
    let batch = run_manifest(&m, &pool);
    drop(pool);
    watcher.join().unwrap();

    // Completed jobs keep full outcomes.
    for i in [0usize, 1] {
        let j = &batch.jobs[i];
        assert!(matches!(j.status, JobStatus::Completed), "{:?}", j.status);
        let out = j.outcome.as_ref().unwrap();
        assert_eq!(out.multi.runs.len(), 1);
        assert_eq!(out.multi.runs[0].status, AnalysisStatus::Completed);
        assert!(out.multi.facts.det_count() > 0);
    }
    // The in-flight job reports Cancelled either way the race resolves:
    // the supervised run observed the token at a statement poll and
    // stopped with its sound prefix (`AnalysisStatus::Cancelled`), or the
    // token landed before the seed's run began and it short-circuited to
    // `RunFailure::Cancelled`. Both return promptly; neither is a normal
    // completion.
    let inflight = &batch.jobs[2];
    assert!(matches!(inflight.status, JobStatus::Completed));
    let out = inflight.outcome.as_ref().unwrap();
    let stopped_mid_run = out
        .multi
        .runs
        .first()
        .is_some_and(|r| r.status == AnalysisStatus::Cancelled);
    let stopped_before_run = out
        .multi
        .failures
        .iter()
        .any(|f| matches!(f, determinacy::RunFailure::Cancelled { .. }));
    assert!(
        stopped_mid_run || stopped_before_run,
        "in-flight job must report cancellation: {:?} / {:?}",
        out.multi.runs.iter().map(|r| &r.status).collect::<Vec<_>>(),
        out.multi.failures
    );
    // Queued jobs never started.
    for i in [3usize, 4] {
        assert!(
            matches!(batch.jobs[i].status, JobStatus::Cancelled),
            "job {i}: {:?}",
            batch.jobs[i].status
        );
        assert!(batch.jobs[i].outcome.is_none());
    }
}

/// A cancelled batch still renders a deterministic report (statuses and
/// completed facts; no timing data anywhere).
#[test]
fn cancelled_batches_report_cleanly() {
    let m = Manifest::new(vec![
        JobSpec::new("first", "var a = 1;"),
        JobSpec::new("second", "var b = 2;"),
    ]);
    let pool = JobPool::new(1);
    pool.cancel(); // cancel before anything starts
    let batch = run_manifest(&m, &pool);
    assert_eq!(batch.completed(), 0);
    let report = batch.report_json(true);
    assert!(report.contains("\"cancelled\""));
    // Cancellation is not a failure.
    assert!(!batch.has_failures());
}
