//! Lowering from the AST to the structured three-address IR.
//!
//! The translation performs `var`/function-declaration hoisting, flattens
//! expressions into temporaries, desugars `for`/`for-in`/`do-while` into
//! the unified [`StmtKind::Loop`] form, desugars `switch` into an
//! index-dispatch inside a [`StmtKind::Breakable`], and turns *direct*
//! calls to `eval` into the dedicated [`StmtKind::Eval`] statement (§4 of
//! the paper: "the program is first translated into a form similar to µJS
//! with a small number of additional statement forms").

use crate::ir::*;
use mujs_syntax::ast::{self, ExprKind, ForInit, Lit, MemberKey, StmtKind as AstStmt};
use mujs_syntax::span::Span;
use std::collections::HashSet;
use std::rc::Rc;

/// Lowers a parsed program into a fresh [`Program`] whose entry function
/// (id 0) is the top-level script.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), mujs_syntax::SyntaxError> {
/// let ast = mujs_syntax::parse("var x = 1; function f() { return x; }")?;
/// let prog = mujs_ir::lower::lower_program(&ast);
/// assert_eq!(prog.funcs.len(), 2); // script + f
/// # Ok(())
/// # }
/// ```
pub fn lower_program(ast: &ast::Program) -> Program {
    let mut prog = Program::new();
    lower_chunk(&mut prog, ast, FuncKind::Script, None);
    prog
}

/// Lowers a chunk (top-level script or `eval` code) into an existing
/// program, returning the new chunk's function id. `parent` is the
/// lexically enclosing function for eval chunks.
pub fn lower_chunk(
    prog: &mut Program,
    ast: &ast::Program,
    kind: FuncKind,
    parent: Option<FuncId>,
) -> FuncId {
    let from = prog.funcs.len();
    let id = prog.reserve_func();
    let mut cx = FuncCx::new(prog, id);
    let f = cx.lower_function_body(None, &[], &ast.body, Span::synthetic(), kind, parent, false);
    prog.set_func(f);
    crate::slots::resolve_slots(prog, from);
    id
}

struct FuncCx<'p> {
    prog: &'p mut Program,
    func: FuncId,
    n_temps: u32,
}

impl<'p> FuncCx<'p> {
    fn new(prog: &'p mut Program, func: FuncId) -> Self {
        FuncCx {
            prog,
            func,
            n_temps: 0,
        }
    }

    fn temp(&mut self) -> Place {
        let t = TempId(self.n_temps);
        self.n_temps += 1;
        Place::Temp(t)
    }

    fn sym(&mut self, name: &Rc<str>) -> crate::intern::Sym {
        self.prog.interner.intern_rc(name)
    }

    fn named(&mut self, name: &Rc<str>) -> Place {
        Place::Named(self.sym(name))
    }

    fn push(&mut self, out: &mut Block, span: Span, kind: StmtKind) -> StmtId {
        let id = self.prog.fresh_stmt(span, self.func);
        out.push(Stmt { id, span, kind });
        id
    }

    /// Fallback for AST shapes the parser is expected to never produce
    /// (e.g. a literal as an assignment target). Lowers to a thrown
    /// string so a malformed AST surfaces as a runtime error in the
    /// offending program rather than aborting the whole lowering pass.
    fn lower_malformed(&mut self, what: &str, span: Span, out: &mut Block) -> Place {
        let msg = self.temp();
        self.push(
            out,
            span,
            StmtKind::Const {
                dst: msg.clone(),
                lit: Lit::Str(Rc::from(format!("SyntaxError: {what}"))),
            },
        );
        self.push(out, span, StmtKind::Throw { arg: msg });
        // Unreachable at runtime, but callers need a value place.
        let t = self.temp();
        self.push(
            out,
            span,
            StmtKind::Const {
                dst: t.clone(),
                lit: Lit::Undefined,
            },
        );
        t
    }

    #[allow(clippy::too_many_arguments)]
    fn lower_function_body(
        &mut self,
        name: Option<Rc<str>>,
        params: &[Rc<str>],
        body: &[ast::Stmt],
        span: Span,
        kind: FuncKind,
        parent: Option<FuncId>,
        bind_self: bool,
    ) -> Function {
        // Pass 1: hoist `var`s and function declarations.
        let mut vars = Vec::new();
        let mut seen: HashSet<Rc<str>> = params.iter().cloned().collect();
        let mut fn_decls = Vec::new();
        hoist(body, &mut |decl| match decl {
            Hoisted::Var(n) => {
                if seen.insert(n.clone()) {
                    vars.push(n);
                }
            }
            Hoisted::Func(f) => fn_decls.push(f),
        });
        // Lower the hoisted function declarations first so calls before the
        // declaration site work.
        let mut funcs = Vec::new();
        for f in fn_decls {
            // The parser only hoists named declarations; skip (rather
            // than panic on) anything else so a malformed AST degrades to
            // "declaration has no effect".
            let Some(fname) = f.name.clone() else {
                continue;
            };
            let fid = self.lower_nested_function(&f);
            // Later declarations of the same name shadow earlier ones.
            funcs.retain(|(n, _): &(Rc<str>, FuncId)| *n != fname);
            funcs.push((fname.clone(), fid));
            if !seen.contains(&fname) {
                seen.insert(fname.clone());
            } else {
                vars.retain(|v| *v != fname);
            }
        }
        // Pass 2: lower the statements. Eval chunks reserve temp 0 for the
        // completion value (`eval` returns the value of the last expression
        // statement), initialized to `undefined`.
        let mut out = Vec::new();
        if kind == FuncKind::EvalChunk {
            let t0 = self.temp();
            debug_assert_eq!(t0, Place::Temp(TempId(0)));
            self.push(
                &mut out,
                span,
                StmtKind::Const {
                    dst: t0,
                    lit: mujs_syntax::ast::Lit::Undefined,
                },
            );
        }
        for s in body {
            if kind == FuncKind::EvalChunk {
                if let AstStmt::Expr(e) = &s.kind {
                    let p = self.expr(e, &mut out);
                    self.push(
                        &mut out,
                        e.span,
                        StmtKind::Copy {
                            dst: Place::Temp(TempId(0)),
                            src: p,
                        },
                    );
                    continue;
                }
            }
            self.stmt(s, &mut out);
        }
        let name = name.map(|n| self.sym(&n));
        let params: Vec<_> = params.iter().map(|p| self.sym(p)).collect();
        let vars: Vec<_> = vars.iter().map(|v| self.sym(v)).collect();
        let funcs: Vec<_> = funcs
            .iter()
            .map(|(n, id): &(Rc<str>, FuncId)| (self.sym(n), *id))
            .collect();
        Function {
            id: self.func,
            name,
            params,
            decls: Decls { vars, funcs },
            n_temps: self.n_temps,
            body: out,
            span,
            kind,
            parent,
            bind_self,
            specialized_from: None,
            // Filled in by the slot-resolution pass that runs after the
            // whole chunk is lowered.
            locals: Vec::new(),
            has_direct_eval: false,
        }
    }

    fn lower_nested_function(&mut self, f: &ast::Function) -> FuncId {
        let id = self.prog.reserve_func();
        let mut cx = FuncCx::new(self.prog, id);
        let bind_self = f.name.is_some();
        let lowered = cx.lower_function_body(
            f.name.clone(),
            &f.params,
            &f.body,
            f.span,
            FuncKind::Function,
            Some(self.func),
            bind_self,
        );
        self.prog.set_func(lowered);
        id
    }

    // ------------------------------------------------------------- stmts

    fn stmt(&mut self, s: &ast::Stmt, out: &mut Block) {
        let span = s.span;
        match &s.kind {
            AstStmt::Expr(e) => {
                self.expr(e, out);
            }
            AstStmt::Var(decls) => {
                for (name, init) in decls {
                    if let Some(e) = init {
                        let p = self.expr(e, out);
                        let dst = self.named(name);
                        self.push(out, e.span, StmtKind::Copy { dst, src: p });
                    }
                }
            }
            AstStmt::FunctionDecl(_) => {
                // Hoisted; nothing to do at the declaration site.
            }
            AstStmt::If(cond, then, els) => {
                let c = self.expr(cond, out);
                let mut then_blk = Vec::new();
                self.stmt(then, &mut then_blk);
                let mut else_blk = Vec::new();
                if let Some(e) = els {
                    self.stmt(e, &mut else_blk);
                }
                self.push(
                    out,
                    span,
                    StmtKind::If {
                        cond: c,
                        then_blk,
                        else_blk,
                    },
                );
            }
            AstStmt::While(cond, body) => {
                let mut cond_blk = Vec::new();
                let c = self.expr(cond, &mut cond_blk);
                let mut body_blk = Vec::new();
                self.stmt(body, &mut body_blk);
                self.push(
                    out,
                    span,
                    StmtKind::Loop {
                        cond_blk,
                        cond: c,
                        body: body_blk,
                        update: Vec::new(),
                        check_cond_first: true,
                    },
                );
            }
            AstStmt::DoWhile(body, cond) => {
                let mut cond_blk = Vec::new();
                let c = self.expr(cond, &mut cond_blk);
                let mut body_blk = Vec::new();
                self.stmt(body, &mut body_blk);
                self.push(
                    out,
                    span,
                    StmtKind::Loop {
                        cond_blk,
                        cond: c,
                        body: body_blk,
                        update: Vec::new(),
                        check_cond_first: false,
                    },
                );
            }
            AstStmt::For {
                init,
                test,
                update,
                body,
            } => {
                match init {
                    Some(ForInit::Var(decls)) => {
                        for (name, e) in decls {
                            if let Some(e) = e {
                                let p = self.expr(e, out);
                                let dst = self.named(name);
                                self.push(out, e.span, StmtKind::Copy { dst, src: p });
                            }
                        }
                    }
                    Some(ForInit::Expr(e)) => {
                        self.expr(e, out);
                    }
                    None => {}
                }
                let mut cond_blk = Vec::new();
                let c = match test {
                    Some(t) => self.expr(t, &mut cond_blk),
                    None => {
                        let t = self.temp();
                        self.push(
                            &mut cond_blk,
                            span,
                            StmtKind::Const {
                                dst: t.clone(),
                                lit: Lit::Bool(true),
                            },
                        );
                        t
                    }
                };
                let mut body_blk = Vec::new();
                self.stmt(body, &mut body_blk);
                let mut update_blk = Vec::new();
                if let Some(u) = update {
                    self.expr(u, &mut update_blk);
                }
                self.push(
                    out,
                    span,
                    StmtKind::Loop {
                        cond_blk,
                        cond: c,
                        body: body_blk,
                        update: update_blk,
                        check_cond_first: true,
                    },
                );
            }
            AstStmt::ForIn { var, obj, body, .. } => {
                // t_keys = ownKeys(obj); i = 0;
                // loop (i < t_keys.length) { var = t_keys[i]; body } { i++ }
                let po = self.expr(obj, out);
                let keys = self.temp();
                self.push(
                    out,
                    span,
                    StmtKind::EnumProps {
                        dst: keys.clone(),
                        obj: po,
                    },
                );
                let idx = self.temp();
                self.push(
                    out,
                    span,
                    StmtKind::Const {
                        dst: idx.clone(),
                        lit: Lit::Num(0.0),
                    },
                );
                let mut cond_blk = Vec::new();
                let len = self.temp();
                self.push(
                    &mut cond_blk,
                    span,
                    StmtKind::GetProp {
                        dst: len.clone(),
                        obj: keys.clone(),
                        key: PropKey::Static(crate::intern::Sym::LENGTH),
                    },
                );
                let c = self.temp();
                self.push(
                    &mut cond_blk,
                    span,
                    StmtKind::BinOp {
                        dst: c.clone(),
                        op: BinOp::Lt,
                        lhs: idx.clone(),
                        rhs: len,
                    },
                );
                let mut body_blk = Vec::new();
                let key = self.temp();
                self.push(
                    &mut body_blk,
                    span,
                    StmtKind::GetProp {
                        dst: key.clone(),
                        obj: keys,
                        key: PropKey::Dynamic(idx.clone()),
                    },
                );
                let dst = self.named(var);
                self.push(&mut body_blk, span, StmtKind::Copy { dst, src: key });
                self.stmt(body, &mut body_blk);
                let mut update_blk = Vec::new();
                let one = self.temp();
                self.push(
                    &mut update_blk,
                    span,
                    StmtKind::Const {
                        dst: one.clone(),
                        lit: Lit::Num(1.0),
                    },
                );
                self.push(
                    &mut update_blk,
                    span,
                    StmtKind::BinOp {
                        dst: idx.clone(),
                        op: BinOp::Add,
                        lhs: idx.clone(),
                        rhs: one,
                    },
                );
                self.push(
                    out,
                    span,
                    StmtKind::Loop {
                        cond_blk,
                        cond: c,
                        body: body_blk,
                        update: update_blk,
                        check_cond_first: true,
                    },
                );
            }
            AstStmt::Return(arg) => {
                let p = arg.as_ref().map(|e| self.expr(e, out));
                self.push(out, span, StmtKind::Return { arg: p });
            }
            AstStmt::Break => {
                self.push(out, span, StmtKind::Break);
            }
            AstStmt::Continue => {
                self.push(out, span, StmtKind::Continue);
            }
            AstStmt::Throw(e) => {
                let p = self.expr(e, out);
                self.push(out, span, StmtKind::Throw { arg: p });
            }
            AstStmt::Try {
                block,
                catch,
                finally,
            } => {
                let mut blk = Vec::new();
                for s in block {
                    self.stmt(s, &mut blk);
                }
                let catch = catch.as_ref().map(|(name, body)| {
                    let mut b = Vec::new();
                    for s in body {
                        self.stmt(s, &mut b);
                    }
                    (self.sym(name), b)
                });
                let finally = finally.as_ref().map(|body| {
                    let mut b = Vec::new();
                    for s in body {
                        self.stmt(s, &mut b);
                    }
                    b
                });
                self.push(
                    out,
                    span,
                    StmtKind::Try {
                        block: blk,
                        catch,
                        finally,
                    },
                );
            }
            AstStmt::Switch(disc, cases) => self.switch(disc, cases, span, out),
            AstStmt::Block(body) => {
                for s in body {
                    self.stmt(s, out);
                }
            }
            AstStmt::Empty => {}
        }
    }

    /// Desugars `switch` into: compute the matching arm index (lazily
    /// evaluating case tests in order), then run all arms from that index
    /// on (fall-through) inside a `Breakable`.
    fn switch(&mut self, disc: &ast::Expr, cases: &[ast::SwitchCase], span: Span, out: &mut Block) {
        let d = self.expr(disc, out);
        let n = cases.len() as f64;
        let idx = self.temp();
        self.push(
            out,
            span,
            StmtKind::Const {
                dst: idx.clone(),
                lit: Lit::Num(n),
            },
        );
        let sentinel = |cx: &mut Self, blk: &mut Block| {
            let t = cx.temp();
            cx.push(
                blk,
                span,
                StmtKind::Const {
                    dst: t.clone(),
                    lit: Lit::Num(n),
                },
            );
            t
        };
        // Matching pass over the non-default arms, in source order.
        for (j, case) in cases.iter().enumerate() {
            let Some(test) = &case.test else { continue };
            // if (idx === n) { t = eval test; if (d === t) idx = j; }
            let sn = sentinel(self, out);
            let unmatched = self.temp();
            self.push(
                out,
                test.span,
                StmtKind::BinOp {
                    dst: unmatched.clone(),
                    op: BinOp::StrictEq,
                    lhs: idx.clone(),
                    rhs: sn,
                },
            );
            let mut then_blk = Vec::new();
            let t = self.expr(test, &mut then_blk);
            let eq = self.temp();
            self.push(
                &mut then_blk,
                test.span,
                StmtKind::BinOp {
                    dst: eq.clone(),
                    op: BinOp::StrictEq,
                    lhs: d.clone(),
                    rhs: t,
                },
            );
            let mut inner = Vec::new();
            self.push(
                &mut inner,
                test.span,
                StmtKind::Const {
                    dst: idx.clone(),
                    lit: Lit::Num(j as f64),
                },
            );
            self.push(
                &mut then_blk,
                test.span,
                StmtKind::If {
                    cond: eq,
                    then_blk: inner,
                    else_blk: Vec::new(),
                },
            );
            self.push(
                out,
                test.span,
                StmtKind::If {
                    cond: unmatched,
                    then_blk,
                    else_blk: Vec::new(),
                },
            );
        }
        // If nothing matched, jump to the default arm (if any).
        if let Some(dpos) = cases.iter().position(|c| c.test.is_none()) {
            let sn = sentinel(self, out);
            let unmatched = self.temp();
            self.push(
                out,
                span,
                StmtKind::BinOp {
                    dst: unmatched.clone(),
                    op: BinOp::StrictEq,
                    lhs: idx.clone(),
                    rhs: sn,
                },
            );
            let mut then_blk = Vec::new();
            self.push(
                &mut then_blk,
                span,
                StmtKind::Const {
                    dst: idx.clone(),
                    lit: Lit::Num(dpos as f64),
                },
            );
            self.push(
                out,
                span,
                StmtKind::If {
                    cond: unmatched,
                    then_blk,
                    else_blk: Vec::new(),
                },
            );
        }
        // Execution pass with fall-through.
        let mut body = Vec::new();
        for (j, case) in cases.iter().enumerate() {
            let jt = self.temp();
            self.push(
                &mut body,
                span,
                StmtKind::Const {
                    dst: jt.clone(),
                    lit: Lit::Num(j as f64),
                },
            );
            let run = self.temp();
            self.push(
                &mut body,
                span,
                StmtKind::BinOp {
                    dst: run.clone(),
                    op: BinOp::LtEq,
                    lhs: idx.clone(),
                    rhs: jt,
                },
            );
            let mut arm = Vec::new();
            for s in &case.body {
                self.stmt(s, &mut arm);
            }
            self.push(
                &mut body,
                span,
                StmtKind::If {
                    cond: run,
                    then_blk: arm,
                    else_blk: Vec::new(),
                },
            );
        }
        self.push(out, span, StmtKind::Breakable { body });
    }

    // ------------------------------------------------------------- exprs

    /// Lowers an expression, emitting instructions into `out` and
    /// returning the place holding its value.
    fn expr(&mut self, e: &ast::Expr, out: &mut Block) -> Place {
        let span = e.span;
        match &e.kind {
            ExprKind::Lit(l) => {
                let t = self.temp();
                self.push(
                    out,
                    span,
                    StmtKind::Const {
                        dst: t.clone(),
                        lit: l.clone(),
                    },
                );
                t
            }
            // Named reads are snapshotted into a temp at their evaluation
            // position: later side effects in the same statement (e.g.
            // `f(i++, i)`) must not be visible to earlier operands.
            ExprKind::Ident(name) => {
                let t = self.temp();
                let src = self.named(name);
                self.push(
                    out,
                    span,
                    StmtKind::Copy {
                        dst: t.clone(),
                        src,
                    },
                );
                t
            }
            ExprKind::This => {
                let t = self.temp();
                self.push(out, span, StmtKind::LoadThis { dst: t.clone() });
                t
            }
            ExprKind::Array(items) => {
                let arr = self.temp();
                self.push(
                    out,
                    span,
                    StmtKind::NewObject {
                        dst: arr.clone(),
                        is_array: true,
                    },
                );
                for (i, item) in items.iter().enumerate() {
                    let v = self.expr(item, out);
                    let key = PropKey::Static(self.prog.interner.intern(&i.to_string()));
                    self.push(
                        out,
                        item.span,
                        StmtKind::SetProp {
                            obj: arr.clone(),
                            key,
                            val: v,
                        },
                    );
                }
                arr
            }
            ExprKind::Object(props) => {
                let obj = self.temp();
                self.push(
                    out,
                    span,
                    StmtKind::NewObject {
                        dst: obj.clone(),
                        is_array: false,
                    },
                );
                for (k, v) in props {
                    let pv = self.expr(v, out);
                    let key = PropKey::Static(self.sym(k));
                    self.push(
                        out,
                        v.span,
                        StmtKind::SetProp {
                            obj: obj.clone(),
                            key,
                            val: pv,
                        },
                    );
                }
                obj
            }
            ExprKind::Function(f) => {
                let fid = self.lower_nested_function(f);
                let t = self.temp();
                self.push(
                    out,
                    span,
                    StmtKind::Closure {
                        dst: t.clone(),
                        func: fid,
                    },
                );
                t
            }
            ExprKind::Unary(op, arg) => {
                // `typeof unboundName` must not throw.
                if *op == ast::UnOp::Typeof {
                    if let ExprKind::Ident(name) = &arg.kind {
                        let t = self.temp();
                        let name = self.sym(name);
                        self.push(
                            out,
                            span,
                            StmtKind::TypeofName {
                                dst: t.clone(),
                                name,
                            },
                        );
                        return t;
                    }
                }
                let p = self.expr(arg, out);
                let t = self.temp();
                self.push(
                    out,
                    span,
                    StmtKind::UnOp {
                        dst: t.clone(),
                        op: lower_unop(*op),
                        src: p,
                    },
                );
                t
            }
            ExprKind::Delete(obj, key) => {
                let po = self.expr(obj, out);
                let k = self.member_key(key, out);
                let t = self.temp();
                self.push(
                    out,
                    span,
                    StmtKind::DeleteProp {
                        dst: t.clone(),
                        obj: po,
                        key: k,
                    },
                );
                t
            }
            ExprKind::Binary(op, l, r) => {
                use ast::BinOp as A;
                match op {
                    A::In => {
                        let k = self.expr(l, out);
                        let o = self.expr(r, out);
                        let t = self.temp();
                        self.push(
                            out,
                            span,
                            StmtKind::HasProp {
                                dst: t.clone(),
                                key: k,
                                obj: o,
                            },
                        );
                        t
                    }
                    A::Instanceof => {
                        let v = self.expr(l, out);
                        let c = self.expr(r, out);
                        let t = self.temp();
                        self.push(
                            out,
                            span,
                            StmtKind::InstanceOf {
                                dst: t.clone(),
                                val: v,
                                ctor: c,
                            },
                        );
                        t
                    }
                    _ => {
                        let pl = self.expr(l, out);
                        let pr = self.expr(r, out);
                        match lower_binop(*op) {
                            Some(op) => {
                                let t = self.temp();
                                self.push(
                                    out,
                                    span,
                                    StmtKind::BinOp {
                                        dst: t.clone(),
                                        op,
                                        lhs: pl,
                                        rhs: pr,
                                    },
                                );
                                t
                            }
                            // `in`/`instanceof` have dedicated arms above.
                            None => self.lower_malformed("unsupported binary operator", span, out),
                        }
                    }
                }
            }
            ExprKind::Logical(op, l, r) => {
                // a && b  =>  t = a; if (t)  { t = b }
                // a || b  =>  t = a; if (!t) { t = b }
                let t = self.temp();
                let pl = self.expr(l, out);
                self.push(
                    out,
                    l.span,
                    StmtKind::Copy {
                        dst: t.clone(),
                        src: pl,
                    },
                );
                let cond = match op {
                    ast::LogOp::And => t.clone(),
                    ast::LogOp::Or => {
                        let neg = self.temp();
                        self.push(
                            out,
                            span,
                            StmtKind::UnOp {
                                dst: neg.clone(),
                                op: UnOp::Not,
                                src: t.clone(),
                            },
                        );
                        neg
                    }
                };
                let mut then_blk = Vec::new();
                let pr = self.expr(r, &mut then_blk);
                self.push(
                    &mut then_blk,
                    r.span,
                    StmtKind::Copy {
                        dst: t.clone(),
                        src: pr,
                    },
                );
                self.push(
                    out,
                    span,
                    StmtKind::If {
                        cond,
                        then_blk,
                        else_blk: Vec::new(),
                    },
                );
                t
            }
            ExprKind::Assign(op, lhs, rhs) => self.assign(op, lhs, rhs, span, out),
            ExprKind::Update(prefix, inc, arg) => self.update(*prefix, *inc, arg, span, out),
            ExprKind::Cond(c, a, b) => {
                let pc = self.expr(c, out);
                let t = self.temp();
                let mut then_blk = Vec::new();
                let pa = self.expr(a, &mut then_blk);
                self.push(
                    &mut then_blk,
                    a.span,
                    StmtKind::Copy {
                        dst: t.clone(),
                        src: pa,
                    },
                );
                let mut else_blk = Vec::new();
                let pb = self.expr(b, &mut else_blk);
                self.push(
                    &mut else_blk,
                    b.span,
                    StmtKind::Copy {
                        dst: t.clone(),
                        src: pb,
                    },
                );
                self.push(
                    out,
                    span,
                    StmtKind::If {
                        cond: pc,
                        then_blk,
                        else_blk,
                    },
                );
                t
            }
            ExprKind::Call(callee, args) => self.call(callee, args, span, out),
            ExprKind::New(callee, args) => {
                let pc = self.expr(callee, out);
                let pargs: Vec<Place> = args.iter().map(|a| self.expr(a, out)).collect();
                let t = self.temp();
                self.push(
                    out,
                    span,
                    StmtKind::New {
                        dst: t.clone(),
                        callee: pc,
                        args: pargs,
                    },
                );
                t
            }
            ExprKind::Member(obj, key) => {
                let po = self.expr(obj, out);
                let k = self.member_key(key, out);
                let t = self.temp();
                self.push(
                    out,
                    span,
                    StmtKind::GetProp {
                        dst: t.clone(),
                        obj: po,
                        key: k,
                    },
                );
                t
            }
            ExprKind::Seq(items) => {
                let mut last = None;
                for item in items {
                    last = Some(self.expr(item, out));
                }
                last.unwrap_or_else(|| {
                    let t = self.temp();
                    self.push(
                        out,
                        span,
                        StmtKind::Const {
                            dst: t.clone(),
                            lit: Lit::Undefined,
                        },
                    );
                    t
                })
            }
        }
    }

    fn member_key(&mut self, key: &MemberKey, out: &mut Block) -> PropKey {
        match key {
            MemberKey::Static(name) => PropKey::Static(self.sym(name)),
            MemberKey::Computed(e) => PropKey::Dynamic(self.expr(e, out)),
        }
    }

    fn assign(
        &mut self,
        op: &Option<ast::AssignOp>,
        lhs: &ast::Expr,
        rhs: &ast::Expr,
        span: Span,
        out: &mut Block,
    ) -> Place {
        match &lhs.kind {
            ExprKind::Ident(name) => {
                let dst = self.named(name);
                let value = match op {
                    None => self.expr(rhs, out),
                    Some(op) => {
                        // JS reads the LHS before evaluating the RHS.
                        let old = self.temp();
                        self.push(
                            out,
                            span,
                            StmtKind::Copy {
                                dst: old.clone(),
                                src: dst.clone(),
                            },
                        );
                        let r = self.expr(rhs, out);
                        match lower_binop(op.bin_op()) {
                            Some(op) => {
                                let t = self.temp();
                                self.push(
                                    out,
                                    span,
                                    StmtKind::BinOp {
                                        dst: t.clone(),
                                        op,
                                        lhs: old,
                                        rhs: r,
                                    },
                                );
                                t
                            }
                            None => {
                                self.lower_malformed("unsupported compound assignment", span, out)
                            }
                        }
                    }
                };
                self.push(
                    out,
                    span,
                    StmtKind::Copy {
                        dst,
                        src: value.clone(),
                    },
                );
                value
            }
            ExprKind::Member(obj, key) => {
                let po = self.expr(obj, out);
                let k = self.member_key(key, out);
                let value = match op {
                    None => self.expr(rhs, out),
                    Some(op) => {
                        let cur = self.temp();
                        self.push(
                            out,
                            span,
                            StmtKind::GetProp {
                                dst: cur.clone(),
                                obj: po.clone(),
                                key: k.clone(),
                            },
                        );
                        let r = self.expr(rhs, out);
                        match lower_binop(op.bin_op()) {
                            Some(op) => {
                                let t = self.temp();
                                self.push(
                                    out,
                                    span,
                                    StmtKind::BinOp {
                                        dst: t.clone(),
                                        op,
                                        lhs: cur,
                                        rhs: r,
                                    },
                                );
                                t
                            }
                            None => {
                                self.lower_malformed("unsupported compound assignment", span, out)
                            }
                        }
                    }
                };
                self.push(
                    out,
                    span,
                    StmtKind::SetProp {
                        obj: po,
                        key: k,
                        val: value.clone(),
                    },
                );
                value
            }
            _ => self.lower_malformed("invalid assignment target", span, out),
        }
    }

    fn update(
        &mut self,
        prefix: bool,
        inc: bool,
        arg: &ast::Expr,
        span: Span,
        out: &mut Block,
    ) -> Place {
        let op = if inc { BinOp::Add } else { BinOp::Sub };
        let one = self.temp();
        match &arg.kind {
            ExprKind::Ident(name) => {
                let var = self.named(name);
                let old = self.temp();
                self.push(
                    out,
                    span,
                    StmtKind::UnOp {
                        dst: old.clone(),
                        op: UnOp::Pos,
                        src: var.clone(),
                    },
                );
                self.push(
                    out,
                    span,
                    StmtKind::Const {
                        dst: one.clone(),
                        lit: Lit::Num(1.0),
                    },
                );
                let new = self.temp();
                self.push(
                    out,
                    span,
                    StmtKind::BinOp {
                        dst: new.clone(),
                        op,
                        lhs: old.clone(),
                        rhs: one,
                    },
                );
                self.push(
                    out,
                    span,
                    StmtKind::Copy {
                        dst: var,
                        src: new.clone(),
                    },
                );
                if prefix {
                    new
                } else {
                    old
                }
            }
            ExprKind::Member(obj, key) => {
                let po = self.expr(obj, out);
                let k = self.member_key(key, out);
                let cur = self.temp();
                self.push(
                    out,
                    span,
                    StmtKind::GetProp {
                        dst: cur.clone(),
                        obj: po.clone(),
                        key: k.clone(),
                    },
                );
                let old = self.temp();
                self.push(
                    out,
                    span,
                    StmtKind::UnOp {
                        dst: old.clone(),
                        op: UnOp::Pos,
                        src: cur,
                    },
                );
                self.push(
                    out,
                    span,
                    StmtKind::Const {
                        dst: one.clone(),
                        lit: Lit::Num(1.0),
                    },
                );
                let new = self.temp();
                self.push(
                    out,
                    span,
                    StmtKind::BinOp {
                        dst: new.clone(),
                        op,
                        lhs: old.clone(),
                        rhs: one,
                    },
                );
                self.push(
                    out,
                    span,
                    StmtKind::SetProp {
                        obj: po,
                        key: k,
                        val: new.clone(),
                    },
                );
                if prefix {
                    new
                } else {
                    old
                }
            }
            _ => self.lower_malformed("invalid update target", span, out),
        }
    }

    fn call(
        &mut self,
        callee: &ast::Expr,
        args: &[ast::Expr],
        span: Span,
        out: &mut Block,
    ) -> Place {
        // Direct eval: `eval(e)` with `eval` as a plain identifier.
        if let ExprKind::Ident(name) = &callee.kind {
            if &**name == "eval" {
                let arg = match args.first() {
                    Some(a) => self.expr(a, out),
                    None => {
                        let t = self.temp();
                        self.push(
                            out,
                            span,
                            StmtKind::Const {
                                dst: t.clone(),
                                lit: Lit::Undefined,
                            },
                        );
                        t
                    }
                };
                // Remaining arguments are evaluated for effect, as in JS.
                for a in args.iter().skip(1) {
                    self.expr(a, out);
                }
                let t = self.temp();
                self.push(
                    out,
                    span,
                    StmtKind::Eval {
                        dst: t.clone(),
                        arg,
                    },
                );
                return t;
            }
        }
        // Method call: bind `this` to the receiver.
        if let ExprKind::Member(obj, key) = &callee.kind {
            let po = self.expr(obj, out);
            let k = self.member_key(key, out);
            let f = self.temp();
            self.push(
                out,
                callee.span,
                StmtKind::GetProp {
                    dst: f.clone(),
                    obj: po.clone(),
                    key: k,
                },
            );
            let pargs: Vec<Place> = args.iter().map(|a| self.expr(a, out)).collect();
            let t = self.temp();
            self.push(
                out,
                span,
                StmtKind::Call {
                    dst: t.clone(),
                    callee: f,
                    this_arg: Some(po),
                    args: pargs,
                },
            );
            return t;
        }
        let pc = self.expr(callee, out);
        let pargs: Vec<Place> = args.iter().map(|a| self.expr(a, out)).collect();
        let t = self.temp();
        self.push(
            out,
            span,
            StmtKind::Call {
                dst: t.clone(),
                callee: pc,
                this_arg: None,
                args: pargs,
            },
        );
        t
    }
}

enum Hoisted {
    Var(Rc<str>),
    Func(Rc<ast::Function>),
}

/// Walks statements collecting hoisted declarations, without descending
/// into nested functions.
fn hoist(body: &[ast::Stmt], visit: &mut impl FnMut(Hoisted)) {
    for s in body {
        hoist_stmt(s, visit);
    }
}

fn hoist_stmt(s: &ast::Stmt, visit: &mut impl FnMut(Hoisted)) {
    match &s.kind {
        AstStmt::Var(decls) => {
            for (name, _) in decls {
                visit(Hoisted::Var(name.clone()));
            }
        }
        AstStmt::FunctionDecl(f) => visit(Hoisted::Func(f.clone())),
        AstStmt::If(_, t, e) => {
            hoist_stmt(t, visit);
            if let Some(e) = e {
                hoist_stmt(e, visit);
            }
        }
        AstStmt::While(_, b) | AstStmt::DoWhile(b, _) => hoist_stmt(b, visit),
        AstStmt::For { init, body, .. } => {
            if let Some(ForInit::Var(decls)) = init {
                for (name, _) in decls {
                    visit(Hoisted::Var(name.clone()));
                }
            }
            hoist_stmt(body, visit);
        }
        AstStmt::ForIn {
            decl, var, body, ..
        } => {
            if *decl {
                visit(Hoisted::Var(var.clone()));
            }
            hoist_stmt(body, visit);
        }
        AstStmt::Try {
            block,
            catch,
            finally,
        } => {
            hoist(block, visit);
            if let Some((_, b)) = catch {
                hoist(b, visit);
            }
            if let Some(b) = finally {
                hoist(b, visit);
            }
        }
        AstStmt::Switch(_, cases) => {
            for c in cases {
                hoist(&c.body, visit);
            }
        }
        AstStmt::Block(body) => hoist(body, visit),
        _ => {}
    }
}

/// Maps an AST binary operator to its IR counterpart. `None` for `in` /
/// `instanceof`, which lower to dedicated statements instead.
fn lower_binop(op: ast::BinOp) -> Option<BinOp> {
    use ast::BinOp as A;
    Some(match op {
        A::Add => BinOp::Add,
        A::Sub => BinOp::Sub,
        A::Mul => BinOp::Mul,
        A::Div => BinOp::Div,
        A::Rem => BinOp::Rem,
        A::Eq => BinOp::Eq,
        A::NotEq => BinOp::NotEq,
        A::StrictEq => BinOp::StrictEq,
        A::StrictNotEq => BinOp::StrictNotEq,
        A::Lt => BinOp::Lt,
        A::LtEq => BinOp::LtEq,
        A::Gt => BinOp::Gt,
        A::GtEq => BinOp::GtEq,
        A::BitAnd => BinOp::BitAnd,
        A::BitOr => BinOp::BitOr,
        A::BitXor => BinOp::BitXor,
        A::Shl => BinOp::Shl,
        A::Shr => BinOp::Shr,
        A::UShr => BinOp::UShr,
        A::In | A::Instanceof => return None,
    })
}

fn lower_unop(op: ast::UnOp) -> UnOp {
    match op {
        ast::UnOp::Neg => UnOp::Neg,
        ast::UnOp::Pos => UnOp::Pos,
        ast::UnOp::Not => UnOp::Not,
        ast::UnOp::BitNot => UnOp::BitNot,
        ast::UnOp::Typeof => UnOp::Typeof,
        ast::UnOp::Void => UnOp::Void,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mujs_syntax::parse;

    fn lower(src: &str) -> Program {
        lower_program(&parse(src).unwrap())
    }

    fn entry_body(p: &Program) -> &Block {
        &p.func(p.entry().unwrap()).body
    }

    fn func_named<'a>(p: &'a Program, name: &str) -> &'a Function {
        p.funcs
            .iter()
            .find(|f| f.name.is_some_and(|s| p.interner.resolve(s) == name))
            .unwrap()
    }

    #[test]
    fn lowers_var_init_to_const_and_copy() {
        let p = lower("var x = 1;");
        let body = entry_body(&p);
        assert!(matches!(body[0].kind, StmtKind::Const { .. }));
        match &body[1].kind {
            StmtKind::Copy { dst, .. } => {
                assert_eq!(*dst, Place::Named(p.interner.get("x").unwrap()))
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn hoists_function_declarations() {
        let p = lower("f(); function f() { return 1; }");
        let entry = p.func(p.entry().unwrap());
        assert_eq!(entry.decls.funcs.len(), 1);
        assert_eq!(p.interner.resolve(entry.decls.funcs[0].0), "f");
    }

    #[test]
    fn hoists_vars_from_nested_blocks() {
        let p = lower("if (a) { var x = 1; } while (b) { var y; }");
        let entry = p.func(p.entry().unwrap());
        let names: Vec<&str> = entry
            .decls
            .vars
            .iter()
            .map(|v| p.interner.resolve(*v))
            .collect();
        assert_eq!(names, vec!["x", "y"]);
    }

    #[test]
    fn method_call_binds_receiver() {
        let p = lower("o.m(1);");
        let body = entry_body(&p);
        // The receiver temp used for `this` must be the same temp the
        // method was loaded from.
        let (getprop_obj, call_this) = body
            .iter()
            .find_map(|s| match &s.kind {
                StmtKind::Call {
                    this_arg: Some(t), ..
                } => Some((None, Some(t.clone()))),
                StmtKind::GetProp { obj, .. } => Some((Some(obj.clone()), None)),
                _ => None,
            })
            .map(|_| {
                let gp = body.iter().find_map(|s| match &s.kind {
                    StmtKind::GetProp { obj, .. } => Some(obj.clone()),
                    _ => None,
                });
                let ct = body.iter().find_map(|s| match &s.kind {
                    StmtKind::Call {
                        this_arg: Some(t), ..
                    } => Some(t.clone()),
                    _ => None,
                });
                (gp, ct)
            })
            .expect("a call");
        assert_eq!(getprop_obj, call_this);
        assert!(call_this.is_some());
    }

    #[test]
    fn direct_eval_becomes_eval_stmt() {
        let p = lower("eval(\"1+1\");");
        let body = entry_body(&p);
        assert!(body.iter().any(|s| matches!(s.kind, StmtKind::Eval { .. })));
    }

    #[test]
    fn indirect_eval_is_a_plain_call() {
        let p = lower("var e = eval; e(\"1+1\");");
        let body = entry_body(&p);
        assert!(!body.iter().any(|s| matches!(s.kind, StmtKind::Eval { .. })));
        assert!(body.iter().any(|s| matches!(s.kind, StmtKind::Call { .. })));
    }

    #[test]
    fn logical_and_lowered_to_if() {
        let p = lower("var r = a && b;");
        let body = entry_body(&p);
        assert!(body.iter().any(|s| matches!(s.kind, StmtKind::If { .. })));
    }

    #[test]
    fn for_loop_update_goes_to_update_block() {
        let p = lower("for (var i = 0; i < 3; i++) { f(i); }");
        let body = entry_body(&p);
        let found = body.iter().find_map(|s| match &s.kind {
            StmtKind::Loop { update, .. } => Some(!update.is_empty()),
            _ => None,
        });
        assert_eq!(found, Some(true));
    }

    #[test]
    fn for_in_uses_enum_props() {
        let p = lower("for (var k in o) { f(k); }");
        let mut saw_enum = false;
        Program::walk_block(entry_body(&p), &mut |s| {
            if matches!(s.kind, StmtKind::EnumProps { .. }) {
                saw_enum = true;
            }
        });
        assert!(saw_enum);
    }

    #[test]
    fn switch_lowered_to_breakable() {
        let p = lower("switch (x) { case 1: f(); default: g(); }");
        let body = entry_body(&p);
        assert!(body
            .iter()
            .any(|s| matches!(s.kind, StmtKind::Breakable { .. })));
    }

    #[test]
    fn in_operator_lowered_to_hasprop() {
        let p = lower("var r = \"k\" in o;");
        let body = entry_body(&p);
        assert!(body
            .iter()
            .any(|s| matches!(s.kind, StmtKind::HasProp { .. })));
    }

    #[test]
    fn typeof_ident_uses_typeofname() {
        let p = lower("var t = typeof zzz;");
        let body = entry_body(&p);
        assert!(body
            .iter()
            .any(|s| matches!(s.kind, StmtKind::TypeofName { .. })));
        // typeof of a non-identifier goes through UnOp.
        let p2 = lower("var t = typeof (1 + 2);");
        let body2 = entry_body(&p2);
        assert!(body2.iter().any(|s| matches!(
            s.kind,
            StmtKind::UnOp {
                op: UnOp::Typeof,
                ..
            }
        )));
    }

    #[test]
    fn named_function_expression_binds_self() {
        let p = lower("var f = function g() { return g; };");
        let g = func_named(&p, "g");
        assert!(g.bind_self);
    }

    #[test]
    fn nested_function_parents_are_linked() {
        let p = lower("function outer() { function inner() {} }");
        let inner = func_named(&p, "inner");
        let outer = func_named(&p, "outer");
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, p.entry());
    }

    #[test]
    fn compound_member_assignment_reads_then_writes() {
        let p = lower("o.x += 2;");
        let body = entry_body(&p);
        let get = body
            .iter()
            .position(|s| matches!(s.kind, StmtKind::GetProp { .. }))
            .unwrap();
        let set = body
            .iter()
            .position(|s| matches!(s.kind, StmtKind::SetProp { .. }))
            .unwrap();
        assert!(get < set);
    }

    #[test]
    fn array_literal_sets_indexed_props() {
        let p = lower("var a = [10, 20];");
        let body = entry_body(&p);
        let keys: Vec<String> = body
            .iter()
            .filter_map(|s| match &s.kind {
                StmtKind::SetProp {
                    key: PropKey::Static(k),
                    ..
                } => Some(p.interner.resolve(*k).to_string()),
                _ => None,
            })
            .collect();
        assert_eq!(keys, vec!["0", "1"]);
    }
}
