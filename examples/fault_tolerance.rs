//! Fault-tolerant supervision: wall-clock deadlines, memory budgets,
//! external cancellation, and per-seed isolation in multi-run batches.
//!
//! Every early stop keeps the sound fact prefix — the same guarantee the
//! paper's 1000-flush cap gives (§5.1).
//!
//! Run with `cargo run --example fault_tolerance`.

use determinacy::multirun::analyze_many;
use determinacy::{
    supervised_analyze, AnalysisConfig, AnalysisStatus, CancelToken, DetHarness, RunHooks,
};

const SRC: &str = r#"
var seedling = 2 + 3;
var coin = Math.random() < 0.5;
for (var i = 0; i < 200000; i++) {
    var cell = {};
    cell.idx = i;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A tight wall-clock deadline: the run stops cooperatively with
    //    Deadline instead of hanging, keeping the facts collected so far.
    let mut h = DetHarness::from_src(SRC)?;
    let out = h.analyze(AnalysisConfig {
        deadline_ms: Some(0),
        poll_interval: 64,
        ..Default::default()
    });
    println!(
        "deadline:     status {:?}, {} facts preserved, {} steps",
        out.status,
        out.facts.len(),
        out.stats.steps
    );
    assert_eq!(out.status, AnalysisStatus::Deadline);

    // 2. A heap-cell budget bounds allocation work.
    let out = h.analyze(AnalysisConfig {
        mem_cell_budget: Some(500),
        poll_interval: 16,
        ..Default::default()
    });
    println!(
        "mem budget:   status {:?}, {} facts preserved",
        out.status,
        out.facts.len()
    );
    assert_eq!(out.status, AnalysisStatus::MemLimit);

    // 3. External cancellation through a shared token (e.g. from a UI).
    let hooks = RunHooks::supervised();
    let token: &CancelToken = hooks.cancel.as_ref().expect("supervised hooks");
    token.cancel();
    let out = supervised_analyze(
        &mut h,
        AnalysisConfig {
            poll_interval: 64,
            ..Default::default()
        },
        &hooks,
    )?;
    println!(
        "cancellation: status {:?}, {} facts preserved",
        out.status,
        out.facts.len()
    );
    assert_eq!(out.status, AnalysisStatus::Cancelled);

    // 4. Multi-run batches isolate per-seed failures: each seed runs
    //    under the supervisor, failed seeds land in `failures` with the
    //    seed for reproduction, and the rest combine conflict-free.
    let combined = analyze_many(
        &mut h,
        &[1, 2, 3, 4],
        AnalysisConfig {
            max_steps: 5_000,
            ..Default::default()
        },
    );
    println!(
        "multi-run:    {} runs combined, {} failures, {} det-vs-det conflicts",
        combined.runs.len(),
        combined.failures.len(),
        combined.conflicts
    );
    assert_eq!(combined.conflicts, 0);
    Ok(())
}
