//! §2.1/Figure 1: jQuery's polymorphic `$` function — each call site is
//! monomorphic, so under per-call-site contexts the `typeof` tests are
//! determinate and the untaken branches are provably dead for that site.
//! The specializer's clones materialize the paper's "degree of flow
//! sensitivity".
//!
//! Run with `cargo run --example polymorphic_dispatch`.

use determinacy::{AnalysisConfig, DetHarness, Fact, FactKind};
use mujs_specialize::{specialize, SpecConfig};

const FIGURE1: &str = r#"
function $(selector) {
  if (typeof selector === "string") {
    if (isHTML(selector)) { return parseHTML(selector); }
    else { return cssQuery(selector); }
  } else { if (typeof selector === "function") {
    return onReady(selector);
  } else {
    return [selector];
  } }
}
function isHTML(s) { return s.charAt(0) === "<"; }
function parseHTML(s) { return { kind: "dom", src: s }; }
function cssQuery(s) { return { kind: "query", sel: s }; }
function onReady(f) { return { kind: "handler", fn: f }; }

var a = $("div.item");
var b = $(function() { return 1; });
var c = $(42);
console.log(a.kind, b.kind, c.length);
"#;

fn main() {
    println!("Figure 1: per-call-site dead-branch detection for $()");
    println!("======================================================");

    let mut h = DetHarness::from_src(FIGURE1).expect("figure 1 parses");
    let mut out = h.analyze(AnalysisConfig::default());
    println!("program output: {:?}", out.output);

    println!("\nconditional facts inside $ (one set per calling context):");
    let mut lines: Vec<String> = Vec::new();
    for (kind, point, ctx, fact) in out.facts.iter() {
        if kind != FactKind::Cond {
            continue;
        }
        let line = h.source.line_col(h.program.span_of(point)).line;
        if !(2..=9).contains(&line) {
            continue;
        }
        if let Some(d) = out
            .facts
            .describe(kind, point, ctx, &h.program, &h.source, &out.ctxs)
        {
            let det = matches!(fact, Fact::Det(_));
            lines.push(format!(
                "  {d:<32} {}",
                if det { "(determinate)" } else { "(?)" }
            ));
        }
    }
    lines.sort();
    for l in lines {
        println!("{l}");
    }

    let spec = specialize(
        &h.program,
        &out.facts,
        &mut out.ctxs,
        &SpecConfig::default(),
    );
    println!(
        "\nspecializer: {} clones of $ (one per call site), {} dead branches removed",
        spec.report.clones, spec.report.branches_pruned
    );

    let mut prog = spec.program.clone();
    let mut interp = mujs_interp::Interp::new(&mut prog, mujs_interp::InterpOptions::default());
    interp.run().expect("specialized program runs");
    assert_eq!(interp.output, vec!["query handler 1"]);
    println!("specialized program output matches: {:?}", interp.output);
}
