//! Pure string/number helpers shared by the concrete natives and the
//! instrumented machine's native *models* (both must compute identical
//! results for the soundness property to be testable).

/// `String.prototype.charAt`.
pub fn char_at(s: &str, i: f64) -> String {
    if i.is_nan() || i < 0.0 {
        return String::new();
    }
    s.chars()
        .nth(i as usize)
        .map(|c| c.to_string())
        .unwrap_or_default()
}

/// `String.prototype.charCodeAt`.
pub fn char_code_at(s: &str, i: f64) -> f64 {
    if i.is_nan() || i < 0.0 {
        return f64::NAN;
    }
    s.chars()
        .nth(i as usize)
        .map(|c| c as u32 as f64)
        .unwrap_or(f64::NAN)
}

/// `String.prototype.indexOf` (character indices).
pub fn index_of(s: &str, needle: &str) -> f64 {
    match s.find(needle) {
        Some(byte_idx) => s[..byte_idx].chars().count() as f64,
        None => -1.0,
    }
}

/// `String.prototype.lastIndexOf` (character indices).
pub fn last_index_of(s: &str, needle: &str) -> f64 {
    match s.rfind(needle) {
        Some(byte_idx) => s[..byte_idx].chars().count() as f64,
        None => -1.0,
    }
}

/// `String.prototype.substr(start, length)`.
pub fn substr(s: &str, start: f64, len: f64) -> String {
    let n = s.chars().count() as f64;
    let start = if start < 0.0 {
        (n + start).max(0.0)
    } else {
        start.min(n)
    };
    let len = if len.is_nan() { 0.0 } else { len.max(0.0) };
    s.chars()
        .skip(start as usize)
        .take(len.min(n - start) as usize)
        .collect()
}

/// `String.prototype.substring(start, end)` (swaps out-of-order args).
pub fn substring(s: &str, start: f64, end: f64) -> String {
    let n = s.chars().count() as f64;
    let clamp = |x: f64| {
        if x.is_nan() {
            0.0
        } else {
            x.clamp(0.0, n)
        }
    };
    let (mut a, mut b) = (clamp(start), clamp(end));
    if a > b {
        std::mem::swap(&mut a, &mut b);
    }
    s.chars().skip(a as usize).take((b - a) as usize).collect()
}

/// `String.prototype.slice(start, end)` (negative indices from the end).
pub fn str_slice(s: &str, start: f64, end: f64) -> String {
    let n = s.chars().count() as f64;
    let norm = |x: f64| {
        if x.is_nan() {
            0.0
        } else if x < 0.0 {
            (n + x).max(0.0)
        } else {
            x.min(n)
        }
    };
    let a = norm(start);
    let b = norm(end);
    if a >= b {
        return String::new();
    }
    s.chars().skip(a as usize).take((b - a) as usize).collect()
}

/// `String.prototype.split` with a string separator.
pub fn split(s: &str, sep: &str) -> Vec<String> {
    if sep.is_empty() {
        return s.chars().map(|c| c.to_string()).collect();
    }
    s.split(sep).map(str::to_owned).collect()
}

/// `String.prototype.replace` with string pattern (first occurrence only).
pub fn replace_first(s: &str, pat: &str, rep: &str) -> String {
    match s.find(pat) {
        Some(i) => {
            let mut out = String::with_capacity(s.len());
            out.push_str(&s[..i]);
            out.push_str(rep);
            out.push_str(&s[i + pat.len()..]);
            out
        }
        None => s.to_owned(),
    }
}

/// `parseInt` with a radix.
pub fn parse_int(s: &str, radix: u32) -> f64 {
    let t = s.trim();
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t.strip_prefix('+').unwrap_or(t)),
    };
    let (radix, t) = if (radix == 16 || radix == 0) && (t.starts_with("0x") || t.starts_with("0X"))
    {
        (16, &t[2..])
    } else if radix == 0 {
        (10, t)
    } else {
        (radix, t)
    };
    if !(2..=36).contains(&radix) {
        return f64::NAN;
    }
    let digits: String = t.chars().take_while(|c| c.is_digit(radix)).collect();
    if digits.is_empty() {
        return f64::NAN;
    }
    let mut acc = 0.0f64;
    for c in digits.chars() {
        acc = acc * radix as f64 + c.to_digit(radix).expect("checked") as f64;
    }
    if neg {
        -acc
    } else {
        acc
    }
}

/// `parseFloat`.
pub fn parse_float(s: &str) -> f64 {
    let t = s.trim();
    // Take the longest numeric prefix.
    let mut end = 0;
    let bytes = t.as_bytes();
    let mut seen_dot = false;
    let mut seen_e = false;
    let mut i = 0;
    if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
        i += 1;
    }
    while i < bytes.len() {
        match bytes[i] {
            b'0'..=b'9' => {
                i += 1;
                end = i;
            }
            b'.' if !seen_dot && !seen_e => {
                seen_dot = true;
                i += 1;
            }
            b'e' | b'E' if !seen_e && end > 0 => {
                seen_e = true;
                i += 1;
                if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                    i += 1;
                }
            }
            _ => break,
        }
    }
    if end == 0 {
        return f64::NAN;
    }
    t[..i.min(t.len())]
        .trim_end_matches(['e', 'E', '+', '-'])
        .parse()
        .unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substr_substring_slice_disagree_properly() {
        assert_eq!(substr("abcdef", 1.0, 3.0), "bcd");
        assert_eq!(substring("abcdef", 3.0, 1.0), "bc"); // swapped
        assert_eq!(str_slice("abcdef", -2.0, f64::INFINITY), "ef");
        assert_eq!(substr("abcdef", -2.0, 10.0), "ef");
    }

    #[test]
    fn index_of_variants() {
        assert_eq!(index_of("hello", "ll"), 2.0);
        assert_eq!(index_of("hello", "x"), -1.0);
        assert_eq!(last_index_of("aXbXc", "X"), 3.0);
    }

    #[test]
    fn split_cases() {
        assert_eq!(split("a,b,c", ","), vec!["a", "b", "c"]);
        assert_eq!(split("abc", ""), vec!["a", "b", "c"]);
        assert_eq!(split("abc", "x"), vec!["abc"]);
    }

    #[test]
    fn replace_first_only() {
        assert_eq!(replace_first("a-b-c", "-", "+"), "a+b-c");
        assert_eq!(replace_first("abc", "x", "y"), "abc");
    }

    #[test]
    fn parse_int_radix() {
        assert_eq!(parse_int("42px", 10), 42.0);
        assert_eq!(parse_int("0xff", 16), 255.0);
        assert_eq!(parse_int("0xff", 0), 255.0);
        assert_eq!(parse_int("-7", 10), -7.0);
        assert!(parse_int("zz", 10).is_nan());
    }

    #[test]
    fn parse_float_prefix() {
        assert_eq!(parse_float("3.5abc"), 3.5);
        assert_eq!(parse_float("  -2e2  "), -200.0);
        assert!(parse_float("abc").is_nan());
    }

    #[test]
    fn char_ops() {
        assert_eq!(char_at("abc", 1.0), "b");
        assert_eq!(char_at("abc", 9.0), "");
        assert_eq!(char_code_at("A", 0.0), 65.0);
        assert!(char_code_at("A", 5.0).is_nan());
    }
}
