//! Umbrella crate for the Dynamic Determinacy Analysis reproduction.
//!
//! This crate hosts the cross-crate integration tests (`tests/`) and the
//! runnable examples (`examples/`). The actual functionality lives in the
//! workspace crates; see `DESIGN.md` for the system inventory.

pub use determinacy;
pub use mujs_corpus;
pub use mujs_dom;
pub use mujs_gen;
pub use mujs_interp;
pub use mujs_ir;
pub use mujs_pta;
pub use mujs_specialize;
pub use mujs_syntax;
