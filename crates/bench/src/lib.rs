//! # mujs-bench
//!
//! Experiment harnesses regenerating the paper's evaluation artifacts:
//!
//! * `table1` (binary) — pointer-analysis scalability on the jQuery-like
//!   corpus: Baseline vs Spec vs Spec+DetDOM with heap-flush counts;
//! * `eval_elim` (binary) — the §5.2 eval-elimination study;
//! * Criterion benches — instrumentation overhead, counterfactual depth,
//!   flush mechanism, context depth, frontend/PTA throughput.
//!
//! The [`pipeline`] module is the shared dynamic-analysis → specialize →
//! PTA plumbing.

pub mod pipeline;

pub use pipeline::{
    analyze_page, eliminate, root_cause_cols, run_eval_elim, run_eval_elim_pooled, run_pta_compare,
    run_table1, run_table1_at_depth, run_table1_pooled, spec_config, spec_pipeline, EvalElimRow,
    PipelineError, PipelineResult, PtaCompareRow, PtaModeRow, RootCauseCol, Table1Row,
    TABLE1_PTA_BUDGET,
};
