//! Frontend throughput: lexing+parsing and lowering on generated sources
//! of increasing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mujs_corpus::workload;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("frontend");
    for n in [500usize, 2000, 8000] {
        let src = workload::arithmetic_chain(n);
        g.throughput(Throughput::Bytes(src.len() as u64));
        g.bench_with_input(BenchmarkId::new("parse", n), &src, |b, s| {
            b.iter(|| mujs_syntax::parse(s).expect("parses"))
        });
        let ast = mujs_syntax::parse(&src).expect("parses");
        g.bench_with_input(BenchmarkId::new("lower", n), &ast, |b, a| {
            b.iter(|| mujs_ir::lower_program(a))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
