//! Table 1's timing dimension: pointer-analysis work on the jQuery-like
//! corpus, baseline vs determinacy-specialized, as wall time per solve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use determinacy::AnalysisConfig;
use mujs_pta::PtaConfig;
use mujs_specialize::SpecConfig;

fn programs() -> Vec<(&'static str, mujs_ir::Program, mujs_ir::Program)> {
    let mut out = Vec::new();
    for v in [
        mujs_corpus::jquery_like::v1_0(),
        mujs_corpus::jquery_like::v1_2(),
    ] {
        let mut h = determinacy::DetHarness::from_src(&v.src).expect("parses");
        let mut a = h.analyze_dom(AnalysisConfig::default(), v.doc.clone(), &v.plan);
        let spec =
            mujs_specialize::specialize(&h.program, &a.facts, &mut a.ctxs, &SpecConfig::default());
        out.push((v.version, h.program.clone(), spec.program));
    }
    out
}

fn bench(c: &mut Criterion) {
    let progs = programs();
    let cfg = PtaConfig {
        budget: 50_000_000,
        ..Default::default()
    };
    let mut g = c.benchmark_group("pta_scalability");
    g.sample_size(10);
    for (version, baseline, spec) in &progs {
        g.bench_with_input(BenchmarkId::new("baseline", version), baseline, |b, p| {
            b.iter(|| mujs_pta::solve(p, &cfg).stats.propagations)
        });
        g.bench_with_input(BenchmarkId::new("spec", version), spec, |b, p| {
            b.iter(|| mujs_pta::solve(p, &cfg).stats.propagations)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
