//! Configuration and outcome types for the determinacy analysis.

use serde::{Deserialize, Serialize};

/// Tunables of the instrumented machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalysisConfig {
    /// Seed for `Math.random` (the indeterminate input source).
    pub seed: u64,
    /// Statement budget for the whole run.
    pub max_steps: u64,
    /// The paper's counterfactual nesting cut-off `k` (rule ĈNTRABORT
    /// fires beyond it).
    pub cf_depth_k: u32,
    /// Per-counterfactual statement budget; exceeding it aborts that
    /// counterfactual (undo + flush + mark `vd`), guaranteeing the
    /// analysis terminates whenever the concrete program does.
    pub cf_step_budget: u64,
    /// Stop analysing after this many heap flushes ("we stop the dynamic
    /// analysis after 1000 heap flushes", §5.1). `None` disables the cap.
    pub flush_cap: Option<u32>,
    /// The unsound determinate-DOM assumption of §5.1: DOM reads and DOM
    /// function results become determinate.
    pub det_dom: bool,
    /// Ablation switch: disable counterfactual execution entirely —
    /// indeterminate-false branches then always take the conservative
    /// ĈNTRABORT path.
    pub counterfactual: bool,
    /// Whether to populate the fact database.
    pub collect_facts: bool,
    /// Fact-database size cap (0 = unlimited).
    pub max_facts: usize,
    /// Record `(point, ctx, value, det)` observations for the soundness
    /// harness.
    pub record_observations: bool,
    /// Cap on recorded observations.
    pub max_observations: usize,
    /// Wall-clock budget for the run in milliseconds. When it elapses the
    /// machine stops cooperatively with [`AnalysisStatus::Deadline`],
    /// keeping the sound fact prefix. `None` disables the deadline.
    pub deadline_ms: Option<u64>,
    /// Budget on live heap cells (objects plus property slots). Exceeding
    /// it stops the run with [`AnalysisStatus::MemLimit`], keeping the
    /// sound fact prefix. `None` disables the budget.
    pub mem_cell_budget: Option<u64>,
    /// How many statements execute between deadline/cancellation polls.
    /// Values are clamped to at least 1. Small values tighten deadline
    /// precision at a small per-statement cost.
    pub poll_interval: u64,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            seed: 0xD5EA51DE,
            max_steps: 20_000_000,
            cf_depth_k: 8,
            cf_step_budget: 200_000,
            flush_cap: Some(1000),
            det_dom: false,
            counterfactual: true,
            collect_facts: true,
            max_facts: 0,
            record_observations: false,
            max_observations: 2_000_000,
            deadline_ms: None,
            mem_cell_budget: None,
            poll_interval: 1024,
        }
    }
}

/// Why an analysis run ended.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AnalysisStatus {
    /// The program ran to completion.
    Completed,
    /// An uncaught exception ended the run (facts so far remain sound).
    UncaughtException,
    /// The step budget ran out.
    StepLimit,
    /// The flush cap fired and the analysis stopped early (facts so far
    /// remain sound).
    FlushCapReached,
    /// The wall-clock deadline elapsed; the run stopped cooperatively at a
    /// statement boundary (facts so far remain sound).
    Deadline,
    /// The run was cancelled from outside through a
    /// [`crate::supervisor::CancelToken`] (facts so far remain sound).
    Cancelled,
    /// The live heap-cell budget was exhausted (facts so far remain
    /// sound).
    MemLimit,
}

/// Aggregate statistics of one analysis run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AnalysisStats {
    /// Heap flushes performed (the number reported in Table 1).
    pub heap_flushes: u32,
    /// Statements executed (including counterfactual ones).
    pub steps: u64,
    /// Counterfactual executions entered.
    pub counterfactuals: u64,
    /// Counterfactual executions aborted (ĈNTRABORT).
    pub cf_aborts: u64,
    /// Event handlers dispatched.
    pub handlers_fired: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = AnalysisConfig::default();
        assert_eq!(c.flush_cap, Some(1000));
        assert!(c.counterfactual);
        assert!(!c.det_dom);
    }

    #[test]
    fn config_round_trips_through_json() {
        let c = AnalysisConfig {
            det_dom: true,
            ..Default::default()
        };
        let s = serde_json::to_string(&c).unwrap();
        let c2: AnalysisConfig = serde_json::from_str(&s).unwrap();
        assert!(c2.det_dom);
        assert_eq!(c2.cf_depth_k, c.cf_depth_k);
    }
}
