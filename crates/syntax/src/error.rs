//! Syntax errors shared by the lexer and parser.

use crate::span::Span;
use std::error::Error;
use std::fmt;

/// What went wrong while lexing or parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum SyntaxErrorKind {
    /// A string literal ran to the end of a line or the file.
    UnterminatedString,
    /// A `/* ... */` comment ran to the end of the file.
    UnterminatedComment,
    /// A numeric literal could not be parsed.
    MalformedNumber,
    /// An escape sequence was invalid.
    InvalidEscape,
    /// A character outside the subset's alphabet.
    UnexpectedChar,
    /// The parser saw a token it cannot use here; carries a description of
    /// what was expected and what was found.
    UnexpectedToken {
        /// Human-readable description of the expected input.
        expected: String,
        /// Display of the token actually found.
        found: String,
    },
    /// A feature of full JavaScript that the muJS subset does not support.
    Unsupported(&'static str),
    /// The target of an assignment or `++`/`--` is not assignable.
    InvalidAssignmentTarget,
    /// Expression or statement nesting exceeded the parser's depth limit.
    NestingTooDeep,
}

impl fmt::Display for SyntaxErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyntaxErrorKind::UnterminatedString => write!(f, "unterminated string literal"),
            SyntaxErrorKind::UnterminatedComment => write!(f, "unterminated block comment"),
            SyntaxErrorKind::MalformedNumber => write!(f, "malformed number literal"),
            SyntaxErrorKind::InvalidEscape => write!(f, "invalid escape sequence"),
            SyntaxErrorKind::UnexpectedChar => write!(f, "unexpected character"),
            SyntaxErrorKind::UnexpectedToken { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            SyntaxErrorKind::Unsupported(what) => {
                write!(f, "unsupported construct: {what}")
            }
            SyntaxErrorKind::InvalidAssignmentTarget => {
                write!(f, "invalid assignment target")
            }
            SyntaxErrorKind::NestingTooDeep => {
                write!(f, "expression or statement nesting too deep")
            }
        }
    }
}

/// A lexing or parsing failure, with the offending source span.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntaxError {
    /// The failure category.
    pub kind: SyntaxErrorKind,
    /// Where in the source it occurred.
    pub span: Span,
}

impl fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.kind, self.span)
    }
}

impl Error for SyntaxError {}
