//! End-to-end `detjobs` binary checks: exit codes for CI gating, and the
//! checkpoint/resume flags producing byte-identical reports.

use std::path::{Path, PathBuf};
use std::process::Command;

fn detjobs() -> Command {
    Command::new(env!("CARGO_BIN_EXE_detjobs"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(tag);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_manifest(dir: &Path, name: &str, body: &str) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, body).unwrap();
    path
}

const HEALTHY: &str = r#"{
  "jobs": [
    { "name": "a", "src": "var x = 1 + 2;" },
    { "name": "b", "src": "var y = 3 * 4;", "seeds": [1, 2] }
  ]
}"#;

const WITH_BAD_JOB: &str = r#"{
  "jobs": [
    { "name": "ok", "src": "var x = 1;" },
    { "name": "broken", "src": "var x = ;" }
  ]
}"#;

#[test]
fn healthy_batches_exit_zero() {
    let dir = tmp_dir("cli-ok");
    let manifest = write_manifest(&dir, "m.json", HEALTHY);
    let out = detjobs()
        .args(["--manifest", manifest.to_str().unwrap(), "--quiet"])
        .output()
        .expect("run detjobs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn failed_jobs_make_the_exit_code_nonzero() {
    let dir = tmp_dir("cli-fail");
    let manifest = write_manifest(&dir, "m.json", WITH_BAD_JOB);
    let out = detjobs()
        .args(["--manifest", manifest.to_str().unwrap(), "--quiet"])
        .output()
        .expect("run detjobs");
    assert_eq!(out.status.code(), Some(1));
    // The failure reason reaches the progress stream, not just a bit.
    let with_events = detjobs()
        .args(["--manifest", manifest.to_str().unwrap()])
        .output()
        .expect("run detjobs");
    let stderr = String::from_utf8_lossy(&with_events.stderr);
    assert!(
        stderr.contains("FAILED") && stderr.contains("syntax error"),
        "{stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fail_fast_still_exits_nonzero() {
    let dir = tmp_dir("cli-failfast");
    let manifest = write_manifest(&dir, "m.json", WITH_BAD_JOB);
    let out = detjobs()
        .args([
            "--manifest",
            manifest.to_str().unwrap(),
            "--fail-fast",
            "--workers",
            "1",
            "--quiet",
        ])
        .output()
        .expect("run detjobs");
    assert_eq!(out.status.code(), Some(1));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_then_resume_reproduces_the_report_bytes() {
    let dir = tmp_dir("cli-resume");
    let manifest = write_manifest(&dir, "m.json", HEALTHY);
    let ckpt = dir.join("ck.json");
    let r1 = dir.join("r1.json");
    let r2 = dir.join("r2.json");
    let stats = dir.join("stats.json");

    let first = detjobs()
        .args([
            "--manifest",
            manifest.to_str().unwrap(),
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--report",
            r1.to_str().unwrap(),
            "--retries",
            "3",
            "--quiet",
        ])
        .output()
        .expect("run detjobs");
    assert!(first.status.success());

    let second = detjobs()
        .args([
            "--manifest",
            manifest.to_str().unwrap(),
            "--resume",
            ckpt.to_str().unwrap(),
            "--report",
            r2.to_str().unwrap(),
            "--stats",
            stats.to_str().unwrap(),
            "--quiet",
        ])
        .output()
        .expect("run detjobs");
    assert!(second.status.success());
    assert!(String::from_utf8_lossy(&second.stderr).contains("resuming from"));

    let bytes1 = std::fs::read(&r1).unwrap();
    let bytes2 = std::fs::read(&r2).unwrap();
    assert_eq!(bytes1, bytes2, "resumed report must be byte-identical");

    // Everything was restored: zero attempts spent on the resumed leg.
    let stats_text = std::fs::read_to_string(&stats).unwrap();
    assert!(stats_text.contains("\"restored\": 2"), "{stats_text}");
    assert!(stats_text.contains("\"total_attempts\": 0"), "{stats_text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn orphaned_checkpoint_flags_warn_instead_of_silently_ignoring() {
    let dir = tmp_dir("cli-warn");
    let manifest = write_manifest(&dir, "m.json", HEALTHY);

    // --checkpoint-every without --checkpoint: warns, still runs.
    let out = detjobs()
        .args([
            "--manifest",
            manifest.to_str().unwrap(),
            "--checkpoint-every",
            "5",
            "--quiet",
            "--report",
            dir.join("r1.json").to_str().unwrap(),
        ])
        .output()
        .expect("run detjobs");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("warning: --checkpoint-every has no effect without --checkpoint"),
        "{stderr}"
    );

    // --resume without --checkpoint: warns that this leg is unprotected.
    let ckpt = dir.join("ck.json");
    let seeded = detjobs()
        .args([
            "--manifest",
            manifest.to_str().unwrap(),
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--quiet",
            "--report",
            dir.join("r2.json").to_str().unwrap(),
        ])
        .output()
        .expect("run detjobs");
    assert!(seeded.status.success());
    let resumed = detjobs()
        .args([
            "--manifest",
            manifest.to_str().unwrap(),
            "--resume",
            ckpt.to_str().unwrap(),
            "--quiet",
            "--report",
            dir.join("r3.json").to_str().unwrap(),
        ])
        .output()
        .expect("run detjobs");
    assert!(resumed.status.success());
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        stderr.contains("warning: --resume without --checkpoint"),
        "{stderr}"
    );

    // The fully-specified spelling stays warning-free.
    let clean = detjobs()
        .args([
            "--manifest",
            manifest.to_str().unwrap(),
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--checkpoint-every",
            "5",
            "--resume",
            ckpt.to_str().unwrap(),
            "--quiet",
            "--report",
            dir.join("r4.json").to_str().unwrap(),
        ])
        .output()
        .expect("run detjobs");
    assert!(clean.status.success());
    assert!(
        !String::from_utf8_lossy(&clean.stderr).contains("warning:"),
        "{}",
        String::from_utf8_lossy(&clean.stderr)
    );

    // --help documents the exit-code contract.
    let help = detjobs().arg("--help").output().expect("run detjobs");
    assert_eq!(help.status.code(), Some(2));
    let text = String::from_utf8_lossy(&help.stderr);
    assert!(text.contains("exit status:"), "{text}");
    assert!(text.contains("2  usage errors"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}
