//! Determinacy annotations — the `d ∈ {!, ?}` domain of the instrumented
//! semantics (Figure 7).

use mujs_interp::{ObjId, Value};
use mujs_ir::FuncId;
use std::fmt;
use std::rc::Rc;

/// A determinacy flag: `D` is the paper's `!` ("this value is the same in
/// every execution"), `I` is `?` ("may differ across executions").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Det {
    /// Determinate (`!`).
    D,
    /// Indeterminate (`?`).
    I,
}

impl Det {
    /// The join: determinate only if both are.
    #[must_use]
    pub fn join(self, other: Det) -> Det {
        match (self, other) {
            (Det::D, Det::D) => Det::D,
            _ => Det::I,
        }
    }

    /// Whether this is `!`.
    pub fn is_det(self) -> bool {
        self == Det::D
    }
}

impl fmt::Display for Det {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Det::D => "!",
            Det::I => "?",
        })
    }
}

/// An instrumented value `v^d`.
#[derive(Debug, Clone, PartialEq)]
pub struct DValue {
    /// The concrete value observed in this run.
    pub v: Value,
    /// Its determinacy.
    pub d: Det,
}

impl DValue {
    /// A determinate value (`v!`).
    pub fn det(v: Value) -> Self {
        DValue { v, d: Det::D }
    }

    /// An indeterminate value (`v?`).
    pub fn indet(v: Value) -> Self {
        DValue { v, d: Det::I }
    }

    /// `undefined!`.
    pub fn undef() -> Self {
        DValue::det(Value::Undefined)
    }

    /// The same value with the joined flag (`(v^d1)^d2`).
    #[must_use]
    pub fn weaken(mut self, d: Det) -> Self {
        self.d = self.d.join(d);
        self
    }
}

/// Slot annotation: determinacy flag plus the epoch counter at write time.
/// A slot is determinate iff its flag is [`Det::D`] *and* its epoch is
/// current — incrementing the global epoch is the O(1) heap flush of §4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotAnn {
    /// Flag recorded at write time.
    pub det: Det,
    /// Global epoch at write time.
    pub epoch: u64,
}

impl SlotAnn {
    /// The effective determinacy given the current epoch and whether the
    /// slot's container is subject to flushing.
    pub fn effective(&self, current_epoch: u64, flushable: bool) -> Det {
        if self.det == Det::D && (!flushable || self.epoch == current_epoch) {
            Det::D
        } else {
            Det::I
        }
    }
}

/// The value part of a determinacy fact, suitable for storage and
/// cross-run comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum FactValue {
    /// `undefined`
    Undefined,
    /// `null`
    Null,
    /// A boolean.
    Bool(bool),
    /// A number (bit-compared so `NaN` facts are stable).
    Num(f64),
    /// A string.
    Str(Rc<str>),
    /// A closure over the given function. Closures with the same code but
    /// different environments compare equal at this granularity; clients
    /// that need environments must consult contexts.
    Closure(FuncId),
    /// A non-function object, identified by its address in the
    /// instrumented run (meaningful within one analysis run; across runs
    /// it is related by the paper's address mapping µ).
    Object(ObjId),
}

impl FactValue {
    /// Structural equality with bitwise NaN handling.
    pub fn same(&self, other: &FactValue) -> bool {
        match (self, other) {
            (FactValue::Num(a), FactValue::Num(b)) => a.to_bits() == b.to_bits(),
            _ => self == other,
        }
    }

    /// Converts to a plain [`Value`] when primitive.
    pub fn as_value(&self) -> Option<Value> {
        Some(match self {
            FactValue::Undefined => Value::Undefined,
            FactValue::Null => Value::Null,
            FactValue::Bool(b) => Value::Bool(*b),
            FactValue::Num(n) => Value::Num(*n),
            FactValue::Str(s) => Value::Str(s.clone()),
            FactValue::Closure(_) | FactValue::Object(_) => return None,
        })
    }

    /// The string payload, if this is a string fact.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FactValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean fact.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            FactValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for FactValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FactValue::Undefined => write!(f, "undefined"),
            FactValue::Null => write!(f, "null"),
            FactValue::Bool(b) => write!(f, "{b}"),
            FactValue::Num(n) => write!(f, "{}", mujs_syntax::pretty::num_to_str(*n)),
            FactValue::Str(s) => write!(f, "{}", mujs_syntax::pretty::quote_str(s)),
            FactValue::Closure(id) => write!(f, "<closure {id}>"),
            FactValue::Object(id) => write!(f, "<object {id}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_table() {
        assert_eq!(Det::D.join(Det::D), Det::D);
        assert_eq!(Det::D.join(Det::I), Det::I);
        assert_eq!(Det::I.join(Det::D), Det::I);
        assert_eq!(Det::I.join(Det::I), Det::I);
    }

    #[test]
    fn weaken_applies_outer_flag() {
        let v = DValue::det(Value::Num(1.0));
        assert_eq!(v.clone().weaken(Det::D).d, Det::D);
        assert_eq!(v.weaken(Det::I).d, Det::I);
    }

    #[test]
    fn slot_effective_determinacy() {
        let s = SlotAnn {
            det: Det::D,
            epoch: 3,
        };
        assert_eq!(s.effective(3, true), Det::D);
        assert_eq!(s.effective(4, true), Det::I); // flushed since
        assert_eq!(s.effective(4, false), Det::D); // not flushable
        let i = SlotAnn {
            det: Det::I,
            epoch: 4,
        };
        assert_eq!(i.effective(4, true), Det::I);
    }

    #[test]
    fn nan_facts_compare_equal() {
        assert!(FactValue::Num(f64::NAN).same(&FactValue::Num(f64::NAN)));
        assert!(!FactValue::Num(0.0).same(&FactValue::Num(1.0)));
    }
}
