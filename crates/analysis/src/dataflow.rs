//! Intraprocedural dataflow over the [`Cfg`](crate::cfg::Cfg): reaching
//! definitions and a sym-level constant propagation whose determinate
//! results are comparable with (and must be subsumed by) the dynamic
//! fact database.
//!
//! The analysis tracks two families of variables per function: frame
//! temporaries (invisible to closures and `eval`, so only the function's
//! own statements write them) and hop-0 slot locals of `Function`-kind
//! frames. Everything else — named references, outer-frame slots, the
//! heap — is `Top`. Soundness around the escape hatches:
//!
//! * A call may invoke any closure nested (lexically) below the current
//!   function, and such a closure can write the caller's captured
//!   locals. [`ClosureWrites`] computes exactly which `(function, name)`
//!   pairs are assigned from nested functions, so calls kill only those
//!   locals. For specializer clones the kill set is unioned along the
//!   `specialized_from` chain: closures created while a clone executes
//!   capture the *clone's* activation, but their writes were attributed
//!   to the original by lexical resolution.
//! * A direct `eval` can write any local (never a temp).
//! * A `Place::Named` write may dynamically alias a tracked slot (the
//!   catch-poison and shadow-blocked cases keep such references by
//!   name), so it kills all same-named locals.
//!
//! The produced [`StaticFacts`] are keyed by [`StmtId`] — the same
//! program points the dynamic analysis attaches facts to — which is what
//! makes the static-det ⊆ dynamic-det cross-check in the top-level test
//! suite possible.

use crate::cfg::{build_cfg, Cfg};
use mujs_ir::closure_writes::ClosureWrites;
use mujs_ir::ir::{FuncId, FuncKind, Function, Place, Program, PropKey, StmtId, StmtKind};
use mujs_ir::{BinOp, Sym, UnOp};
use mujs_syntax::ast::Lit;
use std::collections::BTreeMap;
use std::rc::Rc;

/// An abstract value: a known primitive/closure constant or `Top`.
/// "Bottom" never appears in a reachable state (unreached blocks simply
/// have no state).
#[derive(Debug, Clone)]
pub enum AbsVal {
    /// A known number.
    Num(f64),
    /// A known string.
    Str(Rc<str>),
    /// A known boolean.
    Bool(bool),
    /// `null`.
    Null,
    /// `undefined`.
    Undefined,
    /// A closure over the given function. Only the identity of the code
    /// is known, not the captured environment — sufficient for callee
    /// facts, never used for equality.
    Closure(FuncId),
    /// Unknown.
    Top,
}

impl AbsVal {
    fn same(&self, other: &AbsVal) -> bool {
        match (self, other) {
            // Join by bit pattern: NaN joins with NaN, and -0 stays
            // distinct from +0 (conservative).
            (AbsVal::Num(a), AbsVal::Num(b)) => a.to_bits() == b.to_bits(),
            (AbsVal::Str(a), AbsVal::Str(b)) => a == b,
            (AbsVal::Bool(a), AbsVal::Bool(b)) => a == b,
            (AbsVal::Null, AbsVal::Null) => true,
            (AbsVal::Undefined, AbsVal::Undefined) => true,
            (AbsVal::Closure(a), AbsVal::Closure(b)) => a == b,
            (AbsVal::Top, AbsVal::Top) => true,
            _ => false,
        }
    }

    /// JavaScript truthiness, when the value is known.
    pub fn truthy(&self) -> Option<bool> {
        match self {
            AbsVal::Num(n) => Some(*n != 0.0 && !n.is_nan()),
            AbsVal::Str(s) => Some(!s.is_empty()),
            AbsVal::Bool(b) => Some(*b),
            AbsVal::Null | AbsVal::Undefined => Some(false),
            AbsVal::Closure(_) => Some(true),
            AbsVal::Top => None,
        }
    }

    fn of_lit(lit: &Lit) -> AbsVal {
        match lit {
            Lit::Num(n) => AbsVal::Num(*n),
            Lit::Str(s) => AbsVal::Str(s.clone()),
            Lit::Bool(b) => AbsVal::Bool(*b),
            Lit::Null => AbsVal::Null,
            Lit::Undefined => AbsVal::Undefined,
        }
    }
}

/// Statically determinate facts, keyed by program point.
#[derive(Debug, Clone, Default)]
pub struct StaticFacts {
    /// Dynamic property keys proven to be a specific string
    /// (`GetProp`/`SetProp`/`DeleteProp` sites).
    pub prop_keys: BTreeMap<StmtId, Rc<str>>,
    /// Call/new sites whose callee is a specific function's closure.
    pub callees: BTreeMap<StmtId, FuncId>,
    /// `if` conditions proven to take one side.
    pub conds: BTreeMap<StmtId, bool>,
}

impl StaticFacts {
    /// Total number of facts.
    pub fn len(&self) -> usize {
        self.prop_keys.len() + self.callees.len() + self.conds.len()
    }

    /// Whether no facts were derived.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Unions `other` into `self` (point sets are disjoint across
    /// functions, so plain insertion suffices).
    pub fn extend(&mut self, other: StaticFacts) {
        self.prop_keys.extend(other.prop_keys);
        self.callees.extend(other.callees);
        self.conds.extend(other.conds);
    }
}

/// Runs constant propagation over every function of `prog` and unions
/// the per-function facts.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), mujs_syntax::SyntaxError> {
/// let ast = mujs_syntax::parse("var o = {}; o[\"k\" + \"ey\"] = 1;")?;
/// let prog = mujs_ir::lower::lower_program(&ast);
/// let facts = mujs_analysis::analyze_program(&prog);
/// assert!(facts.prop_keys.values().any(|k| &**k == "key"));
/// # Ok(())
/// # }
/// ```
pub fn analyze_program(prog: &Program) -> StaticFacts {
    let cw = ClosureWrites::compute(prog);
    let mut out = StaticFacts::default();
    for f in &prog.funcs {
        out.extend(analyze_function(prog, &cw, f.id));
    }
    out
}

/// Runs constant propagation over one function.
pub fn analyze_function(prog: &Program, cw: &ClosureWrites, func: FuncId) -> StaticFacts {
    let f = prog.func(func);
    let cfg = build_cfg(f);
    let an = FuncAnalysis::new(prog, cw, f);
    let states = solve(&cfg, &an);
    let mut facts = StaticFacts::default();
    for (b, blk) in cfg.blocks.iter().enumerate() {
        let Some(entry) = &states[b] else { continue };
        let mut st = entry.clone();
        an.apply_havoc(&blk.havoc, &mut st);
        for s in &blk.stmts {
            an.emit(s, &st, &mut facts);
            an.transfer(s, &mut st);
        }
        if let Some(br) = &blk.branch {
            if br.is_if {
                if let Some(t) = an.eval(&br.cond, &st).truthy() {
                    facts.conds.insert(br.stmt, t);
                }
            }
        }
    }
    facts
}

/// Per-block entry states: `None` = unreachable.
type States = Vec<Option<State>>;

#[derive(Debug, Clone)]
struct State {
    temps: Vec<AbsVal>,
    locals: Vec<AbsVal>,
}

impl State {
    /// Joins `other` into `self`; returns whether `self` changed.
    fn join(&mut self, other: &State) -> bool {
        let mut changed = false;
        let widen = |mine: &mut Vec<AbsVal>, theirs: &[AbsVal], changed: &mut bool| {
            for (m, t) in mine.iter_mut().zip(theirs) {
                if !m.same(t) && !matches!(m, AbsVal::Top) {
                    *m = AbsVal::Top;
                    *changed = true;
                }
            }
        };
        widen(&mut self.temps, &other.temps, &mut changed);
        widen(&mut self.locals, &other.locals, &mut changed);
        changed
    }
}

fn solve(cfg: &Cfg, an: &FuncAnalysis) -> States {
    let mut states: States = vec![None; cfg.blocks.len()];
    states[cfg.entry] = Some(an.entry_state());
    let mut work: Vec<usize> = vec![cfg.entry];
    while let Some(b) = work.pop() {
        let Some(entry) = states[b].clone() else {
            continue;
        };
        let mut st = entry;
        let blk = &cfg.blocks[b];
        an.apply_havoc(&blk.havoc, &mut st);
        for s in &blk.stmts {
            an.transfer(s, &mut st);
        }
        for &succ in &blk.succs {
            let changed = match &mut states[succ] {
                Some(existing) => existing.join(&st),
                slot @ None => {
                    *slot = Some(st.clone());
                    true
                }
            };
            if changed && !work.contains(&succ) {
                work.push(succ);
            }
        }
    }
    states
}

struct FuncAnalysis<'a> {
    f: &'a Function,
    /// Initial abstract value of each local slot at activation entry.
    entry_locals: Vec<AbsVal>,
    /// Local slots a call can clobber (assigned by nested closures).
    call_kills: Vec<usize>,
}

impl<'a> FuncAnalysis<'a> {
    fn new(prog: &'a Program, cw: &ClosureWrites, f: &'a Function) -> Self {
        let entry_locals = f.locals.iter().map(|&sym| entry_value(f, sym)).collect();
        // Writers resolve lexically against the original function, but
        // their closures capture whichever clone's activation is live —
        // so a clone inherits its originals' kill sets.
        let mut lineage = vec![f.id];
        let mut cur = f.specialized_from;
        let mut fuel = prog.funcs.len();
        while let (Some(orig), true) = (cur, fuel > 0) {
            lineage.push(orig);
            cur = prog
                .funcs
                .get(orig.0 as usize)
                .and_then(|g| g.specialized_from);
            fuel -= 1;
        }
        let call_kills = f
            .locals
            .iter()
            .enumerate()
            .filter(|&(_, &sym)| lineage.iter().any(|&id| cw.is_written(id, sym)))
            .map(|(i, _)| i)
            .collect();
        FuncAnalysis {
            f,
            entry_locals,
            call_kills,
        }
    }

    fn entry_state(&self) -> State {
        State {
            // Temps are written before first read by construction of the
            // lowering, but Top costs nothing and assumes nothing.
            temps: vec![AbsVal::Top; self.f.n_temps as usize],
            locals: self.entry_locals.clone(),
        }
    }

    fn eval(&self, p: &Place, st: &State) -> AbsVal {
        match p {
            Place::Temp(t) => st.temps.get(t.0 as usize).cloned().unwrap_or(AbsVal::Top),
            Place::Slot { hops: 0, slot, .. } => st
                .locals
                .get(*slot as usize)
                .cloned()
                .unwrap_or(AbsVal::Top),
            _ => AbsVal::Top,
        }
    }

    fn write(&self, p: &Place, v: AbsVal, st: &mut State) {
        match p {
            Place::Temp(t) => {
                if let Some(slot) = st.temps.get_mut(t.0 as usize) {
                    *slot = v;
                }
            }
            Place::Slot { hops: 0, slot, .. } => {
                if let Some(l) = st.locals.get_mut(*slot as usize) {
                    *l = v;
                }
            }
            // An outer-frame write touches another activation; a named
            // write may alias any same-named tracked local.
            Place::Slot { .. } => {}
            Place::Named(sym) => self.kill_named(*sym, st),
        }
    }

    fn kill_named(&self, sym: Sym, st: &mut State) {
        for (i, &l) in self.f.locals.iter().enumerate() {
            if l == sym {
                st.locals[i] = AbsVal::Top;
            }
        }
    }

    fn kill_calls(&self, st: &mut State) {
        for &i in &self.call_kills {
            st.locals[i] = AbsVal::Top;
        }
    }

    fn apply_havoc(&self, havoc: &crate::cfg::Havoc, st: &mut State) {
        for p in &havoc.places {
            self.write(p, AbsVal::Top, st);
        }
        if havoc.all_locals {
            st.locals.fill(AbsVal::Top);
        }
    }

    fn transfer(&self, s: &mujs_ir::Stmt, st: &mut State) {
        match &s.kind {
            StmtKind::Const { dst, lit } => self.write(dst, AbsVal::of_lit(lit), st),
            StmtKind::Copy { dst, src } => {
                let v = self.eval(src, st);
                self.write(dst, v, st);
            }
            StmtKind::Closure { dst, func } => self.write(dst, AbsVal::Closure(*func), st),
            StmtKind::BinOp { dst, op, lhs, rhs } => {
                let v = eval_binop(*op, &self.eval(lhs, st), &self.eval(rhs, st));
                self.write(dst, v, st);
            }
            StmtKind::UnOp { dst, op, src } => {
                let v = eval_unop(*op, &self.eval(src, st));
                self.write(dst, v, st);
            }
            StmtKind::Call { dst, .. } | StmtKind::New { dst, .. } => {
                self.kill_calls(st);
                self.write(dst, AbsVal::Top, st);
            }
            StmtKind::Eval { dst, .. } => {
                // Direct eval runs arbitrary code in this very scope: it
                // can assign every local, but temps stay invisible.
                st.locals.fill(AbsVal::Top);
                self.write(dst, AbsVal::Top, st);
            }
            StmtKind::SetProp { .. } => {}
            StmtKind::NewObject { dst, .. }
            | StmtKind::GetProp { dst, .. }
            | StmtKind::DeleteProp { dst, .. }
            | StmtKind::LoadThis { dst }
            | StmtKind::TypeofName { dst, .. }
            | StmtKind::HasProp { dst, .. }
            | StmtKind::InstanceOf { dst, .. }
            | StmtKind::EnumProps { dst, .. } => self.write(dst, AbsVal::Top, st),
            // Compound statements never appear inside a basic block;
            // `Return`/`Throw` end one without writing anything.
            _ => {}
        }
    }

    /// Records facts derivable at `s` given the state *before* it.
    fn emit(&self, s: &mujs_ir::Stmt, st: &State, facts: &mut StaticFacts) {
        match &s.kind {
            StmtKind::GetProp { key, .. }
            | StmtKind::SetProp { key, .. }
            | StmtKind::DeleteProp { key, .. } => {
                if let PropKey::Dynamic(p) = key {
                    if let AbsVal::Str(k) = self.eval(p, st) {
                        facts.prop_keys.insert(s.id, k);
                    }
                }
            }
            StmtKind::Call { callee, .. } | StmtKind::New { callee, .. } => {
                if let AbsVal::Closure(g) = self.eval(callee, st) {
                    facts.callees.insert(s.id, g);
                }
            }
            _ => {}
        }
    }
}

/// Initial abstract value of local `sym` in `f`'s activation, following
/// the machine's entry sequence: parameters, then the `arguments` array
/// (overwriting a parameter of that name), then `var`s where absent,
/// then hoisted functions (overwriting), then the self-binding where
/// still absent.
fn entry_value(f: &Function, sym: Sym) -> AbsVal {
    debug_assert_eq!(f.kind, FuncKind::Function);
    // Hoisted functions bind last; with duplicate declarations the last
    // one wins.
    if let Some(&(_, g)) = f.decls.funcs.iter().rev().find(|&&(n, _)| n == sym) {
        return AbsVal::Closure(g);
    }
    if sym == Sym::ARGUMENTS {
        return AbsVal::Top;
    }
    if f.params.contains(&sym) {
        return AbsVal::Top;
    }
    if f.decls.vars.contains(&sym) {
        return AbsVal::Undefined;
    }
    if f.bind_self && f.name == Some(sym) {
        return AbsVal::Closure(f.id);
    }
    AbsVal::Top
}

fn eval_binop(op: BinOp, l: &AbsVal, r: &AbsVal) -> AbsVal {
    use AbsVal::*;
    match op {
        BinOp::Add => match (l, r) {
            (Num(a), Num(b)) => Num(a + b),
            (Str(a), Str(b)) => Str(Rc::from(format!("{a}{b}").as_str())),
            _ => Top,
        },
        BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => match (l, r) {
            (Num(a), Num(b)) => Num(match op {
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
                _ => a % b,
            }),
            _ => Top,
        },
        BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => match (l, r) {
            (Num(a), Num(b)) => Bool(match op {
                BinOp::Lt => a < b,
                BinOp::LtEq => a <= b,
                BinOp::Gt => a > b,
                _ => a >= b,
            }),
            _ => Top,
        },
        BinOp::Eq | BinOp::NotEq => {
            let eq = abstract_loose_eq(l, r);
            match (op, eq) {
                (BinOp::Eq, Some(e)) => Bool(e),
                (BinOp::NotEq, Some(e)) => Bool(!e),
                _ => Top,
            }
        }
        BinOp::StrictEq | BinOp::StrictNotEq => {
            let eq = abstract_strict_eq(l, r);
            match (op, eq) {
                (BinOp::StrictEq, Some(e)) => Bool(e),
                (BinOp::StrictNotEq, Some(e)) => Bool(!e),
                _ => Top,
            }
        }
        // Bit operations involve ToInt32 coercion; not worth modelling.
        BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor | BinOp::Shl | BinOp::Shr | BinOp::UShr => Top,
    }
}

/// `===` on known values. Two closures compare by object identity, which
/// abstract closures cannot decide.
fn abstract_strict_eq(l: &AbsVal, r: &AbsVal) -> Option<bool> {
    use AbsVal::*;
    match (l, r) {
        (Top, _) | (_, Top) => None,
        (Num(a), Num(b)) => Some(a == b),
        (Str(a), Str(b)) => Some(a == b),
        (Bool(a), Bool(b)) => Some(a == b),
        (Null, Null) | (Undefined, Undefined) => Some(true),
        (Closure(_), Closure(_)) => None,
        // Different runtime types: strictly unequal.
        _ => Some(false),
    }
}

/// `==` on known values; only coercion-free cases are decided.
fn abstract_loose_eq(l: &AbsVal, r: &AbsVal) -> Option<bool> {
    use AbsVal::*;
    match (l, r) {
        (Top, _) | (_, Top) => None,
        (Num(a), Num(b)) => Some(a == b),
        (Str(a), Str(b)) => Some(a == b),
        (Bool(a), Bool(b)) => Some(a == b),
        // null and undefined are loosely equal to each other and to
        // nothing else.
        (Null | Undefined, Null | Undefined) => Some(true),
        (Null | Undefined, _) | (_, Null | Undefined) => Some(false),
        // Mixed primitive types coerce; objects coerce via toPrimitive.
        _ => None,
    }
}

fn eval_unop(op: UnOp, v: &AbsVal) -> AbsVal {
    use AbsVal::*;
    match op {
        UnOp::Neg => match v {
            Num(n) => Num(-n),
            _ => Top,
        },
        UnOp::Pos => match v {
            Num(n) => Num(*n),
            _ => Top,
        },
        UnOp::Not => match v.truthy() {
            Some(t) => Bool(!t),
            None => Top,
        },
        UnOp::BitNot => Top,
        UnOp::Typeof => match v {
            Num(_) => Str(Rc::from("number")),
            Str(_) => Str(Rc::from("string")),
            Bool(_) => Str(Rc::from("boolean")),
            Undefined => Str(Rc::from("undefined")),
            Null => Str(Rc::from("object")),
            Closure(_) => Str(Rc::from("function")),
            Top => Top,
        },
        // `void` discards even unknown operands.
        UnOp::Void => Undefined,
    }
}
