//! # mujs-dom
//!
//! The DOM emulation substrate — the reproduction's stand-in for the
//! ZombieJS DOM emulation the paper's prototype ran on (§4).
//!
//! It provides three things:
//!
//! * [`document`]: an emulated document tree (elements, attributes, ids,
//!   text) with the usual structural operations;
//! * [`events`]: an event-listener registry plus [`events::EventPlan`],
//!   the scripted post-load event sequence a driver fires after the main
//!   script finishes;
//! * [`api`]: the specification of the DOM native-function surface and how
//!   each function must be treated by the determinacy analysis (return
//!   values indeterminate, no heap flushes, handler-entry flushes — and the
//!   unsound `DetDOM` mode of §5.1 that flips DOM reads to determinate).
//!
//! The JavaScript-facing bindings live in the interpreter crates; this
//! crate is engine-agnostic.

pub mod api;
pub mod document;
pub mod events;

pub use api::{DomEffect, DomFunctionSpec, DomHost, DOM_FUNCTIONS};
pub use document::{Document, DocumentBuilder, Node, NodeId};
pub use events::{EventPlan, EventRegistry, EventStep, EventTarget, EventTargetSel};
