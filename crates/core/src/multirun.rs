//! Multi-execution fact combination — the paper's §7: "Running the
//! determinacy analysis on different inputs yields more facts, which are
//! all sound and hence can be used together."
//!
//! Each run's facts are individually sound; combining them point-wise via
//! [`FactDb::absorb`] keeps determinate entries only where every run that
//! recorded the entry agrees — so a combined database both *extends*
//! coverage (contexts only some runs reached) and *sharpens* honesty
//! (values that vary across inputs degrade to `?`, catching facts that
//! looked determinate merely because a single run cannot witness the
//! variation it is already flagging).
//!
//! Also here: the §7 "shallower calling contexts" exploration —
//! projecting fully-qualified facts onto bounded context suffixes. The
//! projection is a *heuristic*: a fact observed under every full context
//! sharing a suffix is not thereby proven for unobserved contexts with
//! the same suffix, so projected facts trade the soundness guarantee for
//! reusability and must be consumed as hints (e.g. by optimizers that
//! guard specialized code with runtime checks).

use crate::config::AnalysisConfig;
use crate::driver::{AnalysisOutcome, DetHarness};
use crate::facts::FactDb;
use crate::supervisor::{supervised_analyze, supervised_analyze_dom, RunFailure, RunHooks};
use mujs_dom::document::Document;
use mujs_dom::events::EventPlan;
use mujs_interp::context::{ContextTable, CtxId};
use serde::Serialize;

/// Result of combining several runs.
#[derive(Debug)]
pub struct MultiRunOutcome {
    /// The combined (still sound) fact database, interned against
    /// [`MultiRunOutcome::ctxs`].
    pub facts: FactDb,
    /// The master context table the combined facts are keyed by. Each
    /// run's interned ids are translated through their frame chains
    /// (context ids are per-run interning artifacts).
    pub ctxs: ContextTable,
    /// Per-run outcomes, for inspection. Only successful runs appear
    /// here; failed seeds are in [`MultiRunOutcome::failures`].
    pub runs: Vec<AnalysisOutcome>,
    /// Runs that died (engine panic): each carries the seed and how far
    /// it got. A failed seed contributes no facts, but the surviving
    /// seeds still combine — per-seed isolation is what makes large
    /// multi-run batches practical on untrusted inputs.
    pub failures: Vec<RunFailure>,
    /// Determinate-vs-determinate conflicts seen while combining; nonzero
    /// indicates an analysis bug (sound facts cannot disagree).
    pub conflicts: u64,
}

impl MultiRunOutcome {
    /// Combines per-run results in **input order** into one outcome.
    ///
    /// This is the single place run results become a combined database:
    /// [`analyze_many_hooked`] feeds it seeds sequentially, and the
    /// `mujs-jobs` pool feeds it worker results collected back into seed
    /// order — so a pooled fan-out combines byte-identically to the
    /// sequential path regardless of worker count or completion order.
    pub fn combine<I>(results: I, max_facts: usize) -> MultiRunOutcome
    where
        I: IntoIterator<Item = Result<AnalysisOutcome, RunFailure>>,
    {
        let mut combined = FactDb::new(max_facts);
        let mut master = ContextTable::new();
        let mut runs = Vec::new();
        let mut failures = Vec::new();
        let mut conflicts = 0;
        for r in results {
            match r {
                Ok(out) => {
                    conflicts += combined.absorb_reinterned(&out.facts, &out.ctxs, &mut master);
                    runs.push(out);
                }
                Err(failure) => failures.push(failure),
            }
        }
        MultiRunOutcome {
            facts: combined,
            ctxs: master,
            runs,
            failures,
            conflicts,
        }
    }
}

/// Runs the analysis once per seed and combines the fact databases.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), mujs_syntax::SyntaxError> {
/// use determinacy::driver::DetHarness;
/// use determinacy::multirun::analyze_many;
/// let mut h = DetHarness::from_src("var x = Math.random() < 0.5 ? 1 : 2;")?;
/// let combined = analyze_many(&mut h, &[1, 2, 3, 4], Default::default());
/// assert_eq!(combined.runs.len(), 4);
/// # Ok(())
/// # }
/// ```
pub fn analyze_many(
    h: &mut DetHarness,
    seeds: &[u64],
    base_cfg: AnalysisConfig,
) -> MultiRunOutcome {
    analyze_many_with(h, seeds, base_cfg, None, &EventPlan::new())
}

/// [`analyze_many`] with a DOM page and event plan.
///
/// Every per-seed run executes under the supervisor: a run that panics is
/// recorded as a [`RunFailure`] in [`MultiRunOutcome::failures`] and the
/// remaining seeds still run and combine. Deadline/memory/step stops are
/// not failures — those runs end with their partial (still sound) facts,
/// which combine normally.
pub fn analyze_many_with(
    h: &mut DetHarness,
    seeds: &[u64],
    base_cfg: AnalysisConfig,
    doc: Option<&Document>,
    plan: &EventPlan,
) -> MultiRunOutcome {
    analyze_many_hooked(h, seeds, base_cfg, doc, plan, &RunHooks::supervised())
}

/// [`analyze_many_with`] using caller-provided supervision hooks — e.g. a
/// shared [`crate::supervisor::CancelToken`] so a UI can stop the whole
/// batch, or a fault plan in crash-safety tests.
pub fn analyze_many_hooked(
    h: &mut DetHarness,
    seeds: &[u64],
    base_cfg: AnalysisConfig,
    doc: Option<&Document>,
    plan: &EventPlan,
    hooks: &RunHooks,
) -> MultiRunOutcome {
    let results: Vec<Result<AnalysisOutcome, RunFailure>> = seeds
        .iter()
        .map(|&seed| {
            let cfg = AnalysisConfig {
                seed,
                ..base_cfg.clone()
            };
            match doc {
                Some(d) => supervised_analyze_dom(h, cfg, d.clone(), plan, hooks),
                None => supervised_analyze(h, cfg, hooks),
            }
        })
        .collect();
    MultiRunOutcome::combine(results, base_cfg.max_facts)
}

/// Projects fully-qualified facts onto context suffixes of depth `k` —
/// the §7 "shallower calling contexts" experiment. **Heuristic**: entries
/// whose full contexts share a suffix merge (agreeing determinate values
/// survive, disagreements degrade to `?`); the result over-claims for
/// contexts the dynamic runs never observed and must not be used where
/// the paper's soundness guarantee is required.
pub fn project_to_depth(facts: &FactDb, ctxs: &mut ContextTable, k: usize) -> FactDb {
    let mut out = FactDb::new(0);
    for (kind, point, ctx, fact) in facts.iter() {
        let suffix = ctxs.suffix(ctx, k);
        out.record_merged(kind, point, suffix, fact.clone());
    }
    for (point, ctx, trip) in facts.iter_trips() {
        let suffix = ctxs.suffix(ctx, k);
        out.record_trip(point, suffix, trip);
    }
    out
}

/// One exported fact row (JSON).
#[derive(Debug, Serialize)]
pub struct FactRow {
    /// Fact kind (`Define`, `Cond`, `EvalArg`, `Callee`, `PropKey`).
    pub kind: String,
    /// Source line of the program point.
    pub line: u32,
    /// The calling context as `line` or `line_occ` steps.
    pub context: Vec<String>,
    /// Rendered value, or `"?"`.
    pub value: String,
    /// Whether the fact is determinate.
    pub determinate: bool,
}

/// Exports a fact database as pretty JSON for external clients (the
/// paper's WALA integration consumed facts in a similar exchange form).
///
/// # Panics
///
/// Panics if JSON serialization fails (it cannot for these types).
pub fn export_json(
    facts: &FactDb,
    prog: &mujs_ir::Program,
    sf: &mujs_syntax::SourceFile,
    ctxs: &ContextTable,
) -> String {
    let mut rows: Vec<FactRow> = facts
        .iter()
        .map(|(kind, point, ctx, fact)| {
            let line = sf.line_col(prog.span_of(point)).line;
            let context = render_ctx(ctx, prog, sf, ctxs);
            FactRow {
                kind: format!("{kind:?}"),
                line,
                context,
                value: match fact.value() {
                    Some(v) => v.to_string(),
                    None => "?".to_owned(),
                },
                determinate: fact.is_det(),
            }
        })
        .collect();
    // Total order including value/determinacy tiebreakers: two points on
    // the same line with the same kind and context must still serialize in
    // a fixed order, so the exported bytes are independent of the fact
    // database's internal (hash) iteration order. The `mujs-jobs` batch
    // determinism guarantee relies on this.
    rows.sort_by(|a, b| {
        (a.line, &a.kind, &a.context, &a.value, a.determinate).cmp(&(
            b.line,
            &b.kind,
            &b.context,
            &b.value,
            b.determinate,
        ))
    });
    serde_json::to_string_pretty(&rows).expect("fact rows serialize")
}

fn render_ctx(
    ctx: CtxId,
    prog: &mujs_ir::Program,
    sf: &mujs_syntax::SourceFile,
    ctxs: &ContextTable,
) -> Vec<String> {
    ctxs.frames(ctx)
        .into_iter()
        .map(|(site, occ)| {
            let line = sf.line_col(prog.span_of(site)).line;
            if occ == 0 {
                format!("{line}")
            } else {
                format!("{line}_{occ}")
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::FactKind;
    use crate::Fact;

    #[test]
    fn multi_run_extends_branch_coverage() {
        // A coin flip guards two different constants; a single run covers
        // one arm, several seeds cover both, and the combined database has
        // determinate facts from each arm's interior.
        let src = r#"
var coin = Math.random() < 0.5;
var picked = 0;
if (coin) { var a_inner = 11; picked = 1; } else { var b_inner = 22; picked = 2; }
"#;
        let mut h = DetHarness::from_src(src).unwrap();
        let combined = analyze_many(&mut h, &[0, 1, 2, 3, 4, 5, 6, 7], Default::default());
        let values: Vec<String> = combined
            .facts
            .iter()
            .filter(|(k, _, _, _)| *k == FactKind::Define)
            .filter_map(|(_, _, _, f)| f.value().map(|v| v.to_string()))
            .collect();
        assert!(values.contains(&"11".to_owned()), "{values:?}");
        assert!(values.contains(&"22".to_owned()), "{values:?}");
    }

    #[test]
    fn multi_run_degrades_disagreeing_facts() {
        // `picked` is written differently per arm: whichever run observes
        // it, the values disagree across runs at the same point, so the
        // combination must not keep both as determinate.
        let src = r#"
if (Math.random() < 0.5) { var w = 1; } else { var w = 2; }
var observed = w;
"#;
        let mut h = DetHarness::from_src(src).unwrap();
        let combined = analyze_many(&mut h, &[0, 1, 2, 3, 4, 5], Default::default());
        // Single-run facts already mark `observed` indeterminate (the
        // branch writes are marked after the merge); combining runs must
        // not resurrect determinacy anywhere.
        let indet_preserved = combined
            .facts
            .iter()
            .filter(|(k, _, _, _)| *k == FactKind::Define)
            .all(|(_, p, c, f)| {
                let single = combined.runs[0].facts.get(FactKind::Define, p, c);
                !(matches!(single, Some(Fact::Indet)) && f.is_det())
            });
        assert!(indet_preserved);
    }

    #[test]
    fn projection_merges_contexts() {
        let src = r#"
function id(v) { var echo = v; return echo; }
id(1);
id(1);
id(2);
"#;
        let mut h = DetHarness::from_src(src).unwrap();
        let mut out = h.analyze(Default::default());
        // Fully qualified: three determinate facts for `echo` (one per
        // call site). Projected to depth 0 (context-free), they collide:
        // 1, 1, 2 → indeterminate.
        let projected = project_to_depth(&out.facts, &mut out.ctxs, 0);
        let echo_facts: Vec<&Fact> = projected
            .iter()
            .filter(|(k, _, _, _)| *k == FactKind::Define)
            .map(|(_, _, _, f)| f)
            .collect();
        assert!(echo_facts.iter().any(|f| !f.is_det()));
        // Depth 1 keeps the per-call-site facts distinct.
        let projected1 = project_to_depth(&out.facts, &mut out.ctxs, 1);
        assert!(projected1.det_count() >= out.facts.det_count() / 2);
    }

    #[test]
    fn json_export_is_parseable_and_complete() {
        let src = "var x = 1 + 2; var y = Math.random();";
        let mut h = DetHarness::from_src(src).unwrap();
        let out = h.analyze(Default::default());
        let json = export_json(&out.facts, &h.program, &h.source, &out.ctxs);
        let rows: Vec<serde_json::Value> = serde_json::from_str(&json).unwrap();
        assert_eq!(rows.len(), out.facts.len());
        assert!(rows
            .iter()
            .any(|r| r["value"] == "3" && r["determinate"] == true));
        assert!(rows
            .iter()
            .any(|r| r["value"] == "?" && r["determinate"] == false));
    }
}
