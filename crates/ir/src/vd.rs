//! Static write domains — the `vd(s)` function of the paper (§3.1).
//!
//! `vd(s)` is the set of variables that a statement list *may* assign,
//! excluding assignments inside nested functions (callees cannot write
//! their caller's locals). The instrumented semantics uses it in rule
//! (ĈNTRABORT): when counterfactual execution is cut off, every variable
//! in `vd` of the unexecuted branch is conservatively marked indeterminate.
//!
//! Heap effects (`pd`) cannot be bounded statically — a branch may call
//! arbitrary functions — which is exactly why (ĈNTRABORT) also flushes the
//! heap.

use crate::ir::{Place, StmtKind};
use std::collections::HashSet;

/// Slot places canonicalize to their name: write-domain identity is
/// name-based, unaffected by slot resolution.
fn canon(p: &Place) -> Place {
    match p.as_var_sym() {
        Some(sym) => Place::Named(sym),
        None => p.clone(),
    }
}

/// The statically computed write domain of a block.
#[derive(Debug, Clone, Default)]
pub struct WriteDomain {
    /// Places that may be assigned.
    pub places: HashSet<Place>,
    /// Whether the block contains a *direct* `eval`, which can declare and
    /// assign variables invisible to this analysis. Consumers must treat
    /// the entire scope chain as written when this is set.
    pub contains_eval: bool,
}

/// Computes the write domain of `block` (without descending into nested
/// functions — closures created here execute elsewhere).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), mujs_syntax::SyntaxError> {
/// use mujs_ir::ir::Place;
/// let ast = mujs_syntax::parse("var x; if (c) { x = 1; } else { y = 2; }")?;
/// let prog = mujs_ir::lower::lower_program(&ast);
/// let wd = mujs_ir::vd::write_domain(&prog.func(prog.entry().unwrap()).body);
/// assert!(wd.places.contains(&Place::Named(prog.interner.get("x").unwrap())));
/// assert!(wd.places.contains(&Place::Named(prog.interner.get("y").unwrap())));
/// # Ok(())
/// # }
/// ```
pub fn write_domain(block: &[crate::ir::Stmt]) -> WriteDomain {
    let mut wd = WriteDomain::default();
    collect(block, &mut wd);
    wd
}

fn collect(block: &[crate::ir::Stmt], wd: &mut WriteDomain) {
    for s in block {
        match &s.kind {
            StmtKind::Const { dst, .. }
            | StmtKind::Copy { dst, .. }
            | StmtKind::Closure { dst, .. }
            | StmtKind::NewObject { dst, .. }
            | StmtKind::GetProp { dst, .. }
            | StmtKind::DeleteProp { dst, .. }
            | StmtKind::BinOp { dst, .. }
            | StmtKind::UnOp { dst, .. }
            | StmtKind::Call { dst, .. }
            | StmtKind::New { dst, .. }
            | StmtKind::LoadThis { dst }
            | StmtKind::TypeofName { dst, .. }
            | StmtKind::HasProp { dst, .. }
            | StmtKind::InstanceOf { dst, .. }
            | StmtKind::EnumProps { dst, .. } => {
                wd.places.insert(canon(dst));
            }
            StmtKind::Eval { dst, .. } => {
                wd.places.insert(canon(dst));
                wd.contains_eval = true;
            }
            StmtKind::SetProp { .. } => {}
            StmtKind::If {
                then_blk, else_blk, ..
            } => {
                collect(then_blk, wd);
                collect(else_blk, wd);
            }
            StmtKind::Loop {
                cond_blk,
                body,
                update,
                ..
            } => {
                collect(cond_blk, wd);
                collect(body, wd);
                collect(update, wd);
            }
            StmtKind::Breakable { body } => collect(body, wd),
            StmtKind::Try {
                block,
                catch,
                finally,
            } => {
                collect(block, wd);
                if let Some((name, b)) = catch {
                    wd.places.insert(Place::Named(*name));
                    collect(b, wd);
                }
                if let Some(b) = finally {
                    collect(b, wd);
                }
            }
            StmtKind::Return { .. }
            | StmtKind::Break
            | StmtKind::Continue
            | StmtKind::Throw { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Program;
    use crate::lower::lower_program;
    use mujs_syntax::parse;

    fn prog_of(src: &str) -> Program {
        lower_program(&parse(src).unwrap())
    }

    fn wd_of(prog: &Program) -> WriteDomain {
        write_domain(&prog.func(prog.entry().unwrap()).body)
    }

    fn has_named(prog: &Program, wd: &WriteDomain, name: &str) -> bool {
        prog.interner
            .get(name)
            .is_some_and(|s| wd.places.contains(&Place::Named(s)))
    }

    #[test]
    fn includes_writes_in_all_branches() {
        let p = prog_of("if (c) { a = 1; } else { while (d) { b = 2; } }");
        let wd = wd_of(&p);
        assert!(has_named(&p, &wd, "a"));
        assert!(has_named(&p, &wd, "b"));
    }

    #[test]
    fn excludes_nested_function_writes() {
        let p = prog_of("var f = function() { hidden = 1; };");
        let wd = wd_of(&p);
        assert!(!has_named(&p, &wd, "hidden"));
        assert!(has_named(&p, &wd, "f"));
    }

    #[test]
    fn heap_writes_are_not_variable_writes() {
        let p = prog_of("o.p = 1;");
        let wd = wd_of(&p);
        assert!(!has_named(&p, &wd, "o"));
        assert!(!has_named(&p, &wd, "p"));
    }

    #[test]
    fn catch_variable_is_written() {
        let p = prog_of("try { f(); } catch (e) { g(); }");
        let wd = wd_of(&p);
        assert!(has_named(&p, &wd, "e"));
    }

    #[test]
    fn slot_resolved_writes_canonicalize_to_names() {
        let p = prog_of("function f() { var a; if (c) { a = 1; } }");
        let f = p
            .funcs
            .iter()
            .find(|f| f.name.is_some_and(|s| p.interner.resolve(s) == "f"))
            .unwrap();
        let wd = write_domain(&f.body);
        assert!(has_named(&p, &wd, "a"), "Slot writes must appear as Named");
    }

    #[test]
    fn direct_eval_is_flagged() {
        assert!(wd_of(&prog_of("eval(s);")).contains_eval);
        assert!(!wd_of(&prog_of("f(s);")).contains_eval);
    }
}
