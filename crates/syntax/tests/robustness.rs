//! Robustness: the lexer and parser must never panic, whatever the input
//! — errors are always returned as values.

use mujs_syntax::{lexer::lex, parse, parse_spawned, SyntaxErrorKind, MAX_NESTING};
use proptest::prelude::*;

proptest! {
    #[test]
    fn lexer_never_panics(src in any::<String>()) {
        let _ = lex(&src);
    }

    #[test]
    fn parser_never_panics(src in any::<String>()) {
        let _ = parse(&src);
    }

    #[test]
    fn parser_never_panics_on_js_like_soup(
        src in "[a-z(){}\\[\\];,.+*/=<>!&|\"' 0-9\n]{0,120}"
    ) {
        let _ = parse(&src);
    }

    #[test]
    fn lexer_spans_cover_input(src in "[a-z +\\-*/();{}]{0,80}") {
        if let Ok(tokens) = lex(&src) {
            for t in &tokens {
                prop_assert!(t.span.start <= t.span.end);
                prop_assert!((t.span.end as usize) <= src.len());
            }
            // Tokens appear in source order.
            for w in tokens.windows(2) {
                prop_assert!(w[0].span.start <= w[1].span.start);
            }
        }
    }
}

fn nested_parens(depth: usize) -> String {
    let mut src = String::from("var x = ");
    for _ in 0..depth {
        src.push('(');
    }
    src.push('1');
    for _ in 0..depth {
        src.push(')');
    }
    src.push(';');
    src
}

#[test]
fn parser_handles_pathological_nesting() {
    // One paren level costs up to two recursion-guard entries, and the
    // enclosing statement and outermost expression cost a few more, so the
    // guaranteed depth is a little under MAX_NESTING / 2. MAX_NESTING is
    // sized for the dedicated parser stack, so deep inputs go through
    // `parse_spawned` (plain `parse` on a 2 MiB test thread would overflow
    // before the guard fires).
    let guaranteed = (MAX_NESTING / 2 - 4) as usize;
    assert!(parse_spawned(&nested_parens(guaranteed)).is_ok());
}

#[test]
fn parser_rejects_excessive_nesting_cleanly() {
    // Beyond the guard limit the parser must return a structured error —
    // never abort the process with a stack overflow.
    for depth in [MAX_NESTING as usize, 5_000] {
        let err = parse_spawned(&nested_parens(depth)).expect_err("depth limited");
        assert_eq!(err.kind, SyntaxErrorKind::NestingTooDeep);
    }
}

#[test]
fn shallow_nesting_still_parses_on_the_caller_stack() {
    // Plain `parse` keeps working for the shallow inputs it is guaranteed
    // for (eval-position strings, test snippets).
    assert!(parse(&nested_parens(40)).is_ok());
}

#[test]
fn parser_rejects_garbage_with_errors_not_panics() {
    for src in [
        "var",
        "var = 5",
        "if (",
        "function (",
        "o.",
        "1 +",
        "{ a: }",
        "for (;;",
        "try { }",
        "switch (x) { foo }",
        "x ? y",
        "\"unterminated",
        "/* unterminated",
        "0x",
        "1e",
        "@",
        "###",
    ] {
        assert!(parse(src).is_err(), "{src:?} should be an error");
    }
}

#[test]
fn deeply_nested_statements_parse() {
    let mut src = String::new();
    for i in 0..60 {
        src.push_str(&format!("if (x{i}) {{ "));
    }
    src.push_str("y = 1;");
    for _ in 0..60 {
        src.push_str(" }");
    }
    assert!(parse(&src).is_ok());
}
