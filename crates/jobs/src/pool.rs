//! The worker pool: a fixed set of `std::thread` workers draining a shared
//! injector queue of jobs, with batch-wide cooperative cancellation and a
//! streaming progress-event channel.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** Results are stored into a slot vector indexed by
//!    submission order, so the caller always sees jobs in the order it
//!    submitted them — completion order (and therefore worker count) is
//!    invisible to everything downstream.
//! 2. **Isolation.** Every job runs under `catch_unwind`; a panicking job
//!    becomes [`JobVerdict::Panicked`] and the pool keeps draining. (The
//!    analysis layer additionally wraps each *run* in the PR 1 supervisor,
//!    so a pool-level panic only happens for faults outside a run, e.g. in
//!    job setup code.)
//! 3. **Cancellation.** The pool shares one [`CancelToken`] with every
//!    job. In-flight analysis runs observe it at their next statement poll
//!    and stop with their sound fact prefix; jobs still in the queue are
//!    *not started* and report [`JobVerdict::Cancelled`].
//!
//! Workers are spawned with [`mujs_syntax::PARSER_STACK_BYTES`] of stack,
//! so everything a job does — parsing, lowering, counterfactual execution,
//! `eval`-string reparsing — runs under the stack budget [`MAX_NESTING`]
//! \[`mujs_syntax::MAX_NESTING`\] is sized for.

use determinacy::CancelToken;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::Sender;
use std::sync::Mutex;

/// A progress event streamed while a batch runs. Events arrive in real
/// (completion) order; only the final result vector is ordered by
/// submission index.
#[derive(Debug, Clone)]
pub enum JobEvent {
    /// A worker picked the job up.
    Started {
        /// Submission index of the job.
        job: usize,
        /// Human-readable job label.
        label: String,
        /// Index of the worker running it.
        worker: usize,
    },
    /// The job reported intermediate progress (e.g. "seed 3/8 done").
    Progress {
        /// Submission index of the job.
        job: usize,
        /// What happened.
        detail: String,
    },
    /// The job ran to completion (its *outcome* may still record per-run
    /// stops such as `Deadline` or mid-flight `Cancelled`).
    Finished {
        /// Submission index of the job.
        job: usize,
        /// Human-readable job label.
        label: String,
    },
    /// The job panicked outside any supervised run.
    Failed {
        /// Submission index of the job.
        job: usize,
        /// Human-readable job label.
        label: String,
        /// The panic payload.
        error: String,
    },
    /// Batch cancellation struck before the job started; it never ran.
    Cancelled {
        /// Submission index of the job.
        job: usize,
        /// Human-readable job label.
        label: String,
    },
}

/// How one job ended, in the pool's eyes.
#[derive(Debug)]
pub enum JobVerdict<T> {
    /// The job function returned.
    Done(T),
    /// The job function panicked; the payload survives for the report.
    Panicked(String),
    /// The batch was cancelled before this job started.
    Cancelled,
}

impl<T> JobVerdict<T> {
    /// The result, if the job completed.
    pub fn into_done(self) -> Option<T> {
        match self {
            JobVerdict::Done(t) => Some(t),
            _ => None,
        }
    }
}

/// Context handed to a running job: its identity, the batch cancel token,
/// and a handle for streaming progress events.
#[derive(Debug)]
pub struct JobCtx {
    /// Submission index of this job.
    pub job: usize,
    /// Index of the worker running it.
    pub worker: usize,
    /// The batch-wide cancellation token. Jobs should thread it into
    /// their run supervision hooks (`RunHooks::with_cancel`) so mid-flight
    /// runs stop at the next poll.
    pub cancel: CancelToken,
    events: Option<Sender<JobEvent>>,
}

impl JobCtx {
    /// Whether batch cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// Streams a [`JobEvent::Progress`] line (no-op without a listener).
    pub fn progress(&self, detail: impl Into<String>) {
        if let Some(tx) = &self.events {
            let _ = tx.send(JobEvent::Progress {
                job: self.job,
                detail: detail.into(),
            });
        }
    }
}

/// A batch-analysis worker pool.
///
/// # Examples
///
/// ```
/// use mujs_jobs::JobPool;
/// let pool = JobPool::new(4);
/// let jobs = (0..10)
///     .map(|i| (format!("square-{i}"), move |_ctx: &mujs_jobs::JobCtx| i * i))
///     .collect();
/// let results = pool.run(jobs);
/// // Submission order, whatever the completion order was:
/// assert_eq!(results.len(), 10);
/// assert!(matches!(results[3], mujs_jobs::JobVerdict::Done(9)));
/// ```
#[derive(Debug)]
pub struct JobPool {
    workers: usize,
    cancel: CancelToken,
    events: Option<Sender<JobEvent>>,
}

impl JobPool {
    /// A pool with `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        JobPool {
            workers: workers.max(1),
            cancel: CancelToken::new(),
            events: None,
        }
    }

    /// Shares an external cancellation token (e.g. one also wired to a
    /// Ctrl-C handler) instead of the pool's own.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Streams [`JobEvent`]s to `tx` while batches run.
    pub fn with_events(mut self, tx: Sender<JobEvent>) -> Self {
        self.events = Some(tx);
        self
    }

    /// The number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// A clone of the batch cancellation token; cancelling it stops the
    /// whole batch (in-flight runs at their next poll, queued jobs before
    /// they start).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Requests whole-batch cancellation.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Runs every `(label, job)` pair to a verdict and returns the
    /// verdicts **in submission order**.
    ///
    /// Blocks until all jobs are resolved (completed, panicked, or marked
    /// cancelled). After a cancel, in-flight jobs return as soon as their
    /// runs hit the next cancellation poll; queued jobs resolve
    /// immediately without running.
    pub fn run<T, F>(&self, jobs: Vec<(String, F)>) -> Vec<JobVerdict<T>>
    where
        T: Send,
        F: FnOnce(&JobCtx) -> T + Send,
    {
        let n = jobs.len();
        let queue: Mutex<VecDeque<(usize, String, F)>> = Mutex::new(
            jobs.into_iter()
                .enumerate()
                .map(|(i, (label, f))| (i, label, f))
                .collect(),
        );
        let results: Mutex<Vec<Option<JobVerdict<T>>>> = Mutex::new((0..n).map(|_| None).collect());
        std::thread::scope(|s| {
            for worker in 0..self.workers.min(n.max(1)) {
                let queue = &queue;
                let results = &results;
                let cancel = self.cancel.clone();
                let events = self.events.clone();
                let builder = std::thread::Builder::new()
                    .name(format!("mujs-job-{worker}"))
                    // Jobs parse and execute recursively; size the stack
                    // for the raised MAX_NESTING guard.
                    .stack_size(mujs_syntax::PARSER_STACK_BYTES);
                builder
                    .spawn_scoped(s, move || loop {
                        let Some((job, label, f)) = queue.lock().unwrap().pop_front() else {
                            return;
                        };
                        let verdict = if cancel.is_cancelled() {
                            emit(&events, JobEvent::Cancelled { job, label });
                            JobVerdict::Cancelled
                        } else {
                            emit(
                                &events,
                                JobEvent::Started {
                                    job,
                                    label: label.clone(),
                                    worker,
                                },
                            );
                            let ctx = JobCtx {
                                job,
                                worker,
                                cancel: cancel.clone(),
                                events: events.clone(),
                            };
                            match catch_unwind(AssertUnwindSafe(|| f(&ctx))) {
                                Ok(t) => {
                                    emit(&events, JobEvent::Finished { job, label });
                                    JobVerdict::Done(t)
                                }
                                Err(p) => {
                                    let error = panic_text(p);
                                    emit(
                                        &events,
                                        JobEvent::Failed {
                                            job,
                                            label,
                                            error: error.clone(),
                                        },
                                    );
                                    JobVerdict::Panicked(error)
                                }
                            }
                        };
                        results.lock().unwrap()[job] = Some(verdict);
                    })
                    .expect("spawn pool worker");
            }
        });
        results
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|v| v.expect("every job resolved"))
            .collect()
    }
}

fn emit(events: &Option<Sender<JobEvent>>, e: JobEvent) {
    if let Some(tx) = events {
        let _ = tx.send(e);
    }
}

fn panic_text(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// A fully-owned object graph transferred wholesale between threads.
///
/// The analysis pipeline interns strings with `Rc<str>`, so harnesses,
/// fact databases, and multi-run outcomes are not `Send` even though they
/// contain no thread-shared state. Jobs build those graphs *entirely on
/// the worker thread* and hand them back through the pool exactly once;
/// `Mutex`/`join` synchronization orders the handoff, so the non-atomic
/// refcounts are never touched concurrently.
///
/// # Safety invariant (on the constructor's caller)
///
/// Every `Rc` reachable from the wrapped value must have *all* of its
/// clones inside the wrapped value itself — nothing reachable may share a
/// refcount with data that stays on the producing thread or is visible to
/// any other thread. Values freshly parsed/analyzed inside one job satisfy
/// this by construction.
pub(crate) struct IsolatedGraph<T>(T);

unsafe impl<T> Send for IsolatedGraph<T> {}

impl<T> IsolatedGraph<T> {
    /// Wraps a graph for transfer. See the type-level safety invariant.
    pub(crate) fn new(value: T) -> Self {
        IsolatedGraph(value)
    }

    /// Unwraps on the receiving thread.
    pub(crate) fn into_inner(self) -> T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    type BoxedJob<T> = Box<dyn FnOnce(&JobCtx) -> T + Send>;

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = JobPool::new(8);
        // Reverse sleeps so completion order inverts submission order.
        let jobs: Vec<(String, _)> = (0..16usize)
            .map(|i| {
                (format!("j{i}"), move |_ctx: &JobCtx| {
                    std::thread::sleep(std::time::Duration::from_millis((16 - i) as u64));
                    i * 10
                })
            })
            .collect();
        let out = pool.run(jobs);
        for (i, v) in out.iter().enumerate() {
            assert!(matches!(v, JobVerdict::Done(x) if *x == i * 10));
        }
    }

    #[test]
    fn a_panicking_job_does_not_poison_the_batch() {
        let pool = JobPool::new(2);
        let jobs: Vec<(String, BoxedJob<usize>)> = vec![
            ("ok-0".into(), Box::new(|_| 1)),
            ("boom".into(), Box::new(|_| panic!("job exploded"))),
            ("ok-2".into(), Box::new(|_| 3)),
        ];
        let out = pool.run(jobs);
        assert!(matches!(out[0], JobVerdict::Done(1)));
        assert!(matches!(&out[1], JobVerdict::Panicked(p) if p.contains("exploded")));
        assert!(matches!(out[2], JobVerdict::Done(3)));
    }

    #[test]
    fn cancellation_skips_queued_jobs() {
        let pool = JobPool::new(1);
        let token = pool.cancel_token();
        let jobs: Vec<(String, BoxedJob<u32>)> = vec![
            (
                "canceller".into(),
                Box::new(move |_| {
                    token.cancel();
                    7
                }),
            ),
            ("never-runs".into(), Box::new(|_| 8)),
        ];
        let out = pool.run(jobs);
        assert!(matches!(out[0], JobVerdict::Done(7)));
        assert!(matches!(out[1], JobVerdict::Cancelled));
    }

    #[test]
    fn events_stream_start_progress_finish() {
        let (tx, rx) = channel();
        let pool = JobPool::new(1).with_events(tx);
        let jobs: Vec<(String, _)> = vec![("one".to_owned(), |ctx: &JobCtx| {
            ctx.progress("halfway");
            42
        })];
        let out = pool.run(jobs);
        assert!(matches!(out[0], JobVerdict::Done(42)));
        let kinds: Vec<String> = rx
            .try_iter()
            .map(|e| match e {
                JobEvent::Started { .. } => "started".into(),
                JobEvent::Progress { detail, .. } => format!("progress:{detail}"),
                JobEvent::Finished { .. } => "finished".into(),
                other => format!("{other:?}"),
            })
            .collect();
        assert_eq!(kinds, ["started", "progress:halfway", "finished"]);
    }
}
