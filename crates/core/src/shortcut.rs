//! Dynamic shortcuts: concrete-execution fast-forward summaries.
//!
//! PR 4's fact injection hands the solver flat per-site facts; blame
//! reports show the remaining budget starvation traces to *regions* —
//! whole determinate functions (jQuery's `extend` copy loop,
//! `defAccessors`) whose effects flat injection provably cannot cover.
//! This module implements the next step: stop re-analyzing regions the
//! dynamic run proved determinate.
//!
//! 1. [`determinate_regions`] walks the fact database and each
//!    function's CFG, selecting functions whose every recorded key,
//!    callee, branch, and loop trip was determinate *in each context*
//!    (region selection does not need cross-context agreement — the
//!    replay witnesses every recorded context), with no escaping havoc
//!    (no `try`/`throw`/direct `eval`).
//! 2. [`shortcut_summaries`] replays the program once on the sealed
//!    concrete interpreter with heap tracing enabled at the region
//!    points, under panic isolation and the analysis' step budget. Any
//!    failure — parse drift, a run error, a panic, a truncated trace —
//!    degrades soundly to *no* summaries: the solver then analyzes every
//!    region ordinarily.
//! 3. The distiller maps the recorded events onto the exact nodes the
//!    solver would have used (same resolver, same canonicalization, same
//!    `Ret`/`This`/param wiring as `apply_call`), producing one
//!    [`RegionSummary`] per region plus its call-graph fragment.
//!
//! Soundness matches fact injection's basis: a summary covers the heap
//! effects of the *recorded* executions. Events are recorded with
//! deduplicated record-time abstraction ([`mujs_interp::TraceAbs`]), so
//! the summary is independent of heap layout and run length.

use crate::config::AnalysisConfig;
use crate::facts::{FactDb, FactKind, TripFact};
use mujs_analysis::cfg::build_cfg;
use mujs_dom::document::Document;
use mujs_dom::events::EventPlan;
use mujs_interp::driver::Harness;
use mujs_interp::{HeapTrace, InterpOptions, TraceAbs, TraceConfig};
use mujs_ir::ir::{Place, StmtKind};
use mujs_ir::resolve::{Binding, Resolver};
use mujs_ir::{FuncId, FuncKind, Program, StmtId, Sym};
use mujs_pta::{AbsObj, Node, RegionSummary, ShortcutSummaries};
use serde_json::Value;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Default cap on recorded trace events; a replay that trips it returns
/// a truncated trace and the summarizer degrades to no summaries.
pub const SHORTCUT_MAX_EVENTS: usize = 1_000_000;

/// What the summarizer produced, and why, for reporting.
#[derive(Debug, Default)]
pub struct ShortcutOutcome {
    /// The solver-ready summaries (empty when degraded).
    pub summaries: ShortcutSummaries,
    /// Candidate regions the extractor selected.
    pub candidates: usize,
    /// The replay failed (error, panic, or truncation) and the
    /// summaries were dropped — ordinary analysis everywhere.
    pub degraded: bool,
}

/// Selects the maximal determinate regions of `prog` under `db`: ordinary
/// functions that executed, whose recorded conditions, callees, dynamic
/// keys, and loop trips were determinate in every recorded context, with
/// no `try`/`throw`/direct-`eval` and no CFG havoc. Results ascend by
/// function id.
pub fn determinate_regions(prog: &Program, db: &FactDb) -> Vec<FuncId> {
    // Per-point disqualification: any indeterminate branch/callee/key
    // fact in any context poisons the point.
    let mut bad_point: HashSet<StmtId> = HashSet::new();
    let mut executed: HashSet<FuncId> = HashSet::new();
    for (kind, point, _ctx, fact) in db.iter() {
        executed.insert(prog.func_of(point));
        if matches!(
            kind,
            FactKind::Cond | FactKind::Callee | FactKind::PropKey | FactKind::EvalArg
        ) && !fact.is_det()
        {
            bad_point.insert(point);
        }
    }
    for (point, _ctx, trip) in db.iter_trips() {
        executed.insert(prog.func_of(point));
        if trip == TripFact::Unknown {
            bad_point.insert(point);
        }
    }
    let mut out = Vec::new();
    for f in &prog.funcs {
        if f.kind != FuncKind::Function || f.specialized_from.is_some() {
            continue;
        }
        if !executed.contains(&f.id) {
            continue;
        }
        let mut ok = true;
        Program::walk_block(&f.body, &mut |s| {
            if matches!(
                s.kind,
                StmtKind::Eval { .. } | StmtKind::Try { .. } | StmtKind::Throw { .. }
            ) || bad_point.contains(&s.id)
            {
                ok = false;
            }
        });
        if !ok {
            continue;
        }
        // Exceptional / finally-bypass edges invalidate places on entry;
        // a region must have none (redundant with the try/eval scan, but
        // the CFG is the authority on escaping havoc).
        let cfg = build_cfg(f);
        if cfg
            .blocks
            .iter()
            .any(|b| !b.havoc.places.is_empty() || b.havoc.all_locals)
        {
            continue;
        }
        out.push(f.id);
    }
    out
}

/// Replays `src` on the sealed concrete interpreter with tracing at the
/// determinate regions of (`prog`, `db`) and distills the trace into
/// solver-ready summaries. `prog` must be the program the facts were
/// recorded against; property-key strings the replay interned are
/// re-interned into it (deterministically, in recording order).
pub fn shortcut_summaries(
    src: &str,
    doc: &Document,
    plan: &EventPlan,
    cfg: &AnalysisConfig,
    db: &FactDb,
    prog: &mut Program,
) -> ShortcutOutcome {
    let regions = determinate_regions(prog, db);
    if regions.is_empty() {
        return ShortcutOutcome::default();
    }
    let mut points: HashSet<StmtId> = HashSet::new();
    for &fid in &regions {
        Program::walk_block(&prog.func(fid).body, &mut |s| {
            points.insert(s.id);
        });
    }
    let funcs: HashSet<FuncId> = regions.iter().copied().collect();
    let seed = cfg.seed;
    let max_steps = cfg.max_steps;
    // The replay runs the same lowering over the same source, so every
    // StmtId/FuncId aligns with `prog`; only runtime-interned property
    // keys need translation afterwards.
    let src_owned = src.to_owned();
    let doc2 = doc.clone();
    let replayed = catch_unwind(AssertUnwindSafe(move || -> Option<(HeapTrace, Program)> {
        let mut h = Harness::from_src(&src_owned).ok()?;
        let opts = InterpOptions {
            seed,
            max_steps,
            trace: Some(TraceConfig {
                points,
                funcs,
                max_events: SHORTCUT_MAX_EVENTS,
            }),
            ..Default::default()
        };
        let out = h.run_dom(opts, doc2, plan);
        if out.result.is_err() {
            return None;
        }
        let trace = out.trace?;
        if trace.truncated {
            return None;
        }
        Some((trace, h.program))
    }))
    .ok()
    .flatten();
    let Some((trace, replay_prog)) = replayed else {
        return ShortcutOutcome {
            summaries: ShortcutSummaries::default(),
            candidates: regions.len(),
            degraded: true,
        };
    };
    let summaries = distill(prog, &replay_prog, &regions, &trace);
    ShortcutOutcome {
        summaries,
        candidates: regions.len(),
        degraded: false,
    }
}

/// Maps the recorded heap events onto solver nodes, mirroring the
/// solver's own wiring exactly: `place_node` naming, `canon`
/// specialization links, `apply_call`'s param/`This`/`ProtoVar` seeds,
/// and the opaque-call escape to `UnknownProps(Opaque)`.
fn distill(
    prog: &mut Program,
    replay: &Program,
    regions: &[FuncId],
    trace: &HeapTrace,
) -> ShortcutSummaries {
    // Mutable phase first: translate the replay's runtime-interned
    // property keys into `prog`'s interner, in recording order so the
    // interner growth is deterministic.
    let mut key_map: HashMap<Sym, Sym> = HashMap::new();
    for (_, _, key, _) in &trace.writes {
        if !key_map.contains_key(key) {
            let s = replay.interner.resolve(*key).to_owned();
            let ps = prog.interner.intern(&s);
            key_map.insert(*key, ps);
        }
    }
    let prog = &*prog;
    let resolver = Resolver::new(prog);
    let region_set: BTreeSet<FuncId> = regions.iter().copied().collect();
    // Defining statements of region bodies, for mapping define events
    // back to their destination place.
    let mut dst_of: HashMap<StmtId, Place> = HashMap::new();
    for &fid in regions {
        Program::walk_block(&prog.func(fid).body, &mut |s| {
            if let Some(d) = dst_place(&s.kind) {
                dst_of.insert(s.id, d.clone());
            }
        });
    }
    let canon = |mut f: FuncId| -> FuncId {
        let mut fuel = 64;
        while let Some(orig) = prog.func(f).specialized_from {
            f = orig;
            fuel -= 1;
            if fuel == 0 {
                break;
            }
        }
        f
    };
    let abs = |a: &TraceAbs| -> AbsObj {
        match a {
            TraceAbs::Global => AbsObj::Global,
            TraceAbs::Closure(f) => AbsObj::Closure(*f),
            TraceAbs::ProtoOf(f) => AbsObj::ProtoOf(*f),
            TraceAbs::Alloc(s) => AbsObj::Alloc(*s),
            TraceAbs::Opaque => AbsObj::Opaque,
        }
    };
    let place_node = |f: FuncId, p: &Place| -> Node {
        match p {
            Place::Temp(t) => Node::Temp(f, t.0),
            p => {
                let name = p.as_var_sym().expect("non-temp place");
                match resolver.resolve(prog, f, name) {
                    Binding::Local(g) => Node::Local(canon(g), name),
                    Binding::Global => Node::Prop(AbsObj::Global, name),
                }
            }
        }
    };
    let mut tuples: BTreeMap<FuncId, BTreeSet<(Node, AbsObj)>> = BTreeMap::new();
    let mut calls: BTreeMap<FuncId, BTreeSet<(StmtId, FuncId)>> = BTreeMap::new();
    for &fid in &region_set {
        tuples.insert(fid, BTreeSet::new());
        calls.insert(fid, BTreeSet::new());
    }
    let owner = |site: StmtId| -> Option<FuncId> {
        let f = prog.func_of(site);
        region_set.contains(&f).then_some(f)
    };
    for (site, a) in &trace.defines {
        let Some(f) = owner(*site) else { continue };
        let Some(dst) = dst_of.get(site) else {
            continue;
        };
        tuples
            .get_mut(&f)
            .unwrap()
            .insert((place_node(f, dst), abs(a)));
    }
    for (site, base, key, val) in &trace.writes {
        let Some(f) = owner(*site) else { continue };
        let pkey = key_map[key];
        tuples
            .get_mut(&f)
            .unwrap()
            .insert((Node::Prop(abs(base), pkey), abs(val)));
    }
    for (func, a) in &trace.rets {
        if !region_set.contains(func) {
            continue;
        }
        tuples
            .get_mut(func)
            .unwrap()
            .insert((Node::Ret(*func), abs(a)));
    }
    for ev in &trace.calls {
        let Some(f) = owner(ev.site) else { continue };
        let t = tuples.get_mut(&f).unwrap();
        match ev.callee {
            Some(g) => {
                calls.get_mut(&f).unwrap().insert((ev.site, g));
                let cg = canon(g);
                for (i, &p) in prog.func(g).params.iter().enumerate() {
                    if let Some(Some(a)) = ev.args.get(i) {
                        t.insert((Node::Local(cg, p), abs(a)));
                    }
                }
                if ev.is_new {
                    t.insert((Node::This(g), AbsObj::Alloc(ev.site)));
                    if let Some(pa) = &ev.proto {
                        // The solver skips prototype wiring for opaque
                        // protos too (nothing flows from Opaque's props).
                        if !matches!(pa, TraceAbs::Opaque) {
                            t.insert((Node::ProtoVar(AbsObj::Alloc(ev.site)), abs(pa)));
                        }
                    }
                } else if let Some(ta) = &ev.this {
                    t.insert((Node::This(g), abs(ta)));
                }
            }
            None => {
                // Calling an unmodeled native: arguments escape into the
                // opaque unknown-props pool, exactly as the solver's
                // `apply_call` does for `AbsObj::Opaque`.
                for a in ev.args.iter().flatten() {
                    t.insert((Node::UnknownProps(AbsObj::Opaque), abs(a)));
                }
            }
        }
    }
    let mut out = ShortcutSummaries::default();
    for &fid in &region_set {
        out.regions.insert(
            fid,
            RegionSummary {
                tuples: tuples.remove(&fid).unwrap().into_iter().collect(),
                calls: calls.remove(&fid).unwrap().into_iter().collect(),
            },
        );
    }
    out
}

/// The destination place of a defining statement, if it has one.
fn dst_place(kind: &StmtKind) -> Option<&Place> {
    use StmtKind::*;
    match kind {
        Const { dst, .. }
        | Copy { dst, .. }
        | Closure { dst, .. }
        | NewObject { dst, .. }
        | GetProp { dst, .. }
        | DeleteProp { dst, .. }
        | BinOp { dst, .. }
        | UnOp { dst, .. }
        | Call { dst, .. }
        | New { dst, .. }
        | LoadThis { dst }
        | TypeofName { dst, .. }
        | HasProp { dst, .. }
        | InstanceOf { dst, .. }
        | EnumProps { dst, .. }
        | Eval { dst, .. } => Some(dst),
        _ => None,
    }
}

// ------------------------------------------------------------- portable

/// A portable abstract object: program-bound ids replaced by raw indices.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum PortableObj {
    /// `AbsObj::Alloc`.
    Alloc(u32),
    /// `AbsObj::Closure`.
    Closure(u32),
    /// `AbsObj::ProtoOf`.
    ProtoOf(u32),
    /// `AbsObj::Global`.
    Global,
    /// `AbsObj::Opaque`.
    Opaque,
}

/// A portable solver node: `Sym`s resolved to strings, ids to indices.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum PortableNode {
    /// `Node::Temp`.
    Temp(u32, u32),
    /// `Node::Local` with the variable name resolved.
    Local(u32, String),
    /// `Node::Prop` with the property name resolved.
    Prop(PortableObj, String),
    /// `Node::StarProps`.
    StarProps(PortableObj),
    /// `Node::UnknownProps`.
    UnknownProps(PortableObj),
    /// `Node::ProtoVar`.
    ProtoVar(PortableObj),
    /// `Node::Ret`.
    Ret(u32),
    /// `Node::This`.
    This(u32),
    /// `Node::ExcPool`.
    ExcPool,
}

/// One region's portable summary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PortableRegion {
    /// The region function's index.
    pub func: u32,
    /// Portable points-to tuples, sorted.
    pub tuples: Vec<(PortableNode, PortableObj)>,
    /// Call-graph fragment `(site, callee)` pairs, sorted.
    pub calls: Vec<(u32, u32)>,
}

/// The serialization-friendly form of [`ShortcutSummaries`] — the
/// stage-boundary artifact the analysis service caches, mirroring
/// [`crate::InjectablePairs`]: `Sym`s dangle across programs, strings
/// re-interned against a rehydrated program reproduce the original
/// summary exactly (lowering is deterministic).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PortableSummaries {
    /// Per-region summaries, ascending by function index.
    pub regions: Vec<PortableRegion>,
}

impl PortableSummaries {
    /// Extracts the portable form (resolving each `Sym` through the
    /// program that produced it).
    pub fn from_summaries(sums: &ShortcutSummaries, prog: &Program) -> Self {
        let obj = |o: &AbsObj| -> PortableObj {
            match o {
                AbsObj::Alloc(s) => PortableObj::Alloc(s.0),
                AbsObj::Closure(f) => PortableObj::Closure(f.0),
                AbsObj::ProtoOf(f) => PortableObj::ProtoOf(f.0),
                AbsObj::Global => PortableObj::Global,
                AbsObj::Opaque => PortableObj::Opaque,
            }
        };
        let node = |n: &Node| -> PortableNode {
            match n {
                Node::Temp(f, t) => PortableNode::Temp(f.0, *t),
                Node::Local(f, s) => PortableNode::Local(f.0, prog.interner.resolve(*s).to_owned()),
                Node::Prop(o, s) => {
                    PortableNode::Prop(obj(o), prog.interner.resolve(*s).to_owned())
                }
                Node::StarProps(o) => PortableNode::StarProps(obj(o)),
                Node::UnknownProps(o) => PortableNode::UnknownProps(obj(o)),
                Node::ProtoVar(o) => PortableNode::ProtoVar(obj(o)),
                Node::Ret(f) => PortableNode::Ret(f.0),
                Node::This(f) => PortableNode::This(f.0),
                Node::ExcPool => PortableNode::ExcPool,
            }
        };
        let mut regions: Vec<PortableRegion> = sums
            .regions
            .iter()
            .map(|(fid, r)| {
                let mut tuples: Vec<(PortableNode, PortableObj)> =
                    r.tuples.iter().map(|(n, o)| (node(n), obj(o))).collect();
                tuples.sort();
                let mut calls: Vec<(u32, u32)> = r.calls.iter().map(|(s, f)| (s.0, f.0)).collect();
                calls.sort_unstable();
                PortableRegion {
                    func: fid.0,
                    tuples,
                    calls,
                }
            })
            .collect();
        regions.sort_by_key(|r| r.func);
        PortableSummaries { regions }
    }

    /// Rebuilds solver-ready summaries against `prog` (lowered from the
    /// byte-identical source). Strings are interned in the portable
    /// order, keeping interner growth deterministic.
    pub fn into_summaries(&self, prog: &mut Program) -> ShortcutSummaries {
        fn obj(o: &PortableObj) -> AbsObj {
            match o {
                PortableObj::Alloc(s) => AbsObj::Alloc(StmtId(*s)),
                PortableObj::Closure(f) => AbsObj::Closure(FuncId(*f)),
                PortableObj::ProtoOf(f) => AbsObj::ProtoOf(FuncId(*f)),
                PortableObj::Global => AbsObj::Global,
                PortableObj::Opaque => AbsObj::Opaque,
            }
        }
        let mut out = ShortcutSummaries::default();
        for r in &self.regions {
            let mut tuples: Vec<(Node, AbsObj)> = r
                .tuples
                .iter()
                .map(|(n, o)| {
                    let node = match n {
                        PortableNode::Temp(f, t) => Node::Temp(FuncId(*f), *t),
                        PortableNode::Local(f, s) => {
                            Node::Local(FuncId(*f), prog.interner.intern(s))
                        }
                        PortableNode::Prop(po, s) => Node::Prop(obj(po), prog.interner.intern(s)),
                        PortableNode::StarProps(po) => Node::StarProps(obj(po)),
                        PortableNode::UnknownProps(po) => Node::UnknownProps(obj(po)),
                        PortableNode::ProtoVar(po) => Node::ProtoVar(obj(po)),
                        PortableNode::Ret(f) => Node::Ret(FuncId(*f)),
                        PortableNode::This(f) => Node::This(FuncId(*f)),
                        PortableNode::ExcPool => Node::ExcPool,
                    };
                    (node, obj(o))
                })
                .collect();
            tuples.sort();
            let calls: Vec<(StmtId, FuncId)> = r
                .calls
                .iter()
                .map(|(s, f)| (StmtId(*s), FuncId(*f)))
                .collect();
            out.regions
                .insert(FuncId(r.func), RegionSummary { tuples, calls });
        }
        out
    }

    /// Total regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether no region was summarized.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Total points-to tuples across all regions.
    pub fn tuple_count(&self) -> usize {
        self.regions.iter().map(|r| r.tuples.len()).sum()
    }

    /// Encodes the summaries as a JSON tree for the analysis service's
    /// stage cache (the summary-stage counterpart of the injectable-pair
    /// artifact). Enums render as tagged arrays (`["closure", 3]`);
    /// regions and tuples are already sorted, so equal summaries encode
    /// to byte-identical JSON.
    pub fn to_value(&self) -> Value {
        fn obj(o: &PortableObj) -> Value {
            let (tag, id) = match o {
                PortableObj::Alloc(n) => ("alloc", Some(*n)),
                PortableObj::Closure(n) => ("closure", Some(*n)),
                PortableObj::ProtoOf(n) => ("proto", Some(*n)),
                PortableObj::Global => ("global", None),
                PortableObj::Opaque => ("opaque", None),
            };
            let mut items = vec![Value::Str(tag.to_owned())];
            if let Some(n) = id {
                items.push(Value::Num(f64::from(n)));
            }
            Value::Array(items)
        }
        fn node(n: &PortableNode) -> Value {
            let items = match n {
                PortableNode::Temp(f, t) => vec![
                    Value::Str("temp".to_owned()),
                    Value::Num(f64::from(*f)),
                    Value::Num(f64::from(*t)),
                ],
                PortableNode::Local(f, s) => vec![
                    Value::Str("local".to_owned()),
                    Value::Num(f64::from(*f)),
                    Value::Str(s.clone()),
                ],
                PortableNode::Prop(o, s) => {
                    vec![Value::Str("prop".to_owned()), obj(o), Value::Str(s.clone())]
                }
                PortableNode::StarProps(o) => vec![Value::Str("star".to_owned()), obj(o)],
                PortableNode::UnknownProps(o) => {
                    vec![Value::Str("unknown".to_owned()), obj(o)]
                }
                PortableNode::ProtoVar(o) => vec![Value::Str("protovar".to_owned()), obj(o)],
                PortableNode::Ret(f) => {
                    vec![Value::Str("ret".to_owned()), Value::Num(f64::from(*f))]
                }
                PortableNode::This(f) => {
                    vec![Value::Str("this".to_owned()), Value::Num(f64::from(*f))]
                }
                PortableNode::ExcPool => vec![Value::Str("exc".to_owned())],
            };
            Value::Array(items)
        }
        Value::Object(vec![(
            "regions".to_owned(),
            Value::Array(
                self.regions
                    .iter()
                    .map(|r| {
                        Value::Object(vec![
                            ("func".to_owned(), Value::Num(f64::from(r.func))),
                            (
                                "tuples".to_owned(),
                                Value::Array(
                                    r.tuples
                                        .iter()
                                        .map(|(n, o)| Value::Array(vec![node(n), obj(o)]))
                                        .collect(),
                                ),
                            ),
                            (
                                "calls".to_owned(),
                                Value::Array(
                                    r.calls
                                        .iter()
                                        .map(|(s, f)| {
                                            Value::Array(vec![
                                                Value::Num(f64::from(*s)),
                                                Value::Num(f64::from(*f)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        )])
    }

    /// Decodes [`Self::to_value`] output; `None` on any shape mismatch
    /// (a foreign or corrupted artifact), never a partial summary.
    pub fn from_value(v: &Value) -> Option<Self> {
        fn num(v: &Value) -> Option<u32> {
            let f = v.as_f64()?;
            (f >= 0.0 && f <= f64::from(u32::MAX) && f.fract() == 0.0).then_some(f as u32)
        }
        fn obj(v: &Value) -> Option<PortableObj> {
            let items = v.as_array()?;
            Some(match items.first()?.as_str()? {
                "alloc" => PortableObj::Alloc(num(items.get(1)?)?),
                "closure" => PortableObj::Closure(num(items.get(1)?)?),
                "proto" => PortableObj::ProtoOf(num(items.get(1)?)?),
                "global" => PortableObj::Global,
                "opaque" => PortableObj::Opaque,
                _ => return None,
            })
        }
        fn node(v: &Value) -> Option<PortableNode> {
            let items = v.as_array()?;
            Some(match items.first()?.as_str()? {
                "temp" => PortableNode::Temp(num(items.get(1)?)?, num(items.get(2)?)?),
                "local" => {
                    PortableNode::Local(num(items.get(1)?)?, items.get(2)?.as_str()?.to_owned())
                }
                "prop" => {
                    PortableNode::Prop(obj(items.get(1)?)?, items.get(2)?.as_str()?.to_owned())
                }
                "star" => PortableNode::StarProps(obj(items.get(1)?)?),
                "unknown" => PortableNode::UnknownProps(obj(items.get(1)?)?),
                "protovar" => PortableNode::ProtoVar(obj(items.get(1)?)?),
                "ret" => PortableNode::Ret(num(items.get(1)?)?),
                "this" => PortableNode::This(num(items.get(1)?)?),
                "exc" => PortableNode::ExcPool,
                _ => return None,
            })
        }
        let regions = v
            .get("regions")?
            .as_array()?
            .iter()
            .map(|r| {
                let tuples = r
                    .get("tuples")?
                    .as_array()?
                    .iter()
                    .map(|t| {
                        let t = t.as_array()?;
                        Some((node(t.first()?)?, obj(t.get(1)?)?))
                    })
                    .collect::<Option<Vec<_>>>()?;
                let calls = r
                    .get("calls")?
                    .as_array()?
                    .iter()
                    .map(|c| {
                        let c = c.as_array()?;
                        Some((num(c.first()?)?, num(c.get(1)?)?))
                    })
                    .collect::<Option<Vec<_>>>()?;
                Some(PortableRegion {
                    func: num(r.get("func")?)?,
                    tuples,
                    calls,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(PortableSummaries { regions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::DetHarness;

    fn analyze(src: &str) -> (DetHarness, FactDb) {
        let mut h = DetHarness::from_src(src).unwrap();
        let out = h.analyze(AnalysisConfig::default());
        (h, out.facts)
    }

    #[test]
    fn determinate_function_is_a_region() {
        let src = "function mk(v) { var o = {}; o.x = v; return o; }\n\
                   var a = mk(1); var b = mk(2);";
        let (h, db) = analyze(src);
        let regions = determinate_regions(&h.program, &db);
        assert_eq!(regions.len(), 1, "mk should be the only region");
    }

    #[test]
    fn indeterminate_branch_disqualifies() {
        let src = "function f(v) { if (Math.random() < 0.5) { return {}; } return v; }\n\
                   var a = f({});";
        let (h, db) = analyze(src);
        let regions = determinate_regions(&h.program, &db);
        assert!(regions.is_empty(), "random branch must disqualify f");
    }

    #[test]
    fn try_and_eval_disqualify() {
        let src = "function f() { try { return 1; } catch (e) { return 2; } }\n\
                   function g() { return eval('3'); }\n\
                   var a = f(); var b = g();";
        let (h, db) = analyze(src);
        let regions = determinate_regions(&h.program, &db);
        assert!(regions.is_empty());
    }

    #[test]
    fn unexecuted_functions_are_not_regions() {
        let src = "function dead() { return {}; } var x = 1;";
        let (h, db) = analyze(src);
        let regions = determinate_regions(&h.program, &db);
        assert!(regions.is_empty(), "dead code is never summarizable");
    }

    #[test]
    fn portable_summaries_round_trip() {
        let src = "function mk(v) { var o = {}; o.x = v; return o; }\n\
                   var a = mk({}); var b = mk({});";
        let (mut h, db) = analyze(src);
        let doc = mujs_dom::document::DocumentBuilder::new().build();
        let plan = EventPlan::default();
        let out = shortcut_summaries(
            src,
            &doc,
            &plan,
            &AnalysisConfig::default(),
            &db,
            &mut h.program,
        );
        assert!(!out.degraded);
        assert!(!out.summaries.is_empty());
        let portable = PortableSummaries::from_summaries(&out.summaries, &h.program);
        let mut h2 = DetHarness::from_src(src).unwrap();
        let back = portable.into_summaries(&mut h2.program);
        assert_eq!(out.summaries, back);
        assert_eq!(
            portable,
            PortableSummaries::from_summaries(&back, &h2.program)
        );
        // The JSON artifact encoding is lossless and byte-stable.
        let json = serde_json::to_string(&portable.to_value()).unwrap();
        let reparsed: Value = serde_json::from_str(&json).unwrap();
        let decoded = PortableSummaries::from_value(&reparsed).expect("well-formed artifact");
        assert_eq!(decoded, portable);
        assert_eq!(serde_json::to_string(&decoded.to_value()).unwrap(), json);
        assert!(PortableSummaries::from_value(&Value::Null).is_none());
    }

    #[test]
    fn summary_solve_matches_full_solve_precision() {
        let src = "function mk(v) { var o = {}; o.x = v; return o; }\n\
                   var a = mk({}); var b = mk({}); var c = a.x;";
        let (mut h, db) = analyze(src);
        let doc = mujs_dom::document::DocumentBuilder::new().build();
        let plan = EventPlan::default();
        let out = shortcut_summaries(
            src,
            &doc,
            &plan,
            &AnalysisConfig::default(),
            &db,
            &mut h.program,
        );
        assert!(!out.summaries.is_empty());
        let base = mujs_pta::solve(&h.program, &mujs_pta::PtaConfig::default());
        let sc = mujs_pta::solve(
            &h.program,
            &mujs_pta::PtaConfig {
                shortcuts: Some(std::sync::Arc::new(out.summaries)),
                ..Default::default()
            },
        );
        assert_eq!(base.status, mujs_pta::PtaStatus::Completed);
        assert_eq!(sc.status, mujs_pta::PtaStatus::Completed);
        assert!(sc.stats.shortcut_regions >= 1);
        // The summarized solve must stay at least as precise.
        // The summarized solve must stay sound-and-precise relative to
        // the full solve on this fully determinate program: every node's
        // set is a subset of the baseline's.
        let base_pts: std::collections::BTreeMap<_, _> = base.all_points_to().into_iter().collect();
        for (n, objs) in sc.all_points_to() {
            let b = base_pts.get(&n).cloned().unwrap_or_default();
            for o in &objs {
                assert!(b.contains(o), "{n:?} gained {o:?} over baseline");
            }
        }
        let bp = base.precision(&h.program);
        let sp = sc.precision(&h.program);
        assert!(sp.avg_points_to <= bp.avg_points_to + 1e-9);
    }
}
