//! Integration tests asserting the paper's evaluation results: the Table 1
//! shape (who completes, with how many heap flushes) and the §5.2
//! eval-elimination counts (14/24 plain, 20/24 DetDOM).

use determinacy::{AnalysisConfig, AnalysisStatus};
use mujs_corpus::evalbench::{all, Expected};
use mujs_corpus::jquery_like;
use mujs_pta::{PtaConfig, PtaStatus};
use mujs_specialize::{EvalStatus, SpecConfig};

const PTA_BUDGET: u64 = 150_000;

struct Cell {
    pta_ok: bool,
    flushes: u32,
    capped: bool,
}

fn run_config(v: &jquery_like::JQueryLike, det_dom: bool, spec: bool) -> Cell {
    let mut h = determinacy::DetHarness::from_src(&v.src).expect("corpus parses");
    let out = h.analyze_dom(
        AnalysisConfig {
            det_dom,
            ..Default::default()
        },
        v.doc.clone(),
        &v.plan,
    );
    let prog = if spec {
        let mut ctxs = out.ctxs;
        mujs_specialize::specialize(&h.program, &out.facts, &mut ctxs, &SpecConfig::default())
            .program
    } else {
        h.program.clone()
    };
    let pta = mujs_pta::solve(
        &prog,
        &PtaConfig {
            budget: PTA_BUDGET,
            ..Default::default()
        },
    );
    Cell {
        pta_ok: pta.status == PtaStatus::Completed,
        flushes: out.stats.heap_flushes,
        capped: out.status == AnalysisStatus::FlushCapReached,
    }
}

#[test]
fn table1_v1_0_shape() {
    let v = jquery_like::v1_0();
    let baseline = run_config(&v, false, false);
    let spec = run_config(&v, false, true);
    let detdom = run_config(&v, true, true);
    assert!(!baseline.pta_ok, "1.0 baseline must exceed the budget");
    assert!(spec.pta_ok, "1.0 Spec must complete");
    assert_eq!((spec.flushes, spec.capped), (82, false));
    assert!(detdom.pta_ok);
    assert_eq!((detdom.flushes, detdom.capped), (2, false));
}

#[test]
fn table1_v1_1_shape() {
    let v = jquery_like::v1_1();
    let baseline = run_config(&v, false, false);
    let spec = run_config(&v, false, true);
    let detdom = run_config(&v, true, true);
    assert!(!baseline.pta_ok);
    assert!(!spec.pta_ok, "1.1 Spec without DetDOM must still fail");
    assert_eq!((spec.flushes, spec.capped), (107, false));
    assert!(detdom.pta_ok, "1.1 becomes analyzable under DetDOM");
    assert_eq!((detdom.flushes, detdom.capped), (4, false));
}

#[test]
fn table1_v1_2_shape() {
    let v = jquery_like::v1_2();
    let baseline = run_config(&v, false, false);
    let spec = run_config(&v, false, true);
    let detdom = run_config(&v, true, true);
    assert!(baseline.pta_ok, "1.2 is trivially analyzable (lazy init)");
    assert!(spec.pta_ok);
    assert!(spec.capped, "1.2 plain analysis hits the flush cap (>1000)");
    assert!(detdom.pta_ok);
    assert_eq!((detdom.flushes, detdom.capped), (0, false));
}

#[test]
fn table1_v1_3_shape() {
    let v = jquery_like::v1_3();
    let baseline = run_config(&v, false, false);
    let spec = run_config(&v, false, true);
    let detdom = run_config(&v, true, true);
    assert!(!baseline.pta_ok, "1.3 baseline fails");
    assert!(!spec.pta_ok, "1.3 Spec fails (handlers defeat the facts)");
    assert!(spec.capped, "1.3 hits the flush cap");
    assert!(!detdom.pta_ok, "1.3 fails even under DetDOM");
    assert!(detdom.capped, "handler-entry flushes ignore DetDOM");
}

// ----------------------------------------------------------------- §5.2

fn eval_handled(b: &mujs_corpus::evalbench::EvalBenchmark, det_dom: bool) -> bool {
    let mut h = determinacy::DetHarness::from_src(&b.src).expect("parses");
    let out = if b.needs_dom {
        h.analyze_dom(
            AnalysisConfig {
                det_dom,
                ..Default::default()
            },
            b.doc(),
            &b.plan(),
        )
    } else {
        h.analyze(AnalysisConfig {
            det_dom,
            ..Default::default()
        })
    };
    let mut ctxs = out.ctxs;
    let spec =
        mujs_specialize::specialize(&h.program, &out.facts, &mut ctxs, &SpecConfig::default());
    let mut per_site: std::collections::HashMap<mujs_ir::StmtId, bool> = Default::default();
    for (site, st) in &spec.report.eval_events {
        let ok = matches!(st, EvalStatus::Eliminated | EvalStatus::DeadCode);
        per_site
            .entry(*site)
            .and_modify(|v| *v = *v && ok)
            .or_insert(ok);
    }
    let mut failures = 0usize;
    for f in &h.program.funcs {
        mujs_ir::Program::walk_block(&f.body, &mut |s| {
            if matches!(s.kind, mujs_ir::StmtKind::Eval { .. })
                && per_site.get(&s.id) != Some(&true)
            {
                failures += 1;
            }
        });
    }
    failures == 0
}

#[test]
fn eval_study_counts_match_paper() {
    let suite = all();
    let runnable: Vec<_> = suite.iter().filter(|b| b.runnable).collect();
    assert_eq!(runnable.len(), 24);
    let mut plain_ok = 0;
    let mut detdom_ok = 0;
    for b in &runnable {
        let p = eval_handled(b, false);
        let d = eval_handled(b, true);
        assert_eq!(
            p,
            b.expected == Expected::Eliminated,
            "{}: plain outcome deviates from expected {:?}",
            b.name,
            b.expected
        );
        assert_eq!(
            d,
            b.expected_detdom == Expected::Eliminated,
            "{}: DetDOM outcome deviates from expected {:?}",
            b.name,
            b.expected_detdom
        );
        plain_ok += p as usize;
        detdom_ok += d as usize;
    }
    assert_eq!(
        plain_ok, 14,
        "paper: 14 of 24 handled by the plain analysis"
    );
    assert_eq!(detdom_ok, 20, "paper: 20 of 24 handled under DetDOM");
}

#[test]
fn eval_study_failure_breakdown() {
    let suite = all();
    let runnable: Vec<_> = suite.iter().filter(|b| b.runnable).collect();
    let count = |e: Expected| runnable.iter().filter(|b| b.expected == e).count();
    // 1 genuinely indeterminate + 1 DOM-caused at the eval itself (both
    // reported as indeterminate strings), 4 coverage gaps, 4 loop bounds.
    assert_eq!(count(Expected::IndeterminateString), 2);
    assert_eq!(count(Expected::NotCovered), 4);
    assert_eq!(count(Expected::LoopBound), 4);
}
