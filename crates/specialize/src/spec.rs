//! The determinacy-fact-driven program specializer (§2.2, §5.1, §5.2).
//!
//! Given a program, the fact database of an instrumented run, and its
//! context table, the specializer produces a rewritten program applying:
//!
//! 1. **branch pruning** — `if`s whose condition is determinately
//!    true/false under the current context collapse to the taken branch;
//! 2. **static property keys** — dynamic accesses whose key string is
//!    determinate become static accesses;
//! 3. **loop unrolling** — loops with a determinate trip count are
//!    unrolled when that exposes per-iteration facts (the paper's
//!    `24₀`-style occurrence contexts become distinct code);
//! 4. **eval elimination** — direct `eval` calls with a determinate
//!    argument string are replaced by the statically parsed and inlined
//!    code (§2.3, the unevalizer comparison of §5.2);
//! 5. **context cloning** — call sites with a determinate closure callee
//!    are redirected to per-context clones of the callee (bounded depth,
//!    the paper's ≤ 4 levels), which is how the facts inside callees
//!    become usable by the flow-insensitive pointer analysis.
//!
//! Transformations 1–4 preserve the program's behavior on the observed
//! input (facts are sound, so the collapsed branches are the ones every
//! execution takes). Transformation 5 preserves behavior only for
//! functions whose captured environment is unique (top-level functions);
//! the rewriter applies it only there.

use determinacy::{Fact, FactDb, FactKind, FactValue, TripFact};
use mujs_interp::context::{ContextTable, CtxId};
use mujs_ir::ir::{Place, PropKey, StmtKind};
use mujs_ir::{Block, FuncId, FuncKind, Function, Program, Stmt, StmtId, TempId};
use std::collections::HashMap;

/// Specializer configuration.
#[derive(Debug, Clone)]
pub struct SpecConfig {
    /// Maximum function clones to create.
    pub max_clones: usize,
    /// Maximum trip count eligible for unrolling (the paper unrolled one
    /// loop 21 times; default leaves headroom).
    pub max_unroll: u32,
    /// Maximum cloning context depth (§5.1: "up to four levels").
    pub max_context_depth: usize,
    /// Enable branch pruning.
    pub prune_branches: bool,
    /// Enable dynamic→static key rewriting.
    pub staticize_keys: bool,
    /// Enable loop unrolling.
    pub unroll_loops: bool,
    /// Enable eval elimination.
    pub eliminate_eval: bool,
    /// Enable per-context function cloning.
    pub clone_functions: bool,
}

impl Default for SpecConfig {
    fn default() -> Self {
        SpecConfig {
            max_clones: 512,
            max_unroll: 32,
            max_context_depth: 4,
            prune_branches: true,
            staticize_keys: true,
            unroll_loops: true,
            eliminate_eval: true,
            clone_functions: true,
        }
    }
}

/// Why an `eval` site was or was not eliminated (feeds the §5.2 study).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvalStatus {
    /// Replaced by statically inlined code.
    Eliminated,
    /// The argument string is indeterminate.
    IndeterminateArg,
    /// Inside a loop without a determinate bound ("eval occurs inside a
    /// loop for which the dynamic analysis cannot derive a determinate
    /// upper bound", §5.2).
    InLoop,
    /// No fact recorded — the dynamic run did not reach the site.
    NoFact,
    /// The determinate string did not parse.
    ParseFailed,
    /// The site was erased together with a determinately-dead branch
    /// (DetDOM's "detection of unreachable code", §5.2).
    DeadCode,
}

/// Counters describing what the specializer did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpecReport {
    /// Function clones created.
    pub clones: usize,
    /// `if` branches collapsed.
    pub branches_pruned: usize,
    /// Dynamic keys made static.
    pub keys_staticized: usize,
    /// Loops unrolled.
    pub loops_unrolled: usize,
    /// `eval` calls replaced by inlined code.
    pub evals_eliminated: usize,
    /// `eval` calls left in the output.
    pub evals_remaining: usize,
    /// Call sites redirected to clones.
    pub calls_redirected: usize,
    /// Per-original-eval-site outcomes, one event per rewrite visit.
    pub eval_events: Vec<(StmtId, EvalStatus)>,
}

/// The specializer output.
#[derive(Debug)]
pub struct Specialized {
    /// The rewritten program (entry at id 0, clones appended).
    pub program: Program,
    /// What happened.
    pub report: SpecReport,
}

/// Runs the specializer.
pub fn specialize(
    prog: &Program,
    facts: &FactDb,
    ctxs: &mut ContextTable,
    cfg: &SpecConfig,
) -> Specialized {
    let mut sp = Specializer {
        orig: prog,
        out: prog.clone(),
        facts,
        ctxs,
        cfg: cfg.clone(),
        instances: HashMap::new(),
        report: SpecReport::default(),
        entry: prog.entry().expect("program has an entry"),
    };
    let entry = sp.entry;
    sp.instances.insert((entry, CtxId::ROOT), entry);
    let new_body = sp.rewrite_function_body(entry, CtxId::ROOT, entry, &[]);
    let fe = sp.out.func_mut(entry);
    fe.body = new_body.body;
    fe.n_temps = new_body.n_temps;
    merge_decls(fe, new_body.extra_decls);
    fe.has_direct_eval = contains_eval(&fe.body);
    let mut report = sp.report;
    // Count surviving evals across the output program.
    let mut remaining = 0usize;
    for f in &sp.out.funcs {
        Program::walk_block(&f.body, &mut |s| {
            if matches!(s.kind, StmtKind::Eval { .. }) {
                remaining += 1;
            }
        });
    }
    report.evals_remaining = remaining;
    Specialized {
        program: sp.out,
        report,
    }
}

struct RewrittenBody {
    body: Block,
    n_temps: u32,
    extra_decls: mujs_ir::Decls,
}

struct Specializer<'a> {
    orig: &'a Program,
    out: Program,
    facts: &'a FactDb,
    ctxs: &'a mut ContextTable,
    cfg: SpecConfig,
    instances: HashMap<(FuncId, CtxId), FuncId>,
    report: SpecReport,
    entry: FuncId,
}

struct RewriteCx {
    /// The function (in the output program) being built.
    target: FuncId,
    /// The context facts are looked up under.
    ctx: CtxId,
    /// Next temp index for splices needing fresh temps.
    n_temps: u32,
    /// Static occurrence counters per original call/eval site.
    occ: HashMap<StmtId, u32>,
    /// Nesting depth of loops that were *kept* (not unrolled): call sites
    /// inside execute under varying occurrence contexts, so cloning and
    /// occurrence-based facts are disabled there.
    kept_loop_depth: u32,
    /// Declarations hoisted from inlined eval chunks.
    extra_decls: mujs_ir::Decls,
    /// Original functions along the current specialization chain; calls to
    /// functions defined by one of these may be redirected (their captured
    /// activation is the chain's own).
    ancestors: Vec<FuncId>,
}

impl Specializer<'_> {
    fn rewrite_function_body(
        &mut self,
        orig_func: FuncId,
        ctx: CtxId,
        target: FuncId,
        ancestors: &[FuncId],
    ) -> RewrittenBody {
        let f = self.orig.func(orig_func).clone();
        let mut ancestors = ancestors.to_vec();
        ancestors.push(orig_func);
        let mut cx = RewriteCx {
            target,
            ctx,
            n_temps: f.n_temps,
            occ: HashMap::new(),
            kept_loop_depth: 0,
            extra_decls: mujs_ir::Decls::default(),
            ancestors,
        };
        let body = self.rewrite_block(&f.body, &mut cx);
        RewrittenBody {
            body,
            n_temps: cx.n_temps,
            extra_decls: cx.extra_decls,
        }
    }

    fn fact(&self, kind: FactKind, point: StmtId, ctx: CtxId) -> Option<&Fact> {
        self.facts.get(kind, point, ctx)
    }

    fn rewrite_block(&mut self, block: &[Stmt], cx: &mut RewriteCx) -> Block {
        let mut out = Vec::new();
        for s in block {
            self.rewrite_stmt(s, cx, &mut out);
        }
        out
    }

    fn fresh(&mut self, s: &Stmt, cx: &RewriteCx, kind: StmtKind) -> Stmt {
        let id = self.out.fresh_stmt(s.span, cx.target);
        Stmt {
            id,
            span: s.span,
            kind,
        }
    }

    fn rewrite_stmt(&mut self, s: &Stmt, cx: &mut RewriteCx, out: &mut Block) {
        match &s.kind {
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                if self.cfg.prune_branches && cx.kept_loop_depth == 0 {
                    if let Some(Fact::Det(FactValue::Bool(b))) =
                        self.fact(FactKind::Cond, s.id, cx.ctx)
                    {
                        let b = *b;
                        self.report.branches_pruned += 1;
                        let taken = if b { then_blk } else { else_blk };
                        let dead = if b { else_blk } else { then_blk };
                        self.mark_dead_evals(dead);
                        let spliced = self.rewrite_block(taken, cx);
                        out.extend(spliced);
                        return;
                    }
                }
                let t = self.rewrite_block(then_blk, cx);
                let e = self.rewrite_block(else_blk, cx);
                let st = self.fresh(
                    s,
                    cx,
                    StmtKind::If {
                        cond: cond.clone(),
                        then_blk: t,
                        else_blk: e,
                    },
                );
                out.push(st);
            }
            StmtKind::Loop {
                cond_blk,
                cond,
                body,
                update,
                check_cond_first,
            } => {
                let unrollable = self.cfg.unroll_loops
                    && cx.kept_loop_depth == 0
                    && *check_cond_first
                    && matches!(
                        self.facts.trip(s.id, cx.ctx),
                        Some(TripFact::Exact(n)) if n <= self.cfg.max_unroll
                    )
                    && block_benefits_from_unrolling(body)
                    // `break`/`continue` bound to this loop would escape
                    // the spliced copies.
                    && !has_escaping_jumps(body)
                    && !has_escaping_jumps(update)
                    && !has_escaping_jumps(cond_blk);
                if unrollable {
                    let Some(TripFact::Exact(n)) = self.facts.trip(s.id, cx.ctx) else {
                        unreachable!("checked above");
                    };
                    self.report.loops_unrolled += 1;
                    for _ in 0..n {
                        out.extend(self.rewrite_block(cond_blk, cx));
                        out.extend(self.rewrite_block(body, cx));
                        out.extend(self.rewrite_block(update, cx));
                    }
                    // The final (false) test, for its side effects.
                    out.extend(self.rewrite_block(cond_blk, cx));
                    return;
                }
                cx.kept_loop_depth += 1;
                let cb = self.rewrite_block(cond_blk, cx);
                let b = self.rewrite_block(body, cx);
                let u = self.rewrite_block(update, cx);
                cx.kept_loop_depth -= 1;
                let st = self.fresh(
                    s,
                    cx,
                    StmtKind::Loop {
                        cond_blk: cb,
                        cond: cond.clone(),
                        body: b,
                        update: u,
                        check_cond_first: *check_cond_first,
                    },
                );
                out.push(st);
            }
            StmtKind::Breakable { body } => {
                let b = self.rewrite_block(body, cx);
                let st = self.fresh(s, cx, StmtKind::Breakable { body: b });
                out.push(st);
            }
            StmtKind::Try {
                block,
                catch,
                finally,
            } => {
                let b = self.rewrite_block(block, cx);
                let c = catch.as_ref().map(|(n, h)| (*n, self.rewrite_block(h, cx)));
                let fin = finally.as_ref().map(|h| self.rewrite_block(h, cx));
                let st = self.fresh(
                    s,
                    cx,
                    StmtKind::Try {
                        block: b,
                        catch: c,
                        finally: fin,
                    },
                );
                out.push(st);
            }
            StmtKind::GetProp { dst, obj, key } => {
                let key = self.rewrite_key(s.id, key, cx);
                let st = self.fresh(
                    s,
                    cx,
                    StmtKind::GetProp {
                        dst: dst.clone(),
                        obj: obj.clone(),
                        key,
                    },
                );
                out.push(st);
            }
            StmtKind::SetProp { obj, key, val } => {
                let key = self.rewrite_key(s.id, key, cx);
                let st = self.fresh(
                    s,
                    cx,
                    StmtKind::SetProp {
                        obj: obj.clone(),
                        key,
                        val: val.clone(),
                    },
                );
                out.push(st);
            }
            StmtKind::DeleteProp { dst, obj, key } => {
                let key = self.rewrite_key(s.id, key, cx);
                let st = self.fresh(
                    s,
                    cx,
                    StmtKind::DeleteProp {
                        dst: dst.clone(),
                        obj: obj.clone(),
                        key,
                    },
                );
                out.push(st);
            }
            StmtKind::Eval { dst, arg } => {
                let occ = next_occ(cx, s.id);
                let eval_ctx = self.ctxs.child(cx.ctx, s.id, occ);
                let status = if cx.kept_loop_depth > 0 {
                    EvalStatus::InLoop
                } else {
                    match self.fact(FactKind::EvalArg, s.id, eval_ctx) {
                        Some(Fact::Det(FactValue::Str(code))) => {
                            let code = code.clone();
                            if self.cfg.eliminate_eval && self.inline_eval(s, dst, &code, cx, out) {
                                self.report.evals_eliminated += 1;
                                self.report.eval_events.push((s.id, EvalStatus::Eliminated));
                                return;
                            }
                            EvalStatus::ParseFailed
                        }
                        Some(Fact::Det(_)) | Some(Fact::Indet) => EvalStatus::IndeterminateArg,
                        None => EvalStatus::NoFact,
                    }
                };
                self.report.eval_events.push((s.id, status));
                let st = self.fresh(
                    s,
                    cx,
                    StmtKind::Eval {
                        dst: dst.clone(),
                        arg: arg.clone(),
                    },
                );
                out.push(st);
            }
            StmtKind::Call {
                dst,
                callee,
                this_arg,
                args,
            } => {
                let occ = next_occ(cx, s.id);
                let callee = self.maybe_redirect(s, callee, occ, cx, out);
                let st = self.fresh(
                    s,
                    cx,
                    StmtKind::Call {
                        dst: dst.clone(),
                        callee,
                        this_arg: this_arg.clone(),
                        args: args.clone(),
                    },
                );
                out.push(st);
            }
            StmtKind::New { dst, callee, args } => {
                let occ = next_occ(cx, s.id);
                let callee = self.maybe_redirect(s, callee, occ, cx, out);
                let st = self.fresh(
                    s,
                    cx,
                    StmtKind::New {
                        dst: dst.clone(),
                        callee,
                        args: args.clone(),
                    },
                );
                out.push(st);
            }
            // Everything else is copied verbatim (with a fresh id).
            other => {
                let st = self.fresh(s, cx, other.clone());
                out.push(st);
            }
        }
    }

    fn rewrite_key(&mut self, point: StmtId, key: &PropKey, cx: &mut RewriteCx) -> PropKey {
        if let PropKey::Dynamic(_) = key {
            // Occurrence numbering must advance even when staticization is
            // skipped, to stay aligned with the dynamic machine.
            let occ = next_occ(cx, point);
            if !self.cfg.staticize_keys || cx.kept_loop_depth > 0 {
                return key.clone();
            }
            let key_ctx = self.ctxs.child(cx.ctx, point, occ);
            let hit = match self.fact(FactKind::PropKey, point, key_ctx) {
                Some(Fact::Det(FactValue::Str(k))) => Some(k.clone()),
                _ => None,
            };
            if let Some(k) = hit {
                self.report.keys_staticized += 1;
                return PropKey::Static(self.out.interner.intern_rc(&k));
            }
        }
        key.clone()
    }

    /// Records DeadCode events for every eval site inside pruned code,
    /// including evals in functions whose only closure sites are in the
    /// pruned region.
    fn mark_dead_evals(&mut self, dead: &[Stmt]) {
        let mut funcs = Vec::new();
        Program::walk_block(dead, &mut |s| match &s.kind {
            StmtKind::Eval { .. } => {
                self.report.eval_events.push((s.id, EvalStatus::DeadCode));
            }
            StmtKind::Closure { func, .. } => funcs.push(*func),
            _ => {}
        });
        let mut seen = std::collections::HashSet::new();
        while let Some(fid) = funcs.pop() {
            if !seen.insert(fid) || fid.0 as usize >= self.orig.funcs.len() {
                continue;
            }
            let f = self.orig.func(fid).clone();
            Program::walk_block(&f.body, &mut |s| match &s.kind {
                StmtKind::Eval { .. } => {
                    self.report.eval_events.push((s.id, EvalStatus::DeadCode));
                }
                StmtKind::Closure { func, .. } => funcs.push(*func),
                _ => {}
            });
            for (_, nested) in &f.decls.funcs {
                funcs.push(*nested);
            }
        }
    }

    /// Inlines a determinate eval: parse the code, lower it as a chunk of
    /// the target function, splice its body with temps remapped.
    fn inline_eval(
        &mut self,
        s: &Stmt,
        dst: &Place,
        code: &str,
        cx: &mut RewriteCx,
        out: &mut Block,
    ) -> bool {
        let Ok(ast) = mujs_syntax::parse(code) else {
            return false;
        };
        let chunk_id =
            mujs_ir::lower_chunk(&mut self.out, &ast, FuncKind::EvalChunk, Some(cx.target));
        let chunk = self.out.func(chunk_id).clone();
        let offset = cx.n_temps;
        cx.n_temps += chunk.n_temps;
        // Hoist the chunk's declarations into the enclosing function.
        cx.extra_decls.vars.extend(chunk.decls.vars.iter().cloned());
        for &(name, fid) in &chunk.decls.funcs {
            cx.extra_decls.funcs.push((name, fid));
            self.out.func_mut(fid).parent = Some(cx.target);
        }
        // Re-parent the chunk's directly nested functions to the target.
        for i in 0..self.out.funcs.len() {
            if self.out.funcs[i].parent == Some(chunk_id) {
                self.out.func_mut(FuncId(i as u32)).parent = Some(cx.target);
            }
        }
        let body = chunk.body.clone();
        let remapped = remap_temps(&body, offset, &mut self.out, cx.target, s.span);
        out.extend(remapped);
        // The completion value lives in the chunk's temp 0.
        let id = self.out.fresh_stmt(s.span, cx.target);
        out.push(Stmt {
            id,
            span: s.span,
            kind: StmtKind::Copy {
                dst: dst.clone(),
                src: Place::Temp(TempId(offset)),
            },
        });
        true
    }

    /// Redirects a call with a determinate closure callee to a per-context
    /// clone, if that clone would benefit from specialization.
    fn maybe_redirect(
        &mut self,
        s: &Stmt,
        callee: &Place,
        occ: u32,
        cx: &mut RewriteCx,
        out: &mut Block,
    ) -> Place {
        if !self.cfg.clone_functions
            || cx.kept_loop_depth > 0
            || self.instances.len() >= self.cfg.max_clones
        {
            return callee.clone();
        }
        let Some(Fact::Det(FactValue::Closure(forig))) = self.fact(FactKind::Callee, s.id, cx.ctx)
        else {
            return callee.clone();
        };
        let forig = *forig;
        // Only redirect statically-bound functions whose environment is the
        // global scope (cloning preserves semantics there).
        if forig.0 as usize >= self.orig.funcs.len() {
            return callee.clone(); // eval-created function
        }
        let parent = self.orig.func(forig).parent;
        let parent_ok = match parent {
            None => true,
            Some(p) => p == self.entry || cx.ancestors.contains(&p),
        };
        if !parent_ok {
            return callee.clone();
        }
        let child_ctx = self.ctxs.child(cx.ctx, s.id, occ);
        if self.ctxs.depth(child_ctx) > self.cfg.max_context_depth {
            return callee.clone();
        }
        if !self.has_specializable_facts(forig, child_ctx) {
            return callee.clone();
        }
        let clone = self.instance(forig, child_ctx, &cx.ancestors.clone());
        self.report.calls_redirected += 1;
        let t = TempId(cx.n_temps);
        cx.n_temps += 1;
        let id = self.out.fresh_stmt(s.span, cx.target);
        out.push(Stmt {
            id,
            span: s.span,
            kind: StmtKind::Closure {
                dst: Place::Temp(t),
                func: clone,
            },
        });
        Place::Temp(t)
    }

    /// Whether the fact database holds any specialization-enabling fact for
    /// statements of `func` under `ctx`. PropKey/EvalArg facts are
    /// occurrence-qualified, so their first occurrence is probed.
    fn has_specializable_facts(&mut self, func: FuncId, ctx: CtxId) -> bool {
        let f = self.orig.func(func).clone();
        let mut sites: Vec<(StmtId, u8)> = Vec::new();
        Program::walk_block(&f.body, &mut |s| match &s.kind {
            StmtKind::If { .. } => sites.push((s.id, 0)),
            StmtKind::GetProp {
                key: PropKey::Dynamic(_),
                ..
            }
            | StmtKind::SetProp {
                key: PropKey::Dynamic(_),
                ..
            } => sites.push((s.id, 1)),
            StmtKind::Eval { .. } => sites.push((s.id, 2)),
            StmtKind::Loop { .. } => sites.push((s.id, 3)),
            _ => {}
        });
        for (id, tag) in sites {
            let hit = match tag {
                0 => matches!(self.fact(FactKind::Cond, id, ctx), Some(Fact::Det(_))),
                1 => {
                    let c0 = self.ctxs.child(ctx, id, 0);
                    matches!(self.fact(FactKind::PropKey, id, c0), Some(Fact::Det(_)))
                }
                2 => {
                    let c0 = self.ctxs.child(ctx, id, 0);
                    matches!(self.fact(FactKind::EvalArg, id, c0), Some(Fact::Det(_)))
                }
                _ => matches!(
                    self.facts.trip(id, ctx),
                    Some(TripFact::Exact(n)) if n <= self.cfg.max_unroll
                ),
            };
            if hit {
                return true;
            }
        }
        false
    }

    /// Gets or creates the clone of `func` specialized for `ctx`.
    fn instance(&mut self, func: FuncId, ctx: CtxId, ancestors: &[FuncId]) -> FuncId {
        if let Some(&id) = self.instances.get(&(func, ctx)) {
            return id;
        }
        let clone_id = self.out.reserve_func();
        self.instances.insert((func, ctx), clone_id);
        self.report.clones += 1;
        let mut f = self.orig.func(func).clone();
        f.id = clone_id;
        f.specialized_from = Some(func);
        self.out.set_func(f);
        let rewritten = self.rewrite_function_body(func, ctx, clone_id, ancestors);
        let fref = self.out.func_mut(clone_id);
        fref.body = rewritten.body;
        fref.n_temps = rewritten.n_temps;
        merge_decls(fref, rewritten.extra_decls);
        // Specializing determinate evals away makes the lowering-time flag
        // stale; recompute it so downstream analyses (slot validation,
        // closure-write sets, the PTA resolver) see the rewritten truth.
        fref.has_direct_eval = contains_eval(&fref.body);
        clone_id
    }
}

fn contains_eval(body: &[Stmt]) -> bool {
    let mut found = false;
    Program::walk_block(body, &mut |s| {
        if matches!(s.kind, StmtKind::Eval { .. }) {
            found = true;
        }
    });
    found
}

fn next_occ(cx: &mut RewriteCx, site: StmtId) -> u32 {
    let c = cx.occ.entry(site).or_insert(0);
    let occ = *c;
    *c += 1;
    occ
}

fn merge_decls(f: &mut Function, extra: mujs_ir::Decls) {
    for v in extra.vars {
        if !f.decls.vars.contains(&v) {
            f.decls.vars.push(v);
        }
    }
    for (n, id) in extra.funcs {
        f.decls.funcs.retain(|(en, _)| *en != n);
        f.decls.funcs.push((n, id));
    }
}

/// Unrolling only pays off when per-iteration facts can specialize
/// something inside (§5.1: "unrolling loops ... if this enables other
/// specializations").
fn block_benefits_from_unrolling(body: &[Stmt]) -> bool {
    let mut found = false;
    Program::walk_block(body, &mut |s| {
        if matches!(
            s.kind,
            StmtKind::Call { .. }
                | StmtKind::New { .. }
                | StmtKind::Eval { .. }
                | StmtKind::GetProp {
                    key: PropKey::Dynamic(_),
                    ..
                }
                | StmtKind::SetProp {
                    key: PropKey::Dynamic(_),
                    ..
                }
        ) {
            found = true;
        }
    });
    found
}

/// Whether `block` contains a `break`/`continue` that would bind to the
/// enclosing loop (i.e. not captured by a nested `Loop`, or for `break`,
/// a nested `Breakable`).
fn has_escaping_jumps(block: &[Stmt]) -> bool {
    fn walk(block: &[Stmt]) -> (bool, bool) {
        // (escaping_break, escaping_continue)
        let mut br = false;
        let mut co = false;
        for s in block {
            match &s.kind {
                StmtKind::Break => br = true,
                StmtKind::Continue => co = true,
                StmtKind::Loop { .. } => {
                    // A nested loop captures both kinds.
                }
                StmtKind::Breakable { body } => {
                    // Captures breaks; continues pass through.
                    let (_, c) = walk(body);
                    co |= c;
                }
                StmtKind::If {
                    then_blk, else_blk, ..
                } => {
                    let (b1, c1) = walk(then_blk);
                    let (b2, c2) = walk(else_blk);
                    br |= b1 | b2;
                    co |= c1 | c2;
                }
                StmtKind::Try {
                    block,
                    catch,
                    finally,
                } => {
                    let (b1, c1) = walk(block);
                    br |= b1;
                    co |= c1;
                    if let Some((_, h)) = catch {
                        let (b2, c2) = walk(h);
                        br |= b2;
                        co |= c2;
                    }
                    if let Some(f) = finally {
                        let (b3, c3) = walk(f);
                        br |= b3;
                        co |= c3;
                    }
                }
                _ => {}
            }
        }
        (br, co)
    }
    let (b, c) = walk(block);
    b || c
}

/// Remaps a chunk's temps by `offset` and re-ids its statements into
/// `target`.
fn remap_temps(
    block: &[Stmt],
    offset: u32,
    out: &mut Program,
    target: FuncId,
    span: mujs_syntax::Span,
) -> Block {
    block
        .iter()
        .map(|s| {
            let kind = remap_kind(&s.kind, offset, out, target, span);
            let id = out.fresh_stmt(s.span, target);
            Stmt {
                id,
                span: s.span,
                kind,
            }
        })
        .collect()
}

fn remap_place(p: &Place, offset: u32) -> Place {
    match p {
        Place::Temp(TempId(i)) => Place::Temp(TempId(i + offset)),
        named => named.clone(),
    }
}

fn remap_key(k: &PropKey, offset: u32) -> PropKey {
    match k {
        PropKey::Dynamic(p) => PropKey::Dynamic(remap_place(p, offset)),
        s => s.clone(),
    }
}

fn remap_kind(
    kind: &StmtKind,
    off: u32,
    out: &mut Program,
    target: FuncId,
    span: mujs_syntax::Span,
) -> StmtKind {
    use StmtKind::*;
    match kind {
        Const { dst, lit } => Const {
            dst: remap_place(dst, off),
            lit: lit.clone(),
        },
        Copy { dst, src } => Copy {
            dst: remap_place(dst, off),
            src: remap_place(src, off),
        },
        Closure { dst, func } => Closure {
            dst: remap_place(dst, off),
            func: *func,
        },
        NewObject { dst, is_array } => NewObject {
            dst: remap_place(dst, off),
            is_array: *is_array,
        },
        GetProp { dst, obj, key } => GetProp {
            dst: remap_place(dst, off),
            obj: remap_place(obj, off),
            key: remap_key(key, off),
        },
        SetProp { obj, key, val } => SetProp {
            obj: remap_place(obj, off),
            key: remap_key(key, off),
            val: remap_place(val, off),
        },
        DeleteProp { dst, obj, key } => DeleteProp {
            dst: remap_place(dst, off),
            obj: remap_place(obj, off),
            key: remap_key(key, off),
        },
        BinOp { dst, op, lhs, rhs } => BinOp {
            dst: remap_place(dst, off),
            op: *op,
            lhs: remap_place(lhs, off),
            rhs: remap_place(rhs, off),
        },
        UnOp { dst, op, src } => UnOp {
            dst: remap_place(dst, off),
            op: *op,
            src: remap_place(src, off),
        },
        Call {
            dst,
            callee,
            this_arg,
            args,
        } => Call {
            dst: remap_place(dst, off),
            callee: remap_place(callee, off),
            this_arg: this_arg.as_ref().map(|p| remap_place(p, off)),
            args: args.iter().map(|p| remap_place(p, off)).collect(),
        },
        New { dst, callee, args } => New {
            dst: remap_place(dst, off),
            callee: remap_place(callee, off),
            args: args.iter().map(|p| remap_place(p, off)).collect(),
        },
        If {
            cond,
            then_blk,
            else_blk,
        } => If {
            cond: remap_place(cond, off),
            then_blk: remap_temps(then_blk, off, out, target, span),
            else_blk: remap_temps(else_blk, off, out, target, span),
        },
        Loop {
            cond_blk,
            cond,
            body,
            update,
            check_cond_first,
        } => Loop {
            cond_blk: remap_temps(cond_blk, off, out, target, span),
            cond: remap_place(cond, off),
            body: remap_temps(body, off, out, target, span),
            update: remap_temps(update, off, out, target, span),
            check_cond_first: *check_cond_first,
        },
        Breakable { body } => Breakable {
            body: remap_temps(body, off, out, target, span),
        },
        Try {
            block,
            catch,
            finally,
        } => Try {
            block: remap_temps(block, off, out, target, span),
            catch: catch
                .as_ref()
                .map(|(n, b)| (*n, remap_temps(b, off, out, target, span))),
            finally: finally
                .as_ref()
                .map(|b| remap_temps(b, off, out, target, span)),
        },
        Return { arg } => Return {
            arg: arg.as_ref().map(|p| remap_place(p, off)),
        },
        Break => Break,
        Continue => Continue,
        Throw { arg } => Throw {
            arg: remap_place(arg, off),
        },
        LoadThis { dst } => LoadThis {
            dst: remap_place(dst, off),
        },
        TypeofName { dst, name } => TypeofName {
            dst: remap_place(dst, off),
            name: *name,
        },
        HasProp { dst, key, obj } => HasProp {
            dst: remap_place(dst, off),
            key: remap_place(key, off),
            obj: remap_place(obj, off),
        },
        InstanceOf { dst, val, ctor } => InstanceOf {
            dst: remap_place(dst, off),
            val: remap_place(val, off),
            ctor: remap_place(ctor, off),
        },
        EnumProps { dst, obj } => EnumProps {
            dst: remap_place(dst, off),
            obj: remap_place(obj, off),
        },
        Eval { dst, arg } => Eval {
            dst: remap_place(dst, off),
            arg: remap_place(arg, off),
        },
    }
}
