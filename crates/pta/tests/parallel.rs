//! Determinism and budget-exactness tests for the epoch-sharded parallel
//! solver (`PtaConfig::threads >= 2`).
//!
//! The solver's contract is that the thread count is unobservable: for
//! any `threads`, fixpoint exports are byte-identical to the sequential
//! delta solver and the naive reference solver, and budget-truncated runs
//! are budget-exact (`propagations == budget`, every partial result
//! queryable). These tests drive a program big enough to fan out across
//! all shards and run many epochs, so the cross-shard message path, the
//! barrier collapse passes, and the word-log rollback all actually fire.

use mujs_pta::{solve, solve_reference, PtaConfig, PtaResult, PtaStatus};

/// A program wide enough that the first epoch seeds work in every shard
/// (hundreds of simultaneously-dirty nodes) and deep enough that
/// cross-shard deltas keep flowing for many epochs: lots of closures,
/// higher-order calls, cross-wired copy chains, and a ⋆-smearing dynamic
/// property access.
fn big_src() -> String {
    let mut s = String::new();
    s.push_str("function id(x) { return x; }\n");
    for i in 0..120 {
        s.push_str(&format!(
            "function mk{i}() {{ return {{ tag: mk{i}, lift: id }}; }}\n"
        ));
        s.push_str(&format!("var v{i} = mk{i}();\n"));
    }
    for i in 0..120 {
        let j = (i + 41) % 120;
        s.push_str(&format!("v{i} = id(v{j});\n"));
        s.push_str(&format!("var f{i} = v{i}.tag;\n"));
        s.push_str(&format!("var w{i} = f{i}();\n"));
    }
    s.push_str("var key = somethingUnknown;\n");
    s.push_str("var smeared = v0[key];\n");
    s
}

fn lower(src: &str) -> mujs_ir::Program {
    let ast = mujs_syntax::parse(src).expect("source parses");
    mujs_ir::lower_program(&ast)
}

/// Collapse-free config: with Tarjan collapsing disabled, the number of
/// propagations at fixpoint is the sum of fixpoint set sizes — an
/// order-independent quantity — so completion counts must agree exactly
/// across all solvers and thread counts.
fn collapse_free() -> PtaConfig {
    PtaConfig {
        budget: u64::MAX,
        scc_interval: u64::MAX,
        ..Default::default()
    }
}

fn sum_points_to(r: &PtaResult) -> u64 {
    r.all_points_to().iter().map(|(_, s)| s.len() as u64).sum()
}

/// Fixpoint exports are byte-identical to the reference solver for every
/// thread count, under the default, aggressive (`scc_interval: 1`), and
/// collapse-free configs. Thread counts above the shard count are legal
/// and equally deterministic.
#[test]
fn fixpoint_exports_identical_for_every_thread_count() {
    let prog = lower(&big_src());
    let configs = [
        (
            "default",
            PtaConfig {
                budget: u64::MAX,
                ..Default::default()
            },
        ),
        (
            "scc=1",
            PtaConfig {
                budget: u64::MAX,
                scc_interval: 1,
                ..Default::default()
            },
        ),
        ("collapse-free", collapse_free()),
    ];
    for (cname, cfg) in configs {
        let want = solve_reference(&prog, &cfg);
        assert_eq!(want.status, PtaStatus::Completed, "{cname}: reference");
        let want = want.export_json();
        for threads in [1, 2, 3, 8, 16, 32] {
            let r = solve(
                &prog,
                &PtaConfig {
                    threads,
                    ..cfg.clone()
                },
            );
            assert_eq!(r.status, PtaStatus::Completed, "{cname} threads={threads}");
            assert_eq!(
                r.export_json(),
                want,
                "{cname} threads={threads}: export diverged from reference"
            );
        }
    }
}

/// Budget boundary semantics, per thread count: a budget of exactly the
/// required work completes; one less truncates with `propagations ==
/// budget`. Under the collapse-free config the required work is identical
/// for all thread counts.
#[test]
fn exact_budget_boundary_for_every_thread_count() {
    let prog = lower(&big_src());
    let full = solve(&prog, &collapse_free());
    assert_eq!(full.status, PtaStatus::Completed);
    let needed = full.stats.propagations;
    assert!(
        needed > 1_000,
        "program too small to be interesting: {needed}"
    );
    for threads in [1, 2, 8] {
        let exact = solve(
            &prog,
            &PtaConfig {
                budget: needed,
                threads,
                ..collapse_free()
            },
        );
        assert_eq!(
            exact.status,
            PtaStatus::Completed,
            "threads={threads}: exact budget must complete"
        );
        assert_eq!(exact.stats.propagations, needed, "threads={threads}");
        assert_eq!(exact.export_json(), full.export_json(), "threads={threads}");

        let short = solve(
            &prog,
            &PtaConfig {
                budget: needed - 1,
                threads,
                ..collapse_free()
            },
        );
        assert_eq!(
            short.status,
            PtaStatus::BudgetExceeded,
            "threads={threads}: budget-1 must truncate"
        );
        assert_eq!(
            short.stats.propagations,
            needed - 1,
            "threads={threads}: truncation must be budget-exact"
        );
    }
}

/// Truncated runs are budget-exact and queryable at every sampled
/// truncation point: `propagations == budget`, the queryable points-to
/// facts sum to exactly `budget`, and the two parallel runs (threads 2
/// and 8) agree byte-for-byte on *which* facts were kept — the epoch
/// schedule, hence the rollback cut point, is thread-count-independent.
#[test]
fn truncation_is_budget_exact_and_deterministic() {
    let prog = lower(&big_src());
    let full = solve(&prog, &collapse_free());
    assert_eq!(full.status, PtaStatus::Completed);
    let needed = full.stats.propagations;
    let mut budgets: Vec<u64> = (0..16).map(|k| k * needed / 16).collect();
    budgets.extend([1, needed / 2 + 1, needed - 1]);
    budgets.sort_unstable();
    budgets.dedup();
    for budget in budgets {
        let mut exports = Vec::new();
        for threads in [1, 2, 8] {
            let r = solve(
                &prog,
                &PtaConfig {
                    budget,
                    threads,
                    ..collapse_free()
                },
            );
            assert_eq!(
                r.status,
                PtaStatus::BudgetExceeded,
                "threads={threads} budget={budget}"
            );
            assert_eq!(
                r.stats.propagations, budget,
                "threads={threads} budget={budget}: propagations must hit the budget exactly"
            );
            assert_eq!(
                sum_points_to(&r),
                budget,
                "threads={threads} budget={budget}: queryable facts must sum to the budget"
            );
            if threads >= 2 {
                exports.push(r.export_json());
            }
        }
        assert_eq!(
            exports[0], exports[1],
            "budget={budget}: parallel truncation must not depend on the thread count"
        );
    }
}

/// Full stats — not just exports — agree between parallel thread counts,
/// including collapse activity under the most aggressive scan interval.
/// (Sequential-vs-sharded *stats* may legitimately differ when collapsing
/// refunds differ; across thread counts of the epoch solver they cannot.)
#[test]
fn stats_identical_across_parallel_thread_counts() {
    let prog = lower(&big_src());
    let cfg = PtaConfig {
        budget: u64::MAX,
        scc_interval: 1,
        ..Default::default()
    };
    let a = solve(
        &prog,
        &PtaConfig {
            threads: 2,
            ..cfg.clone()
        },
    );
    let b = solve(&prog, &PtaConfig { threads: 8, ..cfg });
    assert_eq!(a.status, PtaStatus::Completed);
    assert_eq!(b.status, PtaStatus::Completed);
    assert_eq!(a.stats.propagations, b.stats.propagations);
    assert_eq!(a.stats.nodes, b.stats.nodes);
    assert_eq!(a.stats.edges, b.stats.edges);
    assert_eq!(a.stats.call_edges, b.stats.call_edges);
    assert_eq!(a.stats.scc_passes, b.stats.scc_passes);
    assert_eq!(a.stats.nodes_merged, b.stats.nodes_merged);
    assert!(
        a.stats.nodes_merged > 0,
        "cycle collapse never fired: {:?}",
        a.stats
    );
    assert_eq!(a.export_json(), b.export_json());
}
