//! The determinacy fact database.
//!
//! A fact `J e K ctx = v` states that the location producing `e` holds the
//! value `v` whenever any execution reaches it under calling context `ctx`
//! (§2.1). Facts are recorded at IR statements (each statement is a
//! program point); when the same `(point, ctx)` is reached several times in
//! one run, the hits are merged — still-equal determinate values survive,
//! anything else degrades to indeterminate.

use crate::det::{DValue, Det, FactValue};
use mujs_interp::context::{ContextTable, CtxId};
use mujs_interp::{ObjClass, Value};
use mujs_ir::{Program, StmtId};
use mujs_syntax::span::SourceFile;
use std::collections::HashMap;

/// A merged fact at one `(point, context)`.
#[derive(Debug, Clone, PartialEq)]
pub enum Fact {
    /// Every execution sees this value here.
    Det(FactValue),
    /// The paper's `?`.
    Indet,
}

impl Fact {
    /// The determinate payload, if any.
    pub fn value(&self) -> Option<&FactValue> {
        match self {
            Fact::Det(v) => Some(v),
            Fact::Indet => None,
        }
    }

    /// Whether the fact is determinate.
    pub fn is_det(&self) -> bool {
        matches!(self, Fact::Det(_))
    }

    /// Cross-run union: both sides are all-executions claims, so more
    /// knowledge wins. Returns `true` on a determinate-vs-determinate
    /// conflict (impossible for sound inputs; degraded conservatively).
    fn union_with(&mut self, incoming: &Fact) -> bool {
        match (&*self, incoming) {
            (Fact::Det(a), Fact::Det(b)) => {
                if a.same(b) {
                    false
                } else {
                    *self = Fact::Indet;
                    true
                }
            }
            (Fact::Indet, Fact::Det(_)) => {
                *self = incoming.clone();
                false
            }
            _ => false,
        }
    }

    fn merge_with(&mut self, incoming: &Fact) {
        let degrade = match (&*self, incoming) {
            (Fact::Det(a), Fact::Det(b)) => !a.same(b),
            _ => true,
        };
        if degrade && !matches!((&*self, incoming), (Fact::Indet, _)) {
            if let (Fact::Det(a), Fact::Det(b)) = (&*self, incoming) {
                if a.same(b) {
                    return;
                }
            }
            *self = Fact::Indet;
        }
    }
}

/// A loop's trip-count fact: how many times the body ran under a context,
/// provided every condition evaluation was determinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripFact {
    /// All condition tests were determinate and the body ran `n` times —
    /// every execution iterates exactly `n` times here.
    Exact(u32),
    /// Some condition test was indeterminate: no bound is known.
    Unknown,
}

impl TripFact {
    fn merge_with(&mut self, incoming: TripFact) {
        if *self != incoming {
            *self = TripFact::Unknown;
        }
    }
}

/// Kinds of facts stored in the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FactKind {
    /// The value written by a defining statement.
    Define,
    /// The condition value of an `if`.
    Cond,
    /// The argument string of a direct `eval`.
    EvalArg,
    /// The callee value of a call/new site.
    Callee,
    /// The (string) key of a dynamic property access — the fact driving
    /// §5.1's "making dynamic property accesses with determinate property
    /// names static".
    PropKey,
}

/// The fact database produced by one (or merged from several) instrumented
/// runs.
#[derive(Debug, Default)]
pub struct FactDb {
    facts: HashMap<(FactKind, StmtId, CtxId), Fact>,
    trips: HashMap<(StmtId, CtxId), TripFact>,
    dropped: u64,
    max_entries: usize,
}

impl FactDb {
    /// An empty database capped at `max_entries` (0 = unlimited).
    pub fn new(max_entries: usize) -> Self {
        FactDb {
            max_entries,
            ..Default::default()
        }
    }

    fn over_cap(&self) -> bool {
        self.max_entries != 0 && self.facts.len() >= self.max_entries
    }

    /// Records one observation, merging with previous hits.
    pub fn record(&mut self, kind: FactKind, point: StmtId, ctx: CtxId, dv: &DValue) {
        let incoming = match dv.d {
            Det::D => Fact::Det(fact_value(&dv.v, None)),
            Det::I => Fact::Indet,
        };
        self.record_fact(kind, point, ctx, incoming);
    }

    /// Records an observation whose closure identity is known.
    pub fn record_with_class(
        &mut self,
        kind: FactKind,
        point: StmtId,
        ctx: CtxId,
        dv: &DValue,
        class: Option<&ObjClass>,
    ) {
        let incoming = match dv.d {
            Det::D => Fact::Det(fact_value(&dv.v, class)),
            Det::I => Fact::Indet,
        };
        self.record_fact(kind, point, ctx, incoming);
    }

    /// Records a pre-merged fact (used by multi-run absorption and
    /// context projection).
    pub fn record_merged(&mut self, kind: FactKind, point: StmtId, ctx: CtxId, fact: Fact) {
        self.record_fact(kind, point, ctx, fact);
    }

    fn record_fact(&mut self, kind: FactKind, point: StmtId, ctx: CtxId, incoming: Fact) {
        use std::collections::hash_map::Entry;
        let at_cap = self.over_cap();
        match self.facts.entry((kind, point, ctx)) {
            Entry::Occupied(mut e) => e.get_mut().merge_with(&incoming),
            Entry::Vacant(e) => {
                if at_cap {
                    self.dropped += 1;
                } else {
                    e.insert(incoming);
                }
            }
        }
    }

    /// Number of observations dropped because the cap was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records a loop trip-count observation.
    pub fn record_trip(&mut self, point: StmtId, ctx: CtxId, trip: TripFact) {
        use std::collections::hash_map::Entry;
        match self.trips.entry((point, ctx)) {
            Entry::Occupied(mut e) => e.get_mut().merge_with(trip),
            Entry::Vacant(e) => {
                e.insert(trip);
            }
        }
    }

    /// Looks up a fact.
    pub fn get(&self, kind: FactKind, point: StmtId, ctx: CtxId) -> Option<&Fact> {
        self.facts.get(&(kind, point, ctx))
    }

    /// Looks up a loop trip fact.
    pub fn trip(&self, point: StmtId, ctx: CtxId) -> Option<TripFact> {
        self.trips.get(&(point, ctx)).copied()
    }

    /// All facts of a kind at a point, across contexts.
    pub fn at_point(&self, kind: FactKind, point: StmtId) -> impl Iterator<Item = (CtxId, &Fact)> {
        self.facts
            .iter()
            .filter(move |((k, p, _), _)| *k == kind && *p == point)
            .map(|((_, _, c), f)| (*c, f))
    }

    /// Iterates over every stored fact.
    pub fn iter(&self) -> impl Iterator<Item = (FactKind, StmtId, CtxId, &Fact)> {
        self.facts.iter().map(|((k, p, c), f)| (*k, *p, *c, f))
    }

    /// Iterates over every trip fact.
    pub fn iter_trips(&self) -> impl Iterator<Item = (StmtId, CtxId, TripFact)> + '_ {
        self.trips.iter().map(|((p, c), t)| (*p, *c, *t))
    }

    /// Number of stored point facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether no facts are stored.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Count of determinate point facts.
    pub fn det_count(&self) -> usize {
        self.facts.values().filter(|f| f.is_det()).count()
    }

    /// Merges facts recorded against the *same* context table (e.g. facts
    /// split by kind within one run); clashing entries must agree or
    /// degrade. For combining *different runs*, whose context ids are
    /// interning artifacts, use [`FactDb::absorb_reinterned`].
    pub fn absorb(&mut self, other: &FactDb) {
        for (k, p, c, f) in other.iter() {
            self.record_fact(k, p, c, f.clone());
        }
        for (p, c, t) in other.iter_trips() {
            self.record_trip(p, c, t);
        }
    }

    /// Merges another run's facts, translating its context ids into
    /// `target_ctxs` via the machine-independent frame chains — the sound
    /// way to combine runs (§7: "running the determinacy analysis on
    /// different inputs yields more facts, which are all sound and hence
    /// can be used together").
    ///
    /// Unlike within-run recording (positional, where any indeterminate
    /// hit degrades the entry), each run's entry is already a sound
    /// all-executions claim, so the *union of knowledge* applies: a
    /// determinate entry beats an indeterminate one. Two *different*
    /// determinate values at the same point cannot both be sound; the
    /// entry degrades and the returned conflict count is nonzero —
    /// a nonzero count indicates an analysis bug, not an input property.
    pub fn absorb_reinterned(
        &mut self,
        other: &FactDb,
        other_ctxs: &ContextTable,
        target_ctxs: &mut ContextTable,
    ) -> u64 {
        let mut remap: HashMap<CtxId, CtxId> = HashMap::new();
        let mut translate = |c: CtxId, target: &mut ContextTable| -> CtxId {
            if let Some(&t) = remap.get(&c) {
                return t;
            }
            let mut cur = CtxId::ROOT;
            for (site, occ) in other_ctxs.frames(c) {
                cur = target.child(cur, site, occ);
            }
            remap.insert(c, cur);
            cur
        };
        let mut conflicts = 0u64;
        for (k, p, c, f) in other.iter() {
            let tc = translate(c, target_ctxs);
            conflicts += self.record_union(k, p, tc, f.clone()) as u64;
        }
        for (p, c, t) in other.iter_trips() {
            let tc = translate(c, target_ctxs);
            self.record_trip_union(p, tc, t);
        }
        conflicts
    }

    fn record_union(&mut self, kind: FactKind, point: StmtId, ctx: CtxId, incoming: Fact) -> bool {
        use std::collections::hash_map::Entry;
        let at_cap = self.over_cap();
        match self.facts.entry((kind, point, ctx)) {
            Entry::Occupied(mut e) => e.get_mut().union_with(&incoming),
            Entry::Vacant(e) => {
                if at_cap {
                    self.dropped += 1;
                } else {
                    e.insert(incoming);
                }
                false
            }
        }
    }

    fn record_trip_union(&mut self, point: StmtId, ctx: CtxId, trip: TripFact) {
        use std::collections::hash_map::Entry;
        match self.trips.entry((point, ctx)) {
            Entry::Occupied(mut e) => {
                let cur = *e.get();
                match (cur, trip) {
                    (TripFact::Unknown, TripFact::Exact(_)) => {
                        e.insert(trip);
                    }
                    (TripFact::Exact(a), TripFact::Exact(b)) if a != b => {
                        e.insert(TripFact::Unknown);
                    }
                    _ => {}
                }
            }
            Entry::Vacant(e) => {
                e.insert(trip);
            }
        }
    }

    /// Pretty-prints a fact in the paper's `J s K ctx = v` notation.
    pub fn describe(
        &self,
        kind: FactKind,
        point: StmtId,
        ctx: CtxId,
        prog: &Program,
        sf: &SourceFile,
        ctxs: &ContextTable,
    ) -> Option<String> {
        let f = self.get(kind, point, ctx)?;
        let line = sf.line_col(prog.span_of(point)).line;
        let ctx_s = ctxs.describe(ctx, prog, sf);
        let val = match f {
            Fact::Det(v) => v.to_string(),
            Fact::Indet => "?".to_owned(),
        };
        Some(if ctx_s == "⊤" {
            format!("J {line} K = {val}")
        } else {
            format!("J {line} K {ctx_s} = {val}")
        })
    }
}

/// Abstracts a runtime value into a [`FactValue`]; `class` supplies the
/// object class for closure detection.
pub fn fact_value(v: &Value, class: Option<&ObjClass>) -> FactValue {
    match v {
        Value::Undefined => FactValue::Undefined,
        Value::Null => FactValue::Null,
        Value::Bool(b) => FactValue::Bool(*b),
        Value::Num(n) => FactValue::Num(*n),
        Value::Str(s) => FactValue::Str(s.clone()),
        Value::Object(id) => match class {
            Some(ObjClass::Function { func, .. }) => FactValue::Closure(*func),
            _ => FactValue::Object(*id),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mujs_interp::Value;

    fn dv(v: Value) -> DValue {
        DValue::det(v)
    }

    #[test]
    fn equal_hits_stay_determinate() {
        let mut db = FactDb::new(0);
        let p = StmtId(1);
        db.record(FactKind::Define, p, CtxId::ROOT, &dv(Value::Num(5.0)));
        db.record(FactKind::Define, p, CtxId::ROOT, &dv(Value::Num(5.0)));
        assert_eq!(
            db.get(FactKind::Define, p, CtxId::ROOT),
            Some(&Fact::Det(FactValue::Num(5.0)))
        );
    }

    #[test]
    fn conflicting_hits_degrade() {
        let mut db = FactDb::new(0);
        let p = StmtId(1);
        db.record(FactKind::Define, p, CtxId::ROOT, &dv(Value::Num(5.0)));
        db.record(FactKind::Define, p, CtxId::ROOT, &dv(Value::Num(6.0)));
        assert_eq!(db.get(FactKind::Define, p, CtxId::ROOT), Some(&Fact::Indet));
    }

    #[test]
    fn indeterminate_poisons() {
        let mut db = FactDb::new(0);
        let p = StmtId(1);
        db.record(FactKind::Define, p, CtxId::ROOT, &dv(Value::Num(5.0)));
        db.record(
            FactKind::Define,
            p,
            CtxId::ROOT,
            &DValue::indet(Value::Num(5.0)),
        );
        assert_eq!(db.get(FactKind::Define, p, CtxId::ROOT), Some(&Fact::Indet));
    }

    #[test]
    fn trip_facts_merge() {
        let mut db = FactDb::new(0);
        let p = StmtId(2);
        db.record_trip(p, CtxId::ROOT, TripFact::Exact(2));
        db.record_trip(p, CtxId::ROOT, TripFact::Exact(2));
        assert_eq!(db.trip(p, CtxId::ROOT), Some(TripFact::Exact(2)));
        db.record_trip(p, CtxId::ROOT, TripFact::Exact(3));
        assert_eq!(db.trip(p, CtxId::ROOT), Some(TripFact::Unknown));
    }

    #[test]
    fn absorb_unions_databases() {
        let mut a = FactDb::new(0);
        let mut b = FactDb::new(0);
        a.record(
            FactKind::Define,
            StmtId(1),
            CtxId::ROOT,
            &dv(Value::Num(1.0)),
        );
        b.record(
            FactKind::Cond,
            StmtId(2),
            CtxId::ROOT,
            &dv(Value::Bool(true)),
        );
        a.absorb(&b);
        assert_eq!(a.len(), 2);
        assert!(a.get(FactKind::Cond, StmtId(2), CtxId::ROOT).is_some());
    }

    #[test]
    fn kinds_are_separate_namespaces() {
        let mut db = FactDb::new(0);
        let p = StmtId(1);
        db.record(FactKind::Define, p, CtxId::ROOT, &dv(Value::Num(1.0)));
        db.record(FactKind::Cond, p, CtxId::ROOT, &dv(Value::Bool(true)));
        assert_eq!(db.len(), 2);
    }
}
