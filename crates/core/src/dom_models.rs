//! DOM models for the instrumented machine (§4):
//!
//! * DOM functions "can only modify DOM data structures, so calling them
//!   does not affect the determinacy of other heap locations" — no
//!   flushes;
//! * return values of DOM functions, and any value read from a DOM data
//!   structure, are indeterminate — unless the unsound `DetDOM`
//!   assumption (§5.1) is enabled;
//! * a heap flush is performed on entry to every event handler ("since
//!   DOM events can fire in any order").

use crate::det::{DValue, Det};
use crate::machine::{DErr, DMachine, DNativeFn};
use mujs_dom::document::{Document, NodeId};
use mujs_dom::events::{EventPlan, EventTarget, EventTargetSel};
use mujs_interp::{ObjClass, ObjId, Value};
use std::rc::Rc;

impl DMachine<'_> {
    /// The determinacy of DOM-sourced values under the current config.
    pub fn dom_det(&self) -> Det {
        if self.cfg.det_dom {
            Det::D
        } else {
            Det::I
        }
    }

    /// Installs `document` and the DOM natives. Installation happens in
    /// setup mode: the bindings are part of the host environment and stay
    /// determinate across heap flushes (like the rest of the standard
    /// library).
    pub fn install_dom(&mut self, doc: Document) {
        self.setup_mode = true;
        self.doc = Some(doc);
        let g = self.global();

        let el_proto = self.alloc(ObjClass::Plain, Some(self.protos.object), Det::D);
        self.obj_mut(el_proto).builtin = true;
        self.dom_element_proto = Some(el_proto);
        let defs: &[(&'static str, DNativeFn)] = &[
            ("appendChild", |m, this, a| {
                if m.in_counterfactual() {
                    return Err(DErr::CfAbort);
                }
                let (Some(p), Some(c)) = (m.as_node(&this.v), m.arg_node(a, 0)) else {
                    return Err(m.throw_error(
                        "TypeError",
                        "appendChild needs elements",
                        this.d == Det::I,
                    ));
                };
                m.doc.as_mut().expect("dom installed").append_child(p, c);
                let dd = m.dom_det();
                Ok(a.first().cloned().unwrap_or(DValue::undef()).weaken(dd))
            }),
            ("removeChild", |m, this, a| {
                if m.in_counterfactual() {
                    return Err(DErr::CfAbort);
                }
                let (Some(p), Some(c)) = (m.as_node(&this.v), m.arg_node(a, 0)) else {
                    return Err(m.throw_error(
                        "TypeError",
                        "removeChild needs elements",
                        this.d == Det::I,
                    ));
                };
                m.doc.as_mut().expect("dom installed").remove_child(p, c);
                let dd = m.dom_det();
                Ok(a.first().cloned().unwrap_or(DValue::undef()).weaken(dd))
            }),
            ("setAttribute", |m, this, a| {
                if m.in_counterfactual() {
                    return Err(DErr::CfAbort);
                }
                let Some(n) = m.as_node(&this.v) else {
                    return Err(m.throw_error(
                        "TypeError",
                        "setAttribute needs an element",
                        this.d == Det::I,
                    ));
                };
                let name = m.dvalue_to_string(a.first().unwrap_or(&DValue::undef()))?;
                let val = m.dvalue_to_string(a.get(1).unwrap_or(&DValue::undef()))?;
                m.doc
                    .as_mut()
                    .expect("dom installed")
                    .set_attribute(n, &name, &val);
                Ok(DValue::undef())
            }),
            ("getAttribute", |m, this, a| {
                let Some(n) = m.as_node(&this.v) else {
                    return Err(m.throw_error(
                        "TypeError",
                        "getAttribute needs an element",
                        this.d == Det::I,
                    ));
                };
                let name = m.dvalue_to_string(a.first().unwrap_or(&DValue::undef()))?;
                let v = match m
                    .doc
                    .as_ref()
                    .expect("dom installed")
                    .get_attribute(n, &name)
                {
                    Some(v) => Value::Str(Rc::from(v)),
                    None => Value::Null,
                };
                Ok(DValue {
                    v,
                    d: m.dom_det().join(this.d),
                })
            }),
            ("addEventListener", |m, this, a| m.add_listener_d(&this, a)),
            ("removeEventListener", |m, this, a| {
                if m.in_counterfactual() {
                    return Err(DErr::CfAbort);
                }
                let target = m.event_target_of(&this)?;
                let ty = m.dvalue_to_string(a.first().unwrap_or(&DValue::undef()))?;
                m.events.remove(target, &ty);
                Ok(DValue::undef())
            }),
        ];
        for (name, f) in defs {
            let n = self.register_native(name, *f);
            self.set_raw(el_proto, name, Value::Object(n));
        }

        let doc_obj = self.alloc(ObjClass::DomDocument, Some(self.protos.object), Det::D);
        self.dom_document_obj = Some(doc_obj);
        let defs: &[(&'static str, DNativeFn)] = &[
            ("getElementById", |m, _, a| {
                let id = m.dvalue_to_string(a.first().unwrap_or(&DValue::undef()))?;
                let v = match m
                    .doc
                    .as_ref()
                    .expect("dom installed")
                    .get_element_by_id(&id)
                {
                    Some(n) => Value::Object(m.element_obj(n)),
                    None => Value::Null,
                };
                Ok(DValue { v, d: m.dom_det() })
            }),
            ("getElementsByTagName", |m, _, a| {
                let tag = m.dvalue_to_string(a.first().unwrap_or(&DValue::undef()))?;
                let nodes = m
                    .doc
                    .as_ref()
                    .expect("dom installed")
                    .get_elements_by_tag_name(&tag);
                let dd = m.dom_det();
                let arr = m.alloc(ObjClass::Array, Some(m.protos.array), Det::D);
                m.write_prop(
                    arr,
                    "length",
                    DValue {
                        v: Value::Num(nodes.len() as f64),
                        d: dd,
                    },
                );
                for (i, n) in nodes.into_iter().enumerate() {
                    let w = m.element_obj(n);
                    m.write_prop(
                        arr,
                        &i.to_string(),
                        DValue {
                            v: Value::Object(w),
                            d: dd,
                        },
                    );
                }
                Ok(DValue {
                    v: Value::Object(arr),
                    d: dd,
                })
            }),
            ("createElement", |m, _, a| {
                if m.in_counterfactual() {
                    return Err(DErr::CfAbort);
                }
                let tag = m.dvalue_to_string(a.first().unwrap_or(&DValue::undef()))?;
                let n = m.doc.as_mut().expect("dom installed").create_element(&tag);
                let w = m.element_obj(n);
                Ok(DValue {
                    v: Value::Object(w),
                    d: m.dom_det(),
                })
            }),
            ("addEventListener", |m, this, a| m.add_listener_d(&this, a)),
        ];
        for (name, f) in defs {
            let n = self.register_native(name, *f);
            self.set_raw(doc_obj, name, Value::Object(n));
        }
        self.set_raw(g, "document", Value::Object(doc_obj));

        let add = self.register_native("addEventListener", |m, this, a| m.add_listener_d(&this, a));
        self.set_raw(g, "addEventListener", Value::Object(add));
        self.setup_mode = false;
    }

    /// The JS wrapper object for a DOM node.
    pub fn element_obj(&mut self, node: NodeId) -> ObjId {
        if let Some(&o) = self.dom_nodes.get(&node) {
            return o;
        }
        let proto = self.dom_element_proto;
        let o = self.alloc(ObjClass::DomElement(node), proto, Det::D);
        self.dom_nodes.insert(node, o);
        o
    }

    fn as_node(&self, v: &Value) -> Option<NodeId> {
        match v {
            Value::Object(o) => match self.obj(*o).class {
                ObjClass::DomElement(n) => Some(n),
                _ => None,
            },
            _ => None,
        }
    }

    fn arg_node(&self, args: &[DValue], i: usize) -> Option<NodeId> {
        args.get(i).and_then(|v| self.as_node(&v.v))
    }

    fn event_target_of(&mut self, this: &DValue) -> Result<EventTarget, DErr> {
        match &this.v {
            Value::Object(o) if *o == self.global() => Ok(EventTarget::Window),
            Value::Object(o) if Some(*o) == self.dom_document_obj => Ok(EventTarget::Document),
            v => match self.as_node(v) {
                Some(n) => Ok(EventTarget::Element(n)),
                None => Err(self.throw_error("TypeError", "not an event target", this.d == Det::I)),
            },
        }
    }

    fn add_listener_d(&mut self, this: &DValue, args: &[DValue]) -> Result<DValue, DErr> {
        if self.in_counterfactual() {
            return Err(DErr::CfAbort);
        }
        let target = self.event_target_of(this)?;
        let ty = self.dvalue_to_string(args.first().unwrap_or(&DValue::undef()))?;
        let Some(DValue {
            v: Value::Object(handler),
            ..
        }) = args.get(1)
        else {
            return Err(self.throw_error("TypeError", "listener must be a function", false));
        };
        if !self.obj(*handler).class.is_callable() {
            return Err(self.throw_error("TypeError", "listener must be a function", false));
        }
        self.events.add(target, &ty, *handler);
        Ok(DValue::undef())
    }

    /// Intercepted DOM property reads, with the DetDOM policy applied.
    pub(crate) fn dom_get_hook(&mut self, obj: ObjId, key: mujs_ir::Sym) -> Option<DValue> {
        let dd = self.dom_det();
        match self.obj(obj).class {
            ObjClass::DomDocument => {
                let key = self.prog.interner.name(key).clone();
                let doc = self.doc.as_ref()?;
                let v = match &*key {
                    "title" => Value::Str(Rc::from(doc.title.as_str())),
                    "body" => {
                        let b = doc.body();
                        Value::Object(self.element_obj(b))
                    }
                    "documentElement" => {
                        let r = doc.root();
                        Value::Object(self.element_obj(r))
                    }
                    _ => return None,
                };
                Some(DValue { v, d: dd })
            }
            ObjClass::DomElement(n) => {
                let key = self.prog.interner.name(key).clone();
                let doc = self.doc.as_ref()?;
                if !doc.contains(n) {
                    return None;
                }
                let v = match &*key {
                    "tagName" => Value::Str(Rc::from(doc.node(n).tag.to_uppercase().as_str())),
                    "id" => Value::Str(Rc::from(doc.get_attribute(n, "id").unwrap_or(""))),
                    "className" => {
                        Value::Str(Rc::from(doc.get_attribute(n, "class").unwrap_or("")))
                    }
                    "innerHTML" => Value::Str(Rc::from(doc.node(n).text.as_str())),
                    "parentNode" => match doc.node(n).parent {
                        Some(p) => Value::Object(self.element_obj(p)),
                        None => Value::Null,
                    },
                    _ => return None,
                };
                Some(DValue { v, d: dd })
            }
            _ => None,
        }
    }

    /// Intercepted DOM property writes; `true` if handled. DOM mutation is
    /// not allowed inside counterfactual execution, but the intercept
    /// itself cannot abort (it is called from `set_prop_d`), so it falls
    /// back to recording the write as an ordinary expando in that case.
    pub(crate) fn dom_set_hook(&mut self, obj: ObjId, key: mujs_ir::Sym, value: &DValue) -> bool {
        if self.in_counterfactual() {
            return false;
        }
        let ObjClass::DomElement(n) = self.obj(obj).class else {
            return false;
        };
        let key = self.prog.interner.name(key).clone();
        let Ok(s) = mujs_interp::coerce::to_string(&value.v) else {
            return false;
        };
        let Some(doc) = self.doc.as_mut() else {
            return false;
        };
        match &*key {
            "id" => {
                doc.set_attribute(n, "id", &s);
                true
            }
            "className" => {
                doc.set_attribute(n, "class", &s);
                true
            }
            "innerHTML" => {
                doc.node_mut(n).text = s.to_string();
                true
            }
            _ => false,
        }
    }

    /// Fires `load`, `ready`, and the plan's steps. Every handler entry
    /// performs a heap flush (§4).
    pub fn fire_events(&mut self, plan: &EventPlan) -> Result<(), DErr> {
        self.dispatch(EventTarget::Window, "load")?;
        self.dispatch(EventTarget::Document, "ready")?;
        for step in plan.steps() {
            let target = match &step.target {
                EventTargetSel::Window => EventTarget::Window,
                EventTargetSel::Document => EventTarget::Document,
                EventTargetSel::ById(id) => {
                    match self.doc.as_ref().and_then(|d| d.get_element_by_id(id)) {
                        Some(n) => EventTarget::Element(n),
                        None => continue,
                    }
                }
            };
            self.dispatch(target, &step.event_type)?;
        }
        Ok(())
    }

    fn dispatch(&mut self, target: EventTarget, ty: &str) -> Result<(), DErr> {
        let handlers = self.events.handlers_for(target, ty);
        if handlers.is_empty() {
            return Ok(());
        }
        let this = match target {
            EventTarget::Window => DValue::det(Value::Object(self.global())),
            EventTarget::Document => self
                .dom_document_obj
                .map(|o| DValue::det(Value::Object(o)))
                .unwrap_or(DValue::undef()),
            EventTarget::Element(n) => {
                let o = self.element_obj(n);
                DValue::det(Value::Object(o))
            }
        };
        let dd = self.dom_det();
        let ev = self.alloc(ObjClass::Plain, Some(self.protos.object), Det::D);
        self.write_prop(
            ev,
            "type",
            DValue {
                v: Value::Str(Rc::from(ty)),
                d: dd,
            },
        );
        self.write_prop(ev, "target", this.clone().weaken(dd));
        for h in handlers {
            self.stats.handlers_fired += 1;
            // "We perform a heap flush immediately upon entering an event
            // handler."
            self.flush_heap()?;
            self.call_closure_by_id(
                h,
                this.clone(),
                &[DValue {
                    v: Value::Object(ev),
                    d: dd,
                }],
            )?;
        }
        Ok(())
    }
}
