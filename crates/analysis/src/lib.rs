//! # mujs-analysis
//!
//! The *static* analysis layer of the determinacy reproduction: three
//! cooperating passes over the interned three-address IR that complement
//! the paper's dynamic analysis.
//!
//! * [`validate`] — a structural linter ("detlint") checking the
//!   cross-cutting invariants the lowering pipeline, the runtime `eval`
//!   path, and the specializer are supposed to maintain: interned
//!   symbols, resolvable function/statement ids, and slot coordinates
//!   that agree byte-for-byte with the conservatism of
//!   `mujs_ir::slots::resolve_slots`. Debug builds run it automatically
//!   after every lowering.
//! * [`cfg`] — basic-block control-flow graphs over the structured IR,
//!   with exceptional and finally-bypass edges modelled as write-domain
//!   havoc (the same `vd` the instrumented semantics uses).
//! * [`blame`] — root-cause triage over the pointer analysis'
//!   imprecision provenance: ranks blame causes by tuple count, maps
//!   them back to program sites, and suggests the fact injections
//!   (property keys, callees) that would remove them. Drives the
//!   `detblame` CLI.
//! * [`dataflow`] / [`reaching`] — intraprocedural constant propagation
//!   and reaching definitions. Constant propagation derives
//!   *statically* determinate property-key, callee, and condition facts
//!   at the same program points the dynamic analysis attaches facts to,
//!   enabling (a) a soundness cross-check (a point the static analysis
//!   proves determinate must never carry a contradicting dynamic fact)
//!   and (b) fact injection into the pointer analysis without source
//!   rewriting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blame;
pub mod cfg;
pub mod dataflow;
pub mod reaching;
pub mod validate;

pub use blame::{blame_report, BlameReport, FixKind, RootCause, Suggestion};
pub use cfg::{build_cfg, BasicBlock, BranchInfo, Cfg, Havoc};
pub use dataflow::{analyze_function, analyze_program, AbsVal, StaticFacts};
pub use reaching::{reaching_definitions, Def, ReachingDefs, Var};
pub use validate::{assert_valid, validate_program, Violation};
