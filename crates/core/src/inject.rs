//! Bridges the dynamic fact database into the pointer analysis.
//!
//! §5.1 of the paper consumes determinacy facts by *rewriting the
//! program* (specialization) and re-running the static analysis over the
//! rewritten source. Fact injection is the rewrite-free alternative: the
//! facts a run proved determinate at every context are handed straight to
//! the solver, which consults them at dynamic property accesses and call
//! sites instead of smearing through ⋆-nodes.

use crate::det::FactValue;
use crate::facts::{Fact, FactDb, FactKind};
use mujs_ir::{FuncId, Program, StmtId};
use mujs_pta::InjectedFacts;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Distills `db` into per-site injections: a site qualifies only when
/// *every* recorded context agrees on the same determinate value — a
/// property-key string or a callee closure. Anything else (an `Indet`
/// fact in any context, disagreeing contexts, non-closure callees,
/// dangling function ids) is dropped.
///
/// Property-key strings are interned into `prog` (in ascending site
/// order, keeping interner growth deterministic) so the solver can use
/// them as static field names.
pub fn injectable_facts(db: &FactDb, prog: &mut Program) -> InjectedFacts {
    // `None` = the site has conflicting or indeterminate facts.
    let mut keys: BTreeMap<StmtId, Option<Rc<str>>> = BTreeMap::new();
    let mut callees: BTreeMap<StmtId, Option<FuncId>> = BTreeMap::new();
    for (kind, point, _ctx, fact) in db.iter() {
        match kind {
            FactKind::PropKey => {
                let cur = match fact {
                    Fact::Det(FactValue::Str(s)) => Some(s.clone()),
                    _ => None,
                };
                keys.entry(point)
                    .and_modify(|prev| {
                        if prev.as_deref() != cur.as_deref() {
                            *prev = None;
                        }
                    })
                    .or_insert(cur);
            }
            FactKind::Callee => {
                let cur = match fact {
                    Fact::Det(FactValue::Closure(f)) if (f.0 as usize) < prog.funcs.len() => {
                        Some(*f)
                    }
                    _ => None,
                };
                callees
                    .entry(point)
                    .and_modify(|prev| {
                        if *prev != cur {
                            *prev = None;
                        }
                    })
                    .or_insert(cur);
            }
            _ => {}
        }
    }
    let mut out = InjectedFacts::default();
    for (point, key) in keys {
        if let Some(s) = key {
            out.prop_keys.insert(point, prog.interner.intern(&s));
        }
    }
    for (point, callee) in callees {
        if let Some(f) = callee {
            out.callees.insert(point, f);
        }
    }
    out
}

/// The portable, serialization-friendly form of [`InjectedFacts`]: sites
/// paired with property-key *strings* and function *indices* instead of
/// program-bound [`Sym`][mujs_ir::Sym]s.
///
/// This is the stage-boundary artifact the analysis service caches: a
/// `Sym` is an index into one program's interner and dangles the moment
/// the program is dropped, but lowering is deterministic — re-parsing the
/// byte-identical source rebuilds the same `StmtId`/`FuncId` space — so a
/// `(site, key-string)` pair re-interned against a rehydrated program
/// reproduces the original injection exactly. Pairs are kept sorted by
/// site so the rendered artifact (and the interner growth on rehydration)
/// is deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InjectablePairs {
    /// Dynamic property accesses with a determinate key: `(site, key)`,
    /// ascending by site.
    pub prop_keys: Vec<(u32, String)>,
    /// Call sites with a determinate callee: `(site, func)`, ascending by
    /// site.
    pub callees: Vec<(u32, u32)>,
}

impl InjectablePairs {
    /// Extracts the portable pairs from solver-ready facts (resolving
    /// each `Sym` through the program that produced it).
    pub fn from_facts(facts: &InjectedFacts, prog: &Program) -> Self {
        let mut prop_keys: Vec<(u32, String)> = facts
            .prop_keys
            .iter()
            .map(|(site, sym)| (site.0, prog.interner.resolve(*sym).to_owned()))
            .collect();
        prop_keys.sort();
        let mut callees: Vec<(u32, u32)> = facts
            .callees
            .iter()
            .map(|(site, f)| (site.0, f.0))
            .collect();
        callees.sort();
        InjectablePairs { prop_keys, callees }
    }

    /// Rebuilds solver-ready facts against `prog` (which must be lowered
    /// from the byte-identical source that produced the pairs — the
    /// service guarantees this by content-addressing the parse stage).
    /// Key strings are interned in ascending site order, matching
    /// [`injectable_facts`]' deterministic interner growth.
    pub fn into_facts(&self, prog: &mut Program) -> InjectedFacts {
        let mut out = InjectedFacts::default();
        for (site, key) in &self.prop_keys {
            out.prop_keys
                .insert(StmtId(*site), prog.interner.intern(key));
        }
        for (site, func) in &self.callees {
            out.callees.insert(StmtId(*site), FuncId(*func));
        }
        out
    }

    /// Total number of pairs.
    pub fn len(&self) -> usize {
        self.prop_keys.len() + self.callees.len()
    }

    /// Whether there is nothing to inject.
    pub fn is_empty(&self) -> bool {
        self.prop_keys.is_empty() && self.callees.is_empty()
    }
}

#[cfg(test)]
mod pair_tests {
    use super::*;

    #[test]
    fn pairs_round_trip_through_a_reparsed_program() {
        let src = "var o = { f: 1 }; var k = 'f'; var x = o[k];";
        let mut h = crate::driver::DetHarness::from_src(src).unwrap();
        let out = h.analyze(crate::AnalysisConfig::default());
        let facts = injectable_facts(&out.facts, &mut h.program);
        let pairs = InjectablePairs::from_facts(&facts, &h.program);
        // Rehydrate against a fresh parse of the same source.
        let mut h2 = crate::driver::DetHarness::from_src(src).unwrap();
        let back = pairs.into_facts(&mut h2.program);
        assert_eq!(facts.prop_keys.len(), back.prop_keys.len());
        assert_eq!(facts.callees, back.callees);
        for (site, sym) in &facts.prop_keys {
            let resolved = h.program.interner.resolve(*sym);
            let re = back.prop_keys.get(site).expect("site survives");
            assert_eq!(h2.program.interner.resolve(*re), resolved);
        }
        assert_eq!(pairs, InjectablePairs::from_facts(&back, &h2.program));
    }
}
