//! Property-based tests on the shared runtime substrate: the
//! insertion-ordered property map and the primitive coercion/operator
//! semantics both machines rely on.

use mujs_interp::coerce;
use mujs_interp::{PropMap, Slot, Value};
use mujs_ir::{BinOp, Sym};
use proptest::prelude::*;
use std::rc::Rc;

fn slot(v: f64) -> Slot<()> {
    Slot {
        value: Value::Num(v),
        ann: (),
    }
}

fn arb_prim() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Undefined),
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i16>().prop_map(|n| Value::Num(n as f64)),
        prop_oneof![Just(f64::NAN), Just(f64::INFINITY), Just(0.5), Just(-0.0)]
            .prop_map(Value::Num),
        "[a-z0-9]{0,5}".prop_map(|s| Value::Str(Rc::from(s.as_str()))),
    ]
}

#[derive(Debug, Clone)]
enum MapOp {
    Insert(u8, i32),
    Remove(u8),
}

fn arb_ops() -> impl Strategy<Value = Vec<MapOp>> {
    prop::collection::vec(
        prop_oneof![
            (any::<u8>(), any::<i32>()).prop_map(|(k, v)| MapOp::Insert(k % 12, v)),
            any::<u8>().prop_map(|k| MapOp::Remove(k % 12)),
        ],
        0..40,
    )
}

proptest! {
    // ----------------- PropMap models a map + insertion order ------------

    #[test]
    fn propmap_agrees_with_model(ops in arb_ops()) {
        let mut map: PropMap<()> = PropMap::new();
        // Model: association list in JS enumeration order.
        let mut model: Vec<(Sym, f64)> = Vec::new();
        for op in &ops {
            match op {
                MapOp::Insert(k, v) => {
                    let key = Sym(*k as u32);
                    let existed = map.insert(key, slot(*v as f64)).is_some();
                    match model.iter_mut().find(|(mk, _)| *mk == key) {
                        Some((_, mv)) => {
                            assert!(existed);
                            *mv = *v as f64;
                        }
                        None => {
                            assert!(!existed);
                            model.push((key, *v as f64));
                        }
                    }
                }
                MapOp::Remove(k) => {
                    let key = Sym(*k as u32);
                    let removed = map.remove(key).is_some();
                    let had = model.iter().any(|(mk, _)| *mk == key);
                    prop_assert_eq!(removed, had);
                    model.retain(|(mk, _)| *mk != key);
                }
            }
            // Invariants after every step.
            prop_assert_eq!(map.len(), model.len());
            let keys: Vec<Sym> = map.keys().collect();
            let model_keys: Vec<Sym> = model.iter().map(|(k, _)| *k).collect();
            prop_assert_eq!(keys, model_keys, "enumeration order must match");
            for (k, v) in &model {
                let got = map.get(*k).map(|s| s.value.clone());
                prop_assert_eq!(got, Some(Value::Num(*v)));
            }
        }
    }

    // ----------------- primitive operator algebra -----------------------

    #[test]
    fn strict_eq_is_reflexive_for_non_nan(v in arb_prim()) {
        let is_nan = matches!(&v, Value::Num(n) if n.is_nan());
        prop_assert_eq!(coerce::strict_eq(&v, &v), !is_nan);
    }

    #[test]
    fn eq_ops_are_symmetric(a in arb_prim(), b in arb_prim()) {
        prop_assert_eq!(coerce::strict_eq(&a, &b), coerce::strict_eq(&b, &a));
        prop_assert_eq!(
            coerce::loose_eq(&a, &b).unwrap(),
            coerce::loose_eq(&b, &a).unwrap()
        );
    }

    #[test]
    fn strict_eq_implies_loose_eq(a in arb_prim(), b in arb_prim()) {
        if coerce::strict_eq(&a, &b) {
            prop_assert!(coerce::loose_eq(&a, &b).unwrap());
        }
    }

    #[test]
    fn add_concatenates_iff_a_string_is_involved(a in arb_prim(), b in arb_prim()) {
        let r = coerce::bin_op(BinOp::Add, &a, &b).unwrap();
        let has_str = matches!(a, Value::Str(_)) || matches!(b, Value::Str(_));
        prop_assert_eq!(matches!(r, Value::Str(_)), has_str);
    }

    #[test]
    fn comparisons_return_bools_and_exclusive(a in arb_prim(), b in arb_prim()) {
        let lt = coerce::bin_op(BinOp::Lt, &a, &b).unwrap();
        let gte = coerce::bin_op(BinOp::GtEq, &a, &b).unwrap();
        let (Value::Bool(lt), Value::Bool(gte)) = (lt, gte) else {
            return Err(TestCaseError::fail("non-bool comparison"));
        };
        // lt and gte are never both true; both false only via NaN.
        prop_assert!(!(lt && gte));
    }

    #[test]
    fn to_boolean_matches_not_not(v in arb_prim()) {
        let b = coerce::to_boolean(&v);
        let notted = coerce::un_op(mujs_ir::UnOp::Not, &v, None).unwrap();
        prop_assert_eq!(notted, Value::Bool(!b));
    }

    #[test]
    fn to_string_to_number_roundtrip_for_integers(n in -1_000_000i64..1_000_000) {
        let v = Value::Num(n as f64);
        let s = coerce::to_string(&v).unwrap();
        let back = coerce::str_to_number(&s);
        prop_assert_eq!(back, n as f64);
    }

    #[test]
    fn bitwise_ops_produce_int32(a in any::<i32>(), b in any::<i32>()) {
        for op in [BinOp::BitAnd, BinOp::BitOr, BinOp::BitXor, BinOp::Shl, BinOp::Shr] {
            let r = coerce::bin_op(op, &Value::Num(a as f64), &Value::Num(b as f64))
                .unwrap();
            let Value::Num(n) = r else {
                return Err(TestCaseError::fail("non-num bitwise"));
            };
            prop_assert_eq!(n, n.trunc());
            prop_assert!((i32::MIN as f64..=i32::MAX as f64).contains(&n));
        }
    }
}
