//! Static lexical name resolution.
//!
//! The interpreters resolve names dynamically through the scope chain (so
//! `eval`-introduced bindings work), but the *static* consumers — the
//! pointer analysis and the specializer — need to know where a named
//! reference binds. This module computes, for every `(function, name)`
//! reference, the function whose activation declares the name, or `Global`.
//!
//! Eval chunks have no scope of their own; their references resolve
//! starting at the lexically enclosing function.

use crate::intern::Sym;
use crate::ir::{FuncId, FuncKind, Function, Program};
use std::collections::{HashMap, HashSet};

/// Where a named reference binds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Binding {
    /// A local of the given function's activation.
    Local(FuncId),
    /// The global scope.
    Global,
}

/// Precomputed per-function declared-name sets supporting
/// [`Resolver::resolve`].
#[derive(Debug, Clone)]
pub struct Resolver {
    declared: HashMap<FuncId, HashSet<Sym>>,
}

impl Resolver {
    /// Builds a resolver for all functions currently in `prog`.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), mujs_syntax::SyntaxError> {
    /// use mujs_ir::resolve::{Binding, Resolver};
    /// let ast = mujs_syntax::parse("function f(p) { var x; return p + x + y; }")?;
    /// let prog = mujs_ir::lower::lower_program(&ast);
    /// let r = Resolver::new(&prog);
    /// let f = prog.funcs[1].id;
    /// let x = prog.interner.get("x").unwrap();
    /// let y = prog.interner.get("y").unwrap();
    /// assert_eq!(r.resolve(&prog, f, x), Binding::Local(f));
    /// // Script-level declarations live in the global scope.
    /// assert_eq!(r.resolve(&prog, f, y), Binding::Global);
    /// # Ok(())
    /// # }
    /// ```
    pub fn new(prog: &Program) -> Self {
        let mut declared = HashMap::new();
        for f in &prog.funcs {
            declared.insert(f.id, declared_names(f));
        }
        Resolver { declared }
    }

    /// Resolves `name` as referenced from inside `func`.
    pub fn resolve(&self, prog: &Program, func: FuncId, name: Sym) -> Binding {
        let mut cur = Some(func);
        while let Some(id) = cur {
            let f = prog.func(id);
            // Eval chunks and the top-level script do not own a scope: the
            // script's declarations are global, eval chunks defer to their
            // parent.
            match f.kind {
                FuncKind::Script => return Binding::Global,
                FuncKind::EvalChunk => {
                    cur = f.parent;
                    continue;
                }
                FuncKind::Function => {}
            }
            if self
                .declared
                .get(&id)
                .is_some_and(|names| names.contains(&name))
            {
                return Binding::Local(id);
            }
            cur = f.parent;
        }
        Binding::Global
    }

    /// The names declared directly by `func` (params, vars, hoisted
    /// functions, and the self-binding of named function expressions).
    pub fn declared(&self, func: FuncId) -> Option<&HashSet<Sym>> {
        self.declared.get(&func)
    }
}

fn declared_names(f: &Function) -> HashSet<Sym> {
    let mut names: HashSet<Sym> = f.params.iter().copied().collect();
    names.extend(f.decls.vars.iter().copied());
    names.extend(f.decls.funcs.iter().map(|(n, _)| *n));
    if f.bind_self {
        if let Some(n) = f.name {
            names.insert(n);
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use mujs_syntax::parse;

    fn setup(src: &str) -> (Program, Resolver) {
        let prog = lower_program(&parse(src).unwrap());
        let r = Resolver::new(&prog);
        (prog, r)
    }

    fn func_named(prog: &Program, name: &str) -> FuncId {
        prog.funcs
            .iter()
            .find(|f| f.name.is_some_and(|s| prog.interner.resolve(s) == name))
            .unwrap()
            .id
    }

    fn sym(prog: &Program, name: &str) -> Sym {
        prog.interner.get(name).unwrap()
    }

    #[test]
    fn params_shadow_outer_vars() {
        let (prog, r) = setup("function outer(x) { function inner(x) { return x; } }");
        let inner = func_named(&prog, "inner");
        assert_eq!(
            r.resolve(&prog, inner, sym(&prog, "x")),
            Binding::Local(inner)
        );
    }

    #[test]
    fn free_variables_climb_to_enclosing_function() {
        let (prog, r) = setup("function outer() { var v; function inner() { return v; } }");
        let inner = func_named(&prog, "inner");
        let outer = func_named(&prog, "outer");
        assert_eq!(
            r.resolve(&prog, inner, sym(&prog, "v")),
            Binding::Local(outer)
        );
    }

    #[test]
    fn script_level_vars_are_global() {
        let (prog, r) = setup("var g; function f() { return g; }");
        let f = func_named(&prog, "f");
        assert_eq!(r.resolve(&prog, f, sym(&prog, "g")), Binding::Global);
        // A name declared nowhere resolves to Global too.
        let mut p2 = prog.clone();
        let unbound = p2.interner.intern("nonexistent");
        assert_eq!(r.resolve(&p2, f, unbound), Binding::Global);
    }

    #[test]
    fn hoisted_function_names_are_bindings() {
        let (prog, r) = setup("function f() { function g() {} return g; }");
        let f = func_named(&prog, "f");
        assert_eq!(r.resolve(&prog, f, sym(&prog, "g")), Binding::Local(f));
    }

    #[test]
    fn named_function_expression_self_binding() {
        let (prog, r) = setup("var h = function rec() { return rec; };");
        let rec = func_named(&prog, "rec");
        assert_eq!(
            r.resolve(&prog, rec, sym(&prog, "rec")),
            Binding::Local(rec)
        );
    }
}
