//! Offline stand-in for `proptest`.
//!
//! Provides the subset this workspace's property tests use: the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`,
//! [`prop_oneof!`], `any::<T>()`, range and tuple strategies,
//! `prop::collection::vec`, and character-class string patterns like
//! `"[a-z]{0,6}"`. Inputs are generated deterministically per test name
//! and case index; there is **no shrinking** — a failure reports the full
//! generated input instead.

pub mod test_runner {
    //! Deterministic case driver.

    use std::fmt;

    /// Number of cases per property (`PROPTEST_CASES` overrides).
    pub fn cases() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(128)
    }

    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run for each property in the block.
        pub cases: u32,
        /// Accepted for API compatibility; this shim never shrinks.
        pub max_shrink_iters: u32,
        /// Accepted for API compatibility; this shim counts rejects but
        /// never gives up.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: cases() as u32,
                max_shrink_iters: 1024,
                max_global_rejects: 65_536,
            }
        }
    }

    /// A property-test failure (what `prop_assert!` returns).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Fails the current case with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }

        /// Alias of [`TestCaseError::fail`] (API compatibility).
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// SplitMix64 generator seeded from the test name and case index.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Deterministic generator for one (test, case) pair.
        pub fn for_case(name: &str, case: u64) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            let mut rng = TestRng {
                state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            };
            let _ = rng.next_u64();
            rng
        }

        /// The raw 64-bit step.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`.
        pub fn below(&mut self, n: usize) -> usize {
            debug_assert!(n > 0);
            (self.next_u64() % n as u64) as usize
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy type (needed by [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let this = self;
            BoxedStrategy(Rc::new(move |rng| this.generate(rng)))
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice between erased alternatives ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds from the macro's collected arms.
        ///
        /// # Panics
        ///
        /// Panics when `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128) - (self.start as i128);
                    assert!(span > 0, "empty range strategy");
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    ((self.start as i128) + off) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    /// `&'static str` character-class patterns (`"[a-z 0-9]{0,6}"`).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::pattern::generate(self, rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::test_runner::TestRng;

    /// Types with a canonical generation recipe.
    pub trait Arbitrary: Sized {
        /// Generates one value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Mix raw values with small and boundary ones: edge
                    // cases carry most of the bug-finding power.
                    match rng.next_u64() % 8 {
                        0 => 0 as $t,
                        1 => <$t>::MAX,
                        2 => <$t>::MIN,
                        3 => (rng.next_u64() % 16) as $t,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }
    impl_arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            arb_char(rng)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            match rng.next_u64() % 8 {
                0 => 0.0,
                1 => -0.0,
                2 => f64::NAN,
                3 => f64::INFINITY,
                4 => f64::NEG_INFINITY,
                _ => {
                    let mag = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                    (mag - 0.5) * 2.0e6
                }
            }
        }
    }

    impl Arbitrary for String {
        fn arbitrary(rng: &mut TestRng) -> String {
            let len = (rng.next_u64() % 40) as usize;
            (0..len).map(|_| arb_char(rng)).collect()
        }
    }

    pub(crate) fn arb_char(rng: &mut TestRng) -> char {
        match rng.next_u64() % 10 {
            // Mostly printable ASCII, with some syntax-relevant controls
            // and a tail of arbitrary unicode scalars.
            0..=6 => (0x20 + (rng.next_u64() % 0x5f)) as u8 as char,
            7 => *['\n', '\t', '\r', '"', '\'', '\\', '\0']
                .get((rng.next_u64() % 7) as usize)
                .unwrap(),
            _ => loop {
                let c = (rng.next_u64() % 0x11_0000) as u32;
                if let Some(c) = char::from_u32(c) {
                    break c;
                }
            },
        }
    }
}

/// Canonical strategy for `T` ([`arbitrary::Arbitrary`] types).
pub fn any<T: arbitrary::Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: arbitrary::Arbitrary> strategy::Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Element-count bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// A `Vec` of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo).max(1);
            let len = self.size.lo + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod pattern {
    //! Tiny character-class pattern generator for `&str` strategies.
    //!
    //! Supports sequences of atoms — a literal char, an escaped char, or a
    //! `[...]` class with ranges — each followed by an optional `{m,n}`,
    //! `{n}`, `*`, `+`, or `?` quantifier. This covers the patterns the
    //! workspace's tests use; unsupported syntax panics with the pattern so
    //! the test author sees it immediately.

    use crate::test_runner::TestRng;

    /// Generates one string matching `pattern`.
    ///
    /// # Panics
    ///
    /// Panics on syntax outside the supported subset.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = parse_atom(pattern, &chars, &mut i);
            let (lo, hi) = parse_quant(pattern, &chars, &mut i);
            let span = (hi - lo).max(1);
            let reps = lo + rng.below(span);
            for _ in 0..reps {
                out.push(atom.pick(rng));
            }
        }
        out
    }

    enum Atom {
        Lit(char),
        Class(Vec<(char, char)>),
    }

    impl Atom {
        fn pick(&self, rng: &mut TestRng) -> char {
            match self {
                Atom::Lit(c) => *c,
                Atom::Class(ranges) => {
                    let total: u32 = ranges.iter().map(|(a, b)| *b as u32 - *a as u32 + 1).sum();
                    let mut k = (rng.next_u64() % total as u64) as u32;
                    for (a, b) in ranges {
                        let w = *b as u32 - *a as u32 + 1;
                        if k < w {
                            return char::from_u32(*a as u32 + k)
                                .expect("class range stays in scalar space");
                        }
                        k -= w;
                    }
                    unreachable!()
                }
            }
        }
    }

    fn parse_atom(pattern: &str, chars: &[char], i: &mut usize) -> Atom {
        match chars[*i] {
            '[' => {
                *i += 1;
                let mut ranges = Vec::new();
                while *i < chars.len() && chars[*i] != ']' {
                    let lo = take_class_char(chars, i);
                    if *i + 1 < chars.len() && chars[*i] == '-' && chars[*i + 1] != ']' {
                        *i += 1;
                        let hi = take_class_char(chars, i);
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(
                    *i < chars.len(),
                    "unterminated class in pattern {pattern:?}"
                );
                *i += 1; // ']'
                Atom::Class(ranges)
            }
            '\\' => {
                *i += 1;
                let c = unescape(chars[*i]);
                *i += 1;
                Atom::Lit(c)
            }
            '{' | '}' | '*' | '+' | '?' => {
                panic!("unsupported pattern syntax in {pattern:?} at {i:?}")
            }
            c => {
                *i += 1;
                Atom::Lit(c)
            }
        }
    }

    fn take_class_char(chars: &[char], i: &mut usize) -> char {
        let c = if chars[*i] == '\\' {
            *i += 1;
            unescape(chars[*i])
        } else {
            chars[*i]
        };
        *i += 1;
        c
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            '0' => '\0',
            other => other,
        }
    }

    /// Parses an optional quantifier; returns `(min, max_exclusive)`.
    fn parse_quant(pattern: &str, chars: &[char], i: &mut usize) -> (usize, usize) {
        if *i >= chars.len() {
            return (1, 2);
        }
        match chars[*i] {
            '{' => {
                let close = chars[*i..]
                    .iter()
                    .position(|c| *c == '}')
                    .map(|p| *i + p)
                    .unwrap_or_else(|| panic!("unterminated {{}} in {pattern:?}"));
                let body: String = chars[*i + 1..close].iter().collect();
                *i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => {
                        let lo = lo.trim().parse().expect("quantifier lower bound");
                        let hi: usize = hi.trim().parse().expect("quantifier upper bound");
                        (lo, hi + 1)
                    }
                    None => {
                        let n: usize = body.trim().parse().expect("quantifier count");
                        (n, n + 1)
                    }
                }
            }
            '*' => {
                *i += 1;
                (0, 9)
            }
            '+' => {
                *i += 1;
                (1, 9)
            }
            '?' => {
                *i += 1;
                (0, 2)
            }
            _ => (1, 2),
        }
    }
}

// The `prop::` module path used by tests (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    //! One-stop import for property tests.

    pub use crate::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines deterministic property tests; see the crate docs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! {
            @cases ({ ($cfg).cases as u64 })
            $($rest)*
        }
    };
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $crate::proptest! {
            @cases ($crate::test_runner::cases())
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
    (@cases ($cases:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $cases;
                for case in 0..cases {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let argdump = ::std::format!("{:?}", ($(&$arg,)+));
                    let result: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = result {
                        ::std::panic!(
                            "proptest {} failed at case {}: {}\ninput: {}",
                            stringify!($name),
                            case,
                            e,
                            argdump
                        );
                    }
                }
            }
        )*
    };
}

/// Uniform choice among strategies generating the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(
                    ::std::concat!("assertion failed: ", ::std::stringify!($cond)),
                ),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!(
                    "assertion failed: {:?} == {:?}",
                    left,
                    right
                )),
            );
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!(
                    "{}: {:?} != {:?}",
                    ::std::format!($($fmt)+),
                    left,
                    right
                )),
            );
        }
    }};
}

/// Fails the current case when both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {:?} != {:?}", left, right),
            ));
        }
    }};
}
