//! Property-based tests of the analysis' core data structures: the
//! determinacy lattice, the fact-merge semilattice, and the context
//! interner.

use determinacy::{Det, Fact, FactDb, FactKind, FactValue};
use mujs_interp::context::{ContextTable, CtxId};
use mujs_ir::StmtId;
use proptest::prelude::*;

fn arb_det() -> impl Strategy<Value = Det> {
    prop_oneof![Just(Det::D), Just(Det::I)]
}

fn arb_fact_value() -> impl Strategy<Value = FactValue> {
    prop_oneof![
        Just(FactValue::Undefined),
        Just(FactValue::Null),
        any::<bool>().prop_map(FactValue::Bool),
        any::<i32>().prop_map(|n| FactValue::Num(n as f64)),
        Just(FactValue::Num(f64::NAN)),
        "[a-z]{0,6}".prop_map(|s| FactValue::Str(s.as_str().into())),
    ]
}

fn arb_fact() -> impl Strategy<Value = Fact> {
    prop_oneof![arb_fact_value().prop_map(Fact::Det), Just(Fact::Indet),]
}

proptest! {
    // ---------------- Det is a join-semilattice with top I --------------

    #[test]
    fn det_join_is_commutative_associative_idempotent(
        a in arb_det(), b in arb_det(), c in arb_det()
    ) {
        prop_assert_eq!(a.join(b), b.join(a));
        prop_assert_eq!(a.join(b).join(c), a.join(b.join(c)));
        prop_assert_eq!(a.join(a), a);
        prop_assert_eq!(a.join(Det::I), Det::I);
        prop_assert_eq!(a.join(Det::D), a);
    }

    // ---------------- Fact merging is order-insensitive -----------------

    #[test]
    fn fact_merge_order_insensitive(facts in prop::collection::vec(arb_fact(), 1..8)) {
        let point = StmtId(1);
        let merge = |fs: &[Fact]| {
            let mut db = FactDb::new(0);
            for f in fs {
                db.record_merged(FactKind::Define, point, CtxId::ROOT, f.clone());
            }
            db.get(FactKind::Define, point, CtxId::ROOT).cloned()
        };
        let forward = merge(&facts);
        let mut rev = facts.clone();
        rev.reverse();
        let backward = merge(&rev);
        // Same multiset ⇒ same merged fact (NaN compares bitwise in
        // FactValue::same, making this well-defined).
        match (forward, backward) {
            (Some(Fact::Det(a)), Some(Fact::Det(b))) => prop_assert!(a.same(&b)),
            (a, b) => prop_assert_eq!(
                matches!(a, Some(Fact::Indet)),
                matches!(b, Some(Fact::Indet))
            ),
        }
    }

    #[test]
    fn fact_merge_determinate_only_when_all_agree(
        v in arb_fact_value(),
        facts in prop::collection::vec(arb_fact(), 0..6)
    ) {
        let point = StmtId(2);
        let mut db = FactDb::new(0);
        db.record_merged(FactKind::Define, point, CtxId::ROOT, Fact::Det(v.clone()));
        for f in &facts {
            db.record_merged(FactKind::Define, point, CtxId::ROOT, f.clone());
        }
        let merged = db.get(FactKind::Define, point, CtxId::ROOT).unwrap();
        let all_same = facts
            .iter()
            .all(|f| matches!(f, Fact::Det(x) if x.same(&v)));
        prop_assert_eq!(merged.is_det(), all_same);
    }

    #[test]
    fn absorb_is_idempotent(facts in prop::collection::vec(
        (0u32..20, arb_fact()), 0..20
    )) {
        let mut a = FactDb::new(0);
        for (p, f) in &facts {
            a.record_merged(FactKind::Define, StmtId(*p), CtxId::ROOT, f.clone());
        }
        let before: Vec<_> = {
            let mut v: Vec<_> = a
                .iter()
                .map(|(k, p, c, f)| (k, p, c, f.clone()))
                .collect();
            v.sort_by_key(|(k, p, c, _)| (*k as u8, *p, *c));
            v
        };
        let snapshot = FactDb::new(0);
        let mut b = FactDb::new(0);
        for (p, f) in &facts {
            b.record_merged(FactKind::Define, StmtId(*p), CtxId::ROOT, f.clone());
        }
        a.absorb(&b); // same contents again
        a.absorb(&snapshot); // empty
        let after: Vec<_> = {
            let mut v: Vec<_> = a
                .iter()
                .map(|(k, p, c, f)| (k, p, c, f.clone()))
                .collect();
            v.sort_by_key(|(k, p, c, _)| (*k as u8, *p, *c));
            v
        };
        prop_assert_eq!(before.len(), after.len());
        for ((k1, p1, c1, f1), (k2, p2, c2, f2)) in before.iter().zip(after.iter()) {
            prop_assert_eq!((k1, p1, c1), (k2, p2, c2));
            prop_assert_eq!(f1.is_det(), f2.is_det());
        }
    }

    // ---------------- Context interning ---------------------------------

    #[test]
    fn context_frames_roundtrip(chain in prop::collection::vec((0u32..50, 0u32..5), 0..6)) {
        let mut t = ContextTable::new();
        let mut ctx = CtxId::ROOT;
        for (site, occ) in &chain {
            ctx = t.child(ctx, StmtId(*site), *occ);
        }
        let frames = t.frames(ctx);
        let expected: Vec<(StmtId, u32)> =
            chain.iter().map(|(s, o)| (StmtId(*s), *o)).collect();
        prop_assert_eq!(frames, expected);
        prop_assert_eq!(t.depth(ctx), chain.len());
    }

    #[test]
    fn context_interning_is_injective(
        a in prop::collection::vec((0u32..20, 0u32..3), 0..5),
        b in prop::collection::vec((0u32..20, 0u32..3), 0..5),
    ) {
        let mut t = ContextTable::new();
        let build = |t: &mut ContextTable, chain: &[(u32, u32)]| {
            let mut ctx = CtxId::ROOT;
            for (site, occ) in chain {
                ctx = t.child(ctx, StmtId(*site), *occ);
            }
            ctx
        };
        let ca = build(&mut t, &a);
        let cb = build(&mut t, &b);
        prop_assert_eq!(ca == cb, a == b);
    }

    #[test]
    fn context_suffix_is_suffix(
        chain in prop::collection::vec((0u32..20, 0u32..3), 0..6),
        k in 0usize..8,
    ) {
        let mut t = ContextTable::new();
        let mut ctx = CtxId::ROOT;
        for (site, occ) in &chain {
            ctx = t.child(ctx, StmtId(*site), *occ);
        }
        let s = t.suffix(ctx, k);
        let frames = t.frames(s);
        let full: Vec<(StmtId, u32)> =
            chain.iter().map(|(x, o)| (StmtId(*x), *o)).collect();
        let start = full.len().saturating_sub(k);
        prop_assert_eq!(frames, full[start..].to_vec());
    }
}
