//! Hand-written native *models* (§4): each standard-library function is
//! reimplemented to compute the same concrete result as the concrete
//! machine while propagating determinacy conservatively. Pure helpers are
//! shared with the concrete machine via [`mujs_interp::stdlib`], so both
//! machines agree bit-for-bit on concrete behavior.
//!
//! Two testing/benchmarking natives exercise the paper's escape hatches:
//! `__indet(v)` returns `v` marked indeterminate (a silent indeterminacy
//! source), and `__opaque(...)` models "calling a native function without
//! a model": indeterminate result plus a heap flush, and an abort when
//! reached counterfactually.

use crate::det::{DValue, Det};
use crate::machine::{DErr, DMachine, DNativeFn};
use mujs_interp::coerce;
use mujs_interp::stdlib;
use mujs_interp::{ObjClass, ObjId, Value};
use mujs_ir::FuncKind;
use std::rc::Rc;

/// Installs every global binding and model on a fresh machine.
pub fn install_models(m: &mut DMachine<'_>) {
    let g = m.global();
    for p in [
        m.protos.object,
        m.protos.function,
        m.protos.array,
        m.protos.string,
        m.protos.number,
        m.protos.boolean,
        m.protos.error,
    ] {
        m.obj_mut(p).builtin = true;
    }
    m.obj_mut(g).builtin = true;

    m.set_raw(g, "window", Value::Object(g));
    m.set_raw(g, "globalThis", Value::Object(g));
    m.set_raw(g, "undefined", Value::Undefined);
    m.set_raw(g, "NaN", Value::Num(f64::NAN));
    m.set_raw(g, "Infinity", Value::Num(f64::INFINITY));

    // ----- Math -----------------------------------------------------------
    let math = m.alloc(ObjClass::Plain, Some(m.protos.object), Det::D);
    m.obj_mut(math).builtin = true;
    m.set_raw(g, "Math", Value::Object(math));
    m.set_raw(math, "PI", Value::Num(std::f64::consts::PI));
    m.set_raw(math, "E", Value::Num(std::f64::consts::E));
    let defs: &[(&'static str, DNativeFn)] = &[
        // The canonical indeterminate input (§2.1).
        ("random", |m, _, _| {
            Ok(DValue::indet(Value::Num(m.random())))
        }),
        ("floor", |_, _, a| num1(a, f64::floor)),
        ("ceil", |_, _, a| num1(a, f64::ceil)),
        ("round", |_, _, a| num1(a, f64::round)),
        ("abs", |_, _, a| num1(a, f64::abs)),
        ("sqrt", |_, _, a| num1(a, f64::sqrt)),
        ("pow", |_, _, a| num2(a, f64::powf)),
        ("max", |_, _, a| num_fold(a, f64::NEG_INFINITY, f64::max)),
        ("min", |_, _, a| num_fold(a, f64::INFINITY, f64::min)),
    ];
    for (name, f) in defs {
        let n = m.register_native(name, *f);
        m.set_raw(math, name, Value::Object(n));
    }

    // ----- Date ------------------------------------------------------------
    let date = m.register_native("Date", |m, this, _| {
        let t = m.now_tick();
        if let Value::Object(o) = &this.v {
            m.write_prop(*o, "_time", DValue::indet(Value::Num(t)));
        }
        Ok(this)
    });
    let now = m.register_native("now", |m, _, _| Ok(DValue::indet(Value::Num(m.now_tick()))));
    m.set_raw(date, "now", Value::Object(now));
    m.set_raw(g, "Date", Value::Object(date));

    // ----- console / alert --------------------------------------------------
    let console = m.alloc(ObjClass::Plain, Some(m.protos.object), Det::D);
    m.obj_mut(console).builtin = true;
    let log = m.register_native("log", |m, _, a| {
        if !m.in_counterfactual() {
            let parts: Vec<String> = a.iter().map(|v| m.display(&v.v)).collect();
            m.output.push(parts.join(" "));
        }
        Ok(DValue::undef())
    });
    m.set_raw(console, "log", Value::Object(log));
    m.set_raw(console, "error", Value::Object(log));
    m.set_raw(console, "warn", Value::Object(log));
    m.set_raw(g, "console", Value::Object(console));
    let alert = m.register_native("alert", |m, _, a| {
        if !m.in_counterfactual() {
            let msg = match a.first() {
                Some(v) => m.display(&v.v),
                None => String::new(),
            };
            m.output.push(format!("alert: {msg}"));
        }
        Ok(DValue::undef())
    });
    m.set_raw(g, "alert", Value::Object(alert));

    // ----- analysis test hooks ----------------------------------------------
    let indet = m.register_native("__indet", |_, _, a| {
        Ok(DValue::indet(
            a.first().map(|v| v.v.clone()).unwrap_or(Value::Undefined),
        ))
    });
    m.set_raw(g, "__indet", Value::Object(indet));
    let opaque = m.register_native("__opaque", |m, _, _| {
        if m.in_counterfactual() {
            // "If counterfactual execution encounters a call to a native
            // function that is not known to be side effect-free, we
            // immediately abort" (§4).
            return Err(DErr::CfAbort);
        }
        m.flush_heap()?;
        Ok(DValue::indet(Value::Undefined))
    });
    m.set_raw(g, "__opaque", Value::Object(opaque));

    // ----- global utilities ---------------------------------------------------
    let defs: &[(&'static str, DNativeFn)] = &[
        ("parseInt", |m, _, a| {
            let s = arg_string(m, a, 0)?;
            let (radix, rd) = match a.get(1) {
                Some(v) => (coerce::to_number(&v.v).unwrap_or(10.0) as u32, v.d),
                None => (10, Det::D),
            };
            Ok(DValue {
                v: Value::Num(stdlib::parse_int(&s.0, radix)),
                d: s.1.join(rd),
            })
        }),
        ("parseFloat", |m, _, a| {
            let s = arg_string(m, a, 0)?;
            Ok(DValue {
                v: Value::Num(stdlib::parse_float(&s.0)),
                d: s.1,
            })
        }),
        ("isNaN", |_, _, a| {
            let (n, d) = arg_num(a, 0, f64::NAN);
            Ok(DValue {
                v: Value::Bool(n.is_nan()),
                d,
            })
        }),
        ("isFinite", |_, _, a| {
            let (n, d) = arg_num(a, 0, f64::NAN);
            Ok(DValue {
                v: Value::Bool(n.is_finite()),
                d,
            })
        }),
    ];
    for (name, f) in defs {
        let n = m.register_native(name, *f);
        m.set_raw(g, name, Value::Object(n));
    }

    // ----- constructors ---------------------------------------------------------
    let object_ctor = m.register_native("Object", |m, _, a| match a.first() {
        Some(DValue {
            v: Value::Object(o),
            d,
        }) => Ok(DValue {
            v: Value::Object(*o),
            d: *d,
        }),
        _ => {
            let o = m.alloc(ObjClass::Plain, Some(m.protos.object), Det::D);
            Ok(DValue::det(Value::Object(o)))
        }
    });
    m.set_raw(object_ctor, "prototype", Value::Object(m.protos.object));
    m.set_raw(g, "Object", Value::Object(object_ctor));
    m.specials.object_ctor = Some(object_ctor);

    let array_ctor = m.register_native("Array", |m, _, a| array_ctor_model(m, a));
    m.set_raw(array_ctor, "prototype", Value::Object(m.protos.array));
    m.set_raw(g, "Array", Value::Object(array_ctor));
    m.specials.array_ctor = Some(array_ctor);

    let string_ctor = m.register_native("String", |m, _, a| {
        let (s, d) = arg_string(m, a, 0)?;
        Ok(DValue {
            v: Value::Str(s),
            d,
        })
    });
    m.set_raw(string_ctor, "prototype", Value::Object(m.protos.string));
    m.set_raw(g, "String", Value::Object(string_ctor));

    let number_ctor = m.register_native("Number", |_, _, a| {
        let (n, d) = arg_num(a, 0, 0.0);
        Ok(DValue {
            v: Value::Num(n),
            d,
        })
    });
    m.set_raw(number_ctor, "prototype", Value::Object(m.protos.number));
    m.set_raw(g, "Number", Value::Object(number_ctor));

    let boolean_ctor = m.register_native("Boolean", |_, _, a| {
        let d = a.first().map(|v| v.d).unwrap_or(Det::D);
        Ok(DValue {
            v: Value::Bool(a.first().map(|v| coerce::to_boolean(&v.v)).unwrap_or(false)),
            d,
        })
    });
    m.set_raw(boolean_ctor, "prototype", Value::Object(m.protos.boolean));
    m.set_raw(g, "Boolean", Value::Object(boolean_ctor));

    let error_ctor = m.register_native("Error", |m, this, a| {
        let (msg, d) = match a.first() {
            Some(v) => {
                let s = m.dvalue_to_string(v)?;
                (s, v.d)
            }
            None => (Rc::from(""), Det::D),
        };
        if let Value::Object(o) = &this.v {
            m.write_prop(
                *o,
                "message",
                DValue {
                    v: Value::Str(msg),
                    d,
                },
            );
            m.write_prop(*o, "name", DValue::det(Value::Str(Rc::from("Error"))));
        }
        Ok(DValue::undef())
    });
    m.set_raw(error_ctor, "prototype", Value::Object(m.protos.error));
    m.set_raw(g, "Error", Value::Object(error_ctor));
    m.specials.error_ctor = Some(error_ctor);
    m.set_raw(m.protos.error, "name", Value::Str(Rc::from("Error")));
    m.set_raw(m.protos.error, "message", Value::Str(Rc::from("")));

    // ----- indirect eval ----------------------------------------------------------
    let eval_fn = m.register_native("eval", |m, _, a| {
        let Some(first) = a.first() else {
            return Ok(DValue::undef());
        };
        let Value::Str(src) = &first.v else {
            return Ok(first.clone());
        };
        if first.d == Det::I {
            m.flush_heap()?;
        }
        let parsed = match mujs_syntax::parse(src) {
            Ok(p) => p,
            Err(e) => {
                let ic = first.d == Det::I;
                return Err(m.throw_error("SyntaxError", &e.to_string(), ic));
            }
        };
        let entry = m.prog.entry().expect("program has an entry");
        let chunk = mujs_ir::lower_chunk(m.prog, &parsed, FuncKind::EvalChunk, Some(entry));
        #[cfg(debug_assertions)]
        mujs_analysis::assert_valid(m.prog);
        m.refresh_closure_writes();
        let gid = m.global();
        let nt = m.prog.func(chunk).n_temps;
        let mut frame = m.fresh_frame(
            chunk,
            None,
            None,
            DValue::det(Value::Object(gid)),
            mujs_interp::context::CtxId::ROOT,
            nt,
        );
        let r = m.run_eval_chunk(&mut frame, chunk, mujs_interp::context::CtxId::ROOT)?;
        Ok(r.weaken(first.d))
    });
    m.set_raw(g, "eval", Value::Object(eval_fn));
    m.specials.eval_fn = Some(eval_fn);

    install_protos(m);
}

impl DMachine<'_> {
    /// `ToString` with `"[object Object]"` for plain objects.
    pub fn dvalue_to_string(&mut self, v: &DValue) -> Result<Rc<str>, DErr> {
        Ok(match &v.v {
            Value::Object(id) => match &self.obj(*id).class {
                ObjClass::Array => Rc::from(self.display(&v.v).as_str()),
                c if c.is_callable() => Rc::from("function"),
                _ => Rc::from("[object Object]"),
            },
            other => coerce::to_string(other).expect("non-object"),
        })
    }

    fn array_len_d(&self, arr: ObjId) -> (usize, Det) {
        let s = self.own_prop(arr, "length");
        match s.v {
            Value::Num(n) if n >= 0.0 => (n as usize, s.d),
            _ => (0, s.d),
        }
    }
}

/// The `Array` constructor / `new Array` model.
pub fn array_ctor_model(m: &mut DMachine<'_>, a: &[DValue]) -> Result<DValue, DErr> {
    let arr = m.alloc(ObjClass::Array, Some(m.protos.array), Det::D);
    if a.len() == 1 {
        if let Value::Num(n) = a[0].v {
            m.write_prop(
                arr,
                "length",
                DValue {
                    v: Value::Num(n.trunc()),
                    d: a[0].d,
                },
            );
            return Ok(DValue::det(Value::Object(arr)));
        }
    }
    m.write_prop(arr, "length", DValue::det(Value::Num(a.len() as f64)));
    for (i, v) in a.iter().enumerate() {
        m.write_prop(arr, &i.to_string(), v.clone());
    }
    Ok(DValue::det(Value::Object(arr)))
}

/// The `new Error(msg)` model.
pub fn error_new_model(m: &mut DMachine<'_>, a: &[DValue]) -> Result<DValue, DErr> {
    let e = m.alloc(ObjClass::Plain, Some(m.protos.error), Det::D);
    let (msg, d) = match a.first() {
        Some(v) => (m.dvalue_to_string(v)?, v.d),
        None => (Rc::from(""), Det::D),
    };
    m.write_prop(
        e,
        "message",
        DValue {
            v: Value::Str(msg),
            d,
        },
    );
    m.write_prop(e, "name", DValue::det(Value::Str(Rc::from("Error"))));
    Ok(DValue::det(Value::Object(e)))
}

fn num1(args: &[DValue], f: impl Fn(f64) -> f64) -> Result<DValue, DErr> {
    let (n, d) = arg_num(args, 0, f64::NAN);
    Ok(DValue {
        v: Value::Num(f(n)),
        d,
    })
}

fn num2(args: &[DValue], f: impl Fn(f64, f64) -> f64) -> Result<DValue, DErr> {
    let (a, da) = arg_num(args, 0, f64::NAN);
    let (b, db) = arg_num(args, 1, f64::NAN);
    Ok(DValue {
        v: Value::Num(f(a, b)),
        d: da.join(db),
    })
}

fn num_fold(args: &[DValue], init: f64, f: impl Fn(f64, f64) -> f64) -> Result<DValue, DErr> {
    let mut acc = init;
    let mut d = Det::D;
    for v in args {
        d = d.join(v.d);
        let n = coerce::to_number(&v.v).unwrap_or(f64::NAN);
        if n.is_nan() {
            return Ok(DValue {
                v: Value::Num(f64::NAN),
                d,
            });
        }
        acc = f(acc, n);
    }
    Ok(DValue {
        v: Value::Num(acc),
        d,
    })
}

fn arg_num(args: &[DValue], i: usize, default: f64) -> (f64, Det) {
    match args.get(i) {
        Some(v) => (coerce::to_number(&v.v).unwrap_or(f64::NAN), v.d),
        None => (default, Det::D),
    }
}

fn arg_string(m: &mut DMachine<'_>, args: &[DValue], i: usize) -> Result<(Rc<str>, Det), DErr> {
    match args.get(i) {
        Some(v) => {
            let s = m.dvalue_to_string(v)?;
            Ok((s, v.d))
        }
        None => Ok((Rc::from("undefined"), Det::D)),
    }
}

fn this_string(m: &mut DMachine<'_>, this: &DValue) -> Result<(Rc<str>, Det), DErr> {
    match &this.v {
        Value::Str(s) => Ok((s.clone(), this.d)),
        _ => {
            let s = m.dvalue_to_string(this)?;
            Ok((s, this.d))
        }
    }
}

fn install_protos(m: &mut DMachine<'_>) {
    // Object.prototype -------------------------------------------------------
    let defs: &[(&'static str, DNativeFn)] = &[
        ("hasOwnProperty", |m, this, a| {
            let Value::Object(o) = this.v else {
                return Ok(DValue {
                    v: Value::Bool(false),
                    d: this.d,
                });
            };
            let (key, kd) = arg_string(m, a, 0)?;
            let has = m.has_own(o, &key);
            // Absence on an open record is unknowable.
            let openness = if !has && m.is_open(o) { Det::I } else { Det::D };
            let slot_d = if has { m.own_prop(o, &key).d } else { Det::D };
            Ok(DValue {
                v: Value::Bool(has),
                d: this.d.join(kd).join(openness).join(slot_d),
            })
        }),
        ("toString", |_, this, _| {
            Ok(DValue {
                v: Value::Str(Rc::from("[object Object]")),
                d: this.d,
            })
        }),
    ];
    for (name, f) in defs {
        let n = m.register_native(name, *f);
        m.set_raw(m.protos.object, name, Value::Object(n));
    }

    // Function.prototype -----------------------------------------------------
    let call = m.register_native("call", |m, this, a| {
        let bound = a.first().cloned().unwrap_or(DValue::undef());
        let rest = if a.is_empty() { &[] } else { &a[1..] };
        m.call_value_d(&this, bound, rest, mujs_interp::context::CtxId::ROOT)
    });
    m.set_raw(m.protos.function, "call", Value::Object(call));
    let apply = m.register_native("apply", |m, this, a| {
        let bound = a.first().cloned().unwrap_or(DValue::undef());
        let mut argv = Vec::new();
        let mut extra = Det::D;
        if let Some(arr_dv) = a.get(1) {
            extra = arr_dv.d;
            if let Value::Object(arr) = arr_dv.v {
                let (len, ld) = m.array_len_d(arr);
                extra = extra.join(ld);
                for i in 0..len {
                    argv.push(m.own_prop(arr, &i.to_string()));
                }
            }
        }
        for v in &mut argv {
            v.d = v.d.join(extra);
        }
        m.call_value_d(&this, bound, &argv, mujs_interp::context::CtxId::ROOT)
    });
    m.set_raw(m.protos.function, "apply", Value::Object(apply));

    // Array.prototype ---------------------------------------------------------
    let defs: &[(&'static str, DNativeFn)] = &[
        ("push", |m, this, a| {
            let Value::Object(arr) = this.v else {
                return Ok(DValue::det(Value::Num(0.0)));
            };
            let (mut len, ld) = m.array_len_d(arr);
            for v in a {
                m.write_prop(arr, &len.to_string(), v.clone().weaken(this.d));
                len += 1;
            }
            let d = this.d.join(ld);
            m.write_prop(
                arr,
                "length",
                DValue {
                    v: Value::Num(len as f64),
                    d,
                },
            );
            if this.d == Det::I {
                m.flush_heap()?;
            }
            Ok(DValue {
                v: Value::Num(len as f64),
                d,
            })
        }),
        ("pop", |m, this, _| {
            let Value::Object(arr) = this.v else {
                return Ok(DValue::undef());
            };
            let (len, ld) = m.array_len_d(arr);
            if len == 0 {
                return Ok(DValue {
                    v: Value::Undefined,
                    d: this.d.join(ld),
                });
            }
            let key = (len - 1).to_string();
            let v = m.own_prop(arr, &key);
            m.delete_prop(arr, &key);
            m.write_prop(
                arr,
                "length",
                DValue {
                    v: Value::Num(len as f64 - 1.0),
                    d: this.d.join(ld),
                },
            );
            if this.d == Det::I {
                m.flush_heap()?;
            }
            Ok(v.weaken(this.d.join(ld)))
        }),
        ("join", |m, this, a| {
            let Value::Object(arr) = this.v else {
                return Ok(DValue {
                    v: Value::Str(Rc::from("")),
                    d: this.d,
                });
            };
            let (sep, sd) = match a.first() {
                Some(v) => {
                    let s = m.dvalue_to_string(v)?;
                    (s.to_string(), v.d)
                }
                None => (",".to_owned(), Det::D),
            };
            let (len, ld) = m.array_len_d(arr);
            let mut d = this.d.join(sd).join(ld);
            let mut parts = Vec::with_capacity(len);
            for i in 0..len {
                let e = m.own_prop(arr, &i.to_string());
                d = d.join(e.d);
                parts.push(match e.v {
                    Value::Undefined | Value::Null => String::new(),
                    v => m.dvalue_to_string(&DValue { v, d: Det::D })?.to_string(),
                });
            }
            Ok(DValue {
                v: Value::Str(Rc::from(parts.join(&sep).as_str())),
                d,
            })
        }),
        ("indexOf", |m, this, a| {
            let Value::Object(arr) = this.v else {
                return Ok(DValue::det(Value::Num(-1.0)));
            };
            let needle = a.first().cloned().unwrap_or(DValue::undef());
            let (len, ld) = m.array_len_d(arr);
            let mut d = this.d.join(ld).join(needle.d);
            for i in 0..len {
                let e = m.own_prop(arr, &i.to_string());
                d = d.join(e.d);
                if coerce::strict_eq(&e.v, &needle.v) {
                    return Ok(DValue {
                        v: Value::Num(i as f64),
                        d,
                    });
                }
            }
            Ok(DValue {
                v: Value::Num(-1.0),
                d,
            })
        }),
        ("slice", |m, this, a| {
            let Value::Object(arr) = this.v else {
                return Ok(DValue::undef());
            };
            let (len, ld) = m.array_len_d(arr);
            let (s, sd) = arg_num(a, 0, 0.0);
            let (e, ed) = arg_num(a, 1, len as f64);
            let base_d = this.d.join(ld).join(sd).join(ed);
            let norm = |x: f64| {
                if x.is_nan() {
                    0.0
                } else if x < 0.0 {
                    (len as f64 + x).max(0.0)
                } else {
                    x.min(len as f64)
                }
            };
            let out = m.alloc(ObjClass::Array, Some(m.protos.array), Det::D);
            let mut n = 0usize;
            let mut i = norm(s);
            let end = norm(e);
            while i < end {
                let e = m.own_prop(arr, &(i as usize).to_string());
                m.write_prop(out, &n.to_string(), e.weaken(base_d));
                n += 1;
                i += 1.0;
            }
            m.write_prop(
                out,
                "length",
                DValue {
                    v: Value::Num(n as f64),
                    d: base_d,
                },
            );
            Ok(DValue {
                v: Value::Object(out),
                d: base_d,
            })
        }),
        ("concat", |m, this, a| {
            let out = m.alloc(ObjClass::Array, Some(m.protos.array), Det::D);
            let mut n = 0usize;
            let mut d = this.d;
            let push_all = |m: &mut DMachine<'_>, v: &DValue, n: &mut usize, d: &mut Det| {
                *d = d.join(v.d);
                match &v.v {
                    Value::Object(src) if m.obj(*src).class == ObjClass::Array => {
                        let (len, ld) = m.array_len_d(*src);
                        *d = d.join(ld);
                        for i in 0..len {
                            let e = m.own_prop(*src, &i.to_string());
                            *d = d.join(e.d);
                            m.write_prop(out, &n.to_string(), e);
                            *n += 1;
                        }
                    }
                    _ => {
                        m.write_prop(out, &n.to_string(), v.clone());
                        *n += 1;
                    }
                }
            };
            push_all(m, &this, &mut n, &mut d);
            for v in a {
                push_all(m, v, &mut n, &mut d);
            }
            m.write_prop(
                out,
                "length",
                DValue {
                    v: Value::Num(n as f64),
                    d,
                },
            );
            Ok(DValue {
                v: Value::Object(out),
                d,
            })
        }),
        ("shift", |m, this, _| {
            let Value::Object(arr) = this.v else {
                return Ok(DValue::undef());
            };
            let (len, ld) = m.array_len_d(arr);
            let d = this.d.join(ld);
            if len == 0 {
                return Ok(DValue {
                    v: Value::Undefined,
                    d,
                });
            }
            let first = m.own_prop(arr, "0");
            for i in 1..len {
                let e = m.own_prop(arr, &i.to_string());
                m.write_prop(arr, &(i - 1).to_string(), e);
            }
            m.delete_prop(arr, &(len - 1).to_string());
            m.write_prop(
                arr,
                "length",
                DValue {
                    v: Value::Num(len as f64 - 1.0),
                    d,
                },
            );
            if this.d == Det::I {
                m.flush_heap()?;
            }
            Ok(first.weaken(d))
        }),
        ("toString", |m, this, _| {
            let s = m.display(&this.v);
            // Rendering reads every element; approximate the join with
            // the receiver's flag plus the length slot.
            let d = match this.v {
                Value::Object(arr) => this.d.join(m.array_len_d(arr).1),
                _ => this.d,
            };
            Ok(DValue {
                v: Value::Str(Rc::from(s.as_str())),
                d,
            })
        }),
    ];
    for (name, f) in defs {
        let n = m.register_native(name, *f);
        m.set_raw(m.protos.array, name, Value::Object(n));
    }

    // String.prototype -----------------------------------------------------------
    let defs: &[(&'static str, DNativeFn)] = &[
        ("charAt", |m, this, a| {
            let (s, sd) = this_string(m, &this)?;
            let (i, id) = arg_num(a, 0, 0.0);
            Ok(DValue {
                v: Value::Str(Rc::from(stdlib::char_at(&s, i).as_str())),
                d: sd.join(id),
            })
        }),
        ("charCodeAt", |m, this, a| {
            let (s, sd) = this_string(m, &this)?;
            let (i, id) = arg_num(a, 0, 0.0);
            Ok(DValue {
                v: Value::Num(stdlib::char_code_at(&s, i)),
                d: sd.join(id),
            })
        }),
        ("indexOf", |m, this, a| {
            let (s, sd) = this_string(m, &this)?;
            let (needle, nd) = arg_string(m, a, 0)?;
            Ok(DValue {
                v: Value::Num(stdlib::index_of(&s, &needle)),
                d: sd.join(nd),
            })
        }),
        ("lastIndexOf", |m, this, a| {
            let (s, sd) = this_string(m, &this)?;
            let (needle, nd) = arg_string(m, a, 0)?;
            Ok(DValue {
                v: Value::Num(stdlib::last_index_of(&s, &needle)),
                d: sd.join(nd),
            })
        }),
        ("substr", |m, this, a| {
            let (s, sd) = this_string(m, &this)?;
            let (start, d1) = arg_num(a, 0, 0.0);
            let (len, d2) = arg_num(a, 1, f64::INFINITY);
            Ok(DValue {
                v: Value::Str(Rc::from(stdlib::substr(&s, start, len).as_str())),
                d: sd.join(d1).join(d2),
            })
        }),
        ("substring", |m, this, a| {
            let (s, sd) = this_string(m, &this)?;
            let (start, d1) = arg_num(a, 0, 0.0);
            let (end, d2) = arg_num(a, 1, f64::INFINITY);
            Ok(DValue {
                v: Value::Str(Rc::from(stdlib::substring(&s, start, end).as_str())),
                d: sd.join(d1).join(d2),
            })
        }),
        ("slice", |m, this, a| {
            let (s, sd) = this_string(m, &this)?;
            let (start, d1) = arg_num(a, 0, 0.0);
            let (end, d2) = arg_num(a, 1, f64::INFINITY);
            Ok(DValue {
                v: Value::Str(Rc::from(stdlib::str_slice(&s, start, end).as_str())),
                d: sd.join(d1).join(d2),
            })
        }),
        ("toUpperCase", |m, this, _| {
            let (s, sd) = this_string(m, &this)?;
            Ok(DValue {
                v: Value::Str(Rc::from(s.to_uppercase().as_str())),
                d: sd,
            })
        }),
        ("toLowerCase", |m, this, _| {
            let (s, sd) = this_string(m, &this)?;
            Ok(DValue {
                v: Value::Str(Rc::from(s.to_lowercase().as_str())),
                d: sd,
            })
        }),
        ("trim", |m, this, _| {
            let (s, sd) = this_string(m, &this)?;
            Ok(DValue {
                v: Value::Str(Rc::from(s.trim())),
                d: sd,
            })
        }),
        ("concat", |m, this, a| {
            let (s, mut d) = this_string(m, &this)?;
            let mut out = s.to_string();
            for v in a {
                d = d.join(v.d);
                out.push_str(&m.dvalue_to_string(v)?);
            }
            Ok(DValue {
                v: Value::Str(Rc::from(out.as_str())),
                d,
            })
        }),
        ("split", |m, this, a| {
            let (s, sd) = this_string(m, &this)?;
            let (parts, d) = match a.first() {
                Some(DValue {
                    v: Value::Str(sep),
                    d,
                }) => (stdlib::split(&s, sep), sd.join(*d)),
                _ => (vec![s.to_string()], sd),
            };
            let arr = m.alloc(ObjClass::Array, Some(m.protos.array), Det::D);
            m.write_prop(
                arr,
                "length",
                DValue {
                    v: Value::Num(parts.len() as f64),
                    d,
                },
            );
            for (i, p) in parts.iter().enumerate() {
                m.write_prop(
                    arr,
                    &i.to_string(),
                    DValue {
                        v: Value::Str(Rc::from(p.as_str())),
                        d,
                    },
                );
            }
            Ok(DValue {
                v: Value::Object(arr),
                d,
            })
        }),
        ("replace", |m, this, a| {
            let (s, sd) = this_string(m, &this)?;
            let (pat, pd) = arg_string(m, a, 0)?;
            let (rep, rd) = arg_string(m, a, 1)?;
            Ok(DValue {
                v: Value::Str(Rc::from(stdlib::replace_first(&s, &pat, &rep).as_str())),
                d: sd.join(pd).join(rd),
            })
        }),
        ("toString", |m, this, _| {
            let (s, sd) = this_string(m, &this)?;
            Ok(DValue {
                v: Value::Str(s),
                d: sd,
            })
        }),
    ];
    for (name, f) in defs {
        let n = m.register_native(name, *f);
        m.set_raw(m.protos.string, name, Value::Object(n));
    }

    // Number/Boolean.prototype ------------------------------------------------------
    let to_string = m.register_native("toString", |m, this, _| {
        let s = m.dvalue_to_string(&this)?;
        Ok(DValue {
            v: Value::Str(s),
            d: this.d,
        })
    });
    m.set_raw(m.protos.number, "toString", Value::Object(to_string));
    m.set_raw(m.protos.boolean, "toString", Value::Object(to_string));
}
