//! Textual dump of the IR, for debugging, golden tests, and inspecting
//! specializer output.
//!
//! Names are interned in the owning [`Program`], so every entry point
//! takes the program (or its interner) to resolve them. Slot-resolved
//! places render as their variable name — the dump shows *what* the code
//! does; `Debug`-print the IR to see the coordinates.

use crate::intern::Interner;
use crate::ir::*;
use std::fmt::Write as _;

/// Renders every function of a program.
pub fn print_program(prog: &Program) -> String {
    let mut out = String::new();
    for f in &prog.funcs {
        out.push_str(&print_function(prog, f));
        out.push('\n');
    }
    out
}

/// Renders a single function.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), mujs_syntax::SyntaxError> {
/// let ast = mujs_syntax::parse("var x = 1;")?;
/// let prog = mujs_ir::lower::lower_program(&ast);
/// let text = mujs_ir::pretty::print_function(&prog, prog.func(prog.entry().unwrap()));
/// assert!(text.contains("x = %0"));
/// # Ok(())
/// # }
/// ```
pub fn print_function(prog: &Program, f: &Function) -> String {
    let itn = &prog.interner;
    let mut p = Printer {
        out: String::new(),
        indent: 1,
        itn,
    };
    let name = f.name.map(|s| itn.resolve(s)).unwrap_or("<anon>");
    let params: Vec<&str> = f.params.iter().map(|&s| itn.resolve(s)).collect();
    let _ = writeln!(
        p.out,
        "{} {name}({}) {{ // kind={:?} temps={}",
        f.id,
        params.join(", "),
        f.kind,
        f.n_temps
    );
    if !f.decls.vars.is_empty() {
        let vars: Vec<&str> = f.decls.vars.iter().map(|&s| itn.resolve(s)).collect();
        let _ = writeln!(p.out, "  var {};", vars.join(", "));
    }
    for &(n, fid) in &f.decls.funcs {
        let _ = writeln!(p.out, "  hoist {} = closure {fid};", itn.resolve(n));
    }
    p.block(&f.body);
    p.out.push_str("}\n");
    p.out
}

struct Printer<'a> {
    out: String,
    indent: usize,
    itn: &'a Interner,
}

impl Printer<'_> {
    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn place(&self, p: &Place) -> String {
        match p {
            Place::Temp(t) => t.to_string(),
            Place::Named(s) | Place::Slot { sym: s, .. } => self.itn.resolve(*s).to_owned(),
        }
    }

    fn key(&self, k: &PropKey) -> String {
        match k {
            PropKey::Static(s) => format!(".{}", self.itn.resolve(*s)),
            PropKey::Dynamic(p) => format!("[{}]", self.place(p)),
        }
    }

    fn block(&mut self, b: &Block) {
        for s in b {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        let id = s.id;
        match &s.kind {
            StmtKind::Const { dst, lit } => {
                let dst = self.place(dst);
                self.line(&format!("{id}: {dst} = {}", fmt_lit(lit)))
            }
            StmtKind::Copy { dst, src } => {
                let (dst, src) = (self.place(dst), self.place(src));
                self.line(&format!("{id}: {dst} = {src}"))
            }
            StmtKind::Closure { dst, func } => {
                let dst = self.place(dst);
                self.line(&format!("{id}: {dst} = closure {func}"))
            }
            StmtKind::NewObject { dst, is_array } => {
                let dst = self.place(dst);
                self.line(&format!(
                    "{id}: {dst} = {}",
                    if *is_array { "[]" } else { "{}" }
                ))
            }
            StmtKind::GetProp { dst, obj, key } => {
                let (dst, obj, key) = (self.place(dst), self.place(obj), self.key(key));
                self.line(&format!("{id}: {dst} = {obj}{key}"))
            }
            StmtKind::SetProp { obj, key, val } => {
                let (obj, key, val) = (self.place(obj), self.key(key), self.place(val));
                self.line(&format!("{id}: {obj}{key} = {val}"))
            }
            StmtKind::DeleteProp { dst, obj, key } => {
                let (dst, obj, key) = (self.place(dst), self.place(obj), self.key(key));
                self.line(&format!("{id}: {dst} = delete {obj}{key}"))
            }
            StmtKind::BinOp { dst, op, lhs, rhs } => {
                let (dst, lhs, rhs) = (self.place(dst), self.place(lhs), self.place(rhs));
                self.line(&format!("{id}: {dst} = {lhs} {} {rhs}", op.as_str()))
            }
            StmtKind::UnOp { dst, op, src } => {
                let (dst, src) = (self.place(dst), self.place(src));
                self.line(&format!("{id}: {dst} = {} {src}", op.as_str()))
            }
            StmtKind::Call {
                dst,
                callee,
                this_arg,
                args,
            } => {
                let args: Vec<String> = args.iter().map(|a| self.place(a)).collect();
                let this = match this_arg {
                    Some(t) => format!(" this={}", self.place(t)),
                    None => String::new(),
                };
                let (dst, callee) = (self.place(dst), self.place(callee));
                self.line(&format!(
                    "{id}: {dst} = call {callee}({}){this}",
                    args.join(", ")
                ));
            }
            StmtKind::New { dst, callee, args } => {
                let args: Vec<String> = args.iter().map(|a| self.place(a)).collect();
                let (dst, callee) = (self.place(dst), self.place(callee));
                self.line(&format!("{id}: {dst} = new {callee}({})", args.join(", ")));
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let cond = self.place(cond);
                self.line(&format!("{id}: if {cond} {{"));
                self.indent += 1;
                self.block(then_blk);
                self.indent -= 1;
                if else_blk.is_empty() {
                    self.line("}");
                } else {
                    self.line("} else {");
                    self.indent += 1;
                    self.block(else_blk);
                    self.indent -= 1;
                    self.line("}");
                }
            }
            StmtKind::Loop {
                cond_blk,
                cond,
                body,
                update,
                check_cond_first,
            } => {
                self.line(&format!(
                    "{id}: loop{} {{",
                    if *check_cond_first { "" } else { " (do-while)" }
                ));
                self.indent += 1;
                self.line("cond:");
                self.indent += 1;
                self.block(cond_blk);
                let cond = self.place(cond);
                self.line(&format!("test {cond}"));
                self.indent -= 1;
                self.line("body:");
                self.indent += 1;
                self.block(body);
                self.indent -= 1;
                if !update.is_empty() {
                    self.line("update:");
                    self.indent += 1;
                    self.block(update);
                    self.indent -= 1;
                }
                self.indent -= 1;
                self.line("}");
            }
            StmtKind::Breakable { body } => {
                self.line(&format!("{id}: breakable {{"));
                self.indent += 1;
                self.block(body);
                self.indent -= 1;
                self.line("}");
            }
            StmtKind::Try {
                block,
                catch,
                finally,
            } => {
                self.line(&format!("{id}: try {{"));
                self.indent += 1;
                self.block(block);
                self.indent -= 1;
                if let Some((name, b)) = catch {
                    let name = self.itn.resolve(*name).to_owned();
                    self.line(&format!("}} catch ({name}) {{"));
                    self.indent += 1;
                    self.block(b);
                    self.indent -= 1;
                }
                if let Some(b) = finally {
                    self.line("} finally {");
                    self.indent += 1;
                    self.block(b);
                    self.indent -= 1;
                }
                self.line("}");
            }
            StmtKind::Return { arg } => match arg {
                Some(a) => {
                    let a = self.place(a);
                    self.line(&format!("{id}: return {a}"))
                }
                None => self.line(&format!("{id}: return")),
            },
            StmtKind::Break => self.line(&format!("{id}: break")),
            StmtKind::Continue => self.line(&format!("{id}: continue")),
            StmtKind::Throw { arg } => {
                let arg = self.place(arg);
                self.line(&format!("{id}: throw {arg}"))
            }
            StmtKind::LoadThis { dst } => {
                let dst = self.place(dst);
                self.line(&format!("{id}: {dst} = this"))
            }
            StmtKind::TypeofName { dst, name } => {
                let dst = self.place(dst);
                let name = self.itn.resolve(*name).to_owned();
                self.line(&format!("{id}: {dst} = typeof-name {name}"))
            }
            StmtKind::HasProp { dst, key, obj } => {
                let (dst, key, obj) = (self.place(dst), self.place(key), self.place(obj));
                self.line(&format!("{id}: {dst} = {key} in {obj}"))
            }
            StmtKind::InstanceOf { dst, val, ctor } => {
                let (dst, val, ctor) = (self.place(dst), self.place(val), self.place(ctor));
                self.line(&format!("{id}: {dst} = {val} instanceof {ctor}"))
            }
            StmtKind::EnumProps { dst, obj } => {
                let (dst, obj) = (self.place(dst), self.place(obj));
                self.line(&format!("{id}: {dst} = enum-props {obj}"))
            }
            StmtKind::Eval { dst, arg } => {
                let (dst, arg) = (self.place(dst), self.place(arg));
                self.line(&format!("{id}: {dst} = eval {arg}"))
            }
        }
    }
}

fn fmt_lit(l: &mujs_syntax::ast::Lit) -> String {
    use mujs_syntax::ast::Lit;
    match l {
        Lit::Num(n) => mujs_syntax::pretty::num_to_str(*n),
        Lit::Str(s) => mujs_syntax::pretty::quote_str(s),
        Lit::Bool(b) => b.to_string(),
        Lit::Null => "null".to_owned(),
        Lit::Undefined => "undefined".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use mujs_syntax::parse;

    #[test]
    fn dump_contains_all_functions() {
        let prog = lower_program(&parse("function f() {} function g() {}").unwrap());
        let text = print_program(&prog);
        assert!(text.contains("f0"));
        assert!(text.contains(" f("));
        assert!(text.contains(" g("));
    }

    #[test]
    fn dump_renders_control_flow() {
        let prog = lower_program(&parse("while (c) { if (d) { break; } }").unwrap());
        let text = print_program(&prog);
        assert!(text.contains("loop"));
        assert!(text.contains("if "));
        assert!(text.contains("break"));
    }

    #[test]
    fn slot_resolved_places_render_as_names() {
        let prog = lower_program(&parse("function f(a) { return a + 1; }").unwrap());
        let text = print_program(&prog);
        // `a` is slot-resolved inside f but still renders as its name.
        assert!(text.contains("= a"), "slot places render by name: {text}");
    }
}
