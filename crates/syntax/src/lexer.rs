//! Hand-written lexer for the muJS JavaScript subset.
//!
//! Supports decimal and hexadecimal number literals, single- and
//! double-quoted strings with the common escape sequences, line and block
//! comments, and all punctuators in [`crate::token::Punct`]. Regular
//! expression literals are not part of the subset; `/` always lexes as
//! division.

use crate::error::{SyntaxError, SyntaxErrorKind};
use crate::span::Span;
use crate::token::{Keyword, Punct, Token, TokenKind};

/// Tokenizes `src` completely, returning the token stream (terminated by an
/// [`TokenKind::Eof`] token).
///
/// # Errors
///
/// Returns a [`SyntaxError`] for unterminated strings or comments, malformed
/// numbers, and characters outside the subset's alphabet.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), mujs_syntax::SyntaxError> {
/// let tokens = mujs_syntax::lexer::lex("var x = 1 + 2;")?;
/// assert_eq!(tokens.len(), 8); // var x = 1 + 2 ; <eof>
/// # Ok(())
/// # }
/// ```
pub fn lex(src: &str) -> Result<Vec<Token>, SyntaxError> {
    Lexer::new(src).run()
}

struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
    newline_pending: bool,
    tokens: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            newline_pending: false,
            tokens: Vec::new(),
        }
    }

    fn run(mut self) -> Result<Vec<Token>, SyntaxError> {
        loop {
            self.skip_trivia()?;
            let start = self.pos;
            let Some(b) = self.peek() else {
                self.push(TokenKind::Eof, start);
                return Ok(self.tokens);
            };
            match b {
                b'0'..=b'9' => self.number(start)?,
                b'.' => {
                    if self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
                        self.number(start)?;
                    } else {
                        self.pos += 1;
                        self.push(TokenKind::Punct(Punct::Dot), start);
                    }
                }
                b'"' | b'\'' => self.string(start)?,
                b'_' | b'$' | b'a'..=b'z' | b'A'..=b'Z' => self.ident(start),
                _ => self.punct(start)?,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        let newline_before = self.newline_pending;
        self.newline_pending = false;
        self.tokens.push(Token {
            kind,
            span: Span::new(start as u32, self.pos as u32),
            newline_before,
        });
    }

    fn err(&self, kind: SyntaxErrorKind, start: usize) -> SyntaxError {
        SyntaxError {
            kind,
            span: Span::new(start as u32, self.pos as u32),
        }
    }

    fn skip_trivia(&mut self) -> Result<(), SyntaxError> {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') => self.pos += 1,
                Some(b'\n') => {
                    self.newline_pending = true;
                    self.pos += 1;
                }
                Some(b'/') if self.peek_at(1) == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                Some(b'/') if self.peek_at(1) == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        match self.peek() {
                            None => {
                                return Err(self.err(SyntaxErrorKind::UnterminatedComment, start))
                            }
                            Some(b'\n') => {
                                self.newline_pending = true;
                                self.pos += 1;
                            }
                            Some(b'*') if self.peek_at(1) == Some(b'/') => {
                                self.pos += 2;
                                break;
                            }
                            Some(_) => self.pos += 1,
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn number(&mut self, start: usize) -> Result<(), SyntaxError> {
        if self.peek() == Some(b'0') && matches!(self.peek_at(1), Some(b'x') | Some(b'X')) {
            self.pos += 2;
            let digits_start = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_hexdigit()) {
                self.pos += 1;
            }
            if self.pos == digits_start {
                return Err(self.err(SyntaxErrorKind::MalformedNumber, start));
            }
            let text = &self.src[digits_start..self.pos];
            let value = u64::from_str_radix(text, 16)
                .map_err(|_| self.err(SyntaxErrorKind::MalformedNumber, start))?;
            self.push(TokenKind::Num(value as f64), start);
            return Ok(());
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err(SyntaxErrorKind::MalformedNumber, start));
            }
        }
        let text = &self.src[start..self.pos];
        let value: f64 = text
            .parse()
            .map_err(|_| self.err(SyntaxErrorKind::MalformedNumber, start))?;
        self.push(TokenKind::Num(value), start);
        Ok(())
    }

    fn string(&mut self, start: usize) -> Result<(), SyntaxError> {
        let quote = self.peek().expect("string() called at quote");
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None | Some(b'\n') => {
                    return Err(self.err(SyntaxErrorKind::UnterminatedString, start))
                }
                Some(b) if b == quote => {
                    self.pos += 1;
                    break;
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| self.err(SyntaxErrorKind::UnterminatedString, start))?;
                    self.pos += 1;
                    match esc {
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'0' => out.push('\0'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'v' => out.push('\u{b}'),
                        b'\\' => out.push('\\'),
                        b'\'' => out.push('\''),
                        b'"' => out.push('"'),
                        b'\n' => {} // line continuation
                        b'x' => {
                            let hex = self.take_hex(2, start)?;
                            out.push(
                                char::from_u32(hex).ok_or_else(|| {
                                    self.err(SyntaxErrorKind::InvalidEscape, start)
                                })?,
                            );
                        }
                        b'u' => {
                            let hex = self.take_hex(4, start)?;
                            out.push(
                                char::from_u32(hex).ok_or_else(|| {
                                    self.err(SyntaxErrorKind::InvalidEscape, start)
                                })?,
                            );
                        }
                        _ => {
                            // Unknown escapes denote the character itself,
                            // matching real JS engines.
                            let ch_start = self.pos - 1;
                            let ch = self.src[ch_start..]
                                .chars()
                                .next()
                                .expect("peeked byte implies a char");
                            self.pos = ch_start + ch.len_utf8();
                            out.push(ch);
                        }
                    }
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    let ch = self.src[self.pos..]
                        .chars()
                        .next()
                        .expect("peeked byte implies a char");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
        self.push(TokenKind::Str(out), start);
        Ok(())
    }

    fn take_hex(&mut self, n: usize, start: usize) -> Result<u32, SyntaxError> {
        let mut v: u32 = 0;
        for _ in 0..n {
            let b = self
                .peek()
                .filter(|b| b.is_ascii_hexdigit())
                .ok_or_else(|| self.err(SyntaxErrorKind::InvalidEscape, start))?;
            v = v * 16 + (b as char).to_digit(16).expect("hexdigit checked");
            self.pos += 1;
        }
        Ok(v)
    }

    fn ident(&mut self, start: usize) {
        while self
            .peek()
            .is_some_and(|b| b == b'_' || b == b'$' || b.is_ascii_alphanumeric())
        {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        let kind = match Keyword::lookup(text) {
            Some(kw) => TokenKind::Keyword(kw),
            None => TokenKind::Ident(text.to_owned()),
        };
        self.push(kind, start);
    }

    fn punct(&mut self, start: usize) -> Result<(), SyntaxError> {
        use Punct::*;
        // Longest-match over the punctuator table; try 4, 3, 2, then 1 bytes.
        const TABLE: &[(&str, Punct)] = &[
            (">>>=", UShrAssign),
            ("===", EqEqEq),
            ("!==", NotEqEq),
            (">>>", UShr),
            ("<<=", ShlAssign),
            (">>=", ShrAssign),
            ("==", EqEq),
            ("!=", NotEq),
            ("<=", LtEq),
            (">=", GtEq),
            ("&&", AndAnd),
            ("||", OrOr),
            ("++", PlusPlus),
            ("--", MinusMinus),
            ("+=", PlusAssign),
            ("-=", MinusAssign),
            ("*=", StarAssign),
            ("/=", SlashAssign),
            ("%=", PercentAssign),
            ("&=", AmpAssign),
            ("|=", PipeAssign),
            ("^=", CaretAssign),
            ("<<", Shl),
            (">>", Shr),
            ("{", LBrace),
            ("}", RBrace),
            ("(", LParen),
            (")", RParen),
            ("[", LBracket),
            ("]", RBracket),
            (";", Semi),
            (",", Comma),
            ("?", Question),
            (":", Colon),
            ("=", Assign),
            ("+", Plus),
            ("-", Minus),
            ("*", Star),
            ("/", Slash),
            ("%", Percent),
            ("<", Lt),
            (">", Gt),
            ("!", Not),
            ("~", Tilde),
            ("&", Amp),
            ("|", Pipe),
            ("^", Caret),
        ];
        let rest = &self.src[self.pos..];
        for (text, p) in TABLE {
            if rest.starts_with(text) {
                self.pos += text.len();
                self.push(TokenKind::Punct(*p), start);
                return Ok(());
            }
        }
        self.pos += 1;
        Err(self.err(SyntaxErrorKind::UnexpectedChar, start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_statement() {
        let ks = kinds("var x = 1;");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword(Keyword::Var),
                TokenKind::Ident("x".into()),
                TokenKind::Punct(Punct::Assign),
                TokenKind::Num(1.0),
                TokenKind::Punct(Punct::Semi),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(kinds("0x10")[0], TokenKind::Num(16.0));
        assert_eq!(kinds("3.25")[0], TokenKind::Num(3.25));
        assert_eq!(kinds("1e3")[0], TokenKind::Num(1000.0));
        assert_eq!(kinds("2.5e-1")[0], TokenKind::Num(0.25));
        assert_eq!(kinds(".5")[0], TokenKind::Num(0.5));
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(kinds(r#" "a\nb" "#)[0], TokenKind::Str("a\nb".into()));
        assert_eq!(kinds(r#"'it\'s'"#)[0], TokenKind::Str("it's".into()));
        assert_eq!(kinds(r#""\x41B""#)[0], TokenKind::Str("AB".into()));
    }

    #[test]
    fn distinguishes_triple_eq() {
        assert_eq!(kinds("a === b")[1], TokenKind::Punct(Punct::EqEqEq));
        assert_eq!(kinds("a == b")[1], TokenKind::Punct(Punct::EqEq));
        assert_eq!(kinds("a = b")[1], TokenKind::Punct(Punct::Assign));
    }

    #[test]
    fn skips_comments() {
        let ks = kinds("a // comment\n b /* block\n comment */ c");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn tracks_newline_before() {
        let toks = lex("a\nb c").unwrap();
        assert!(!toks[0].newline_before);
        assert!(toks[1].newline_before);
        assert!(!toks[2].newline_before);
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(matches!(
            lex("\"abc").unwrap_err().kind,
            SyntaxErrorKind::UnterminatedString
        ));
    }

    #[test]
    fn rejects_unterminated_comment() {
        assert!(matches!(
            lex("/* abc").unwrap_err().kind,
            SyntaxErrorKind::UnterminatedComment
        ));
    }

    #[test]
    fn keywords_are_not_identifiers() {
        assert_eq!(kinds("while")[0], TokenKind::Keyword(Keyword::While));
        assert_eq!(kinds("whiles")[0], TokenKind::Ident("whiles".into()));
    }

    #[test]
    fn dollar_and_underscore_identifiers() {
        assert_eq!(kinds("$f _g")[0], TokenKind::Ident("$f".into()));
        assert_eq!(kinds("$f _g")[1], TokenKind::Ident("_g".into()));
    }
}
