//! §2.3 end to end: the Figure 4 `ivymap` program — an `eval` whose
//! argument is a string *concatenation*, the case the unevalizer cannot
//! handle — is analyzed dynamically; both call contexts yield determinate
//! argument strings, and the specializer replaces the eval with statically
//! parsed, inlined code.
//!
//! Run with `cargo run --example eval_elimination`.

use determinacy::{AnalysisConfig, DetHarness, Fact, FactKind};
use mujs_ir::ir::StmtKind;
use mujs_ir::Program;
use mujs_specialize::{specialize, SpecConfig};

const FIGURE4: &str = r#"
ivymap = window.ivymap || {};
ivymap["pc.sy.banner.tcck."] = function() { console.log("banner shown"); };
function showIvyViaJs(locationId) {
  var _f = undefined;
  var _fconv = "ivymap['" + locationId + "']";
  try {
    _f = eval(_fconv);
    if (_f != undefined) { _f(); }
  } catch (e) {}
}
showIvyViaJs('pc.sy.banner.tcck.');
showIvyViaJs('pc.sy.banner.duilian.');
"#;

fn count_evals(prog: &Program) -> usize {
    let mut n = 0;
    for f in &prog.funcs {
        Program::walk_block(&f.body, &mut |s| {
            if matches!(s.kind, StmtKind::Eval { .. }) {
                n += 1;
            }
        });
    }
    n
}

fn main() {
    println!("Figure 4: eliminating eval via determinacy facts");
    println!("=================================================");

    let mut h = DetHarness::from_src(FIGURE4).expect("figure 4 parses");
    let mut out = h.analyze(AnalysisConfig::default());

    println!("eval-argument facts (the paper's J _fconv K 14→6 / 15→6):");
    for (kind, point, ctx, fact) in out.facts.iter() {
        if kind != FactKind::EvalArg {
            continue;
        }
        if let Some(d) = out
            .facts
            .describe(kind, point, ctx, &h.program, &h.source, &out.ctxs)
        {
            println!("  {d}");
        }
        assert!(matches!(fact, Fact::Det(_)), "both contexts determinate");
    }

    let before = count_evals(&h.program);
    let spec = specialize(
        &h.program,
        &out.facts,
        &mut out.ctxs,
        &SpecConfig::default(),
    );
    println!(
        "\nspecializer: {} eval uses inlined across {} cloned contexts",
        spec.report.evals_eliminated, spec.report.clones
    );
    println!(
        "eval statements: {before} before; {} remaining in the (now unreachable) original",
        spec.report.evals_remaining
    );

    // The specialized program still behaves identically.
    let mut prog = spec.program.clone();
    let mut interp = mujs_interp::Interp::new(&mut prog, mujs_interp::InterpOptions::default());
    interp.run().expect("specialized program runs");
    println!("\nspecialized program output: {:?}", interp.output);
    assert_eq!(interp.output, vec!["banner shown"]);
}
