//! Running manifests through the pool, and the deterministic batch
//! report.
//!
//! Each job runs entirely inside one worker thread: parse + lower (on the
//! worker's big stack), one supervised analysis run per seed with the
//! batch [`CancelToken`][determinacy::CancelToken] threaded into the run
//! hooks, per-seed combination via [`MultiRunOutcome::combine`] in seed
//! order. The finished graph (program, source, combined outcome)
//! transfers back through the pool's ordered result slots, so
//! [`BatchOutcome::jobs`] is always in manifest order and
//! [`BatchOutcome::report_json`] is **byte-identical for any worker
//! count**.
//!
//! [`run_manifest_with`] layers the campaign-robustness machinery on top
//! without disturbing that invariant:
//!
//! * transient run failures (engine panics, injected allocation faults)
//!   are classified [`Disposition::Retry`] and rerun under the batch
//!   [`RetryPolicy`]; deterministic stops (deadline, memory budget,
//!   syntax errors) are final;
//! * jobs with a wall-clock deadline arm the pool watchdog at
//!   `deadline_ms + grace`, so a job whose cooperative deadline
//!   enforcement fails resolves as [`JobStatus::Wedged`] instead of
//!   wedging a worker forever;
//! * settled rows stream into an atomic [`Checkpoint`] keyed by job
//!   content, and a resumed batch splices those rows back **byte for
//!   byte** while scheduling only the remainder;
//! * a batch-wide declared-memory budget admits oversized jobs at reduced
//!   budget ([`JobStatus::Degraded`]) instead of failing them.
//!
//! Attempt counters deliberately live on [`JobRecord`] and in
//! [`BatchOutcome::stats_json`], **not** in the canonical report: a batch
//! that retried its way to success must produce the same report bytes as
//! one that succeeded immediately.

use crate::admission::{Admission, AdmissionController};
use crate::checkpoint::{job_key, Checkpoint};
use crate::pool::{IsolatedGraph, JobCtx, JobEvent, JobPool, JobVerdict};
use crate::retry::{Disposition, RetryPolicy};
use crate::spec::{JobSpec, Manifest};
use determinacy::multirun::{export_json, MultiRunOutcome};
use determinacy::{
    supervised_analyze_dom, AnalysisConfig, AnalysisOutcome, DetHarness, RunFailure, RunHooks,
};
use mujs_dom::document::{Document, DocumentBuilder};
use mujs_dom::events::EventPlan;
use serde_json::Value;
use std::path::PathBuf;
use std::sync::Mutex;

/// Everything a completed job hands back: the combined multi-run outcome
/// plus the program/source needed to render or export its facts.
#[derive(Debug)]
pub struct JobOutcome {
    /// The seeds the job fanned out over, in fan-out (= combination)
    /// order.
    pub seeds: Vec<u64>,
    /// The per-seed runs combined in seed order.
    pub multi: MultiRunOutcome,
    /// The lowered program (for fact rendering/export).
    pub program: mujs_ir::Program,
    /// The source file (for fact rendering/export).
    pub source: mujs_syntax::SourceFile,
    /// The rendered PTA row, when the batch ran its opt-in PTA stage.
    /// `None` (the default) leaves the report bytes exactly as a
    /// PTA-less batch produces them.
    pub pta: Option<Value>,
}

impl JobOutcome {
    /// The job's combined facts as the canonical sorted JSON export.
    pub fn export_facts_json(&self) -> String {
        export_json(
            &self.multi.facts,
            &self.program,
            &self.source,
            &self.multi.ctxs,
        )
    }
}

/// How a job resolved at the batch level.
#[derive(Debug)]
pub enum JobStatus {
    /// The job ran; its runs may still record per-seed stops (deadline,
    /// mem limit, mid-flight cancellation) in the outcome.
    Completed,
    /// The job ran to completion, but under a reduced memory budget
    /// granted by the admission controller (its declared `mem_cells`
    /// exceeded the batch-wide budget).
    Degraded,
    /// Batch cancellation struck before the job started.
    Cancelled,
    /// The source did not parse.
    Syntax(String),
    /// The job panicked outside any supervised run (on every attempt the
    /// retry policy allowed).
    Panicked(String),
    /// The job exceeded its watchdog budget — cooperative deadline
    /// enforcement demonstrably failed — and was cancelled by the
    /// monitor.
    Wedged,
}

/// One manifest entry's result.
#[derive(Debug)]
pub struct JobRecord {
    /// Manifest index.
    pub index: usize,
    /// Job name.
    pub name: String,
    /// How the job resolved.
    pub status: JobStatus,
    /// The outcome, when the job ran to completion in this process.
    pub outcome: Option<JobOutcome>,
    /// Attempts the pool used (0 for jobs restored from a checkpoint or
    /// cancelled before they started).
    pub attempts: u32,
    /// The pre-rendered report row, when the job was restored from a
    /// checkpoint instead of executed.
    pub restored: Option<Value>,
}

/// Campaign-level options for [`run_manifest_with`].
#[derive(Debug, Default)]
pub struct BatchOptions {
    /// Retry budget and backoff for transient failures.
    pub retry: RetryPolicy,
    /// When set, every job with a wall-clock deadline arms the pool
    /// watchdog at `deadline_ms + grace`: exceeding it marks the job
    /// [`JobStatus::Wedged`]. `None` disables the watchdog.
    pub watchdog_grace_ms: Option<u64>,
    /// When set, settled rows are checkpointed here (atomically, via
    /// temp-file + rename) as the batch runs.
    pub checkpoint_path: Option<PathBuf>,
    /// Flush the checkpoint every this many settled rows (clamped to at
    /// least 1; the default 0 means 1 — every row).
    pub checkpoint_every: u64,
    /// Rows restored from a previous run: manifest jobs whose content key
    /// matches are spliced from here and not executed.
    pub resume: Option<Checkpoint>,
    /// Batch-wide declared-memory budget (heap cells) for the admission
    /// controller; `None` disables admission control.
    pub mem_budget_cells: Option<u64>,
    /// When set, every completed job additionally runs a budgeted
    /// baseline pointer-analysis solve over its lowered program and the
    /// report row gains a `pta` object. `None` (the default) skips the
    /// stage entirely and leaves report bytes unchanged.
    pub pta_budget: Option<u64>,
    /// Solver threads for the PTA stage (0/1 sequential, >= 2 the
    /// epoch-sharded parallel solver). Never part of the job key or the
    /// report: results are identical for every value.
    pub pta_threads: usize,
    /// Shard count for the PTA stage's epoch-sharded solver (`0` keeps
    /// the solver default). Like `pta_threads`, never part of the job
    /// key or the report: exports are identical for every shard count.
    pub pta_shards: usize,
    /// When set (and a PTA stage runs), each job's program is specialized
    /// first — against its own combined dynamic facts, with this
    /// context-depth bound — and the PTA solves the *specialized*
    /// program. Unlike `pta_threads` this changes results, so it is part
    /// of the job key and the `pta` row records it. Ignored without
    /// [`BatchOptions::pta_budget`].
    pub spec_depth: Option<usize>,
    /// Deterministic scheduler chaos (checkpoint truncation); the pool
    /// carries its own copy for kills and event faults.
    #[cfg(feature = "fault-inject")]
    pub chaos: Option<std::sync::Arc<crate::chaos::SchedulerFaultPlan>>,
}

/// The aggregated batch result, in manifest order.
#[derive(Debug)]
pub struct BatchOutcome {
    /// One record per manifest job.
    pub jobs: Vec<JobRecord>,
}

impl BatchOutcome {
    /// Number of jobs that ran to a completed (or degraded, or restored)
    /// record.
    pub fn completed(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| matches!(j.status, JobStatus::Completed | JobStatus::Degraded))
            .count()
    }

    /// Whether any job failed outright (syntax error, unsupervised panic,
    /// wedge) or recorded per-run failures. Cancelled jobs are not
    /// failures.
    pub fn has_failures(&self) -> bool {
        self.jobs.iter().any(|j| {
            matches!(
                j.status,
                JobStatus::Syntax(_) | JobStatus::Panicked(_) | JobStatus::Wedged
            ) || j
                .outcome
                .as_ref()
                .is_some_and(|o| !o.multi.failures.is_empty())
                || j.restored.as_ref().is_some_and(|r| {
                    r.get("failures")
                        .and_then(Value::as_array)
                        .is_some_and(|a| !a.is_empty())
                })
        })
    }

    /// The batch report as pretty JSON, in manifest order. Contains no
    /// timing, worker, or attempt information, so the bytes depend only
    /// on the manifest and the analysis semantics — not on scheduling,
    /// retries, or resume splicing. With `include_facts` each completed
    /// job embeds its full sorted fact export.
    pub fn report_json(&self, include_facts: bool) -> String {
        let rows = self
            .jobs
            .iter()
            .map(|j| match &j.restored {
                Some(row) => {
                    // Restored rows were rendered (with facts) by the run
                    // that completed them; re-anchor the name to this
                    // manifest and honor this report's facts flag.
                    let mut row = row.clone();
                    set_field(&mut row, "name", Value::Str(j.name.clone()));
                    if !include_facts {
                        set_field(&mut row, "fact_rows", Value::Null);
                    }
                    row
                }
                None => render_row(&j.name, &j.status, j.outcome.as_ref(), include_facts),
            })
            .collect();
        let report = Value::Object(vec![("jobs".to_owned(), Value::Array(rows))]);
        serde_json::to_string_pretty(&report).expect("report serializes")
    }

    /// Campaign-robustness counters as pretty JSON. Kept **out** of the
    /// canonical report on purpose: attempts and restore counts vary
    /// across fault schedules and resumes while the report bytes must
    /// not.
    pub fn stats_json(&self) -> String {
        let mut degraded = 0u64;
        let mut restored = 0u64;
        let mut retried = 0u64;
        let mut total_attempts = 0u64;
        let mut panicked = 0u64;
        let mut wedged = 0u64;
        let mut cancelled = 0u64;
        let mut syntax = 0u64;
        let mut run_failures = 0u64;
        for j in &self.jobs {
            match j.status {
                JobStatus::Degraded => degraded += 1,
                JobStatus::Panicked(_) => panicked += 1,
                JobStatus::Wedged => wedged += 1,
                JobStatus::Cancelled => cancelled += 1,
                JobStatus::Syntax(_) => syntax += 1,
                JobStatus::Completed => {}
            }
            if j.restored.is_some() {
                restored += 1;
            }
            if j.attempts > 1 {
                retried += 1;
            }
            total_attempts += u64::from(j.attempts);
            if let Some(o) = &j.outcome {
                run_failures += o.multi.failures.len() as u64;
            }
        }
        let num = |n: u64| Value::Num(n as f64);
        let stats = Value::Object(vec![
            ("jobs".to_owned(), num(self.jobs.len() as u64)),
            ("completed".to_owned(), num(self.completed() as u64)),
            ("degraded".to_owned(), num(degraded)),
            ("restored".to_owned(), num(restored)),
            ("retried_jobs".to_owned(), num(retried)),
            ("total_attempts".to_owned(), num(total_attempts)),
            ("panicked".to_owned(), num(panicked)),
            ("wedged".to_owned(), num(wedged)),
            ("cancelled".to_owned(), num(cancelled)),
            ("syntax_errors".to_owned(), num(syntax)),
            ("run_failures".to_owned(), num(run_failures)),
        ]);
        serde_json::to_string_pretty(&stats).expect("stats serialize")
    }
}

/// The report's status string for a record.
fn status_str(status: &JobStatus) -> String {
    match status {
        JobStatus::Completed => "completed".to_owned(),
        JobStatus::Degraded => "degraded".to_owned(),
        JobStatus::Cancelled => "cancelled".to_owned(),
        JobStatus::Syntax(e) => format!("syntax error: {e}"),
        JobStatus::Panicked(e) => format!("panicked: {e}"),
        JobStatus::Wedged => "wedged: exceeded watchdog budget".to_owned(),
    }
}

/// Renders one report row. This single function serves the live report,
/// the checkpoint writer, and (transitively) the resume splice, which is
/// what makes interrupted-then-resumed reports byte-identical to
/// uninterrupted ones.
fn render_row(
    name: &str,
    status: &JobStatus,
    outcome: Option<&JobOutcome>,
    include_facts: bool,
) -> Value {
    let num = |n: u64| Value::Num(n as f64);
    let (seeds, run_statuses, failures, facts, determinate, conflicts) = match outcome {
        Some(o) => (
            o.seeds.iter().map(|&s| num(s)).collect(),
            o.multi
                .runs
                .iter()
                .map(|r| Value::Str(format!("{:?}", r.status)))
                .collect(),
            o.multi
                .failures
                .iter()
                .map(|f| {
                    Value::Object(vec![
                        ("kind".to_owned(), Value::Str(f.kind().to_owned())),
                        ("seed".to_owned(), num(f.seed())),
                        ("message".to_owned(), Value::Str(f.to_string())),
                    ])
                })
                .collect(),
            o.multi.facts.len() as u64,
            o.multi.facts.det_count() as u64,
            o.multi.conflicts,
        ),
        None => (Vec::new(), Vec::new(), Vec::new(), 0, 0, 0),
    };
    let fact_rows = match (outcome, include_facts) {
        (Some(o), true) => {
            serde_json::from_str(&o.export_facts_json()).expect("fact export re-parses")
        }
        _ => Value::Null,
    };
    let mut fields = vec![
        ("name".to_owned(), Value::Str(name.to_owned())),
        ("status".to_owned(), Value::Str(status_str(status))),
        ("seeds".to_owned(), Value::Array(seeds)),
        ("run_statuses".to_owned(), Value::Array(run_statuses)),
        ("failures".to_owned(), Value::Array(failures)),
        ("facts".to_owned(), num(facts)),
        ("determinate".to_owned(), num(determinate)),
        ("conflicts".to_owned(), num(conflicts)),
        ("fact_rows".to_owned(), fact_rows),
    ];
    // The `pta` field exists only when the batch ran the opt-in PTA
    // stage, keeping PTA-less reports byte-identical to earlier versions.
    if let Some(pta) = outcome.and_then(|o| o.pta.as_ref()) {
        fields.push(("pta".to_owned(), pta.clone()));
    }
    Value::Object(fields)
}

/// Replaces (or appends) an object field in place.
fn set_field(row: &mut Value, key: &str, value: Value) {
    if let Value::Object(fields) = row {
        if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            fields.push((key.to_owned(), value));
        }
    }
}

/// The worker-side result of one manifest job, including the identity the
/// classifier needs to checkpoint it.
struct SpecRun {
    key: String,
    name: String,
    status: JobStatus,
    outcome: Option<JobOutcome>,
}

/// The streaming checkpoint writer: accumulates settled rows and
/// periodically publishes them atomically. Save errors are swallowed — a
/// checkpoint is an optimization, and a full disk must not fail the
/// campaign it is trying to protect.
struct CkptWriter {
    ck: Checkpoint,
    path: PathBuf,
    every: u64,
    inserts: u64,
    writes: u64,
    #[cfg(feature = "fault-inject")]
    chaos: Option<std::sync::Arc<crate::chaos::SchedulerFaultPlan>>,
}

impl CkptWriter {
    fn record(&mut self, key: String, row: Value) {
        self.ck.insert(key, row);
        self.inserts += 1;
        if self.inserts.is_multiple_of(self.every) {
            self.flush();
        }
    }

    fn flush(&mut self) {
        self.writes += 1;
        #[cfg(feature = "fault-inject")]
        let truncate = self
            .chaos
            .as_ref()
            .is_some_and(|p| p.truncate_checkpoint(self.writes));
        #[cfg(not(feature = "fault-inject"))]
        let truncate = false;
        let _ = self.ck.save(&self.path, truncate);
    }
}

/// Runs every manifest job through the pool with default campaign options
/// (single attempt, no watchdog, no checkpointing) and aggregates the
/// results in manifest order.
pub fn run_manifest(manifest: &Manifest, pool: &JobPool) -> BatchOutcome {
    run_manifest_with(manifest, pool, &BatchOptions::default())
}

/// Runs a manifest as a fault-tolerant campaign: retries, watchdog,
/// checkpoint/resume, and admission control per `opts` (see the module
/// docs). The report stays byte-identical for any worker count, any
/// retryable fault schedule, and any interrupt/resume split.
pub fn run_manifest_with(manifest: &Manifest, pool: &JobPool, opts: &BatchOptions) -> BatchOutcome {
    let n = manifest.jobs.len();
    let keys: Vec<String> = manifest
        .jobs
        .iter()
        .map(|s| job_key(s, opts.mem_budget_cells, opts.pta_budget, opts.spec_depth))
        .collect();
    let mut records: Vec<Option<JobRecord>> = (0..n).map(|_| None).collect();
    let mut scheduled: Vec<usize> = Vec::new();
    for (i, spec) in manifest.jobs.iter().enumerate() {
        match opts.resume.as_ref().and_then(|ck| ck.lookup(&keys[i])) {
            Some(row) => {
                let status = match row.get("status").and_then(Value::as_str) {
                    Some("degraded") => JobStatus::Degraded,
                    _ => JobStatus::Completed,
                };
                records[i] = Some(JobRecord {
                    index: i,
                    name: spec.name.clone(),
                    status,
                    outcome: None,
                    attempts: 0,
                    restored: Some(row.clone()),
                });
            }
            None => scheduled.push(i),
        }
    }

    let admission = opts.mem_budget_cells.map(AdmissionController::new);
    let writer: Option<Mutex<CkptWriter>> = opts.checkpoint_path.as_ref().map(|p| {
        Mutex::new(CkptWriter {
            // Seed the writer with the resumed rows so the final
            // checkpoint covers the whole campaign, not just this leg.
            ck: opts.resume.clone().unwrap_or_default(),
            path: p.clone(),
            every: opts.checkpoint_every.max(1),
            inserts: 0,
            writes: 0,
            #[cfg(feature = "fault-inject")]
            chaos: opts.chaos.clone(),
        })
    });

    let jobs: Vec<(String, _)> = scheduled
        .iter()
        .map(|&i| {
            let spec = manifest.jobs[i].clone();
            let key = keys[i].clone();
            let admission = &admission;
            let grace = opts.watchdog_grace_ms;
            let pta = opts
                .pta_budget
                .map(|b| (b, opts.pta_threads, opts.pta_shards, opts.spec_depth));
            let job = move |ctx: &JobCtx| -> IsolatedGraph<SpecRun> {
                let adm = match admission {
                    Some(c) => c.admit(spec.effective_config().mem_cell_budget),
                    None => Admission {
                        reserved: 0,
                        granted: None,
                        degraded: false,
                    },
                };
                if adm.degraded {
                    ctx.emit(JobEvent::Degraded {
                        job: ctx.job,
                        label: spec.name.clone(),
                        granted_cells: adm.granted.unwrap_or_default(),
                    });
                }
                let (status, outcome) = run_spec(&spec, ctx, &adm, grace, pta);
                if let Some(c) = admission {
                    c.release(adm);
                }
                IsolatedGraph::new(SpecRun {
                    key: key.clone(),
                    name: spec.name.clone(),
                    status,
                    outcome,
                })
            };
            (manifest.jobs[i].name.clone(), job)
        })
        .collect();

    let classify = |iso: &IsolatedGraph<SpecRun>| -> Disposition {
        let run = iso.get();
        match &run.status {
            JobStatus::Syntax(e) => Disposition::Fatal(format!("syntax error: {e}")),
            JobStatus::Completed | JobStatus::Degraded => {
                let outcome = run.outcome.as_ref();
                if let Some(f) =
                    outcome.and_then(|o| o.multi.failures.iter().find(|f| f.is_transient()))
                {
                    // Transient per-run failure (engine panic / injected
                    // alloc fault): rerunning can recover the row.
                    return Disposition::Retry(f.to_string());
                }
                if outcome.is_some_and(|o| o.multi.failures.is_empty()) {
                    // The row is settled — its bytes are final — so it is
                    // safe to checkpoint. Rows carrying failures are left
                    // out: a resume should rerun them.
                    if let Some(w) = &writer {
                        let row = render_row(&run.name, &run.status, outcome, true);
                        w.lock().unwrap().record(run.key.clone(), row);
                    }
                }
                Disposition::Keep
            }
            // Cancellation is a deliberate external decision, never
            // retried; Panicked/Wedged never reach the classifier (the
            // pool resolves them directly).
            _ => Disposition::Keep,
        }
    };

    let runs = pool.run_classified(jobs, &opts.retry, classify);
    for (&slot, run) in scheduled.iter().zip(runs) {
        let name = manifest.jobs[slot].name.clone();
        let attempts = run.attempts;
        let (status, outcome) = match run.verdict {
            JobVerdict::Done(iso) => {
                let sr = iso.into_inner();
                (sr.status, sr.outcome)
            }
            JobVerdict::Panicked(p) => (JobStatus::Panicked(p), None),
            JobVerdict::Cancelled => (JobStatus::Cancelled, None),
            JobVerdict::Wedged => (JobStatus::Wedged, None),
        };
        records[slot] = Some(JobRecord {
            index: slot,
            name,
            status,
            outcome,
            attempts,
            restored: None,
        });
    }
    if let Some(w) = &writer {
        w.lock().unwrap().flush();
    }
    BatchOutcome {
        jobs: records
            .into_iter()
            .map(|r| r.expect("every manifest job resolved"))
            .collect(),
    }
}

/// The worker-side body of one manifest job. Everything `Rc`-threaded is
/// built here, inside the worker, and transferred back wholesale (see
/// [`IsolatedGraph`]).
fn run_spec(
    spec: &JobSpec,
    ctx: &JobCtx,
    adm: &Admission,
    watchdog_grace_ms: Option<u64>,
    pta: Option<(u64, usize, usize, Option<usize>)>,
) -> (JobStatus, Option<JobOutcome>) {
    let harness = match DetHarness::from_src(&spec.src) {
        Ok(h) => h,
        Err(e) => return (JobStatus::Syntax(e.to_string()), None),
    };
    let mut cfg = spec.effective_config();
    if adm.degraded {
        cfg.mem_cell_budget = adm.granted;
    }
    if let (Some(grace), Some(deadline)) = (watchdog_grace_ms, cfg.deadline_ms) {
        ctx.arm_watchdog(deadline.saturating_add(grace));
    }
    let seeds = spec.effective_seeds();
    let doc = DocumentBuilder::new().title(&spec.name).build();
    let plan = EventPlan::new();
    let mut outcome = analyze_seeds(harness, &seeds, cfg, &doc, &plan, ctx);
    if let Some((budget, threads, shards, spec_depth)) = pta {
        let row = match spec_depth {
            // The worker still holds the live fact database and context
            // table, so specialization is a local transform here — no
            // re-analysis, no serialization round-trip.
            Some(depth) => {
                ctx.progress(format!("specializing at depth {depth}"));
                let spec_cfg = mujs_specialize::SpecConfig {
                    max_context_depth: depth,
                    ..Default::default()
                };
                let s = mujs_specialize::specialize(
                    &outcome.program,
                    &outcome.multi.facts,
                    &mut outcome.multi.ctxs,
                    &spec_cfg,
                );
                ctx.progress("solving pointer analysis".to_owned());
                let mut row = solve_pta_row(&s.program, budget, threads, shards);
                // Recorded only when set, so depth-less reports keep
                // their historical bytes.
                set_field(&mut row, "spec_depth", Value::Num(depth as f64));
                row
            }
            None => {
                ctx.progress("solving pointer analysis".to_owned());
                solve_pta_row(&outcome.program, budget, threads, shards)
            }
        };
        outcome.pta = Some(row);
    }
    let status = if adm.degraded {
        JobStatus::Degraded
    } else {
        JobStatus::Completed
    };
    (status, Some(outcome))
}

/// Runs the opt-in baseline PTA stage over a job's lowered program and
/// renders its report object. Everything in the row is deterministic —
/// budget-bounded work, canonical call-graph/precision counts — and
/// independent of the thread and shard counts, so batch reports stay
/// byte-identical for any `--workers`/`--pta-threads`/`--shards`
/// combination.
fn solve_pta_row(program: &mujs_ir::Program, budget: u64, threads: usize, shards: usize) -> Value {
    let default_shards = mujs_pta::PtaConfig::default().shards;
    let cfg = mujs_pta::PtaConfig {
        budget,
        threads: threads.max(1),
        shards: if shards == 0 { default_shards } else { shards },
        ..mujs_pta::PtaConfig::default()
    };
    let r = mujs_pta::solve(program, &cfg);
    let p = r.precision(program);
    let num = |n: f64| Value::Num(n);
    Value::Object(vec![
        (
            "status".to_owned(),
            Value::Str(
                match r.status {
                    mujs_pta::PtaStatus::Completed => "completed",
                    mujs_pta::PtaStatus::BudgetExceeded => "budget exceeded",
                }
                .to_owned(),
            ),
        ),
        ("budget".to_owned(), num(budget as f64)),
        ("propagations".to_owned(), num(r.stats.propagations as f64)),
        ("call_sites".to_owned(), num(p.call_sites as f64)),
        ("poly_sites".to_owned(), num(p.poly_sites as f64)),
        ("avg_points_to".to_owned(), num(p.avg_points_to)),
        ("reachable_funcs".to_owned(), num(p.reachable_funcs as f64)),
    ])
}

/// Runs one seed fan-out sequentially on the current (worker) thread,
/// short-circuiting remaining seeds to [`RunFailure::Cancelled`] once the
/// batch token fires, and combining in seed order.
fn analyze_seeds(
    mut harness: DetHarness,
    seeds: &[u64],
    base_cfg: AnalysisConfig,
    doc: &Document,
    plan: &EventPlan,
    ctx: &JobCtx,
) -> JobOutcome {
    let hooks = RunHooks::with_cancel(ctx.cancel.clone());
    let n = seeds.len();
    let results: Vec<Result<AnalysisOutcome, RunFailure>> = seeds
        .iter()
        .enumerate()
        .map(|(i, &seed)| {
            if ctx.is_cancelled() {
                return Err(RunFailure::Cancelled { seed });
            }
            let cfg = AnalysisConfig {
                seed,
                ..base_cfg.clone()
            };
            let r = supervised_analyze_dom(&mut harness, cfg, doc.clone(), plan, &hooks);
            ctx.progress(format!("seed {}/{n} done", i + 1));
            r
        })
        .collect();
    let multi = MultiRunOutcome::combine(results, base_cfg.max_facts);
    JobOutcome {
        seeds: seeds.to_vec(),
        multi,
        program: harness.program,
        source: harness.source,
        pta: None,
    }
}

/// The pool-backed variant of
/// [`analyze_many_hooked`][determinacy::multirun::analyze_many_hooked]:
/// fans the seed list out over the pool's workers (each worker re-parses
/// the source on its own thread, so no `Rc` is shared across threads) and
/// combines the per-seed outcomes **in seed order**, making the merged
/// facts identical to the sequential path for any worker count.
///
/// # Errors
///
/// A [`mujs_syntax::SyntaxError`] when `src` does not parse (checked up
/// front, before any job is scheduled).
pub fn analyze_many_pooled(
    src: &str,
    seeds: &[u64],
    base_cfg: AnalysisConfig,
    doc: Option<&Document>,
    plan: &EventPlan,
    pool: &JobPool,
) -> Result<MultiRunOutcome, mujs_syntax::SyntaxError> {
    // Surface parse errors eagerly and identically to the sequential API.
    mujs_syntax::parse_spawned(src)?;
    let jobs: Vec<(String, _)> = seeds
        .iter()
        .map(|&seed| {
            let label = format!("seed-{seed}");
            let cfg = AnalysisConfig {
                seed,
                ..base_cfg.clone()
            };
            let job = move |ctx: &JobCtx| -> IsolatedGraph<Result<AnalysisOutcome, RunFailure>> {
                let r = match DetHarness::from_src(src) {
                    Ok(mut h) => {
                        let hooks = RunHooks::with_cancel(ctx.cancel.clone());
                        let d = doc.cloned().unwrap_or_else(|| {
                            DocumentBuilder::new().title("analyze-pooled").build()
                        });
                        supervised_analyze_dom(&mut h, cfg.clone(), d, plan, &hooks)
                    }
                    Err(e) => {
                        // Unreachable after the eager parse; keep the seed
                        // isolated rather than poisoning the batch.
                        Err(RunFailure::EnginePanic {
                            payload: format!("late parse failure: {e}"),
                            steps: 0,
                            seed,
                        })
                    }
                };
                IsolatedGraph::new(r)
            };
            (label, job)
        })
        .collect();
    let verdicts = pool.run(jobs);
    let results = verdicts
        .into_iter()
        .zip(seeds)
        .map(|(v, &seed)| match v {
            JobVerdict::Done(iso) => iso.into_inner(),
            JobVerdict::Panicked(payload) => Err(RunFailure::EnginePanic {
                payload,
                steps: 0,
                seed,
            }),
            JobVerdict::Cancelled => Err(RunFailure::Cancelled { seed }),
            // These seed fan-out jobs never arm the watchdog, but keep the
            // arm total: treat a wedge like a panic-shaped loss.
            JobVerdict::Wedged => Err(RunFailure::EnginePanic {
                payload: "seed run wedged past watchdog budget".to_owned(),
                steps: 0,
                seed,
            }),
        })
        .collect::<Vec<_>>();
    Ok(MultiRunOutcome::combine(results, base_cfg.max_facts))
}
