//! Quickstart: run the dynamic determinacy analysis on the paper's
//! Figure 2 program and print the inferred facts in the paper's
//! `J e K ctx = v` notation.
//!
//! Run with `cargo run --example quickstart`.

use determinacy::{AnalysisConfig, DetHarness, Fact, FactKind};

const FIGURE2: &str = r#"(function() {
  function checkf(p) {
    if (p.f < 32)
      setg(p, 42);
  }
  function setg(r, v) {
    r.g = v;
  }
  var x = { f: 23 },
      y = { f: Math.random() * 100 };
  var xf = x.f, yf = y.f;      // J x.f K = 23, J y.f K = ?
  checkf(x);
  var xg = x.g;                // J x.g K = 42
  checkf(y);
  var yg = y.g;                // J y.g K = ?
  (y.f > 50 ? checkf : setg)(x, 72);
  var xg2 = x.g;               // J x.g K = ? (heap flushed)
  var z = { f: x.g - 16, h: true };
  checkf(z);
  var zh = z.h;                // still determinate
})();
"#;

fn main() {
    let mut h = DetHarness::from_src(FIGURE2).expect("figure 2 parses");
    let out = h.analyze(AnalysisConfig::default());

    println!("Dynamic determinacy analysis of the paper's Figure 2");
    println!("====================================================");
    println!("status: {:?}", out.status);
    println!(
        "facts: {} total, {} determinate; heap flushes: {}; counterfactuals: {}",
        out.facts.len(),
        out.facts.det_count(),
        out.stats.heap_flushes,
        out.stats.counterfactuals
    );
    println!();
    println!("Determinacy facts at variable definitions (paper notation):");
    let mut lines: Vec<String> = Vec::new();
    for (kind, point, ctx, fact) in out.facts.iter() {
        if kind != FactKind::Define {
            continue;
        }
        // Only show facts for source lines carrying the paper's comments.
        let line = h.source.line_col(h.program.span_of(point)).line;
        if ![10, 12, 14, 16, 18].contains(&line) {
            continue;
        }
        if let Some(desc) = out
            .facts
            .describe(kind, point, ctx, &h.program, &h.source, &out.ctxs)
        {
            let marker = match fact {
                Fact::Det(_) => "determinate",
                Fact::Indet => "indeterminate",
            };
            lines.push(format!("  {desc:<40} [{marker}]"));
        }
    }
    lines.sort();
    lines.dedup();
    for l in lines {
        println!("{l}");
    }
}
