//! The DOM API surface specification.
//!
//! Both interpreters bind the same set of DOM natives; this module is the
//! single source of truth for which functions exist, where they live, and
//! how the *determinacy* analysis must treat them (§4 of the paper):
//!
//! * return values of DOM functions are indeterminate (unless the unsound
//!   `DetDOM` assumption of §5.1 is enabled);
//! * DOM functions "can only modify DOM data structures, so calling them
//!   does not affect the determinacy of other heap locations" — i.e. they
//!   never force a heap flush;
//! * values read from DOM data structures are indeterminate (again modulo
//!   `DetDOM`).

/// Which host object a DOM function is installed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DomHost {
    /// The global `window` object (also the global object).
    Window,
    /// The `document` object.
    Document,
    /// Every element object.
    Element,
}

/// How a DOM function behaves for the determinacy analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DomEffect {
    /// Reads DOM state only; result reflects the (indeterminate) document.
    Read,
    /// Mutates DOM state only; result is `undefined`/a DOM value.
    Mutate,
    /// Registers an event handler.
    RegisterHandler,
    /// Removes event handlers.
    UnregisterHandler,
    /// Output only (e.g. `alert`); no effect on program state.
    Output,
}

/// Specification of one DOM native function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomFunctionSpec {
    /// The property name under which it is installed.
    pub name: &'static str,
    /// The host object.
    pub host: DomHost,
    /// Its effect class.
    pub effect: DomEffect,
}

/// All DOM functions both interpreters must bind.
pub const DOM_FUNCTIONS: &[DomFunctionSpec] = &[
    DomFunctionSpec {
        name: "getElementById",
        host: DomHost::Document,
        effect: DomEffect::Read,
    },
    DomFunctionSpec {
        name: "getElementsByTagName",
        host: DomHost::Document,
        effect: DomEffect::Read,
    },
    DomFunctionSpec {
        name: "createElement",
        host: DomHost::Document,
        effect: DomEffect::Mutate,
    },
    DomFunctionSpec {
        name: "addEventListener",
        host: DomHost::Document,
        effect: DomEffect::RegisterHandler,
    },
    DomFunctionSpec {
        name: "appendChild",
        host: DomHost::Element,
        effect: DomEffect::Mutate,
    },
    DomFunctionSpec {
        name: "removeChild",
        host: DomHost::Element,
        effect: DomEffect::Mutate,
    },
    DomFunctionSpec {
        name: "setAttribute",
        host: DomHost::Element,
        effect: DomEffect::Mutate,
    },
    DomFunctionSpec {
        name: "getAttribute",
        host: DomHost::Element,
        effect: DomEffect::Read,
    },
    DomFunctionSpec {
        name: "addEventListener",
        host: DomHost::Element,
        effect: DomEffect::RegisterHandler,
    },
    DomFunctionSpec {
        name: "removeEventListener",
        host: DomHost::Element,
        effect: DomEffect::UnregisterHandler,
    },
    DomFunctionSpec {
        name: "alert",
        host: DomHost::Window,
        effect: DomEffect::Output,
    },
    DomFunctionSpec {
        name: "addEventListener",
        host: DomHost::Window,
        effect: DomEffect::RegisterHandler,
    },
];

/// Element properties surfaced on element objects. Reads of these are
/// "values read from a DOM data structure" and hence indeterminate for the
/// analysis unless `DetDOM` is on.
pub const ELEMENT_PROPERTIES: &[&str] = &["tagName", "id", "className", "innerHTML", "parentNode"];

/// Document properties with the same treatment.
pub const DOCUMENT_PROPERTIES: &[&str] = &["title", "body", "documentElement"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_has_core_functions() {
        let find = |host, name| {
            DOM_FUNCTIONS
                .iter()
                .any(|f| f.host == host && f.name == name)
        };
        assert!(find(DomHost::Document, "getElementById"));
        assert!(find(DomHost::Document, "createElement"));
        assert!(find(DomHost::Element, "appendChild"));
        assert!(find(DomHost::Window, "alert"));
    }

    #[test]
    fn handler_registration_is_classified() {
        let reg_count = DOM_FUNCTIONS
            .iter()
            .filter(|f| f.effect == DomEffect::RegisterHandler)
            .count();
        assert_eq!(reg_count, 3); // window, document, element
    }
}
