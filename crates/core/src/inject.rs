//! Bridges the dynamic fact database into the pointer analysis.
//!
//! §5.1 of the paper consumes determinacy facts by *rewriting the
//! program* (specialization) and re-running the static analysis over the
//! rewritten source. Fact injection is the rewrite-free alternative: the
//! facts a run proved determinate at every context are handed straight to
//! the solver, which consults them at dynamic property accesses and call
//! sites instead of smearing through ⋆-nodes.

use crate::det::FactValue;
use crate::facts::{Fact, FactDb, FactKind};
use mujs_ir::{FuncId, Program, StmtId};
use mujs_pta::InjectedFacts;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Distills `db` into per-site injections: a site qualifies only when
/// *every* recorded context agrees on the same determinate value — a
/// property-key string or a callee closure. Anything else (an `Indet`
/// fact in any context, disagreeing contexts, non-closure callees,
/// dangling function ids) is dropped.
///
/// Property-key strings are interned into `prog` (in ascending site
/// order, keeping interner growth deterministic) so the solver can use
/// them as static field names.
pub fn injectable_facts(db: &FactDb, prog: &mut Program) -> InjectedFacts {
    // `None` = the site has conflicting or indeterminate facts.
    let mut keys: BTreeMap<StmtId, Option<Rc<str>>> = BTreeMap::new();
    let mut callees: BTreeMap<StmtId, Option<FuncId>> = BTreeMap::new();
    for (kind, point, _ctx, fact) in db.iter() {
        match kind {
            FactKind::PropKey => {
                let cur = match fact {
                    Fact::Det(FactValue::Str(s)) => Some(s.clone()),
                    _ => None,
                };
                keys.entry(point)
                    .and_modify(|prev| {
                        if prev.as_deref() != cur.as_deref() {
                            *prev = None;
                        }
                    })
                    .or_insert(cur);
            }
            FactKind::Callee => {
                let cur = match fact {
                    Fact::Det(FactValue::Closure(f)) if (f.0 as usize) < prog.funcs.len() => {
                        Some(*f)
                    }
                    _ => None,
                };
                callees
                    .entry(point)
                    .and_modify(|prev| {
                        if *prev != cur {
                            *prev = None;
                        }
                    })
                    .or_insert(cur);
            }
            _ => {}
        }
    }
    let mut out = InjectedFacts::default();
    for (point, key) in keys {
        if let Some(s) = key {
            out.prop_keys.insert(point, prog.interner.intern(&s));
        }
    }
    for (point, callee) in callees {
        if let Some(f) = callee {
            out.callees.insert(point, f);
        }
    }
    out
}
