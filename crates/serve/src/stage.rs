//! The content-addressed pipeline: stage keys, stage artifacts, and the
//! cold-path execution that fills them.
//!
//! A request names source text plus analysis parameters; the pipeline
//! splits it into three stages, each keyed by a digest of *everything*
//! that determines its output and nothing else:
//!
//! * **parse** — `H(LOWERING_VERSION ∥ src)`. Parsing and lowering are
//!   deterministic (pinned by the workspace's golden byte-identity
//!   tests), so the key of the *inputs* is a faithful content address of
//!   the lowered program too; the artifact records only the parse
//!   outcome (shape counts, or the syntax error — errors are
//!   deterministic and cache just as well as successes).
//! * **facts** — `H("facts" ∥ parse-key ∥ effective-config-json ∥
//!   seeds…)`. The seed fan-out of the dynamic determinacy analysis,
//!   combined in seed order; the artifact carries the full sorted fact
//!   export plus the portable [`InjectablePairs`]. Runs whose outcome
//!   depended on wall-clock (deadline stops) or external cancellation
//!   are **never cached** — their bytes are not a function of the key.
//! * **summary** (shortcut mode only) — `H("shortcut" ∥ facts-key)`.
//!   The concrete-replay region summaries; the replay consumes exactly
//!   the facts stage's inputs, so the key chains the facts key alone.
//!   Computed only when a request asks for shortcut mode — requests
//!   without it carry the exact key set of earlier service versions.
//! * **pta** — `H("pta" ∥ upstream-key ∥ budget ∥ inject [∥ "spec" ∥
//!   depth] [∥ "shortcut" ∥ summary-key])`, where the upstream key is
//!   the facts key when the solve consumes the determinacy facts
//!   (injection, specialization, or shortcut summaries) and the parse
//!   key otherwise (a baseline solve does not depend on the analysis
//!   config, and keying it by the parse stage lets a config change keep
//!   the baseline artifact warm). The spec-depth and shortcut folds are
//!   appended only when requested, so baseline and injecting keys are
//!   unchanged from earlier service versions.
//!
//! Artifacts are plain JSON values: the in-memory `Program`/`FactDb`
//! graphs are `Rc`-threaded and thread-bound, so nothing of them crosses
//! the cache boundary. A deeper stage that misses while its upstream hit
//! *rehydrates* — re-parses the byte-identical source (guaranteed by the
//! parse key) and re-interns the cached pairs — rather than keeping live
//! graphs around.
//!
//! The report row returned to clients is rendered **only from
//! artifacts**, on both the cold and warm paths, which is what makes a
//! warm response byte-identical to the cold run that populated it.

use crate::cache::{Stage, StageCache};
use determinacy::multirun::{export_json, MultiRunOutcome};
use determinacy::{
    injectable_facts, supervised_analyze_dom, AnalysisConfig, AnalysisOutcome, CancelToken,
    DetHarness, InjectablePairs, RunFailure, RunHooks,
};
use mujs_dom::document::DocumentBuilder;
use mujs_dom::events::EventPlan;
use mujs_pta::{PtaConfig, PtaStatus};
use serde_json::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Version stamp folded into every parse key. Lowering is deterministic
/// within one version of the compiler; bump this when a lowering change
/// ships so stale parse-keyed artifacts miss instead of lying.
pub const LOWERING_VERSION: &str = "lower-v1";

/// The document every service analysis runs against. Fixed — *not* the
/// request name — so artifacts are pure functions of their keys: the DOM
/// model reads `document.title`, and letting a client-chosen name leak
/// into the analyzed document would make two same-source requests
/// produce different facts.
const SERVICE_DOC_TITLE: &str = "detserved";

/// One analysis request, reduced to exactly the inputs the pipeline keys
/// by (the client-facing `name` deliberately absent).
#[derive(Debug, Clone)]
pub struct StageRequest {
    /// The JavaScript source.
    pub src: String,
    /// The *effective* analysis configuration — after any admission
    /// degradation, since a degraded memory budget changes the facts.
    pub cfg: AnalysisConfig,
    /// Seeds to fan out over (already defaulted; never empty).
    pub seeds: Vec<u64>,
    /// Pointer-analysis propagation budget; `None` skips the PTA stage.
    pub pta_budget: Option<u64>,
    /// Whether the PTA stage consumes the determinacy facts.
    pub inject: bool,
    /// When set, the PTA stage solves the program *specialized* against
    /// the determinacy facts with this context-depth bound, instead of
    /// the lowered baseline. Changes results, so (unlike `pta_threads`)
    /// it is part of the PTA stage key; mutually exclusive with `inject`
    /// (enforced at the protocol layer).
    pub spec_depth: Option<usize>,
    /// When true, a summary stage replays the determinate regions on the
    /// concrete interpreter and the PTA stage consumes the distilled
    /// shortcut summaries alongside any injected facts. Changes results,
    /// so it is part of the PTA stage key (via the summary key fold);
    /// mutually exclusive with `spec_depth` (summaries name functions of
    /// the *unspecialized* program; enforced at the protocol layer).
    pub shortcuts: bool,
    /// Solver threads for the PTA stage (0/1 sequential, >= 2 the
    /// epoch-sharded parallel solver). An execution knob, not an input:
    /// results are identical for every thread count, so it is
    /// deliberately absent from [`StageKeys`] — artifacts stay warm when
    /// the service is restarted with different parallelism.
    pub pta_threads: usize,
    /// Solver shards for the PTA stage (0 keeps the solver default).
    /// Like `pta_threads`, an execution knob: fixpoints are identical
    /// for every shard count, so it never reaches [`StageKeys`].
    pub pta_shards: usize,
}

/// The content keys of one request's stages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageKeys {
    /// Parse/lower stage key (doubles as the program content address).
    pub parse: String,
    /// Determinacy-facts stage key.
    pub facts: String,
    /// Shortcut-summary stage key (`None` unless the request asked for
    /// shortcut mode — absent, not empty, so shortcut-less requests keep
    /// their historical key set byte-for-byte).
    pub summary: Option<String>,
    /// Pointer-analysis stage key (`None` when the request skips PTA).
    pub pta: Option<String>,
}

impl StageKeys {
    /// Computes the chained stage keys for a request.
    pub fn compute(req: &StageRequest) -> StageKeys {
        use determinacy::cachekey::KeyHasher;
        let cfg_json = serde_json::to_string(&req.cfg).expect("config serializes");
        let parse = KeyHasher::new()
            .str(LOWERING_VERSION)
            .str(&req.src)
            .finish();
        let mut fh = KeyHasher::new().str("facts").str(&parse).str(&cfg_json);
        for &seed in &req.seeds {
            fh = fh.u64(seed);
        }
        let facts = fh.finish();
        // The summary stage consumes exactly the facts stage's inputs
        // (region selection reads the fact graphs; the replay re-runs the
        // byte-identical source), so its key chains the facts key alone.
        // Computed only in shortcut mode — there is no "shortcuts off"
        // fold anywhere, which is what keeps every pre-shortcut key
        // byte-identical when the flag is absent.
        let summary = (req.shortcuts && req.pta_budget.is_some())
            .then(|| KeyHasher::new().str("shortcut").str(&facts).finish());
        // `pta_threads`/`pta_shards` are intentionally not hashed: the
        // parallel solver is deterministic across thread and shard
        // counts, so hashing them would only split identical artifacts
        // across distinct keys.
        let pta = req.pta_budget.map(|budget| {
            // Specialization and shortcut summaries consume the
            // determinacy facts (like injection does), so those solves
            // chain the facts key; the depth/shortcut folds are appended
            // only when set, keeping depth-less shortcut-less keys
            // byte-identical to earlier service versions.
            let upstream = if req.inject || req.spec_depth.is_some() || req.shortcuts {
                &facts
            } else {
                &parse
            };
            let mut h = KeyHasher::new()
                .str("pta")
                .str(upstream)
                .u64(budget)
                .u64(u64::from(req.inject));
            if let Some(depth) = req.spec_depth {
                h = h.str("spec").u64(depth as u64);
            }
            if let Some(skey) = &summary {
                h = h.str("shortcut").str(skey);
            }
            h.finish()
        });
        StageKeys {
            parse,
            facts,
            summary,
            pta,
        }
    }

    /// The keys as a JSON object (embedded in report rows so clients can
    /// correlate and pre-warm).
    pub fn to_value(&self) -> Value {
        let mut fields = vec![
            ("parse".to_owned(), Value::Str(self.parse.clone())),
            ("facts".to_owned(), Value::Str(self.facts.clone())),
        ];
        // Present only in shortcut mode, so shortcut-less report rows
        // keep their historical bytes.
        if let Some(k) = &self.summary {
            fields.push(("summary".to_owned(), Value::Str(k.clone())));
        }
        fields.push((
            "pta".to_owned(),
            match &self.pta {
                Some(k) => Value::Str(k.clone()),
                None => Value::Null,
            },
        ));
        Value::Object(fields)
    }
}

/// Monotone cold-work counters. The service's central guarantee — a warm
/// request recomputes *nothing* — is asserted against these: a fully
/// warm request must leave every one of them unchanged (in particular
/// `pta_propagations`).
#[derive(Debug, Default)]
pub struct PipelineCounters {
    /// Sources parsed + lowered (including rehydration re-parses).
    pub parses: AtomicU64,
    /// Supervised per-seed analysis runs executed.
    pub analyses: AtomicU64,
    /// Concrete shortcut-summary replays executed.
    pub summary_replays: AtomicU64,
    /// Pointer-analysis solves executed.
    pub pta_solves: AtomicU64,
    /// Points-to propagations performed across all solves.
    pub pta_propagations: AtomicU64,
}

impl PipelineCounters {
    /// A deterministic JSON snapshot.
    pub fn to_value(&self) -> Value {
        let num = |a: &AtomicU64| Value::Num(a.load(Ordering::Relaxed) as f64);
        Value::Object(vec![
            ("parses".to_owned(), num(&self.parses)),
            ("analyses".to_owned(), num(&self.analyses)),
            ("summary_replays".to_owned(), num(&self.summary_replays)),
            ("pta_solves".to_owned(), num(&self.pta_solves)),
            ("pta_propagations".to_owned(), num(&self.pta_propagations)),
        ])
    }
}

/// Which stages of a request were served from cache.
#[derive(Debug, Clone, Copy, Default)]
pub struct CachedFlags {
    /// Parse artifact came from cache.
    pub parse: bool,
    /// Facts artifact came from cache.
    pub facts: bool,
    /// Summary artifact came from cache (`None` = shortcut mode off).
    pub summary: Option<bool>,
    /// PTA artifact came from cache (`None` = stage not requested).
    pub pta: Option<bool>,
}

impl CachedFlags {
    /// The flags as a JSON object for the response frame. The `summary`
    /// entry appears only in shortcut mode, so shortcut-less frames keep
    /// their historical bytes.
    pub fn to_value(&self) -> Value {
        let mut fields = vec![
            ("parse".to_owned(), Value::Bool(self.parse)),
            ("facts".to_owned(), Value::Bool(self.facts)),
        ];
        if let Some(b) = self.summary {
            fields.push(("summary".to_owned(), Value::Bool(b)));
        }
        fields.push((
            "pta".to_owned(),
            match self.pta {
                Some(b) => Value::Bool(b),
                None => Value::Null,
            },
        ));
        Value::Object(fields)
    }
}

/// A request driven through the pipeline: the rendered report row plus
/// which stages hit.
#[derive(Debug)]
pub struct Executed {
    /// The report row (shape-compatible with `detjobs` batch rows, plus
    /// `pta` and `stage_keys` fields).
    pub report: Value,
    /// Per-stage cache disposition.
    pub cached: CachedFlags,
    /// The stage keys the request resolved to.
    pub keys: StageKeys,
}

/// Drives one request through parse → facts → pta, consulting `cache` at
/// every stage boundary and filling it on misses. `status_label` is the
/// batch-level status the caller determined ("completed" or "degraded" —
/// admission is the caller's concern); `cancel` threads the service's
/// cancellation into the supervised runs; `notify` receives
/// human-readable progress lines.
#[allow(clippy::too_many_arguments)]
pub fn execute(
    req: &StageRequest,
    status_label: &str,
    include_facts: bool,
    name: &str,
    cache: &StageCache,
    counters: &PipelineCounters,
    cancel: &CancelToken,
    notify: &dyn Fn(&str),
) -> Executed {
    let keys = StageKeys::compute(req);
    let mut cached = CachedFlags::default();
    // The live program, when this request happened to build one. Lazy:
    // a fully warm request never parses.
    let mut harness: Option<DetHarness> = None;
    // The live seed fan-out outcome, when the facts stage ran cold in
    // this request. A spec-PTA stage specializes against it; the facts
    // *artifact* cannot carry it (the FactDb/ContextTable graphs are
    // Rc-threaded and never cross the cache boundary).
    let mut live_multi: Option<MultiRunOutcome> = None;

    // --- parse ---
    let parse_art = match cache.get(Stage::Parse, &keys.parse) {
        Some(v) => {
            cached.parse = true;
            v
        }
        None => {
            notify("parsing");
            let art = match build_harness(req, counters) {
                Ok(h) => {
                    let art = parse_artifact_ok(&h);
                    harness = Some(h);
                    art
                }
                Err(e) => parse_artifact_err(&e),
            };
            cache.put(Stage::Parse, &keys.parse, art)
        }
    };
    if parse_art.get("ok") != Some(&Value::Bool(true)) {
        let error = parse_art
            .get("error")
            .and_then(Value::as_str)
            .unwrap_or("unknown parse failure");
        let report = render_report(
            name,
            &format!("syntax error: {error}"),
            None,
            None,
            None,
            include_facts,
            &keys,
        );
        return Executed {
            report,
            cached,
            keys,
        };
    }

    // --- facts ---
    let facts_art = match cache.get(Stage::Facts, &keys.facts) {
        Some(v) => {
            cached.facts = true;
            v
        }
        None => {
            notify("running determinacy analysis");
            let h = match ensure_harness(&mut harness, req, counters) {
                Ok(h) => h,
                Err(e) => {
                    // Unreachable after a successful parse artifact, but a
                    // poisoned cache must degrade to an error, not a panic.
                    let report = render_report(
                        name,
                        &format!("syntax error: {e}"),
                        None,
                        None,
                        None,
                        include_facts,
                        &keys,
                    );
                    return Executed {
                        report,
                        cached,
                        keys,
                    };
                }
            };
            let (art, multi) = run_facts_stage(req, h, counters, cancel, notify);
            live_multi = Some(multi);
            // Only artifacts whose bytes are a pure function of the key are
            // cacheable: a deadline stop or external cancellation reflects
            // wall-clock, not content.
            if art.get("clean") == Some(&Value::Bool(true)) {
                cache.put(Stage::Facts, &keys.facts, art)
            } else {
                Arc::new(art)
            }
        }
    };

    // --- summary (shortcut mode only) ---
    let is_clean = |a: &Value| a.get("clean") == Some(&Value::Bool(true));
    // Whether the summary artifact's bytes are a pure function of its
    // key; a cached hit is clean by construction (only clean artifacts
    // are ever cached).
    let mut summary_clean = true;
    let summary_art = match &keys.summary {
        None => None,
        Some(skey) => match cache.get(Stage::Summary, skey) {
            Some(v) => {
                cached.summary = Some(true);
                Some(v)
            }
            None => {
                cached.summary = Some(false);
                match ensure_harness(&mut harness, req, counters) {
                    Ok(h) => {
                        // The summarizer needs the live fact graphs. If
                        // the facts stage was warm they no longer exist,
                        // so the fan-out reruns here (same discipline as
                        // the spec-PTA path: counted cold work, but the
                        // artifact stays a pure function of its key).
                        let (multi, clean) = match live_multi.take() {
                            Some(m) => (m, is_clean(&facts_art)),
                            None => {
                                notify("re-running determinacy analysis for summaries");
                                let (a, m) = run_facts_stage(req, h, counters, cancel, notify);
                                let clean = is_clean(&a);
                                (m, clean)
                            }
                        };
                        notify("replaying determinate regions");
                        let art = run_summary_stage(req, &multi, h, counters);
                        summary_clean = clean;
                        if clean {
                            Some(cache.put(Stage::Summary, skey, art))
                        } else {
                            Some(Arc::new(art))
                        }
                    }
                    Err(e) => {
                        summary_clean = false;
                        Some(Arc::new(Value::Object(vec![(
                            "error".to_owned(),
                            Value::Str(e.to_string()),
                        )])))
                    }
                }
            }
        },
    };

    // --- pta ---
    let pta_art = match &keys.pta {
        None => None,
        Some(pkey) => match cache.get(Stage::Pta, pkey) {
            Some(v) => {
                cached.pta = Some(true);
                Some(v)
            }
            None => {
                notify("solving pointer analysis");
                cached.pta = Some(false);
                match ensure_harness(&mut harness, req, counters) {
                    Ok(h) => {
                        let (art, clean) = if let Some(depth) = req.spec_depth {
                            // Specialization needs the live fact graphs.
                            // If the facts stage was warm they no longer
                            // exist, so the fan-out reruns here — counted
                            // cold work, but the artifact stays a pure
                            // function of its key (the rerun is the same
                            // deterministic computation the facts key
                            // already addresses).
                            let (multi, clean) = match live_multi.take() {
                                Some(m) => (m, is_clean(&facts_art)),
                                None => {
                                    notify("re-running determinacy analysis for specialization");
                                    let (a, m) = run_facts_stage(req, h, counters, cancel, notify);
                                    let clean = is_clean(&a);
                                    (m, clean)
                                }
                            };
                            (run_spec_pta_stage(req, depth, multi, h, counters), clean)
                        } else {
                            // An injecting or shortcut solve inherits its
                            // upstream artifacts' purity; a baseline
                            // solve is always pure.
                            let clean = (!req.inject || is_clean(&facts_art)) && summary_clean;
                            (
                                run_pta_stage(req, &facts_art, summary_art.as_deref(), h, counters),
                                clean,
                            )
                        };
                        if clean {
                            Some(cache.put(Stage::Pta, pkey, art))
                        } else {
                            Some(Arc::new(art))
                        }
                    }
                    Err(e) => Some(Arc::new(Value::Object(vec![(
                        "error".to_owned(),
                        Value::Str(e.to_string()),
                    )]))),
                }
            }
        },
    };

    let report = render_report(
        name,
        status_label,
        Some(&facts_art),
        summary_art.as_deref(),
        pta_art.as_deref(),
        include_facts,
        &keys,
    );
    Executed {
        report,
        cached,
        keys,
    }
}

fn build_harness(
    req: &StageRequest,
    counters: &PipelineCounters,
) -> Result<DetHarness, mujs_syntax::SyntaxError> {
    counters.parses.fetch_add(1, Ordering::Relaxed);
    DetHarness::from_src(&req.src)
}

fn ensure_harness<'a>(
    harness: &'a mut Option<DetHarness>,
    req: &StageRequest,
    counters: &PipelineCounters,
) -> Result<&'a mut DetHarness, mujs_syntax::SyntaxError> {
    if harness.is_none() {
        *harness = Some(build_harness(req, counters)?);
    }
    Ok(harness.as_mut().expect("just filled"))
}

fn parse_artifact_ok(h: &DetHarness) -> Value {
    let num = |n: usize| Value::Num(n as f64);
    Value::Object(vec![
        ("ok".to_owned(), Value::Bool(true)),
        ("funcs".to_owned(), num(h.program.funcs.len())),
    ])
}

fn parse_artifact_err(e: &mujs_syntax::SyntaxError) -> Value {
    Value::Object(vec![
        ("ok".to_owned(), Value::Bool(false)),
        ("error".to_owned(), Value::Str(e.to_string())),
    ])
}

/// Runs the seed fan-out and distills the combined outcome into the facts
/// artifact, returning the live outcome alongside (a spec-PTA stage in
/// the same request specializes against it). Mirrors the `detjobs` batch
/// row fields so clients see one report dialect across both tools.
fn run_facts_stage(
    req: &StageRequest,
    harness: &mut DetHarness,
    counters: &PipelineCounters,
    cancel: &CancelToken,
    notify: &dyn Fn(&str),
) -> (Value, MultiRunOutcome) {
    let doc = DocumentBuilder::new().title(SERVICE_DOC_TITLE).build();
    let plan = EventPlan::new();
    let hooks = RunHooks::with_cancel(cancel.clone());
    let n = req.seeds.len();
    let results: Vec<Result<AnalysisOutcome, RunFailure>> = req
        .seeds
        .iter()
        .enumerate()
        .map(|(i, &seed)| {
            if cancel.is_cancelled() {
                return Err(RunFailure::Cancelled { seed });
            }
            counters.analyses.fetch_add(1, Ordering::Relaxed);
            let cfg = AnalysisConfig {
                seed,
                ..req.cfg.clone()
            };
            let r = supervised_analyze_dom(harness, cfg, doc.clone(), &plan, &hooks);
            notify(&format!("seed {}/{n} done", i + 1));
            r
        })
        .collect();
    let multi = MultiRunOutcome::combine(results, req.cfg.max_facts);

    let num = |n: u64| Value::Num(n as f64);
    let run_statuses: Vec<Value> = multi
        .runs
        .iter()
        .map(|r| Value::Str(format!("{:?}", r.status)))
        .collect();
    // Wall-clock-dependent or externally-cancelled outcomes poison
    // cacheability (see module docs).
    let impure = multi.runs.iter().any(|r| {
        matches!(
            r.status,
            determinacy::AnalysisStatus::Deadline | determinacy::AnalysisStatus::Cancelled
        )
    });
    let clean = multi.failures.is_empty() && !impure;
    let failures: Vec<Value> = multi
        .failures
        .iter()
        .map(|f| {
            Value::Object(vec![
                ("kind".to_owned(), Value::Str(f.kind().to_owned())),
                ("seed".to_owned(), num(f.seed())),
                ("message".to_owned(), Value::Str(f.to_string())),
            ])
        })
        .collect();
    let fact_rows: Value = serde_json::from_str(&export_json(
        &multi.facts,
        &harness.program,
        &harness.source,
        &multi.ctxs,
    ))
    .expect("fact export re-parses");
    let injected = injectable_facts(&multi.facts, &mut harness.program);
    let pairs = InjectablePairs::from_facts(&injected, &harness.program);

    let art = Value::Object(vec![
        ("clean".to_owned(), Value::Bool(clean)),
        (
            "seeds".to_owned(),
            Value::Array(req.seeds.iter().map(|&s| num(s)).collect()),
        ),
        ("run_statuses".to_owned(), Value::Array(run_statuses)),
        ("failures".to_owned(), Value::Array(failures)),
        ("facts".to_owned(), num(multi.facts.len() as u64)),
        (
            "determinate".to_owned(),
            num(multi.facts.det_count() as u64),
        ),
        ("conflicts".to_owned(), num(multi.conflicts)),
        ("fact_rows".to_owned(), fact_rows),
        ("pairs".to_owned(), pairs_to_value(&pairs)),
    ]);
    (art, multi)
}

fn pairs_to_value(pairs: &InjectablePairs) -> Value {
    Value::Object(vec![
        (
            "prop_keys".to_owned(),
            Value::Array(
                pairs
                    .prop_keys
                    .iter()
                    .map(|(site, key)| {
                        Value::Array(vec![Value::Num(f64::from(*site)), Value::Str(key.clone())])
                    })
                    .collect(),
            ),
        ),
        (
            "callees".to_owned(),
            Value::Array(
                pairs
                    .callees
                    .iter()
                    .map(|(site, func)| {
                        Value::Array(vec![
                            Value::Num(f64::from(*site)),
                            Value::Num(f64::from(*func)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn pairs_from_value(v: &Value) -> InjectablePairs {
    let tuples = |field: &str| -> Vec<(u32, Value)> {
        v.get(field)
            .and_then(Value::as_array)
            .map(|rows| {
                rows.iter()
                    .filter_map(|row| {
                        let row = row.as_array()?;
                        let site = row.first()?.as_f64()? as u32;
                        Some((site, row.get(1)?.clone()))
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    InjectablePairs {
        prop_keys: tuples("prop_keys")
            .into_iter()
            .filter_map(|(site, v)| Some((site, v.as_str()?.to_owned())))
            .collect(),
        callees: tuples("callees")
            .into_iter()
            .filter_map(|(site, v)| Some((site, v.as_f64()? as u32)))
            .collect(),
    }
}

/// Replays the determinate regions on the concrete interpreter and
/// distills the portable shortcut summaries into the summary artifact.
/// The replay is deterministic (panic-isolated, step-budgeted, no wall
/// clock), so the artifact is a pure function of the facts inputs its
/// key chains.
fn run_summary_stage(
    req: &StageRequest,
    multi: &MultiRunOutcome,
    harness: &mut DetHarness,
    counters: &PipelineCounters,
) -> Value {
    let doc = DocumentBuilder::new().title(SERVICE_DOC_TITLE).build();
    let plan = EventPlan::new();
    // The replay seed is immaterial for determinate regions (that is
    // what determinacy means), but pin the fan-out's first seed so the
    // stage is a closed function of its key inputs.
    let cfg = AnalysisConfig {
        seed: req.seeds.first().copied().unwrap_or_default(),
        ..req.cfg.clone()
    };
    counters.summary_replays.fetch_add(1, Ordering::Relaxed);
    let out = determinacy::shortcut_summaries(
        &req.src,
        &doc,
        &plan,
        &cfg,
        &multi.facts,
        &mut harness.program,
    );
    let portable = determinacy::PortableSummaries::from_summaries(&out.summaries, &harness.program);
    let num = |n: usize| Value::Num(n as f64);
    Value::Object(vec![
        ("candidates".to_owned(), num(out.candidates)),
        ("regions".to_owned(), num(portable.len())),
        ("tuples".to_owned(), num(portable.tuple_count())),
        ("degraded".to_owned(), Value::Bool(out.degraded)),
        ("summaries".to_owned(), portable.to_value()),
    ])
}

/// Solves pointer analysis over the (already-parsed) program, optionally
/// rehydrating the cached injectable pairs and shortcut summaries into
/// solver inputs.
fn run_pta_stage(
    req: &StageRequest,
    facts_art: &Value,
    summary_art: Option<&Value>,
    harness: &mut DetHarness,
    counters: &PipelineCounters,
) -> Value {
    let budget = req.pta_budget.expect("pta stage only runs when requested");
    let facts = if req.inject {
        let pairs = facts_art
            .get("pairs")
            .map(pairs_from_value)
            .unwrap_or_default();
        Some(pairs.into_facts(&mut harness.program))
    } else {
        None
    };
    let injected_count = facts.as_ref().map_or(0, mujs_pta::InjectedFacts::len);
    // A degraded or malformed summary artifact decodes to no regions:
    // the solver then analyzes every region ordinarily, which is the
    // sound fallback by construction.
    let shortcuts = summary_art
        .and_then(|a| a.get("summaries"))
        .and_then(determinacy::PortableSummaries::from_value)
        .map(|p| Arc::new(p.into_summaries(&mut harness.program)));
    let cfg = PtaConfig {
        budget,
        facts,
        shortcuts,
        threads: req.pta_threads.max(1),
        shards: effective_shards(req),
        ..PtaConfig::default()
    };
    counters.pta_solves.fetch_add(1, Ordering::Relaxed);
    let result = mujs_pta::solve(&harness.program, &cfg);
    counters
        .pta_propagations
        .fetch_add(result.stats.propagations, Ordering::Relaxed);
    pta_artifact(
        &result,
        &harness.program,
        budget,
        req.inject,
        injected_count,
        None,
        req.shortcuts,
    )
}

/// The request's shard count, defaulting to the solver's own when unset.
fn effective_shards(req: &StageRequest) -> usize {
    if req.pta_shards == 0 {
        PtaConfig::default().shards
    } else {
        req.pta_shards
    }
}

/// Specializes the program against the live fact graphs (context depth
/// bound `depth`) and solves pointer analysis over the residual program.
fn run_spec_pta_stage(
    req: &StageRequest,
    depth: usize,
    mut multi: MultiRunOutcome,
    harness: &mut DetHarness,
    counters: &PipelineCounters,
) -> Value {
    let budget = req.pta_budget.expect("pta stage only runs when requested");
    let spec_cfg = mujs_specialize::SpecConfig {
        max_context_depth: depth,
        ..Default::default()
    };
    let s = mujs_specialize::specialize(&harness.program, &multi.facts, &mut multi.ctxs, &spec_cfg);
    let cfg = PtaConfig {
        budget,
        threads: req.pta_threads.max(1),
        shards: effective_shards(req),
        ..PtaConfig::default()
    };
    counters.pta_solves.fetch_add(1, Ordering::Relaxed);
    let result = mujs_pta::solve(&s.program, &cfg);
    counters
        .pta_propagations
        .fetch_add(result.stats.propagations, Ordering::Relaxed);
    pta_artifact(&result, &s.program, budget, false, 0, Some(depth), false)
}

/// Renders the PTA artifact shared by the baseline/injecting and the
/// specializing stage bodies. The `spec_depth` and shortcut fields
/// appear only when set, so depth-less shortcut-less artifacts keep
/// their historical bytes.
#[allow(clippy::too_many_arguments)]
fn pta_artifact(
    result: &mujs_pta::PtaResult,
    program: &mujs_ir::Program,
    budget: u64,
    inject: bool,
    injected_count: usize,
    spec_depth: Option<usize>,
    shortcuts: bool,
) -> Value {
    let p = result.precision(program);
    let num = |n: f64| Value::Num(n);
    let mut fields = vec![
        (
            "status".to_owned(),
            Value::Str(
                match result.status {
                    PtaStatus::Completed => "completed",
                    PtaStatus::BudgetExceeded => "budget exceeded",
                }
                .to_owned(),
            ),
        ),
        ("budget".to_owned(), num(budget as f64)),
        ("inject".to_owned(), Value::Bool(inject)),
        ("injected".to_owned(), num(injected_count as f64)),
        (
            "propagations".to_owned(),
            num(result.stats.propagations as f64),
        ),
        ("call_sites".to_owned(), num(p.call_sites as f64)),
        ("poly_sites".to_owned(), num(p.poly_sites as f64)),
        ("avg_targets".to_owned(), num(p.avg_targets)),
        ("avg_points_to".to_owned(), num(p.avg_points_to)),
        ("max_points_to".to_owned(), num(p.max_points_to as f64)),
        ("reachable_funcs".to_owned(), num(p.reachable_funcs as f64)),
    ];
    if let Some(depth) = spec_depth {
        fields.push(("spec_depth".to_owned(), num(depth as f64)));
    }
    if shortcuts {
        fields.push((
            "shortcut_regions".to_owned(),
            num(result.stats.shortcut_regions as f64),
        ));
        fields.push((
            "shortcut_tuples".to_owned(),
            num(result.stats.shortcut_tuples as f64),
        ));
    }
    Value::Object(fields)
}

/// Renders the client-facing report row from artifacts alone. Cold and
/// warm paths both come through here with byte-equal artifacts, which is
/// what makes their responses byte-identical.
#[allow(clippy::too_many_arguments)]
fn render_report(
    name: &str,
    status: &str,
    facts_art: Option<&Value>,
    summary_art: Option<&Value>,
    pta_art: Option<&Value>,
    include_facts: bool,
    keys: &StageKeys,
) -> Value {
    let pick = |field: &str, empty: Value| -> Value {
        facts_art
            .and_then(|a| a.get(field))
            .cloned()
            .unwrap_or(empty)
    };
    let fact_rows = if include_facts {
        pick("fact_rows", Value::Null)
    } else {
        Value::Null
    };
    let mut fields = vec![
        ("name".to_owned(), Value::Str(name.to_owned())),
        ("status".to_owned(), Value::Str(status.to_owned())),
        ("seeds".to_owned(), pick("seeds", Value::Array(Vec::new()))),
        (
            "run_statuses".to_owned(),
            pick("run_statuses", Value::Array(Vec::new())),
        ),
        (
            "failures".to_owned(),
            pick("failures", Value::Array(Vec::new())),
        ),
        ("facts".to_owned(), pick("facts", Value::Num(0.0))),
        (
            "determinate".to_owned(),
            pick("determinate", Value::Num(0.0)),
        ),
        ("conflicts".to_owned(), pick("conflicts", Value::Num(0.0))),
        ("fact_rows".to_owned(), fact_rows),
    ];
    // Shortcut mode surfaces the summary counts (but not the — possibly
    // large — summary tuples themselves); absent otherwise, keeping
    // shortcut-less rows byte-identical to earlier service versions.
    if let Some(s) = summary_art {
        let count = |field: &str| s.get(field).cloned().unwrap_or(Value::Num(0.0));
        fields.push((
            "summary".to_owned(),
            Value::Object(vec![
                ("candidates".to_owned(), count("candidates")),
                ("regions".to_owned(), count("regions")),
                ("tuples".to_owned(), count("tuples")),
                (
                    "degraded".to_owned(),
                    s.get("degraded").cloned().unwrap_or(Value::Bool(false)),
                ),
            ]),
        ));
    }
    fields.push(("pta".to_owned(), pta_art.cloned().unwrap_or(Value::Null)));
    fields.push(("stage_keys".to_owned(), keys.to_value()));
    Value::Object(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(src: &str) -> StageRequest {
        StageRequest {
            src: src.to_owned(),
            cfg: AnalysisConfig::default(),
            seeds: vec![AnalysisConfig::default().seed],
            pta_budget: None,
            inject: false,
            spec_depth: None,
            shortcuts: false,
            pta_threads: 1,
            pta_shards: 0,
        }
    }

    #[test]
    fn keys_chain_upstream_stages() {
        let base = req("var x = 1;");
        let k = StageKeys::compute(&base);
        // Source change moves every key.
        let k2 = StageKeys::compute(&req("var x = 2;"));
        assert_ne!(k.parse, k2.parse);
        assert_ne!(k.facts, k2.facts);
        // Config change moves facts but not parse.
        let mut cfg_change = base.clone();
        cfg_change.cfg.max_facts = 123;
        let k3 = StageKeys::compute(&cfg_change);
        assert_eq!(k.parse, k3.parse);
        assert_ne!(k.facts, k3.facts);
        // Seed change moves facts.
        let mut seed_change = base.clone();
        seed_change.seeds = vec![99];
        assert_ne!(k.facts, StageKeys::compute(&seed_change).facts);
    }

    #[test]
    fn baseline_pta_key_survives_config_changes() {
        let mut a = req("f();");
        a.pta_budget = Some(1000);
        let mut b = a.clone();
        b.cfg.max_facts = 123;
        let (ka, kb) = (StageKeys::compute(&a), StageKeys::compute(&b));
        assert_eq!(ka.pta, kb.pta, "baseline solve ignores analysis config");
        // Injecting solves chain the facts key, so the config matters.
        let mut ia = a.clone();
        ia.inject = true;
        let mut ib = b.clone();
        ib.inject = true;
        assert_ne!(StageKeys::compute(&ia).pta, StageKeys::compute(&ib).pta);
        assert_ne!(StageKeys::compute(&ia).pta, ka.pta);
        // Budget changes always matter.
        let mut bud = a.clone();
        bud.pta_budget = Some(2000);
        assert_ne!(StageKeys::compute(&bud).pta, ka.pta);
    }

    #[test]
    fn spec_depth_chains_the_facts_key_and_moves_the_pta_key() {
        let mut base = req("f();");
        base.pta_budget = Some(1000);
        let kb = StageKeys::compute(&base);
        let mut spec = base.clone();
        spec.spec_depth = Some(4);
        let ks = StageKeys::compute(&spec);
        // The depth fold moves the PTA key but no upstream key.
        assert_eq!(kb.parse, ks.parse);
        assert_eq!(kb.facts, ks.facts);
        assert_ne!(kb.pta, ks.pta);
        // Different depths are different artifacts.
        let mut deeper = spec.clone();
        deeper.spec_depth = Some(5);
        assert_ne!(ks.pta, StageKeys::compute(&deeper).pta);
        // A specialized solve consumes the facts, so (unlike the
        // baseline) a config change must move its key.
        let mut cfg_change = spec.clone();
        cfg_change.cfg.max_facts = 123;
        assert_ne!(ks.pta, StageKeys::compute(&cfg_change).pta);
        // And it remains thread-count independent.
        let mut threaded = spec.clone();
        threaded.pta_threads = 8;
        assert_eq!(ks, StageKeys::compute(&threaded));
    }

    #[test]
    fn spec_pta_requests_execute_and_cache() {
        let cache = StageCache::new(crate::cache::CacheConfig::default());
        let counters = PipelineCounters::default();
        let cancel = CancelToken::new();
        let mut r = req("function f(o) { return o.p; } f({ p: 1 });");
        r.pta_budget = Some(100_000);
        r.spec_depth = Some(2);
        let run = |name: &str| {
            execute(
                &r,
                "completed",
                false,
                name,
                &cache,
                &counters,
                &cancel,
                &|_| {},
            )
        };
        let e1 = run("spec-cold");
        let pta = e1.report.get("pta").expect("pta row");
        assert_eq!(pta.get("spec_depth"), Some(&Value::Num(2.0)));
        assert_eq!(pta.get("inject"), Some(&Value::Bool(false)));
        assert_eq!(e1.cached.pta, Some(false));
        // Warm rerun: byte-identical row, no new solves or analyses.
        let solves = counters.pta_solves.load(Ordering::Relaxed);
        let analyses = counters.analyses.load(Ordering::Relaxed);
        let e2 = run("spec-cold");
        assert_eq!(e2.cached.pta, Some(true));
        assert!(e2.cached.facts);
        assert_eq!(
            serde_json::to_string(&e1.report).unwrap(),
            serde_json::to_string(&e2.report).unwrap()
        );
        assert_eq!(counters.pta_solves.load(Ordering::Relaxed), solves);
        assert_eq!(counters.analyses.load(Ordering::Relaxed), analyses);
    }

    #[test]
    fn stage_keys_ignore_the_thread_count() {
        let mut a = req("f();");
        a.pta_budget = Some(1000);
        let mut b = a.clone();
        b.pta_threads = 8;
        assert_eq!(
            StageKeys::compute(&a),
            StageKeys::compute(&b),
            "threads is an execution knob, not a content input"
        );
    }

    #[test]
    fn stage_keys_ignore_the_shard_count() {
        // Like threads, shards only partition the solver's work: the
        // fixpoint is identical for every count, so the key must be too
        // — in every mode, including shortcut mode.
        for shortcuts in [false, true] {
            let mut a = req("f();");
            a.pta_budget = Some(1000);
            a.inject = true;
            a.shortcuts = shortcuts;
            for shards in [16usize, 32, 64] {
                let mut b = a.clone();
                b.pta_shards = shards;
                assert_eq!(
                    StageKeys::compute(&a),
                    StageKeys::compute(&b),
                    "shards is an execution knob, not a content input"
                );
            }
        }
    }

    #[test]
    fn shortcutless_keys_match_the_pre_shortcut_scheme() {
        use determinacy::cachekey::KeyHasher;
        // A literal replica of the keying scheme as it stood before the
        // shortcut layer landed. Any byte drift for shortcut-less
        // requests would cold-start every deployed cache, so the scheme
        // is pinned here independently of `StageKeys::compute`.
        let legacy = |r: &StageRequest| {
            let cfg_json = serde_json::to_string(&r.cfg).unwrap();
            let parse = KeyHasher::new().str(LOWERING_VERSION).str(&r.src).finish();
            let mut fh = KeyHasher::new().str("facts").str(&parse).str(&cfg_json);
            for &s in &r.seeds {
                fh = fh.u64(s);
            }
            let facts = fh.finish();
            let pta = r.pta_budget.map(|b| {
                let upstream = if r.inject || r.spec_depth.is_some() {
                    &facts
                } else {
                    &parse
                };
                let mut h = KeyHasher::new()
                    .str("pta")
                    .str(upstream)
                    .u64(b)
                    .u64(u64::from(r.inject));
                if let Some(d) = r.spec_depth {
                    h = h.str("spec").u64(d as u64);
                }
                h.finish()
            });
            (parse, facts, pta)
        };
        let mut baseline = req("f();");
        baseline.pta_budget = Some(1000);
        let mut inject = baseline.clone();
        inject.inject = true;
        let mut spec = baseline.clone();
        spec.spec_depth = Some(3);
        let facts_only = req("f();");
        for r in [&baseline, &inject, &spec, &facts_only] {
            let k = StageKeys::compute(r);
            let (parse, facts, pta) = legacy(r);
            assert_eq!(k.parse, parse);
            assert_eq!(k.facts, facts);
            assert_eq!(k.pta, pta);
            assert_eq!(k.summary, None, "no summary key without shortcut mode");
        }
    }

    #[test]
    fn shortcut_mode_adds_a_summary_key_and_moves_only_the_pta_key() {
        use determinacy::cachekey::KeyHasher;
        let mut base = req("f();");
        base.pta_budget = Some(1000);
        base.inject = true;
        let kb = StageKeys::compute(&base);
        assert!(kb.summary.is_none());
        let mut sc = base.clone();
        sc.shortcuts = true;
        let ks = StageKeys::compute(&sc);
        assert_eq!(kb.parse, ks.parse);
        assert_eq!(kb.facts, ks.facts);
        assert_ne!(kb.pta, ks.pta, "summaries change the solve's inputs");
        let skey = ks.summary.clone().expect("shortcut mode has a summary key");
        assert_eq!(
            skey,
            KeyHasher::new().str("shortcut").str(&ks.facts).finish(),
            "summary key chains the facts key alone"
        );
        // Shortcut mode makes even a non-injecting solve consume the
        // facts, so its pta key must move with the analysis config.
        let mut pure = sc.clone();
        pure.inject = false;
        let kp = StageKeys::compute(&pure);
        let mut pure_cfg = pure.clone();
        pure_cfg.cfg.max_facts = 123;
        assert_ne!(kp.pta, StageKeys::compute(&pure_cfg).pta);
        // No PTA stage, nothing to shortcut: no summary key either.
        let mut no_pta = sc.clone();
        no_pta.pta_budget = None;
        assert!(StageKeys::compute(&no_pta).summary.is_none());
        // The report's stage_keys object grows a `summary` entry only in
        // shortcut mode; shortcut-less rows keep their historical bytes.
        assert!(kb.to_value().get("summary").is_none());
        assert_eq!(ks.to_value().get("summary"), Some(&Value::Str(skey)));
    }

    #[test]
    fn shortcut_requests_execute_and_cache() {
        let cache = StageCache::new(crate::cache::CacheConfig::default());
        let counters = PipelineCounters::default();
        let cancel = CancelToken::new();
        let mut r = req("function mk(v) { var o = {}; o.x = v; return o; }\n\
                         var a = mk({}); var b = mk({});");
        r.pta_budget = Some(100_000);
        r.inject = true;
        r.shortcuts = true;
        let run = |name: &str| {
            execute(
                &r,
                "completed",
                false,
                name,
                &cache,
                &counters,
                &cancel,
                &|_| {},
            )
        };
        let e1 = run("shortcut-cold");
        assert_eq!(e1.cached.summary, Some(false));
        assert_eq!(e1.cached.pta, Some(false));
        let summary = e1.report.get("summary").expect("summary row");
        assert_eq!(summary.get("degraded"), Some(&Value::Bool(false)));
        assert!(summary.get("regions").and_then(Value::as_f64).unwrap() >= 1.0);
        let pta = e1.report.get("pta").expect("pta row");
        assert!(
            pta.get("shortcut_regions").and_then(Value::as_f64).unwrap() >= 1.0,
            "the solver consumed the summaries"
        );
        assert!(pta.get("shortcut_tuples").and_then(Value::as_f64).unwrap() >= 1.0);
        // Warm rerun: byte-identical row, no new replays/solves/analyses.
        let replays = counters.summary_replays.load(Ordering::Relaxed);
        let solves = counters.pta_solves.load(Ordering::Relaxed);
        let analyses = counters.analyses.load(Ordering::Relaxed);
        assert_eq!(replays, 1);
        let e2 = run("shortcut-cold");
        assert_eq!(e2.cached.summary, Some(true));
        assert_eq!(e2.cached.pta, Some(true));
        assert!(e2.cached.facts);
        assert_eq!(
            serde_json::to_string(&e1.report).unwrap(),
            serde_json::to_string(&e2.report).unwrap()
        );
        assert_eq!(counters.summary_replays.load(Ordering::Relaxed), replays);
        assert_eq!(counters.pta_solves.load(Ordering::Relaxed), solves);
        assert_eq!(counters.analyses.load(Ordering::Relaxed), analyses);
    }

    #[test]
    fn pairs_round_trip_through_json() {
        let pairs = InjectablePairs {
            prop_keys: vec![(3, "length".to_owned()), (9, "f".to_owned())],
            callees: vec![(4, 1), (7, 0)],
        };
        let back = pairs_from_value(&pairs_to_value(&pairs));
        assert_eq!(pairs, back);
        assert_eq!(pairs_from_value(&Value::Null), InjectablePairs::default());
    }

    #[test]
    fn syntax_errors_are_reported_and_cached() {
        let cache = StageCache::new(crate::cache::CacheConfig::default());
        let counters = PipelineCounters::default();
        let cancel = CancelToken::new();
        let bad = req("var = ;");
        let e1 = execute(
            &bad,
            "completed",
            false,
            "bad",
            &cache,
            &counters,
            &cancel,
            &|_| {},
        );
        let status = e1.report.get("status").and_then(Value::as_str).unwrap();
        assert!(status.starts_with("syntax error:"), "got {status}");
        assert!(!e1.cached.parse);
        // Second request hits the cached (negative) parse artifact.
        let e2 = execute(
            &bad,
            "completed",
            false,
            "bad",
            &cache,
            &counters,
            &cancel,
            &|_| {},
        );
        assert!(e2.cached.parse);
        assert_eq!(
            serde_json::to_string(&e1.report).unwrap(),
            serde_json::to_string(&e2.report).unwrap()
        );
        assert_eq!(counters.parses.load(Ordering::Relaxed), 1);
    }
}
