//! Deterministic retry policy for campaign jobs.
//!
//! A 10,000-job campaign cannot afford to lose a row to one transient
//! fault, and it equally cannot afford retry storms that make batch
//! output depend on wall-clock luck. The policy here is therefore fully
//! deterministic: how often a job may run is a fixed `max_attempts`, and
//! *when* it reruns follows a backoff schedule derived from a seed and
//! the job's submission index — the same `(seed, job, attempt)` triple
//! always sleeps the same number of milliseconds, so a failing campaign
//! replays identically.
//!
//! What counts as retryable is decided by the *classifier* the batch
//! layer installs (see [`Disposition`]): engine panics and injected
//! allocation faults are transient, while deterministic stops — deadline,
//! memory budget, parse errors, cancellation — would only repeat, so they
//! are final on the first occurrence.

/// How the pool should treat a job's finished attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Disposition {
    /// The result stands; record it.
    Keep,
    /// The result contains a transient failure; rerun the job if the
    /// policy has attempts left. The string names the failure for the
    /// [`crate::JobEvent::Retrying`] progress line.
    Retry(String),
    /// The result contains a permanent failure (wrong input, exhausted
    /// budget): never rerun, and under `fail_fast` cancel the rest of the
    /// batch. The string names the failure.
    Fatal(String),
}

/// Per-job retry budget and deterministic backoff schedule.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts a job may use (clamped to at least 1). `1` means
    /// no retries — the pre-campaign behavior.
    pub max_attempts: u32,
    /// Base backoff in milliseconds; attempt `n` waits roughly
    /// `base * 2^(n-1)` plus a seed-derived jitter below `base`. `0`
    /// disables sleeping entirely (tests).
    pub backoff_base_ms: u64,
    /// Seed for the deterministic jitter.
    pub seed: u64,
    /// Cancel the whole batch on the first permanent
    /// ([`Disposition::Fatal`], wedged, or retry-exhausted) failure.
    pub fail_fast: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_base_ms: 0,
            seed: 0xD5EA_51DE,
            fail_fast: false,
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_attempts` total attempts and no backoff.
    pub fn attempts(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..Default::default()
        }
    }

    /// Whether a job that has used `attempt` attempts (1-indexed) may run
    /// again.
    pub fn may_retry(&self, attempt: u32) -> bool {
        attempt < self.max_attempts.max(1)
    }

    /// The deterministic backoff before attempt `attempt + 1` of `job`:
    /// exponential in the attempt number with a seed-derived jitter, and
    /// exactly reproducible for a given policy.
    pub fn backoff_ms(&self, job: usize, attempt: u32) -> u64 {
        if self.backoff_base_ms == 0 {
            return 0;
        }
        let exp = self
            .backoff_base_ms
            .saturating_mul(1u64 << (attempt.saturating_sub(1)).min(16));
        let jitter = splitmix64(
            self.seed ^ (job as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(attempt),
        ) % self.backoff_base_ms;
        exp.saturating_add(jitter)
    }
}

/// SplitMix64 — the standard 64-bit mixing function; deterministic,
/// allocation-free, and good enough to decorrelate `(seed, job, attempt)`
/// triples for jitter and fault scheduling.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_monotone_in_expectation() {
        let p = RetryPolicy {
            max_attempts: 4,
            backoff_base_ms: 100,
            seed: 42,
            fail_fast: false,
        };
        for job in 0..8 {
            for attempt in 1..4 {
                assert_eq!(p.backoff_ms(job, attempt), p.backoff_ms(job, attempt));
                // Exponential floor: attempt n waits at least base * 2^(n-1).
                assert!(p.backoff_ms(job, attempt) >= 100 << (attempt - 1));
                assert!(p.backoff_ms(job, attempt) < (100 << (attempt - 1)) + 100);
            }
        }
    }

    #[test]
    fn zero_base_never_sleeps() {
        let p = RetryPolicy::attempts(5);
        assert_eq!(p.backoff_ms(3, 2), 0);
    }

    #[test]
    fn attempt_budget_is_clamped() {
        let p = RetryPolicy::attempts(0);
        assert!(!p.may_retry(1));
        let p = RetryPolicy::attempts(3);
        assert!(p.may_retry(1) && p.may_retry(2) && !p.may_retry(3));
    }
}
