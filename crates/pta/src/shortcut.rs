//! Concrete-execution fast-forward summaries ("dynamic shortcuts").
//!
//! A [`RegionSummary`] is the distilled points-to effect of running one
//! determinate region — a function whose dynamic keys, callees, and
//! branches the determinacy analysis proved determinate in every recorded
//! context — on the sealed concrete interpreter. When the solver's
//! on-the-fly call graph first reaches a summarized function, it applies
//! the summary as a batch of budget-accounted insertions (each carrying a
//! [`BlameCause::Shortcut`][crate::BlameCause::Shortcut] tag) instead of
//! generating and solving the region's constraints.
//!
//! The summary producer lives in the determinacy core (it needs the
//! interpreter and the fact database); this module only defines the
//! solver-facing shape. Soundness rests on the producer: a summary must
//! cover every heap effect the region's constraints would have produced
//! for the recorded contexts, and regions whose replay fails (panic,
//! budget, truncation) must simply be left out — the solver then
//! analyzes them ordinarily.

use crate::nodes::{AbsObj, Node};
use mujs_ir::{FuncId, StmtId};
use std::collections::BTreeMap;

/// The distilled effect of one determinate region.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegionSummary {
    /// Points-to tuples to insert when the region is first reached,
    /// sorted ascending — the application order is part of the
    /// deterministic budget semantics (exact-budget truncation must not
    /// depend on producer iteration order).
    pub tuples: Vec<(Node, AbsObj)>,
    /// Call-graph fragment: `(site, callee)` edges the concrete run
    /// resolved inside the region, sorted ascending. Callees are
    /// enqueued for ordinary constraint generation (a summary covers
    /// only its own region's body).
    pub calls: Vec<(StmtId, FuncId)>,
}

impl RegionSummary {
    /// Whether the summary carries no effect at all.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty() && self.calls.is_empty()
    }
}

/// Every summarized region of one program, keyed by the region's
/// function. Deterministically ordered so exports and budget accounting
/// are reproducible.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShortcutSummaries {
    /// Region function → its summary.
    pub regions: BTreeMap<FuncId, RegionSummary>,
}

impl ShortcutSummaries {
    /// Number of summarized regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether no region was summarized.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Total points-to tuples across all summaries.
    pub fn tuple_count(&self) -> usize {
        self.regions.values().map(|r| r.tuples.len()).sum()
    }
}
