//! Strongly connected components of the copy-edge graph.
//!
//! The solver periodically runs an iterative Tarjan pass over its
//! canonicalized subset edges and union-find-merges every multi-member
//! component it finds: nodes in a copy cycle provably converge to the
//! same points-to set, so propagating around the cycle is pure overhead
//! (the `jQuery.fn = jQuery.prototype` pattern builds exactly such
//! cycles). Only the detection lives here; the merging is the solver's.

/// Returns the strongly connected components of `adj` (vertices are
/// `0..adj.len()`, `adj[v]` the successors of `v`) that have more than
/// one member. Components and their members come out in deterministic
/// order: members ascending, components ordered by their smallest
/// member. Self-loops and duplicate edges are tolerated.
pub fn multi_member_sccs(adj: &[Vec<u32>]) -> Vec<Vec<u32>> {
    let n = adj.len();
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut frames: Vec<(u32, usize)> = Vec::new();
    let mut next = 0u32;
    let mut out: Vec<Vec<u32>> = Vec::new();

    for start in 0..n as u32 {
        if index[start as usize] != UNVISITED {
            continue;
        }
        index[start as usize] = next;
        low[start as usize] = next;
        next += 1;
        stack.push(start);
        on_stack[start as usize] = true;
        frames.push((start, 0));
        while let Some(&(v, ci)) = frames.last() {
            if ci < adj[v as usize].len() {
                frames.last_mut().expect("frame just read").1 += 1;
                let w = adj[v as usize][ci];
                if index[w as usize] == UNVISITED {
                    index[w as usize] = next;
                    low[w as usize] = next;
                    next += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    frames.push((w, 0));
                } else if on_stack[w as usize] {
                    low[v as usize] = low[v as usize].min(index[w as usize]);
                }
            } else {
                frames.pop();
                if let Some(&(p, _)) = frames.last() {
                    low[p as usize] = low[p as usize].min(low[v as usize]);
                }
                if low[v as usize] == index[v as usize] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("root still on stack");
                        on_stack[w as usize] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    if comp.len() > 1 {
                        comp.sort_unstable();
                        out.push(comp);
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acyclic_graph_has_no_components() {
        let adj = vec![vec![1, 2], vec![2], vec![]];
        assert!(multi_member_sccs(&adj).is_empty());
    }

    #[test]
    fn self_loops_are_not_components() {
        let adj = vec![vec![0], vec![1, 0]];
        assert!(multi_member_sccs(&adj).is_empty());
    }

    #[test]
    fn finds_simple_cycle() {
        // 0 → 1 → 2 → 0, plus a tail 2 → 3.
        let adj = vec![vec![1], vec![2], vec![0, 3], vec![]];
        assert_eq!(multi_member_sccs(&adj), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn finds_multiple_components_deterministically() {
        // Two cycles {0,1} and {3,4}, bridged 1 → 3; 2 and 5 on the side.
        let adj = vec![vec![1], vec![0, 3], vec![0], vec![4], vec![3, 5], vec![]];
        assert_eq!(multi_member_sccs(&adj), vec![vec![0, 1], vec![3, 4]]);
    }

    #[test]
    fn nested_cycles_collapse_to_one_component() {
        // 0↔1 and 1↔2 share node 1 → one component {0,1,2}; duplicate
        // edges tolerated.
        let adj = vec![vec![1, 1], vec![0, 2], vec![1]];
        assert_eq!(multi_member_sccs(&adj), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // A 100k-node cycle exercises the explicit-stack DFS.
        let n = 100_000u32;
        let adj: Vec<Vec<u32>> = (0..n).map(|v| vec![(v + 1) % n]).collect();
        let comps = multi_member_sccs(&adj);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), n as usize);
    }
}
