//! Admission control: a batch-wide memory budget that degrades gracefully
//! instead of failing on oversubscription.
//!
//! Manifest jobs may declare a heap-cell budget (`mem_cells`). When the
//! operator also sets a *batch-wide* budget (`detjobs --mem-budget`), the
//! controller keeps the sum of in-flight declared cells under it:
//!
//! * A job whose declaration fits waits (blocking its worker) until
//!   enough in-flight cells are released, then runs at **full** budget.
//!   Waiting changes wall-clock order only — never the result — so the
//!   report stays byte-identical for any worker count.
//! * A job that declares **more than the whole batch budget** can never
//!   fit; instead of failing it is admitted immediately at the batch
//!   budget, and the batch records it as degraded. This decision depends
//!   only on the manifest and the budget — two static inputs — so it too
//!   is scheduling-independent.
//! * Jobs with no declaration reserve nothing (the per-run machine still
//!   enforces whatever `mem_cell_budget` their own config carries).

use std::sync::{Condvar, Mutex};

/// What the controller granted a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admission {
    /// Cells reserved on the job's behalf (release exactly this much).
    pub reserved: u64,
    /// The cell budget the job must run under; `None` leaves the job's
    /// own configured budget untouched.
    pub granted: Option<u64>,
    /// Whether the grant is below the job's declaration.
    pub degraded: bool,
}

/// A batch-wide declared-cell budget with blocking admission.
#[derive(Debug)]
pub struct AdmissionController {
    budget: u64,
    in_flight: Mutex<u64>,
    freed: Condvar,
}

impl AdmissionController {
    /// A controller over `budget` total declared cells (clamped to at
    /// least 1 so a zero budget degrades everything rather than dividing
    /// the batch by zero).
    pub fn new(budget: u64) -> Self {
        AdmissionController {
            budget: budget.max(1),
            in_flight: Mutex::new(0),
            freed: Condvar::new(),
        }
    }

    /// Admits a job declaring `requested` cells (`None` = no
    /// declaration), blocking until the reservation fits. See the module
    /// docs for the degradation rule.
    pub fn admit(&self, requested: Option<u64>) -> Admission {
        let Some(req) = requested.filter(|&r| r > 0) else {
            return Admission {
                reserved: 0,
                granted: None,
                degraded: false,
            };
        };
        if req > self.budget {
            // Static decision: can never fit, run degraded at the batch
            // budget instead of failing. No reservation — a degraded job
            // is already capped at the whole budget.
            return Admission {
                reserved: 0,
                granted: Some(self.budget),
                degraded: true,
            };
        }
        let mut in_flight = self.in_flight.lock().unwrap();
        while *in_flight + req > self.budget {
            in_flight = self.freed.wait(in_flight).unwrap();
        }
        *in_flight += req;
        Admission {
            reserved: req,
            granted: Some(req),
            degraded: false,
        }
    }

    /// Returns an admission's reservation to the pool, waking waiters.
    pub fn release(&self, admission: Admission) {
        if admission.reserved == 0 {
            return;
        }
        let mut in_flight = self.in_flight.lock().unwrap();
        *in_flight = in_flight.saturating_sub(admission.reserved);
        drop(in_flight);
        self.freed.notify_all();
    }

    /// The batch-wide budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }
}

/// Heap cells of admission budget assumed per extra solver thread when
/// defaulting PTA parallelism: each thread's shard working set (delta
/// sets, message buffers, insertion logs) is small next to the shared
/// constraint graph, but a host squeezed for memory gains little from
/// parallel solves fighting the admission queue, so the default scales
/// down with the budget rather than pinning every core.
pub const CELLS_PER_PTA_THREAD: u64 = 250_000;

/// The default PTA solver thread count for a service or batch run: the
/// host's available parallelism, clamped by the admission memory budget
/// (one thread per [`CELLS_PER_PTA_THREAD`] declared cells, minimum 1).
/// `None` — no admission control — uses the full host parallelism.
///
/// Purely a performance default: the parallel solver is deterministic,
/// so any clamp (or operator override) yields identical results.
pub fn default_pta_threads(mem_budget_cells: Option<u64>) -> usize {
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    match mem_budget_cells {
        None => host,
        Some(cells) => {
            let by_mem = (cells / CELLS_PER_PTA_THREAD).max(1) as usize;
            host.min(by_mem)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn undeclared_jobs_pass_straight_through() {
        let c = AdmissionController::new(100);
        let a = c.admit(None);
        assert_eq!(a.reserved, 0);
        assert_eq!(a.granted, None);
        assert!(!a.degraded);
        c.release(a);
    }

    #[test]
    fn oversized_declarations_degrade_to_the_batch_budget() {
        let c = AdmissionController::new(100);
        let a = c.admit(Some(500));
        assert!(a.degraded);
        assert_eq!(a.granted, Some(100));
        assert_eq!(a.reserved, 0);
    }

    #[test]
    fn fitting_declarations_run_at_full_budget() {
        let c = AdmissionController::new(100);
        let a = c.admit(Some(60));
        assert!(!a.degraded);
        assert_eq!(a.granted, Some(60));
        assert_eq!(a.reserved, 60);
        c.release(a);
    }

    #[test]
    fn default_pta_threads_clamps_by_memory_budget() {
        let host = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(default_pta_threads(None), host);
        // A tiny budget forces sequential solves...
        assert_eq!(default_pta_threads(Some(1)), 1);
        // ...and a huge one defers to the host's parallelism.
        assert_eq!(default_pta_threads(Some(u64::MAX)), host);
    }

    #[test]
    fn admission_blocks_until_cells_free_up() {
        let c = Arc::new(AdmissionController::new(100));
        let first = c.admit(Some(80));
        let c2 = c.clone();
        let waiter = std::thread::spawn(move || {
            let a = c2.admit(Some(50)); // cannot fit beside 80
            c2.release(a);
            true
        });
        // Give the waiter time to block, then free the cells.
        std::thread::sleep(std::time::Duration::from_millis(30));
        c.release(first);
        assert!(waiter.join().unwrap());
    }
}
