//! Regenerates Table 1: pointer-analysis scalability on the jQuery-like
//! corpus under Baseline / Spec / Spec+DetDOM, with heap-flush counts.
//!
//! Run with `cargo run -p mujs-bench --bin table1 --release`.

use mujs_bench::{run_table1, Table1Row, TABLE1_PTA_BUDGET};

fn main() {
    let budget = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(TABLE1_PTA_BUDGET);
    println!("Table 1 reproduction — PTA budget {budget} propagations");
    println!("(✓ = completes within budget, ✗ = budget exceeded; parentheses: heap flushes of the dynamic analysis)");
    println!();
    println!(
        "{:<16} {:<12} {:<16} {:<16}   [PTA work: baseline / spec / detdom]",
        "jQuery-like", "Baseline", "Spec", "Spec+DetDOM"
    );
    let mut failed = false;
    for v in mujs_corpus::jquery_like::all_versions() {
        // A failing version (engine panic, parse error) degrades to one
        // reported row instead of aborting the whole table.
        let row = match run_table1(&v, budget) {
            Ok(row) => row,
            Err(e) => {
                println!("{:<16} {e}", v.version);
                failed = true;
                continue;
            }
        };
        println!(
            "{:<16} {:<12} {:<16} {:<16}   [{} / {} / {}]",
            row.version,
            Table1Row::cell(row.baseline_ok, None),
            Table1Row::cell(row.spec_ok, Some((row.spec_flushes, row.spec_capped))),
            Table1Row::cell(row.detdom_ok, Some((row.detdom_flushes, row.detdom_capped))),
            row.baseline_work,
            row.spec_work,
            row.detdom_work,
        );
    }
    println!();
    println!("Paper's Table 1 for reference:");
    println!("  1.0   ✗   ✓ (82)      ✓ (2)");
    println!("  1.1   ✗   ✗ (107)     ✓ (4)");
    println!("  1.2   ✓   ✓ (>1000)   ✓ (0)");
    println!("  1.3   ✗   ✗ (>1000)   ✗ (>1000)");
    if failed {
        std::process::exit(1);
    }
}
