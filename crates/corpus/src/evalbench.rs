//! The eval-elimination benchmark suite — a synthetic stand-in for the
//! Jensen et al. \[17\] programs used in §5.2.
//!
//! The paper reports category-level outcomes over 28 programs (4 not
//! runnable, 24 analyzed): 14 fully specialized by the plain analysis,
//! 20 under the DetDOM assumption, with the remaining failures broken
//! down as 1 genuinely indeterminate string, 4 uses not covered by the
//! dynamic run (2 of which DetDOM proves unreachable), 1 DOM-caused
//! indeterminacy at the eval itself, and 4 indeterminate loop bounds
//! (3 DOM-caused). Each benchmark below encodes one instance of its
//! category.

use mujs_dom::document::{Document, DocumentBuilder};
use mujs_dom::events::EventPlan;

/// Expected §5.2 outcome for one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expected {
    /// Every eval use specialized away.
    Eliminated,
    /// At least one eval survives because its string is indeterminate.
    IndeterminateString,
    /// At least one eval survives because the dynamic run never reached
    /// it (while the static analysis considers it reachable).
    NotCovered,
    /// At least one eval survives inside a loop without a determinate
    /// bound.
    LoopBound,
}

/// One benchmark program.
#[derive(Debug, Clone)]
pub struct EvalBenchmark {
    /// Name (used in the harness output).
    pub name: &'static str,
    /// The source.
    pub src: String,
    /// Whether the program can run in the harness (the paper excluded 4:
    /// 3 with missing code, 1 ZombieJS-incompatible).
    pub runnable: bool,
    /// Whether the program needs the DOM installed.
    pub needs_dom: bool,
    /// Expected outcome with the plain analysis.
    pub expected: Expected,
    /// Expected outcome under DetDOM.
    pub expected_detdom: Expected,
}

impl EvalBenchmark {
    fn new(
        name: &'static str,
        src: &str,
        needs_dom: bool,
        expected: Expected,
        expected_detdom: Expected,
    ) -> Self {
        EvalBenchmark {
            name,
            src: src.to_owned(),
            runnable: true,
            needs_dom,
            expected,
            expected_detdom,
        }
    }

    fn non_runnable(name: &'static str, src: &str) -> Self {
        EvalBenchmark {
            name,
            src: src.to_owned(),
            runnable: false,
            needs_dom: false,
            expected: Expected::NotCovered,
            expected_detdom: Expected::NotCovered,
        }
    }

    /// A default document for the DOM-dependent benchmarks.
    pub fn doc(&self) -> Document {
        DocumentBuilder::new()
            .title("evalbench")
            .element(
                "div",
                Some("cfg"),
                &[("data-mode", "fast"), ("data-n", "3")],
            )
            .element("button", Some("go"), &[])
            .build()
    }

    /// The (empty) event plan; handler-coverage benchmarks rely on the
    /// plan *not* clicking.
    pub fn plan(&self) -> EventPlan {
        EventPlan::new()
    }
}

/// `(name, source)` pairs for the 24 *runnable* benchmarks, in suite
/// order — batch-manifest generation for `mujs-jobs`. Sources only: batch
/// jobs supply a default document, so DOM-dependent benchmarks exercise
/// scheduling and determinism rather than the §5.2 elimination results.
pub fn named_sources() -> Vec<(String, String)> {
    all()
        .into_iter()
        .filter(|b| b.runnable)
        .map(|b| (format!("evalbench-{}", b.name), b.src))
        .collect()
}

/// All 28 benchmarks.
pub fn all() -> Vec<EvalBenchmark> {
    use Expected::*;
    // ---- 14 programs fully handled by the plain analysis ----------------
    let mut v = vec![EvalBenchmark::new(
        "const-string",
        r#"var r = eval("6 * 7"); console.log(r);"#,
        false,
        Eliminated,
        Eliminated,
    )];
    v.push(EvalBenchmark::new(
        "const-statement",
        r#"eval("var shared = 10;"); console.log(shared + 1);"#,
        false,
        Eliminated,
        Eliminated,
    ));
    v.push(EvalBenchmark::new(
        "const-function-def",
        r#"eval("function mkAdder(n) { return function(x) { return x + n; }; }");
var add2 = mkAdder(2);
console.log(add2(40));"#,
        false,
        Eliminated,
        Eliminated,
    ));
    v.push(EvalBenchmark::new(
        "concat-ivymap",
        // Figure 4, nearly verbatim — the case unevalizer cannot handle.
        r#"ivymap = window.ivymap || {};
ivymap["pc.sy.banner.tcck."] = function() { console.log("shown"); };
function showIvyViaJs(locationId) {
  var _f = undefined;
  var _fconv = "ivymap['" + locationId + "']";
  try {
    _f = eval(_fconv);
    if (_f != undefined) { _f(); }
  } catch (e) {}
}
showIvyViaJs('pc.sy.banner.tcck.');
showIvyViaJs('pc.sy.banner.duilian.');"#,
        false,
        Eliminated,
        Eliminated,
    ));
    v.push(EvalBenchmark::new(
        "concat-accessor",
        r#"var config = { widgetName: "chart" };
function load(kind) {
  return eval("config." + kind + "Name");
}
console.log(load("widget"));"#,
        false,
        Eliminated,
        Eliminated,
    ));
    v.push(EvalBenchmark::new(
        "forin-dispatch",
        // "Other cases involve for-in loops: if the set of properties to
        // iterate over is determinate, our analysis assumes the iteration
        // order is also determinate."
        r#"var handlers = { alpha: 1, beta: 2 };
var out = 0;
for (var k in handlers) {
  out += eval("handlers." + k);
}
console.log(out);"#,
        false,
        Eliminated,
        Eliminated,
    ));
    v.push(EvalBenchmark::new(
        "forin-setter",
        r#"var defaults = { speed: 5, color: "red" };
var target = {};
for (var key in defaults) {
  eval("target." + key + " = defaults." + key + ";");
}
console.log(target.speed, target.color);"#,
        false,
        Eliminated,
        Eliminated,
    ));
    v.push(EvalBenchmark::new(
        "config-builder",
        r#"var mode = "debug";
var code = "var level = '" + mode + "';";
eval(code);
console.log(level);"#,
        false,
        Eliminated,
        Eliminated,
    ));
    v.push(EvalBenchmark::new(
        "getter-factory",
        r#"function makeGetter(field) {
  return eval("(function(o) { return o." + field + "; })");
}
var getX = makeGetter("x");
console.log(getX({ x: 7 }));"#,
        false,
        Eliminated,
        Eliminated,
    ));
    v.push(EvalBenchmark::new(
        "bounded-loop",
        r#"var parts = ["a", "b"];
for (var i = 0; i < parts.length; i++) {
  eval("var v_" + parts[i] + " = " + i + ";");
}
console.log(v_a + v_b);"#,
        false,
        Eliminated,
        Eliminated,
    ));
    v.push(EvalBenchmark::new(
        "bounded-loop-accessors",
        r#"var fields = ["w", "h"];
var obj = { w: 2, h: 3 };
var area = 1;
for (var i = 0; i < fields.length; i++) {
  area = area * eval("obj." + fields[i]);
}
console.log(area);"#,
        false,
        Eliminated,
        Eliminated,
    ));
    v.push(EvalBenchmark::new(
        "helper-context",
        r#"function run(expr) { return eval(expr); }
console.log(run("1 + 2"));
console.log(run("3 + 4"));"#,
        false,
        Eliminated,
        Eliminated,
    ));
    v.push(EvalBenchmark::new(
        "json-literal",
        r#"var data = eval("({ a: 1, b: [2, 3] })");
console.log(data.a + data.b[1]);"#,
        false,
        Eliminated,
        Eliminated,
    ));
    v.push(EvalBenchmark::new(
        "guarded-eval",
        r#"var enabled = true;
if (enabled) {
  eval("var flag = 'on';");
} else {
  eval("var flag = 'off';");
}
console.log(flag);"#,
        false,
        Eliminated,
        Eliminated,
    ));

    // ---- 1 genuinely indeterminate string --------------------------------
    v.push(EvalBenchmark::new(
        "random-expression",
        r#"var n = Math.floor(Math.random() * 10);
var r = eval("1 + " + n);
console.log(r >= 1);"#,
        false,
        IndeterminateString,
        IndeterminateString,
    ));

    // ---- 4 coverage gaps (2 fixed by DetDOM's dead-code detection) -------
    v.push(EvalBenchmark::new(
        "uncovered-handler",
        // The handler never fires in the observed run, but the static
        // analysis reaches it through the user-level dispatch table.
        r#"var table = [];
function register(fn) { table.push(fn); }
function runAll() { for (var i = 0; i < table.length; i++) table[i](); }
register(function() { console.log("safe"); });
runAll();
register(function() { eval("sneaky()"); });"#,
        false,
        NotCovered,
        NotCovered,
    ));
    v.push(EvalBenchmark::new(
        "uncovered-error-path",
        r#"function recover(state) {
  eval("state.reset()");
}
function main() {
  var ok = true;
  if (!ok) { recover({}); }
  console.log("done");
}
main();
var keepReachable = recover;"#,
        false,
        NotCovered,
        NotCovered,
    ));
    v.push(EvalBenchmark::new(
        "dom-guarded-legacy",
        // The shim handler is only registered under a DOM condition.
        // Without DetDOM the guard is indeterminate and the handler (never
        // invoked, so never covered) keeps its eval while the static
        // analysis reaches it through the dispatch table; with DetDOM the
        // guard is determinately false and the dead registration — handler
        // included — is pruned.
        r#"var table = [];
function register(fn) { table.push(fn); }
function runAll() { for (var i = 0; i < table.length; i++) table[i](); }
var legacy = document.getElementById("cfg") === null;
if (legacy) {
  register(function() { eval("installShim()"); });
}
runAll();
console.log(legacy);"#,
        true,
        NotCovered,
        Eliminated,
    ));
    v.push(EvalBenchmark::new(
        "dom-guarded-quirks",
        r#"var handlers = [];
function on(fn) { handlers.push(fn); }
function fire() { for (var i = 0; i < handlers.length; i++) handlers[i](); }
var mode = document.getElementById("cfg").getAttribute("data-mode");
if (mode === "legacy") {
  on(function() { eval("window.quirks = true;"); });
}
on(function() { console.log("standard"); });
fire();"#,
        true,
        NotCovered,
        Eliminated,
    ));

    // ---- 1 DOM-caused indeterminacy at the eval itself ---------------------
    v.push(EvalBenchmark::new(
        "dom-arg",
        r#"var el = document.getElementById("cfg");
var expr = "'" + el.getAttribute("data-mode") + "'";
var mode = eval(expr);
console.log(mode);"#,
        true,
        IndeterminateString,
        Eliminated,
    ));

    // ---- 4 loop-bound failures (3 DOM-caused) ------------------------------
    v.push(EvalBenchmark::new(
        "dom-loop-children",
        r#"var n = Number(document.getElementById("cfg").getAttribute("data-n"));
for (var i = 0; i < n; i++) {
  eval("var step" + i + " = " + i + ";");
}
console.log(n);"#,
        true,
        LoopBound,
        Eliminated,
    ));
    v.push(EvalBenchmark::new(
        "dom-loop-tags",
        r#"var count = document.getElementsByTagName("button").length;
for (var i = 0; i < count; i++) {
  eval("var seen = " + i + ";");
}
console.log(count >= 0);"#,
        true,
        LoopBound,
        Eliminated,
    ));
    v.push(EvalBenchmark::new(
        "dom-loop-attr",
        r#"var cfg = document.getElementById("cfg");
var rounds = Number(cfg.getAttribute("data-n")) - 1;
var acc = "";
for (var i = 0; i < rounds; i++) {
  acc += eval("'x'");
}
console.log(acc.length >= 0);"#,
        true,
        LoopBound,
        Eliminated,
    ));
    v.push(EvalBenchmark::new(
        "random-loop",
        r#"var reps = 1 + Math.floor(Math.random() * 3);
for (var i = 0; i < reps; i++) {
  eval("var tick = " + i + ";");
}
console.log(reps >= 1);"#,
        false,
        LoopBound,
        LoopBound,
    ));

    // ---- 4 non-runnable programs (excluded, as in the paper) ---------------
    v.push(EvalBenchmark::non_runnable(
        "missing-library-a",
        r#"externalLib.setup(); eval("externalLib.go()");"#,
    ));
    v.push(EvalBenchmark::non_runnable(
        "missing-library-b",
        r#"var cfg = loadRemoteConfig(); eval(cfg.bootstrap);"#,
    ));
    v.push(EvalBenchmark::non_runnable(
        "missing-markup",
        r#"var el = document.getElementById("not-in-fixture").firstChild; eval(el.text);"#,
    ));
    v.push(EvalBenchmark::non_runnable(
        "emulator-incompatible",
        r#"window.XMLHttpRequest.open(); eval(responseText);"#,
    ));

    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_28_programs_24_runnable() {
        let suite = all();
        assert_eq!(suite.len(), 28);
        assert_eq!(suite.iter().filter(|b| b.runnable).count(), 24);
    }

    #[test]
    fn expected_counts_match_the_paper() {
        let suite = all();
        let run: Vec<_> = suite.iter().filter(|b| b.runnable).collect();
        let plain_ok = run
            .iter()
            .filter(|b| b.expected == Expected::Eliminated)
            .count();
        let detdom_ok = run
            .iter()
            .filter(|b| b.expected_detdom == Expected::Eliminated)
            .count();
        assert_eq!(plain_ok, 14, "plain analysis handles 14");
        assert_eq!(detdom_ok, 20, "DetDOM handles 20");
        let indet = run
            .iter()
            .filter(|b| b.expected == Expected::IndeterminateString)
            .count();
        let cover = run
            .iter()
            .filter(|b| b.expected == Expected::NotCovered)
            .count();
        let loops = run
            .iter()
            .filter(|b| b.expected == Expected::LoopBound)
            .count();
        assert_eq!((indet, cover, loops), (2, 4, 4));
    }

    #[test]
    fn names_are_unique() {
        let suite = all();
        let mut names: Vec<_> = suite.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), suite.len());
    }
}
