//! # mujs-serve
//!
//! `detserved`: a persistent analysis service with content-addressed
//! pipeline caching.
//!
//! The batch layer (`mujs-jobs`) treats every analysis as a cold start:
//! parse, lower, fan out over seeds, optionally solve pointer analysis —
//! all from scratch, every time. That is the right shape for one-shot
//! campaigns, but an interactive workload (an editor probing the same
//! page after each keystroke, a CI bot re-checking a mostly-unchanged
//! bundle) re-submits near-identical work constantly. This crate is the
//! warm path: a long-running daemon that keys every pipeline stage by a
//! content hash of that stage's *exact inputs* and serves repeats from
//! cache.
//!
//! The stages and their keys (see [`stage`] for the precise scheme):
//!
//! ```text
//! parse  = H(LOWERING_VERSION ∥ src)
//! facts  = H("facts" ∥ parse ∥ effective-config-json ∥ seeds…)
//! pta    = H("pta" ∥ (inject ? facts : parse) ∥ budget ∥ inject)
//! ```
//!
//! Each key chains its upstream stage's key, so invalidation is
//! automatic: change the source and all three keys move; change only the
//! analysis config and the parse artifact still hits. Keys come from
//! [`determinacy::cachekey`] — the same FNV-1a scheme the `detjobs`
//! checkpoint uses — so the two caches can never drift apart on what
//! "same inputs" means.
//!
//! The wire protocol ([`proto`]) is line-delimited JSON over TCP or a
//! stdin/stdout pipe, streaming the jobs layer's `JobEvent`s as progress
//! frames and finishing each request with a report row **byte-identical**
//! to what a cold run produces (both paths render the row from the cached
//! artifacts, never from live analysis state). Admission control and
//! watchdog wedging reuse the `mujs-jobs` machinery unchanged.
//!
//! Two binaries ship with the crate: `detserved` (the daemon) and
//! `detload` (a load generator that measures cold-vs-warm throughput and
//! writes `BENCH_serve.json`).

pub mod cache;
pub mod proto;
pub mod server;
pub mod stage;

pub use cache::{CacheConfig, Stage, StageCache};
pub use server::{ServeOptions, Server};
pub use stage::{PipelineCounters, StageKeys, LOWERING_VERSION};
