//! Parameterized synthetic workload generators for benchmarks: scalable
//! programs with known shape, used by the Criterion benches (interpreter
//! throughput, instrumentation overhead, counterfactual depth sweeps).

use std::fmt::Write as _;

/// A straight-line arithmetic program with `n` statements.
pub fn arithmetic_chain(n: usize) -> String {
    let mut s = String::from("var acc = 1;\n");
    for i in 0..n {
        let _ = writeln!(s, "acc = (acc * {} + {}) % 100003;", (i % 7) + 2, i);
    }
    s.push_str("console.log(acc);\n");
    s
}

/// A program building and traversing an object graph of `n` nodes.
pub fn object_graph(n: usize) -> String {
    let mut s = String::from("var nodes = [];\n");
    let _ = writeln!(
        s,
        "for (var i = 0; i < {n}; i++) {{ nodes.push({{ id: i, next: null }}); }}"
    );
    s.push_str("for (var j = 0; j + 1 < nodes.length; j++) { nodes[j].next = nodes[j + 1]; }\n");
    s.push_str("var cur = nodes[0];\nvar sum = 0;\nwhile (cur !== null) { sum += cur.id; cur = cur.next; }\nconsole.log(sum);\n");
    s
}

/// A recursion-heavy workload (`fib`-style call tree of depth `n`).
pub fn call_tree(n: usize) -> String {
    format!(
        "function fib(n) {{ return n < 2 ? n : fib(n - 1) + fib(n - 2); }}\nconsole.log(fib({n}));\n"
    )
}

/// A program with `n` indeterminate-false conditionals guarding small
/// branches — a counterfactual-execution stress test.
pub fn counterfactual_chain(n: usize, branch_size: usize) -> String {
    let mut s = String::from("var state = { x: 0 };\n");
    for i in 0..n {
        let _ = writeln!(s, "var c{i} = __indet(false);");
        let _ = writeln!(s, "if (c{i}) {{");
        for j in 0..branch_size {
            let _ = writeln!(s, "  state.x = state.x + {j};");
        }
        s.push_str("}\n");
    }
    s.push_str("console.log(state.x);\n");
    s
}

/// `depth`-nested indeterminate-false conditionals (exercises the
/// counterfactual cut-off `k`).
pub fn nested_counterfactuals(depth: usize) -> String {
    let mut s = String::from("var o = { v: 0 };\n");
    for i in 0..depth {
        let _ = writeln!(s, "{}if (__indet(false)) {{", "  ".repeat(i));
    }
    let _ = writeln!(s, "{}o.v = 1;", "  ".repeat(depth));
    for i in (0..depth).rev() {
        let _ = writeln!(s, "{}}}", "  ".repeat(i));
    }
    s.push_str("console.log(o.v);\n");
    s
}

/// A string-building workload (`n` concatenations + method calls).
pub fn string_workload(n: usize) -> String {
    let mut s = String::from("var out = \"\";\n");
    let _ = writeln!(
        s,
        "for (var i = 0; i < {n}; i++) {{ out = (out + \"x\").substr(0, 50).toUpperCase().toLowerCase(); }}"
    );
    s.push_str("console.log(out.length);\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_scale() {
        assert!(arithmetic_chain(100).lines().count() > 100);
        assert!(object_graph(10).contains("10"));
        assert!(counterfactual_chain(5, 3).matches("__indet").count() == 5);
        assert!(nested_counterfactuals(4).matches("if").count() == 4);
    }
}
