//! §5.1: "up to four levels of calling context are required" — sweeps the
//! specializer's context-depth bound and reports the resulting pointer-
//! analysis work on jQuery-like 1.0. Depth 0 disables cloning entirely.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use determinacy::AnalysisConfig;
use mujs_pta::PtaConfig;
use mujs_specialize::SpecConfig;

fn spec_program(depth: usize) -> mujs_ir::Program {
    let v = mujs_corpus::jquery_like::v1_0();
    let mut h = determinacy::DetHarness::from_src(&v.src).expect("parses");
    let mut a = h.analyze_dom(AnalysisConfig::default(), v.doc.clone(), &v.plan);
    let cfg = SpecConfig {
        max_context_depth: depth,
        clone_functions: depth > 0,
        ..Default::default()
    };
    mujs_specialize::specialize(&h.program, &a.facts, &mut a.ctxs, &cfg).program
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("context_depth");
    g.sample_size(10);
    for depth in [0usize, 1, 2, 4, 6] {
        let prog = spec_program(depth);
        let cfg = PtaConfig {
            budget: 50_000_000,
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(depth), &prog, |b, p| {
            b.iter(|| mujs_pta::solve(p, &cfg).stats.propagations)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
