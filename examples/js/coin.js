// A random branch: values written on only one side are indeterminate
// across seeds, the join afterwards is determinate again.
var coin = Math.random() < 0.5;
var picked = 0;
if (coin) {
  var heads = 1;
  picked = 10;
} else {
  var tails = 2;
  picked = 20;
}
var after = 42;
