//! Offline stand-in for `serde`.
//!
//! The real serde's `Serializer`/`Deserializer` visitor machinery is far
//! more than this workspace needs: every use here is `#[derive(Serialize,
//! Deserialize)]` on plain structs/enums followed by `serde_json`
//! to/from-string calls. This shim collapses the data model to a single
//! JSON [`json::Value`] tree; the derive macros (re-exported from the
//! sibling `serde_derive` shim) generate `to_value`/`from_value` impls.

pub use serde_derive::{Deserialize, Serialize};

pub mod json {
    //! The JSON value tree shared with the `serde_json` shim.

    use std::fmt;
    use std::ops::Index;

    /// A parsed or to-be-serialized JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any JSON number.
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Array(Vec<Value>),
        /// An object; insertion-ordered.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// The object entries, if this is an object.
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Object(m) => Some(m),
                _ => None,
            }
        }

        /// The array elements, if this is an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(a) => Some(a),
                _ => None,
            }
        }

        /// The string contents, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The numeric value, if this is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }

        /// The boolean, if this is a boolean.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        /// Object field lookup (`None` when absent or not an object).
        pub fn get(&self, key: &str) -> Option<&Value> {
            self.as_object()
                .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
        }
    }

    /// `value["field"]`, yielding `Null` for absent keys (like serde_json).
    impl Index<&str> for Value {
        type Output = Value;
        fn index(&self, key: &str) -> &Value {
            const NULL: Value = Value::Null;
            self.get(key).unwrap_or(&NULL)
        }
    }

    impl Index<usize> for Value {
        type Output = Value;
        fn index(&self, idx: usize) -> &Value {
            const NULL: Value = Value::Null;
            self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
        }
    }

    impl PartialEq<&str> for Value {
        fn eq(&self, other: &&str) -> bool {
            matches!(self, Value::Str(s) if s == other)
        }
    }

    impl PartialEq<bool> for Value {
        fn eq(&self, other: &bool) -> bool {
            matches!(self, Value::Bool(b) if b == other)
        }
    }

    impl PartialEq<f64> for Value {
        fn eq(&self, other: &f64) -> bool {
            matches!(self, Value::Num(n) if n == other)
        }
    }

    impl fmt::Display for Value {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", crate::ser_compact(self))
        }
    }
}

use json::Value;

/// Deserialization failure.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error from any message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the JSON data model.
pub trait Serialize {
    /// Renders `self` as a JSON value tree.
    fn to_value(&self) -> Value;
}

/// Conversion from the JSON data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a JSON value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ------------------------------------------------------------ primitives

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Num(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    other => Err(DeError::custom(format!(
                        "expected number, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::custom("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for std::rc::Rc<str> {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ----------------------------------------------------- derive-impl support

/// Looks up a struct field during derived deserialization. Absent keys
/// deserialize from `Null` so `Option` fields tolerate omission.
pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, DeError> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => {
            T::from_value(v).map_err(|e| DeError::custom(format!("field `{name}`: {}", e.0)))
        }
        None => T::from_value(&Value::Null)
            .map_err(|_| DeError::custom(format!("missing field `{name}`"))),
    }
}

// ------------------------------------------------------------- rendering

/// Compact JSON text for a value (shared with the serde_json shim).
pub fn ser_compact(v: &Value) -> String {
    let mut s = String::new();
    render(v, None, 0, &mut s);
    s
}

/// Pretty-printed JSON text (two-space indent).
pub fn ser_pretty(v: &Value) -> String {
    let mut s = String::new();
    render(v, Some(2), 0, &mut s);
    s
}

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => out.push_str(&render_num(*n)),
        Value::Str(s) => render_str(s, out),
        Value::Array(items) => {
            render_seq(items.iter(), indent, depth, out, '[', ']', |item, o| {
                render(item, indent, depth + 1, o);
            });
        }
        Value::Object(fields) => {
            render_seq(
                fields.iter(),
                indent,
                depth,
                out,
                '{',
                '}',
                |(k, val), o| {
                    render_str(k, o);
                    o.push(':');
                    if indent.is_some() {
                        o.push(' ');
                    }
                    render(val, indent, depth + 1, o);
                },
            );
        }
    }
}

fn render_seq<I: ExactSizeIterator>(
    items: I,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    open: char,
    close: char,
    mut each: impl FnMut(I::Item, &mut String),
) {
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        each(item, out);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn render_num(n: f64) -> String {
    if !n.is_finite() {
        return "null".to_owned();
    }
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
