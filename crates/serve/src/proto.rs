//! The wire protocol: line-delimited JSON requests and responses.
//!
//! Every request is one JSON object on one line, tagged by `op`; every
//! response frame is one JSON object on one line, tagged by `ev`. A
//! client may pipeline requests — the daemon processes each connection's
//! lines in order and serializes that connection's frames, so a request's
//! frames never interleave with another request's *on the same
//! connection* (connections are independent).
//!
//! Requests:
//!
//! ```text
//! {"op":"analyze","id":1,"name":"page","src":"var x = 1;",
//!  "seeds":[1,2],"config":{…},"deadline_ms":5000,"mem_cells":100000,
//!  "pta_budget":2000000,"inject":true,"include_facts":false}
//! {"op":"stats","id":2}
//! {"op":"ping","id":3}
//! {"op":"shutdown","id":4}
//! ```
//!
//! Everything but `op` and (for analyze) `src` is optional; `id` is an
//! arbitrary JSON value echoed verbatim on every frame the request
//! produces, so pipelined clients can demultiplex. Unknown fields are
//! ignored (forward compatibility); unknown ops produce an `error`
//! frame.
//!
//! Response frames: progress events re-encode the jobs layer's
//! [`JobEvent`] stream (`started` / `progress` / `degraded` / `wedged` /
//! `retrying` / `failed` / `finished` / `cancelled`), and each request
//! settles with exactly one terminal frame — `result` (carrying the
//! report row and per-stage cache flags), `pong`, `stats`, `bye`, or
//! `error`.

use crate::stage::CachedFlags;
use determinacy::AnalysisConfig;
use mujs_jobs::JobEvent;
use serde::Deserialize;
use serde_json::Value;

/// One analysis request, as parsed off the wire (admission and seed
/// defaulting happen later, in the server).
#[derive(Debug, Clone)]
pub struct AnalyzeRequest {
    /// Echo id for demultiplexing (Null when the client sent none).
    pub id: Value,
    /// Label for the report row; never part of any cache key.
    pub name: String,
    /// The JavaScript source.
    pub src: String,
    /// Explicit seed fan-out; empty means the config default.
    pub seeds: Vec<u64>,
    /// Full analysis configuration (`None` = default).
    pub config: Option<AnalysisConfig>,
    /// Wall-clock budget override (milliseconds).
    pub deadline_ms: Option<u64>,
    /// Declared heap-cell budget (also the admission declaration).
    pub mem_cells: Option<u64>,
    /// Pointer-analysis budget; absent skips the PTA stage.
    pub pta_budget: Option<u64>,
    /// Whether PTA consumes the determinacy facts.
    pub inject: bool,
    /// When present, the PTA stage solves the program specialized
    /// against the determinacy facts with this context-depth bound.
    /// Mutually exclusive with `inject` (a solve consumes the facts one
    /// way or the other, not both); rejected at parse time.
    pub spec_depth: Option<usize>,
    /// Whether the PTA stage consumes concrete-replay shortcut
    /// summaries (a summary stage replays the determinate regions).
    /// Mutually exclusive with `spec_depth` — summaries name functions
    /// of the unspecialized program; rejected at parse time.
    pub shortcuts: bool,
    /// Whether the report row embeds the full fact export.
    pub include_facts: bool,
}

impl AnalyzeRequest {
    /// The effective analysis configuration (config defaulted, budget
    /// shorthands applied — same precedence as a `detjobs` manifest).
    pub fn effective_config(&self) -> AnalysisConfig {
        let mut c = self.config.clone().unwrap_or_default();
        if self.deadline_ms.is_some() {
            c.deadline_ms = self.deadline_ms;
        }
        if self.mem_cells.is_some() {
            c.mem_cell_budget = self.mem_cells;
        }
        c
    }

    /// The effective seed fan-out (never empty).
    pub fn effective_seeds(&self) -> Vec<u64> {
        if self.seeds.is_empty() {
            vec![self.effective_config().seed]
        } else {
            self.seeds.clone()
        }
    }
}

/// A parsed request line.
#[derive(Debug)]
pub enum Request {
    /// Run (or serve from cache) one analysis.
    Analyze(Box<AnalyzeRequest>),
    /// Report server/cache/pipeline counters.
    Stats(Value),
    /// Liveness probe.
    Ping(Value),
    /// Drain and stop the daemon.
    Shutdown(Value),
}

/// Parses one request line.
///
/// # Errors
///
/// A human-readable message for malformed JSON, a missing/unknown `op`,
/// or a missing `src` — rendered back to the client in an `error` frame.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v: Value = serde_json::from_str(line).map_err(|e| format!("request JSON: {e:?}"))?;
    let id = v.get("id").cloned().unwrap_or(Value::Null);
    let op = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or("request missing `op`")?;
    match op {
        "ping" => Ok(Request::Ping(id)),
        "stats" => Ok(Request::Stats(id)),
        "shutdown" => Ok(Request::Shutdown(id)),
        "analyze" => {
            let src = v
                .get("src")
                .and_then(Value::as_str)
                .ok_or("analyze request missing `src`")?
                .to_owned();
            let name = v
                .get("name")
                .and_then(Value::as_str)
                .unwrap_or("request")
                .to_owned();
            let seeds = v
                .get("seeds")
                .and_then(Value::as_array)
                .map(|a| {
                    a.iter()
                        .filter_map(|s| s.as_f64())
                        .map(|f| f as u64)
                        .collect()
                })
                .unwrap_or_default();
            let config = match v.get("config") {
                Some(c) if !matches!(c, Value::Null) => Some(
                    AnalysisConfig::from_value(c).map_err(|e| format!("analyze config: {e:?}"))?,
                ),
                _ => None,
            };
            let as_u64 = |field: &str| v.get(field).and_then(Value::as_f64).map(|f| f as u64);
            let inject = v.get("inject").and_then(Value::as_bool).unwrap_or(false);
            let spec_depth = as_u64("spec_depth").map(|d| d as usize);
            if inject && spec_depth.is_some() {
                return Err(
                    "analyze request sets both `inject` and `spec_depth`: a solve consumes \
                     the determinacy facts either by injection or by specialization, not both"
                        .to_owned(),
                );
            }
            let shortcuts = v.get("shortcuts").and_then(Value::as_bool).unwrap_or(false);
            if shortcuts && spec_depth.is_some() {
                return Err(
                    "analyze request sets both `shortcuts` and `spec_depth`: shortcut \
                     summaries name functions of the unspecialized program"
                        .to_owned(),
                );
            }
            Ok(Request::Analyze(Box::new(AnalyzeRequest {
                id,
                name,
                src,
                seeds,
                config,
                deadline_ms: as_u64("deadline_ms"),
                mem_cells: as_u64("mem_cells"),
                pta_budget: as_u64("pta_budget"),
                inject,
                spec_depth,
                shortcuts,
                include_facts: v
                    .get("include_facts")
                    .and_then(Value::as_bool)
                    .unwrap_or(false),
            })))
        }
        other => Err(format!("unknown op `{other}`")),
    }
}

fn frame(ev: &str, id: &Value, extra: Vec<(String, Value)>) -> String {
    let mut fields = vec![
        ("ev".to_owned(), Value::Str(ev.to_owned())),
        ("id".to_owned(), id.clone()),
    ];
    fields.extend(extra);
    serde_json::to_string(&Value::Object(fields)).expect("frame serializes")
}

/// Renders a [`JobEvent`] as a progress frame.
pub fn event_line(ev: &JobEvent, id: &Value) -> String {
    let s = |s: &str| Value::Str(s.to_owned());
    let num = |n: u64| Value::Num(n as f64);
    match ev {
        JobEvent::Started { attempt, .. } => frame(
            "started",
            id,
            vec![("attempt".to_owned(), num(u64::from(*attempt)))],
        ),
        JobEvent::Progress { detail, .. } => {
            frame("progress", id, vec![("detail".to_owned(), s(detail))])
        }
        JobEvent::Finished { .. } => frame("finished", id, Vec::new()),
        JobEvent::Retrying { attempt, error, .. } => frame(
            "retrying",
            id,
            vec![
                ("attempt".to_owned(), num(u64::from(*attempt))),
                ("error".to_owned(), s(error)),
            ],
        ),
        JobEvent::Failed { error, .. } => frame("failed", id, vec![("error".to_owned(), s(error))]),
        JobEvent::Wedged { budget_ms, .. } => frame(
            "wedged",
            id,
            vec![("budget_ms".to_owned(), num(*budget_ms))],
        ),
        JobEvent::Degraded { granted_cells, .. } => frame(
            "degraded",
            id,
            vec![("granted_cells".to_owned(), num(*granted_cells))],
        ),
        JobEvent::Cancelled { .. } => frame("cancelled", id, Vec::new()),
    }
}

/// Renders the terminal frame of a successful analyze request.
pub fn result_line(id: &Value, cached: &CachedFlags, report: &Value) -> String {
    frame(
        "result",
        id,
        vec![
            ("cached".to_owned(), cached.to_value()),
            ("report".to_owned(), report.clone()),
        ],
    )
}

/// Renders an error frame (protocol errors and failed jobs).
pub fn error_line(id: &Value, message: &str) -> String {
    frame(
        "error",
        id,
        vec![("message".to_owned(), Value::Str(message.to_owned()))],
    )
}

/// Renders a stats frame around the server's counter snapshot.
pub fn stats_line(id: &Value, stats: &Value) -> String {
    frame("stats", id, vec![("stats".to_owned(), stats.clone())])
}

/// Renders a pong frame.
pub fn pong_line(id: &Value) -> String {
    frame("pong", id, Vec::new())
}

/// Renders the shutdown acknowledgement frame.
pub fn bye_line(id: &Value) -> String {
    frame("bye", id, Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_requests_parse_with_defaults() {
        let r = parse_request(r#"{"op":"analyze","src":"var x = 1;"}"#).unwrap();
        let Request::Analyze(a) = r else {
            panic!("expected analyze")
        };
        assert_eq!(a.id, Value::Null);
        assert_eq!(a.name, "request");
        assert!(!a.inject);
        assert!(!a.include_facts);
        assert_eq!(a.effective_seeds(), vec![AnalysisConfig::default().seed]);
        assert_eq!(a.pta_budget, None);
    }

    #[test]
    fn analyze_requests_honor_overrides() {
        let r = parse_request(
            r#"{"op":"analyze","id":7,"name":"p","src":"f();","seeds":[3,4],
                "deadline_ms":5000,"mem_cells":1000,"pta_budget":99,
                "inject":true,"include_facts":true,"future_field":1}"#,
        )
        .unwrap();
        let Request::Analyze(a) = r else {
            panic!("expected analyze")
        };
        assert_eq!(a.id, Value::Num(7.0));
        assert_eq!(a.effective_seeds(), vec![3, 4]);
        let cfg = a.effective_config();
        assert_eq!(cfg.deadline_ms, Some(5000));
        assert_eq!(cfg.mem_cell_budget, Some(1000));
        assert_eq!(a.pta_budget, Some(99));
        assert!(a.inject && a.include_facts);
    }

    #[test]
    fn spec_depth_parses_and_excludes_inject() {
        let r = parse_request(r#"{"op":"analyze","src":"f();","pta_budget":99,"spec_depth":3}"#)
            .unwrap();
        let Request::Analyze(a) = r else {
            panic!("expected analyze")
        };
        assert_eq!(a.spec_depth, Some(3));
        assert!(!a.inject);
        let err = parse_request(
            r#"{"op":"analyze","src":"f();","pta_budget":99,"inject":true,"spec_depth":3}"#,
        )
        .unwrap_err();
        assert!(err.contains("spec_depth"), "got {err}");
    }

    #[test]
    fn malformed_lines_are_rejected_with_messages() {
        assert!(parse_request("{ nope").unwrap_err().contains("JSON"));
        assert!(parse_request(r#"{"id":1}"#).unwrap_err().contains("op"));
        assert!(parse_request(r#"{"op":"analyze"}"#)
            .unwrap_err()
            .contains("src"));
        assert!(parse_request(r#"{"op":"warp"}"#)
            .unwrap_err()
            .contains("unknown op"));
    }

    #[test]
    fn frames_echo_the_request_id() {
        let id = Value::Str("req-9".to_owned());
        for line in [
            pong_line(&id),
            error_line(&id, "boom"),
            stats_line(&id, &Value::Object(Vec::new())),
            result_line(&id, &CachedFlags::default(), &Value::Null),
        ] {
            let v: Value = serde_json::from_str(&line).unwrap();
            assert_eq!(v.get("id").unwrap(), &id, "in {line}");
            assert!(v.get("ev").is_some());
            assert!(!line.contains('\n'), "frames are single lines");
        }
    }
}
