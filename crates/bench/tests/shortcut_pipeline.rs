//! End-to-end shortcut-mode gates over the Table 1 corpus: at the tight
//! 150k budget, injection+summaries must complete every version
//! (including 1.3, where specialization exhausts) and dominate the
//! injection-only rows on both precision axes. These are the acceptance
//! criteria the `detbench --pta` harness gates in CI; the test keeps
//! them honest without a full bench run.

use mujs_bench::pipeline::{run_shortcut_compare, TABLE1_PTA_BUDGET};

#[test]
fn shortcut_mode_completes_and_dominates_on_every_version() {
    for v in mujs_corpus::jquery_like::all_versions() {
        let r = run_shortcut_compare(&v, TABLE1_PTA_BUDGET).expect("pipeline runs");
        assert!(
            !r.degraded,
            "{}: replay degraded — summaries were dropped",
            r.version
        );
        assert!(
            r.regions > 0,
            "{}: extractor found no determinate regions",
            r.version
        );
        assert!(
            r.shortcut.ok,
            "{}: shortcut mode starved at budget {TABLE1_PTA_BUDGET}",
            r.version
        );
        assert!(
            r.shortcut.poly_sites <= r.injected.poly_sites,
            "{}: shortcut poly sites {} vs injected {}",
            r.version,
            r.shortcut.poly_sites,
            r.injected.poly_sites
        );
        assert!(
            r.shortcut.avg_points_to <= r.injected.avg_points_to + f64::EPSILON,
            "{}: shortcut avg points-to {} vs injected {}",
            r.version,
            r.shortcut.avg_points_to,
            r.injected.avg_points_to
        );
    }
}

#[test]
fn heavy_versions_summarize_the_extend_pattern() {
    // The regions that matter are the dynamic-key copy loops; on the
    // heavy main-script versions they carry hundreds of tuples and the
    // solve does strictly less work than injection-only.
    let v = mujs_corpus::jquery_like::v1_0();
    let r = run_shortcut_compare(&v, TABLE1_PTA_BUDGET).expect("pipeline runs");
    assert!(r.tuples > 100, "expected a rich summary, got {}", r.tuples);
    assert!(
        r.shortcut.work < r.injected.work,
        "shortcut work {} not below injected {}",
        r.shortcut.work,
        r.injected.work
    );
}
