//! End-to-end protocol tests: the stdin-pipe session, the TCP accept
//! loop, and the shipped binaries.

use mujs_serve::{ServeOptions, Server};
use serde_json::Value;
use std::io::{BufRead, BufReader, Cursor, Write};
use std::net::{TcpListener, TcpStream};

fn frames(output: &[u8]) -> Vec<Value> {
    String::from_utf8_lossy(output)
        .lines()
        .map(|l| serde_json::from_str(l).expect("every output line is a JSON frame"))
        .collect()
}

fn ev(frame: &Value) -> &str {
    frame.get("ev").and_then(Value::as_str).unwrap_or("?")
}

#[test]
fn pipe_session_serves_cold_then_warm() {
    let server = Server::new(ServeOptions::default());
    let script = concat!(
        r#"{"op":"ping","id":1}"#,
        "\n",
        r#"{"op":"analyze","id":2,"name":"page","src":"var x = { f: 1 }; var y = x.f;"}"#,
        "\n",
        r#"{"op":"analyze","id":3,"name":"page","src":"var x = { f: 1 }; var y = x.f;"}"#,
        "\n",
        r#"{"op":"stats","id":4}"#,
        "\n",
    );
    let mut out = Vec::new();
    let shutdown = server
        .handle_stream(Cursor::new(script), &mut out)
        .expect("pipe session runs");
    assert!(!shutdown, "EOF is not a shutdown request");

    let fr = frames(&out);
    assert_eq!(ev(&fr[0]), "pong");

    let results: Vec<&Value> = fr.iter().filter(|f| ev(f) == "result").collect();
    assert_eq!(results.len(), 2);
    let (cold, warm) = (results[0], results[1]);
    assert_eq!(cold.get("id").unwrap(), &2.0);
    assert_eq!(warm.get("id").unwrap(), &3.0);
    assert_eq!(
        cold.get("cached").unwrap().get("facts").unwrap(),
        &Value::Bool(false)
    );
    assert_eq!(
        warm.get("cached").unwrap().get("facts").unwrap(),
        &Value::Bool(true)
    );
    // Identical request → identical report subtree.
    assert_eq!(
        serde_json::to_string(cold.get("report").unwrap()).unwrap(),
        serde_json::to_string(warm.get("report").unwrap()).unwrap()
    );
    let report = cold.get("report").unwrap();
    assert_eq!(report.get("status").unwrap(), &"completed");
    assert_eq!(report.get("name").unwrap(), &"page");

    let stats = fr.last().unwrap();
    assert_eq!(ev(stats), "stats");
    let pipeline = stats.get("stats").unwrap().get("pipeline").unwrap();
    assert_eq!(
        pipeline.get("parses").unwrap(),
        &1.0,
        "the warm request must not re-parse"
    );
    let cache = stats.get("stats").unwrap().get("cache").unwrap();
    assert_eq!(cache.get("facts_hits").unwrap(), &1.0);
    assert_eq!(cache.get("facts_misses").unwrap(), &1.0);
}

#[test]
fn protocol_errors_answer_in_band_and_do_not_kill_the_session() {
    let server = Server::new(ServeOptions::default());
    let script = concat!(
        "{ not json\n",
        r#"{"op":"warp","id":1}"#,
        "\n",
        r#"{"op":"analyze","id":2,"name":"bad","src":"var = ;"}"#,
        "\n",
        r#"{"op":"ping","id":3}"#,
        "\n",
    );
    let mut out = Vec::new();
    server
        .handle_stream(Cursor::new(script), &mut out)
        .expect("session survives bad input");
    let fr = frames(&out);
    assert_eq!(ev(&fr[0]), "error");
    assert_eq!(ev(&fr[1]), "error");
    // A syntax error is a *successful* analysis of a bad program: a result
    // frame whose report row carries the error status.
    let result = fr.iter().find(|f| ev(f) == "result").unwrap();
    let status = result
        .get("report")
        .unwrap()
        .get("status")
        .unwrap()
        .as_str()
        .unwrap();
    assert!(status.starts_with("syntax error:"), "got {status}");
    assert_eq!(ev(fr.last().unwrap()), "pong");
}

#[test]
fn degraded_admission_is_reported_and_keyed_separately() {
    let server = Server::new(ServeOptions {
        mem_budget_cells: Some(50_000),
        ..ServeOptions::default()
    });
    // Declares more than the server-wide budget: admitted degraded.
    let script = concat!(
        r#"{"op":"analyze","id":1,"name":"big","src":"var x = 1;","mem_cells":100000}"#,
        "\n",
        r#"{"op":"analyze","id":2,"name":"small","src":"var x = 1;","mem_cells":10000}"#,
        "\n",
    );
    let mut out = Vec::new();
    server.handle_stream(Cursor::new(script), &mut out).unwrap();
    let fr = frames(&out);
    let degraded = fr.iter().find(|f| ev(f) == "degraded").unwrap();
    assert_eq!(degraded.get("granted_cells").unwrap(), &50_000.0);
    let results: Vec<&Value> = fr.iter().filter(|f| ev(f) == "result").collect();
    assert_eq!(
        results[0].get("report").unwrap().get("status").unwrap(),
        &"degraded"
    );
    assert_eq!(
        results[1].get("report").unwrap().get("status").unwrap(),
        &"completed"
    );
    // Different effective budgets → different facts keys → no false
    // sharing between the degraded and full-budget rows.
    let key = |r: &Value| {
        r.get("report")
            .unwrap()
            .get("stage_keys")
            .unwrap()
            .get("facts")
            .unwrap()
            .as_str()
            .unwrap()
            .to_owned()
    };
    assert_ne!(key(results[0]), key(results[1]));
    assert!(
        !results[1]
            .get("cached")
            .unwrap()
            .get("facts")
            .unwrap()
            .as_bool()
            .unwrap(),
        "the full-budget request must not hit the degraded entry"
    );
}

#[test]
fn tcp_server_serves_concurrent_clients_until_shutdown() {
    let server = Server::new(ServeOptions::default());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::scope(|s| {
        let handle = s.spawn(|| server.serve(listener));

        let round_trip = |lines: &str| -> Vec<Value> {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(lines.as_bytes()).unwrap();
            stream.shutdown(std::net::Shutdown::Write).unwrap();
            let mut out = Vec::new();
            for line in BufReader::new(stream).lines() {
                out.push(serde_json::from_str(&line.unwrap()).unwrap());
            }
            out
        };

        let a = round_trip(concat!(
            r#"{"op":"analyze","id":"a","name":"p","src":"var x = 40 + 2;"}"#,
            "\n"
        ));
        assert!(a.iter().any(|f| ev(f) == "result"));

        // Second connection sees the first connection's cache.
        let b = round_trip(concat!(
            r#"{"op":"analyze","id":"b","name":"p","src":"var x = 40 + 2;"}"#,
            "\n"
        ));
        let result = b.iter().find(|f| ev(f) == "result").unwrap();
        assert_eq!(
            result.get("cached").unwrap().get("facts").unwrap(),
            &Value::Bool(true),
            "the cache is shared across connections"
        );

        let bye = round_trip(concat!(r#"{"op":"shutdown","id":"z"}"#, "\n"));
        assert_eq!(ev(bye.last().unwrap()), "bye");
        handle.join().unwrap().unwrap();
    });
    assert!(server.is_shutting_down());
}

#[test]
fn detserved_and_detload_binaries_run_a_full_benchmark() {
    use std::process::{Command, Stdio};
    let tmp = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("serve-bin-e2e");
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).unwrap();
    let bench_path = tmp.join("BENCH_serve.json");

    let mut daemon = Command::new(env!("CARGO_BIN_EXE_detserved"))
        .args(["--listen", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("daemon starts");
    let mut banner = String::new();
    BufReader::new(daemon.stdout.take().unwrap())
        .read_line(&mut banner)
        .unwrap();
    let addr = banner
        .trim()
        .strip_prefix("detserved: listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"))
        .to_owned();

    let status = Command::new(env!("CARGO_BIN_EXE_detload"))
        .args([
            "--connect",
            &addr,
            "--suite",
            "smoke",
            "--warm",
            "2",
            "--pta-budget",
            "50000",
            "--out",
            bench_path.to_str().unwrap(),
            "--shutdown",
        ])
        .status()
        .expect("loadgen runs");
    assert!(status.success(), "detload exit: {status:?}");

    let daemon_status = daemon.wait().expect("daemon exits after shutdown");
    assert!(daemon_status.success(), "daemon exit: {daemon_status:?}");

    let report: Value =
        serde_json::from_str(&std::fs::read_to_string(&bench_path).unwrap()).unwrap();
    let warm = report.get("counters").unwrap().get("warm").unwrap();
    assert_eq!(
        warm.get("pipeline.pta_propagations").unwrap(),
        &0.0,
        "warm passes must not propagate"
    );
    assert_eq!(warm.get("pipeline.parses").unwrap(), &0.0);
    assert_eq!(warm.get("pipeline.analyses").unwrap(), &0.0);
    // 3 smoke requests × 2 warm passes, 3 stages each: all hits.
    assert_eq!(warm.get("cache.parse_hits").unwrap(), &6.0);
    assert_eq!(warm.get("cache.facts_hits").unwrap(), &6.0);
    assert_eq!(warm.get("cache.pta_hits").unwrap(), &6.0);
    assert_eq!(warm.get("cache.parse_misses").unwrap(), &0.0);
    let cold = report.get("counters").unwrap().get("cold").unwrap();
    assert_eq!(cold.get("pipeline.parses").unwrap(), &3.0);
    assert!(
        cold.get("pipeline.pta_propagations")
            .unwrap()
            .as_f64()
            .unwrap()
            > 0.0
    );
    std::fs::remove_dir_all(&tmp).ok();
}
