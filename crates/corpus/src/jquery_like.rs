//! Synthetic jQuery-like library versions for the Table 1 reproduction.
//!
//! We cannot ship jQuery, so each "version" is a generated library
//! exhibiting the trait the paper attributes that version's Table 1 row
//! to. The scalability-killing core is the `extend` pattern at the heart
//! of real jQuery — `for (p in src) target[p] = src[p]` — which copies
//! many syntactically distinct closures through a dynamic property access;
//! a points-to analysis that cannot resolve `p` smears every method over
//! every read of the namespace object, exploding the call graph \[30\].
//! The determinacy analysis resolves `p` per loop iteration
//! (occurrence-qualified facts), the specializer unrolls and staticizes,
//! and the smearing disappears.
//!
//! Flush-count calibration (matching Table 1's parenthesized numbers):
//! each DOM feature-probe iteration costs exactly two flushes without
//! DetDOM (the `el.getAttribute` method lookup goes through an
//! indeterminate element reference, and the dispatch callee is an
//! indeterminate ternary), and each "hard" probe costs one
//! (`Date.now()`-dependent dispatch, indeterminate even under DetDOM).
//!
//! * **1.0** — fully determinate definitions; 40 DOM probes + 2 hard
//!   probes ⇒ 82 flushes plain, 2 under DetDOM.
//! * **1.1** — extend keys and accessor names tainted by a DOM round-trip
//!   (4 carrier calls ⇒ 4 flushes, plus 3 warmup and 2 probe calls through
//!   the opened namespace), 47 DOM probes + 4 hard ⇒ 107 plain, 4 under
//!   DetDOM; without DetDOM no key facts exist and Spec fails.
//! * **1.2** — heavy code lazily registered and dead; 550 DOM probes ⇒
//!   >1000 flushes plain, 0 under DetDOM; trivially analyzable.
//! * **1.3** — heavy code inside a user-level "ready" handler (statically
//!   reachable, dynamically uncovered) plus a >1000-dispatch handler storm
//!   (each entry flushes, DetDOM or not).

use mujs_dom::document::{Document, DocumentBuilder};
use mujs_dom::events::EventPlan;
use std::fmt::Write as _;

/// A generated library version plus its page and event plan.
#[derive(Debug)]
pub struct JQueryLike {
    /// Version label (`"1.0"`, ...).
    pub version: &'static str,
    /// The library + page script.
    pub src: String,
    /// The page's document.
    pub doc: Document,
    /// Events the driver fires after load.
    pub plan: EventPlan,
}

/// Extend groups (number of `extend(jQ, {...})` calls).
const N_GROUPS: usize = 20;
/// Utilities per group (kept under the unroller's 32-iteration cap).
const N_PER_GROUP: usize = 18;
/// Dynamic accessor definitions (the paper's 21-times-unrolled loop).
const N_ACCESSORS: usize = 21;

fn property_names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("prop{i}")).collect()
}

/// The utility library: `extend` plus `N_GROUPS × N_PER_GROUP` distinct
/// utilities copied into the `jQ` namespace through dynamic property
/// accesses. `key_expr` maps the for-in variable to the written key
/// (versions 1.1+ taint it through the DOM).
fn utils_section(key_expr: &str) -> String {
    let n = N_GROUPS * N_PER_GROUP;
    let mut s = String::new();
    s.push_str("  var jQ = { version: \"x\" };\n");
    s.push_str("  var registry = {};\n");
    let _ = writeln!(
        s,
        "  function extend(target, src) {{ for (var p in src) {{ target[{key_expr}] = src[p]; }} return target; }}"
    );
    for g in 0..N_GROUPS {
        s.push_str("  extend(jQ, {\n");
        for j in 0..N_PER_GROUP {
            let i = g * N_PER_GROUP + j;
            let next = (i + 1) % n;
            let other = (i + 7) % n;
            let _ = writeln!(
                s,
                "    u{i}: function (a, b) {{\n      var d = {{ idx: {i}, left: a, right: b }};\n      registry.slot{i} = d;\n      var sib = jQ.u{next};\n      var alt = jQ.u{other};\n      if (a) {{ return sib; }}\n      if (b) {{ return alt; }}\n      return d;\n    }},"
            );
        }
        s.push_str("  });\n");
    }
    // Exercise a handful of utilities so the run is realistic; their
    // bodies need no facts.
    s.push_str("  jQ.u0(false, false);\n  jQ.u1(false, false);\n  jQ.u2(false, false);\n");
    s
}

/// The dynamic accessor-definition loop (the Figure 3 pattern at the
/// paper's 21-iteration scale). `base_expr` computes the per-iteration
/// property base name.
fn accessor_section(base_expr: &str) -> String {
    let names = property_names(N_ACCESSORS);
    let list = names
        .iter()
        .map(|n| format!("\"{n}\""))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        r#"  var accessorNames = [{list}];
  function defAccessors(base) {{
    jQ["get_" + base] = function (o) {{ return o[base]; }};
    jQ["set_" + base] = function (o, v) {{ o[base] = v; return o; }};
  }}
  for (var di = 0; di < accessorNames.length; di++) {{
    defAccessors({base_expr});
  }}
  var probe = {{}};
  jQ.set_prop0(probe, 11);
  var got = jQ.get_prop0(probe);
"#
    )
}

/// DOM feature detection: `n_dom` DOM probes (2 flushes each without
/// DetDOM, 0 with) and `n_hard` `Date.now`-driven dispatches (1 flush
/// each, always).
fn feature_detection_section(n_dom: usize, n_hard: usize) -> String {
    format!(
        r#"  var features = {{}};
  function setFeature(name, v) {{ features[name] = v; }}
  function clearFeature(name, v) {{ features[name] = false; }}
  var fprobe = document.getElementById("probe");
  for (var fi = 0; fi < {n_dom}; fi++) {{
    var supported = fprobe.getAttribute("data-probe");
    (supported ? setFeature : clearFeature)("feat" + fi, supported);
  }}
  for (var hi = 0; hi < {n_hard}; hi++) {{
    var coin = Date.now() % 2;
    (coin ? setFeature : clearFeature)("hard" + hi, coin);
  }}
"#
    )
}

/// The DOM round-trip used by 1.1 to taint key computations: 4 method
/// calls on an indeterminate element reference ⇒ 4 flushes without
/// DetDOM, and `prefix` is indeterminate (concretely `""`).
fn dom_prefix_section() -> String {
    r#"  var carrier = document.createElement("span");
  carrier.setAttribute("data-prefix", "");
  var prefix = carrier.getAttribute("data-prefix");
  prefix = carrier.getAttribute("data-prefix");
  prefix = carrier.getAttribute("data-prefix");
"#
    .to_owned()
}

fn page_doc() -> Document {
    let mut b = DocumentBuilder::new().title("corpus page").element(
        "div",
        Some("probe"),
        &[("data-probe", "y")],
    );
    for i in 0..8 {
        let id = format!("button{i}");
        b = b.element("button", Some(&id), &[]);
    }
    b.build()
}

/// jQuery-like 1.0: everything determinate except the feature probes.
pub fn v1_0() -> JQueryLike {
    let mut src = String::from("(function() {\n");
    src.push_str(&utils_section("p"));
    src.push_str(&accessor_section("accessorNames[di]"));
    // 82 = 2 × 40 DOM + 2 hard.
    src.push_str(&feature_detection_section(40, 2));
    src.push_str("  window.jQuery = jQ;\n})();\n");
    JQueryLike {
        version: "1.0",
        src,
        doc: page_doc(),
        plan: EventPlan::new(),
    }
}

/// jQuery-like 1.1: keys tainted through the DOM.
pub fn v1_1() -> JQueryLike {
    let mut src = String::from("(function() {\n");
    src.push_str(&dom_prefix_section());
    src.push_str(&utils_section("prefix + p"));
    src.push_str(&accessor_section("prefix + accessorNames[di]"));
    // 107 = 4 carrier + 3 warmup + 2 probe + 2 × 47 DOM + 4 hard.
    src.push_str(&feature_detection_section(47, 4));
    src.push_str("  window.jQuery = jQ;\n})();\n");
    JQueryLike {
        version: "1.1",
        src,
        doc: page_doc(),
        plan: EventPlan::new(),
    }
}

/// jQuery-like 1.2: the heavy code is lazily registered and dead.
pub fn v1_2() -> JQueryLike {
    let mut src = String::from("(function() {\n");
    src.push_str("  var jQ = { version: \"x\" };\n");
    src.push_str("  function lazyInit() {\n");
    src.push_str(&utils_section("p").replace("\n  ", "\n    "));
    src.push_str(&accessor_section("accessorNames[di]").replace("\n  ", "\n    "));
    src.push_str("  }\n");
    src.push_str("  window.addEventListener(\"jq-boot\", lazyInit);\n");
    // >1000 flushes: 2 × 550 DOM probes.
    src.push_str(&feature_detection_section(550, 0));
    src.push_str("  window.jQuery = jQ;\n})();\n");
    JQueryLike {
        version: "1.2",
        src,
        doc: page_doc(),
        plan: EventPlan::new(),
    }
}

/// jQuery-like 1.3: definitions happen inside a user-level event system.
pub fn v1_3() -> JQueryLike {
    let mut src = String::from("(function() {\n");
    src.push_str("  var jQ = { version: \"x\" };\n");
    src.push_str(
        r#"  var handlerTypes = [];
  var handlerFns = [];
  function bind(type, fn) {
    handlerTypes[handlerTypes.length] = type;
    handlerFns[handlerFns.length] = fn;
  }
  function trigger(type) {
    for (var ti = 0; ti < handlerFns.length; ti++) {
      if (handlerTypes[ti] === type) { handlerFns[ti](type); }
    }
  }
  jQ.bind = bind;
  jQ.trigger = trigger;
"#,
    );
    // The heavy definition code lives in a "ready" handler. It is
    // statically reachable through trigger(), but its prelude reads
    // configuration that only exists once the event storm has started —
    // so the main-script counterfactual exploration aborts before any
    // specialization-enabling fact is recorded, and the storm-time
    // executions happen under freshly-flushed state (handler-entry
    // flushes) on dispatch contexts the specializer cannot reach.
    src.push_str("  bind(\"ready\", function() {\n");
    src.push_str("    var cfgNames = window.jqConfig;\n");
    src.push_str("    var cfgCount = cfgNames.length;\n");
    src.push_str(&utils_section("p").replace("\n  ", "\n    "));
    src.push_str(&accessor_section("accessorNames[di]").replace("\n  ", "\n    "));
    src.push_str("  });\n");
    // The main-script dispatch type is indeterminate (Date.now), so the
    // dispatch conditional cannot be pruned in any configuration and the
    // handler stays statically reachable.
    src.push_str("  trigger(Date.now() % 2 ? \"boot\" : \"reboot\");\n");
    // Native handlers that the plan will storm (each entry flushes); the
    // first click publishes the configuration and re-triggers "ready".
    src.push_str(
        r#"  function onClick(ev) {
    jQ.lastEvent = ev.type;
    if (!window.jqConfig) { window.jqConfig = ["alpha", "beta"]; }
    trigger("ready");
  }
  for (var bi = 0; bi < 8; bi++) {
    document.getElementById("button" + bi).addEventListener("click", onClick);
  }
"#,
    );
    src.push_str("  window.jQuery = jQ;\n})();\n");
    let mut plan = EventPlan::new();
    for i in 0..1100 {
        plan = plan.click(&format!("button{}", i % 8));
    }
    JQueryLike {
        version: "1.3",
        src,
        doc: page_doc(),
        plan,
    }
}

/// All four versions in Table 1 order.
pub fn all_versions() -> Vec<JQueryLike> {
    vec![v1_0(), v1_1(), v1_2(), v1_3()]
}

/// `(name, source)` pairs for batch-manifest generation (`mujs-jobs`),
/// in Table 1 order. Sources only — batch jobs supply their own document
/// and event plan; the full-fidelity page setup stays with
/// [`all_versions`].
pub fn named_sources() -> Vec<(String, String)> {
    all_versions()
        .into_iter()
        .map(|v| (format!("jquery-like-{}", v.version), v.src))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_versions_generate_nonempty_sources() {
        for v in all_versions() {
            assert!(v.src.len() > 1000, "{} too small", v.version);
        }
    }

    #[test]
    fn v13_plan_is_a_handler_storm() {
        assert!(v1_3().plan.steps().len() > 1000);
        assert!(v1_0().plan.steps().is_empty());
    }

    #[test]
    fn docs_have_buttons() {
        let v = v1_3();
        assert!(v.doc.get_element_by_id("button0").is_some());
        assert!(v.doc.get_element_by_id("button7").is_some());
    }

    #[test]
    fn utils_use_the_extend_pattern() {
        let v = v1_0();
        assert!(v.src.contains("function extend(target, src)"));
        assert_eq!(v.src.matches("extend(jQ, {").count(), N_GROUPS);
    }
}
