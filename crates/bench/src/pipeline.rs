//! Shared experiment plumbing: dynamic analysis over a page (script +
//! document + event plan), specialization, and budgeted pointer analysis.

use determinacy::{
    supervised_analyze_dom, AnalysisConfig, AnalysisOutcome, AnalysisStatus, RunFailure, RunHooks,
};
use mujs_corpus::jquery_like::JQueryLike;
use mujs_dom::document::Document;
use mujs_dom::events::EventPlan;
use mujs_ir::Program;
use mujs_pta::{PtaConfig, PtaStatus};
use mujs_specialize::{SpecConfig, SpecReport};
use mujs_syntax::SyntaxError;
use std::time::{Duration, Instant};

/// Why a pipeline run failed: the page's script did not parse, or the
/// analysis engine failed (panics are isolated by the run supervisor and
/// surface as [`RunFailure`] instead of aborting the experiment binary).
#[derive(Debug)]
pub enum PipelineError {
    /// The corpus program did not parse.
    Syntax(SyntaxError),
    /// The supervised analysis run failed.
    Analysis(RunFailure),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Syntax(e) => write!(f, "parse failed: {e}"),
            PipelineError::Analysis(e) => write!(f, "analysis failed: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<SyntaxError> for PipelineError {
    fn from(e: SyntaxError) -> Self {
        PipelineError::Syntax(e)
    }
}

impl From<RunFailure> for PipelineError {
    fn from(e: RunFailure) -> Self {
        PipelineError::Analysis(e)
    }
}

/// The deterministic stand-in for the paper's 10-minute timeout: a
/// propagation-work budget that separates the corpus's tractable and
/// intractable configurations by a wide margin.
pub const TABLE1_PTA_BUDGET: u64 = 150_000;

/// The `detbench --pta` comparison budget. Raised from
/// [`TABLE1_PTA_BUDGET`] when the delta-propagating solver landed: the
/// uninjected baseline reaches its true fixpoint (~930k propagations on
/// jQuery 1.0–1.3) well inside this budget, so the comparison measures
/// real fixpoints instead of budget-cap noise. Table 1 keeps the tight
/// budget — its ✓/✗ shape *is* the starvation the paper reports.
pub const PTA_COMPARE_BUDGET: u64 = 2_000_000;

/// Outcome of one full pipeline run.
#[derive(Debug)]
pub struct PipelineResult {
    /// The dynamic analysis outcome.
    pub analysis: AnalysisOutcome,
    /// The specializer report (`None` for baseline runs).
    pub spec_report: Option<SpecReport>,
    /// The program handed to the pointer analysis.
    pub pta_program: Program,
    /// PTA completion status.
    pub pta_status: PtaStatus,
    /// PTA propagation work.
    pub pta_work: u64,
    /// PTA wall time.
    pub pta_time: Duration,
}

/// Runs the instrumented analysis over a page under the run supervisor:
/// parse errors and engine panics come back as [`PipelineError`] values.
///
/// # Errors
///
/// [`PipelineError::Syntax`] for malformed input,
/// [`PipelineError::Analysis`] when the supervised run fails.
pub fn analyze_page(
    src: &str,
    doc: &Document,
    plan: &EventPlan,
    cfg: AnalysisConfig,
) -> Result<(determinacy::driver::DetHarness, AnalysisOutcome), PipelineError> {
    let mut h = determinacy::driver::DetHarness::from_src(src)?;
    let out = supervised_analyze_dom(&mut h, cfg, doc.clone(), plan, &RunHooks::supervised())?;
    Ok((h, out))
}

/// The specializer configuration for an optional `--spec-depth`
/// override: `None` keeps the default context depth, `Some(d)` bounds
/// specialization contexts at depth `d`. Centralized here so every
/// harness (`detbench`, `detblame`, the Table 1 runner) interprets the
/// knob identically.
pub fn spec_config(depth: Option<usize>) -> SpecConfig {
    match depth {
        Some(max_context_depth) => SpecConfig {
            max_context_depth,
            ..SpecConfig::default()
        },
        None => SpecConfig::default(),
    }
}

/// Full Spec pipeline: instrumented run → specializer → budgeted PTA.
/// With `spec: false` the specializer is skipped (Baseline).
/// `spec_depth` overrides the specializer's context-depth bound
/// (`None` = default).
///
/// # Errors
///
/// Propagates [`PipelineError`] from [`analyze_page`].
pub fn spec_pipeline(
    src: &str,
    doc: &Document,
    plan: &EventPlan,
    det_dom: bool,
    spec: bool,
    pta_budget: u64,
    spec_depth: Option<usize>,
) -> Result<PipelineResult, PipelineError> {
    let cfg = AnalysisConfig {
        det_dom,
        ..Default::default()
    };
    let (h, mut analysis) = analyze_page(src, doc, plan, cfg)?;
    let (pta_program, spec_report) = if spec {
        let s = mujs_specialize::specialize(
            &h.program,
            &analysis.facts,
            &mut analysis.ctxs,
            &spec_config(spec_depth),
        );
        (s.program, Some(s.report))
    } else {
        (h.program.clone(), None)
    };
    let t0 = Instant::now();
    let pta = mujs_pta::solve(
        &pta_program,
        &PtaConfig {
            budget: pta_budget,
            ..Default::default()
        },
    );
    let pta_time = t0.elapsed();
    Ok(PipelineResult {
        analysis,
        spec_report,
        pta_program,
        pta_status: pta.status,
        pta_work: pta.stats.propagations,
        pta_time,
    })
}

/// One Table 1 row.
#[derive(Debug)]
pub struct Table1Row {
    /// Version label.
    pub version: &'static str,
    /// Baseline PTA completed within budget.
    pub baseline_ok: bool,
    /// Baseline PTA work.
    pub baseline_work: u64,
    /// Spec PTA completed.
    pub spec_ok: bool,
    /// Spec PTA work.
    pub spec_work: u64,
    /// Heap flushes of the plain dynamic analysis.
    pub spec_flushes: u32,
    /// Whether the plain dynamic analysis hit the flush cap.
    pub spec_capped: bool,
    /// Spec+DetDOM PTA completed.
    pub detdom_ok: bool,
    /// Spec+DetDOM PTA work.
    pub detdom_work: u64,
    /// Heap flushes of the DetDOM dynamic analysis.
    pub detdom_flushes: u32,
    /// Whether the DetDOM analysis hit the flush cap.
    pub detdom_capped: bool,
}

impl Table1Row {
    /// Renders the paper's `3 (82)` / `7 (>1000)` cell format.
    pub fn cell(ok: bool, flushes: Option<(u32, bool)>) -> String {
        let mark = if ok { "✓" } else { "✗" };
        match flushes {
            Some((n, capped)) => {
                if capped {
                    format!("{mark} (>1000)")
                } else {
                    format!("{mark} ({n})")
                }
            }
            None => mark.to_owned(),
        }
    }
}

/// Runs the full Table 1 experiment for one corpus version.
///
/// # Errors
///
/// Propagates the first [`PipelineError`] from the three configurations.
pub fn run_table1(v: &JQueryLike, pta_budget: u64) -> Result<Table1Row, PipelineError> {
    run_table1_at_depth(v, pta_budget, None)
}

/// [`run_table1`] with an explicit specializer context-depth override
/// (the `--spec-depth` knob).
///
/// # Errors
///
/// Propagates the first [`PipelineError`] from the three configurations.
pub fn run_table1_at_depth(
    v: &JQueryLike,
    pta_budget: u64,
    spec_depth: Option<usize>,
) -> Result<Table1Row, PipelineError> {
    let baseline = spec_pipeline(
        &v.src, &v.doc, &v.plan, false, false, pta_budget, spec_depth,
    )?;
    let spec = spec_pipeline(&v.src, &v.doc, &v.plan, false, true, pta_budget, spec_depth)?;
    let detdom = spec_pipeline(&v.src, &v.doc, &v.plan, true, true, pta_budget, spec_depth)?;
    Ok(Table1Row {
        version: v.version,
        baseline_ok: baseline.pta_status == PtaStatus::Completed,
        baseline_work: baseline.pta_work,
        spec_ok: spec.pta_status == PtaStatus::Completed,
        spec_work: spec.pta_work,
        spec_flushes: spec.analysis.stats.heap_flushes,
        spec_capped: spec.analysis.status == AnalysisStatus::FlushCapReached,
        detdom_ok: detdom.pta_status == PtaStatus::Completed,
        detdom_work: detdom.pta_work,
        detdom_flushes: detdom.analysis.stats.heap_flushes,
        detdom_capped: detdom.analysis.status == AnalysisStatus::FlushCapReached,
    })
}

/// One PTA run of the three-way precision comparison.
#[derive(Debug, Clone, serde::Serialize)]
pub struct PtaModeRow {
    /// Completed within budget.
    pub ok: bool,
    /// Propagation work (deterministic).
    pub work: u64,
    /// Solve wall time in milliseconds (machine-dependent).
    pub wall_ms: f64,
    /// Propagation throughput (`work / wall`), the solver's headline
    /// performance number.
    pub work_per_sec: f64,
    /// Call sites with at least one resolved target.
    pub call_sites: usize,
    /// Call sites with more than one canonical target.
    pub poly_sites: usize,
    /// Mean points-to set size over non-empty variable nodes.
    pub avg_points_to: f64,
    /// Distinct canonical functions reached through calls.
    pub reachable_funcs: usize,
}

fn mode_row(r: &mujs_pta::PtaResult, prog: &Program, wall: Duration) -> PtaModeRow {
    let p = r.precision(prog);
    let wall_ms = wall.as_secs_f64() * 1e3;
    PtaModeRow {
        ok: r.status == PtaStatus::Completed,
        work: r.stats.propagations,
        wall_ms,
        work_per_sec: if wall_ms > 0.0 {
            r.stats.propagations as f64 / (wall_ms / 1e3)
        } else {
            0.0
        },
        call_sites: p.call_sites,
        poly_sites: p.poly_sites,
        avg_points_to: p.avg_points_to,
        reachable_funcs: p.reachable_funcs,
    }
}

/// Which solver implementation a comparison run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PtaSolverKind {
    /// The delta-propagating bitset solver (production).
    Delta,
    /// The naive reference solver (the pre-optimization algorithm, kept
    /// as the benchmark's "before" and the equivalence-test oracle).
    Reference,
}

/// Runs one timed solve and produces its comparison row.
fn timed_solve(prog: &Program, cfg: &PtaConfig, solver: PtaSolverKind) -> PtaModeRow {
    let t0 = Instant::now();
    let r = match solver {
        PtaSolverKind::Delta => mujs_pta::solve(prog, cfg),
        PtaSolverKind::Reference => mujs_pta::solve_reference(prog, cfg),
    };
    mode_row(&r, prog, t0.elapsed())
}

/// One ranked root-cause column of a comparison row: a blame cause of
/// the uninjected baseline solve, as distilled by
/// [`mujs_analysis::blame_report`] from a provenance-enabled solve.
#[derive(Debug, Clone, serde::Serialize)]
pub struct RootCauseCol {
    /// Human-readable cause label (e.g. `star-smear(Alloc(StmtId(12)))`).
    pub label: String,
    /// Cause kind slug (`star-smear`, `eval`, `native`, …).
    pub kind: String,
    /// Points-to tuples this cause is blamed for.
    pub tuples: u64,
    /// Fact-injection sites suggested to remove the cause.
    pub suggestions: usize,
}

/// Baseline vs fact-injected vs specialized PTA over one corpus version:
/// the evidence that injecting determinacy facts into the solver recovers
/// the precision of the paper's source-rewriting pipeline.
#[derive(Debug, Clone, serde::Serialize)]
pub struct PtaCompareRow {
    /// Corpus version label.
    pub version: String,
    /// Facts available for injection (agreeing-across-contexts sites).
    pub injected_sites: usize,
    /// Plain solver, original program.
    pub baseline: PtaModeRow,
    /// Plain program, facts injected into the solver.
    pub injected: PtaModeRow,
    /// Specialized (source-rewritten) program, plain solver.
    pub specialized: PtaModeRow,
    /// Top baseline imprecision root causes (provenance-enabled delta
    /// solve; ranked by blamed tuple count).
    pub root_causes: Vec<RootCauseCol>,
}

/// Runs the three-way PTA comparison for one corpus version. Uses the
/// DetDOM configuration (the paper's most deterministic setting) so the
/// dynamic run yields the richest fact set for both consumers.
///
/// # Errors
///
/// Propagates [`PipelineError`] from [`analyze_page`].
pub fn run_pta_compare(v: &JQueryLike, pta_budget: u64) -> Result<PtaCompareRow, PipelineError> {
    run_pta_compare_with(v, pta_budget, PtaSolverKind::Delta, None)
}

/// Ranks the baseline imprecision root causes of `prog` via one
/// provenance-enabled delta solve at `budget`, keeping the top `top_k`.
pub fn root_cause_cols(prog: &Program, budget: u64, top_k: usize) -> Vec<RootCauseCol> {
    let cfg = PtaConfig {
        budget,
        provenance: true,
        ..Default::default()
    };
    let r = mujs_pta::solve(prog, &cfg);
    mujs_analysis::blame_report(prog, &r, top_k)
        .map(|report| {
            report
                .causes
                .iter()
                .map(|c| RootCauseCol {
                    label: c.cause.label(),
                    kind: c.cause.kind().to_owned(),
                    tuples: c.tuples,
                    suggestions: c.suggestions.len(),
                })
                .collect()
        })
        .unwrap_or_default()
}

/// [`run_pta_compare`] with an explicit solver choice — `detbench --pta`
/// runs both to produce its before (reference) / after (delta) pair —
/// and specializer depth override (the `--spec-depth` knob).
///
/// # Errors
///
/// Propagates [`PipelineError`] from [`analyze_page`].
pub fn run_pta_compare_with(
    v: &JQueryLike,
    pta_budget: u64,
    solver: PtaSolverKind,
    spec_depth: Option<usize>,
) -> Result<PtaCompareRow, PipelineError> {
    let cfg = AnalysisConfig {
        det_dom: true,
        ..Default::default()
    };
    let (h, mut analysis) = analyze_page(&v.src, &v.doc, &v.plan, cfg)?;
    let mut prog = h.program;
    let facts = determinacy::injectable_facts(&analysis.facts, &mut prog);
    let injected_sites = facts.len();

    let base_cfg = PtaConfig {
        budget: pta_budget,
        ..Default::default()
    };
    let baseline = timed_solve(&prog, &base_cfg, solver);
    let inj_cfg = PtaConfig {
        budget: pta_budget,
        facts: Some(facts),
        ..Default::default()
    };
    let injected = timed_solve(&prog, &inj_cfg, solver);
    let spec = mujs_specialize::specialize(
        &prog,
        &analysis.facts,
        &mut analysis.ctxs,
        &spec_config(spec_depth),
    );
    let specialized = timed_solve(&spec.program, &base_cfg, solver);
    // Root causes describe the *baseline program's* imprecision, so the
    // provenance solve always uses the (deterministic) delta solver —
    // the reference/delta choice above only affects the timed rows.
    let root_causes = root_cause_cols(&prog, pta_budget, 3);

    Ok(PtaCompareRow {
        version: v.version.to_owned(),
        injected_sites,
        baseline,
        injected,
        specialized,
        root_causes,
    })
}

/// One row of the shortcut comparison: injection-only vs
/// injection+shortcuts at the tight Table 1 budget, the evidence that
/// fast-forwarding determinate regions past constraint generation
/// completes where flat fact injection starves.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ShortcutCompareRow {
    /// Corpus version label.
    pub version: String,
    /// Determinate regions the extractor selected.
    pub candidates: usize,
    /// Regions that survived replay and carry a summary.
    pub regions: usize,
    /// Total points-to tuples across all summaries.
    pub tuples: usize,
    /// The replay degraded (summaries dropped, ordinary analysis).
    pub degraded: bool,
    /// Fact injection only (the PR 4 mode) at the same budget.
    pub injected: PtaModeRow,
    /// Fact injection plus region summaries.
    pub shortcut: PtaModeRow,
}

/// Runs the shortcut comparison for one corpus version at `pta_budget`
/// (the Table 1 budget, where injection-only starves on the heavy
/// versions). Both solves share one dynamic-analysis run and one
/// injectable-fact set; the shortcut solve additionally carries the
/// replayed region summaries.
///
/// # Errors
///
/// Propagates [`PipelineError`] from [`analyze_page`].
pub fn run_shortcut_compare(
    v: &JQueryLike,
    pta_budget: u64,
) -> Result<ShortcutCompareRow, PipelineError> {
    let cfg = AnalysisConfig {
        det_dom: true,
        ..Default::default()
    };
    let (h, analysis) = analyze_page(&v.src, &v.doc, &v.plan, cfg.clone())?;
    let mut prog = h.program;
    let facts = determinacy::injectable_facts(&analysis.facts, &mut prog);
    let sums =
        determinacy::shortcut_summaries(&v.src, &v.doc, &v.plan, &cfg, &analysis.facts, &mut prog);

    let inj_cfg = PtaConfig {
        budget: pta_budget,
        facts: Some(facts.clone()),
        ..Default::default()
    };
    let injected = timed_solve(&prog, &inj_cfg, PtaSolverKind::Delta);
    let sc_cfg = PtaConfig {
        budget: pta_budget,
        facts: Some(facts),
        shortcuts: Some(std::sync::Arc::new(sums.summaries.clone())),
        ..Default::default()
    };
    let shortcut = timed_solve(&prog, &sc_cfg, PtaSolverKind::Delta);

    Ok(ShortcutCompareRow {
        version: v.version.to_owned(),
        candidates: sums.candidates,
        regions: sums.summaries.len(),
        tuples: sums.summaries.tuple_count(),
        degraded: sums.degraded,
        injected,
        shortcut,
    })
}

/// One row of the `--pta` thread-scaling study: the uninjected baseline
/// solve of one corpus version at one thread count. Work is
/// deterministic across thread counts (the epoch-sharded solver's
/// contract); wall time and throughput are the scaling signal.
#[derive(Debug, Clone, serde::Serialize)]
pub struct PtaScaleRow {
    /// Corpus version label.
    pub version: String,
    /// Completed within budget.
    pub ok: bool,
    /// Propagation work (thread-count-independent).
    pub work: u64,
    /// Solve wall time in milliseconds (machine-dependent).
    pub wall_ms: f64,
    /// Propagation throughput (`work / wall`).
    pub work_per_sec: f64,
}

/// A prepared per-version workload for the thread-scaling study. The
/// dynamic-analysis phase dominates preparation cost, so each version is
/// analyzed once and its baseline program solved at every thread count.
#[derive(Debug)]
pub struct PtaScaleCase {
    /// Corpus version label.
    pub version: String,
    /// The baseline (unspecialized, uninjected) program — the heaviest
    /// of the three comparison workloads, hence the scaling subject.
    pub program: Program,
}

/// Prepares the baseline program of every Table 1 corpus version, using
/// the same DetDOM analysis configuration as [`run_pta_compare`] so the
/// scaling rows' `work` matches the comparison rows' baseline `work`.
///
/// # Errors
///
/// Propagates [`PipelineError`] from [`analyze_page`].
pub fn pta_scale_cases() -> Result<Vec<PtaScaleCase>, PipelineError> {
    mujs_corpus::jquery_like::all_versions()
        .iter()
        .map(|v| {
            let cfg = AnalysisConfig {
                det_dom: true,
                ..Default::default()
            };
            let (h, _) = analyze_page(&v.src, &v.doc, &v.plan, cfg)?;
            Ok(PtaScaleCase {
                version: v.version.to_owned(),
                program: h.program,
            })
        })
        .collect()
}

/// Solves one prepared scaling case at one thread count. Returns the
/// timed row plus a digest of the full `export_json` (call graph and
/// points-to relation), letting the harness assert byte-level result
/// identity across thread counts without holding every export in memory.
pub fn pta_scale_solve(case: &PtaScaleCase, pta_budget: u64, threads: usize) -> (PtaScaleRow, u64) {
    pta_scale_solve_sharded(case, pta_budget, threads, PtaConfig::default().shards)
}

/// [`pta_scale_solve`] with an explicit shard count — the `--shards`
/// sweep solves the same workloads at several shard counts and asserts
/// export-digest identity (shards, like threads, must not move results).
pub fn pta_scale_solve_sharded(
    case: &PtaScaleCase,
    pta_budget: u64,
    threads: usize,
    shards: usize,
) -> (PtaScaleRow, u64) {
    let cfg = PtaConfig {
        budget: pta_budget,
        threads,
        shards,
        ..Default::default()
    };
    let t0 = Instant::now();
    let r = mujs_pta::solve(&case.program, &cfg);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let digest = {
        use std::hash::Hasher;
        let mut h = mujs_pta::hash::FxHasher::default();
        h.write(r.export_json().as_bytes());
        h.finish()
    };
    let row = PtaScaleRow {
        version: case.version.clone(),
        ok: r.status == PtaStatus::Completed,
        work: r.stats.propagations,
        wall_ms,
        work_per_sec: if wall_ms > 0.0 {
            r.stats.propagations as f64 / (wall_ms / 1e3)
        } else {
            0.0
        },
    };
    (row, digest)
}

/// One row of the §5.2 eval study.
#[derive(Debug)]
pub struct EvalElimRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Whether all evals were eliminated (plain).
    pub plain_ok: bool,
    /// Whether all evals were eliminated (DetDOM).
    pub detdom_ok: bool,
    /// Evals surviving in the plain configuration.
    pub plain_remaining: usize,
}

/// Runs one eval benchmark through analyze → specialize and reports
/// whether every `eval` site was specialized away, plus the count of
/// surviving sites. A benchmark whose analysis fails (parse error, engine
/// panic) counts as "not handled" rather than killing the study.
pub fn eliminate(b: &mujs_corpus::evalbench::EvalBenchmark, det_dom: bool) -> (bool, usize) {
    let cfg = AnalysisConfig {
        det_dom,
        ..Default::default()
    };
    let doc = b.doc();
    let plan = b.plan();
    let (h, mut out) = match analyze_page(&b.src, &doc, &plan, cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{}: {e}", b.name);
            return (false, 0);
        }
    };
    let spec = mujs_specialize::specialize(
        &h.program,
        &out.facts,
        &mut out.ctxs,
        &SpecConfig::default(),
    );
    // Per-site aggregation over all rewrite visits: a site counts as
    // specialized when every visit eliminated it or erased it with dead
    // code; a site with no events was never reached by the dynamic run
    // (the paper's "not covered" category) and counts as a failure.
    use mujs_specialize::EvalStatus;
    use std::collections::HashMap;
    let mut per_site: HashMap<mujs_ir::StmtId, bool> = HashMap::new();
    for (site, st) in &spec.report.eval_events {
        let ok = matches!(st, EvalStatus::Eliminated | EvalStatus::DeadCode);
        per_site
            .entry(*site)
            .and_modify(|v| *v = *v && ok)
            .or_insert(ok);
    }
    let mut failures = 0usize;
    for f in &h.program.funcs {
        mujs_ir::Program::walk_block(&f.body, &mut |s| {
            if matches!(s.kind, mujs_ir::StmtKind::Eval { .. })
                && !matches!(per_site.get(&s.id), Some(true))
            {
                failures += 1;
            }
        });
    }
    (failures == 0, failures)
}

/// Runs the §5.2 study for one benchmark under both configurations.
pub fn run_eval_elim(b: &mujs_corpus::evalbench::EvalBenchmark) -> EvalElimRow {
    let (plain_ok, plain_remaining) = eliminate(b, false);
    let (detdom_ok, _) = eliminate(b, true);
    EvalElimRow {
        name: b.name,
        plain_ok,
        detdom_ok,
        plain_remaining,
    }
}

/// Pool-backed Table 1: one job per corpus version, results in version
/// order regardless of worker count (the rows carry no timing data, so
/// the table itself is scheduling-independent; only the bracketed PTA
/// work figures could vary with machine load, and those are
/// deterministic too since the PTA is budget- not time-bounded).
pub fn run_table1_pooled(
    versions: Vec<JQueryLike>,
    pta_budget: u64,
    pool: &mujs_jobs::JobPool,
) -> Vec<Result<Table1Row, PipelineError>> {
    let jobs: Vec<(String, _)> = versions
        .into_iter()
        .map(|v| {
            let label = format!("table1-{}", v.version);
            (label, move |ctx: &mujs_jobs::JobCtx| {
                let row = run_table1(&v, pta_budget);
                ctx.progress(format!("version {} done", v.version));
                row
            })
        })
        .collect();
    pool.run(jobs)
        .into_iter()
        .map(|verdict| match verdict {
            mujs_jobs::JobVerdict::Done(r) => r,
            mujs_jobs::JobVerdict::Panicked(p) => {
                Err(PipelineError::Analysis(RunFailure::EnginePanic {
                    payload: p,
                    steps: 0,
                    seed: 0,
                }))
            }
            mujs_jobs::JobVerdict::Cancelled => {
                Err(PipelineError::Analysis(RunFailure::Cancelled { seed: 0 }))
            }
            // Bench jobs never arm the watchdog; treat a wedge like a
            // panic-shaped loss to keep the match total.
            mujs_jobs::JobVerdict::Wedged => {
                Err(PipelineError::Analysis(RunFailure::EnginePanic {
                    payload: "wedged past watchdog budget".to_owned(),
                    steps: 0,
                    seed: 0,
                }))
            }
        })
        .collect()
}

/// Pool-backed §5.2 study: one job per runnable benchmark, rows in
/// benchmark order regardless of worker count.
pub fn run_eval_elim_pooled(
    benchmarks: Vec<mujs_corpus::evalbench::EvalBenchmark>,
    pool: &mujs_jobs::JobPool,
) -> Vec<Option<EvalElimRow>> {
    let jobs: Vec<(String, _)> = benchmarks
        .into_iter()
        .map(|b| {
            let label = format!("eval-elim-{}", b.name);
            (label, move |_ctx: &mujs_jobs::JobCtx| run_eval_elim(&b))
        })
        .collect();
    pool.run(jobs)
        .into_iter()
        .map(mujs_jobs::JobVerdict::into_done)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_smoke_on_lazy_version() {
        // jQuery-like 1.2 is the cheap one; exercise all three configs.
        let v = mujs_corpus::jquery_like::v1_2();
        let row = run_table1(&v, TABLE1_PTA_BUDGET).expect("pipeline runs");
        assert!(row.baseline_ok && row.spec_ok && row.detdom_ok);
        assert!(row.spec_capped, "1.2 plain hits the flush cap");
        assert_eq!(row.detdom_flushes, 0);
    }

    #[test]
    fn cell_rendering_matches_paper_format() {
        assert_eq!(Table1Row::cell(true, Some((82, false))), "✓ (82)");
        assert_eq!(Table1Row::cell(false, Some((1001, true))), "✗ (>1000)");
        assert_eq!(Table1Row::cell(true, None), "✓");
    }
}
