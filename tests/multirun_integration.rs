//! §7 integration: combining facts from several instrumented runs on
//! different inputs (a) stays sound against arbitrary concrete executions
//! and (b) extends what the specializer can do.

use determinacy::multirun::{analyze_many, export_json, project_to_depth};
use determinacy::{AnalysisConfig, DetHarness, Fact};
use mujs_gen::{generate, GenConfig};
use mujs_specialize::{specialize, SpecConfig};

/// For every random program: combine 4 runs' facts, then verify each
/// determinate combined fact against 6 fresh concrete executions by
/// re-recording concrete observations and replaying the lookup.
#[test]
fn combined_facts_remain_sound() {
    let cfg = GenConfig {
        top_stmts: 10,
        indet_pct: 40,
        ..Default::default()
    };
    for seed in 0..25u64 {
        let src = generate(seed ^ 0x5EED, &cfg);
        let mut h = DetHarness::from_src(&src).expect("parses");
        let combined = analyze_many(
            &mut h,
            &[seed, seed + 99, seed + 500, seed + 1000],
            AnalysisConfig {
                record_observations: true,
                flush_cap: None,
                ..Default::default()
            },
        );
        // Sound runs can never disagree on a determinate value.
        assert_eq!(combined.conflicts, 0, "det-vs-det conflict:\n{src}");
        // Validate every run's observations against every other run's via
        // the combined database indirectly: the combined db must be no
        // stronger than the pointwise agreement of the runs.
        for run in &combined.runs {
            for (kind, point, ctx, fact) in run.facts.iter() {
                if let Fact::Det(v) = fact {
                    // If the combined db still claims a determinate value
                    // at the translated context, it must be this value.
                    let frames = run.ctxs.frames(ctx);
                    let mut master = CtxWalk::new(&combined);
                    if let Some(tc) = master.lookup(&frames) {
                        if let Some(Fact::Det(cv)) = combined.facts.get(kind, point, tc) {
                            assert!(
                                cv.same(v),
                                "combined fact disagrees with a run's own sound fact\n{src}"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Helper to re-intern frame chains against the combined master table
/// without mutating it (lookup-only).
struct CtxWalk<'a> {
    outcome: &'a determinacy::multirun::MultiRunOutcome,
}

impl<'a> CtxWalk<'a> {
    fn new(outcome: &'a determinacy::multirun::MultiRunOutcome) -> Self {
        CtxWalk { outcome }
    }

    fn lookup(&mut self, frames: &[(mujs_ir::StmtId, u32)]) -> Option<mujs_interp::CtxId> {
        // The master table interned every run's chains during absorb, so a
        // fresh child() walk only re-finds existing ids; we rebuild via a
        // scan over all interned ids for a lookup-only API.
        let t = &self.outcome.ctxs;
        for id in 0..t.len() as u32 {
            let c = mujs_interp::CtxId(id);
            if t.frames(c) == frames {
                return Some(c);
            }
        }
        None
    }
}

#[test]
fn multi_run_improves_specialization_coverage() {
    // A dispatcher whose branch is chosen by a coin flip. Counterfactual
    // execution would explore the untaken leg too, so each leg starts
    // with an effectful native that *aborts* counterfactuals (§4) — a
    // single run therefore covers exactly its taken leg, and only
    // combining runs with different inputs covers both.
    let src = r#"
function legA() { __opaque(); return eval("'a' + 'x'"); }
function legB() { __opaque(); return eval("'b' + 'y'"); }
if (Math.random() < 0.5) { legA(); } else { legB(); }
"#;
    // Single run: at most one leg covered.
    let mut h1 = DetHarness::from_src(src).unwrap();
    let mut single = h1.analyze(AnalysisConfig::default());
    let s1 = specialize(
        &h1.program,
        &single.facts,
        &mut single.ctxs,
        &SpecConfig::default(),
    );
    assert_eq!(
        s1.report.evals_eliminated, 1,
        "one run covers exactly its taken leg: {:?}",
        s1.report
    );
    // Multiple seeds: both legs covered; both evals eliminated.
    let mut h = DetHarness::from_src(src).unwrap();
    let mut combined = analyze_many(
        &mut h,
        &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9],
        AnalysisConfig::default(),
    );
    let s = specialize(
        &h.program,
        &combined.facts,
        &mut combined.ctxs,
        &SpecConfig::default(),
    );
    assert_eq!(
        s.report.evals_eliminated, 2,
        "combined runs cover both legs: {:?}",
        s.report
    );
}

#[test]
fn projection_depth_tradeoff_is_monotone() {
    // Deeper suffixes retain at least as many determinate facts.
    let src = r#"
function wrap(v) { return inner(v); }
function inner(v) { var got = v; return got; }
wrap(1);
wrap(2);
inner(3);
"#;
    let mut h = DetHarness::from_src(src).unwrap();
    let mut out = h.analyze(AnalysisConfig::default());
    let mut counts = Vec::new();
    for k in 0..4 {
        let projected = project_to_depth(&out.facts, &mut out.ctxs, k);
        counts.push(projected.det_count());
    }
    for w in counts.windows(2) {
        assert!(
            w[0] <= w[1],
            "determinate facts must grow with depth: {counts:?}"
        );
    }
    // Full depth dominates everything.
    assert!(*counts.last().unwrap() <= out.facts.det_count());
}

#[test]
fn json_export_of_figure4_facts() {
    let src = r#"
function show(id) {
  var code = "reg['" + id + "']";
  return eval(code);
}
var reg = { a: 1 };
show("a");
"#;
    let mut h = DetHarness::from_src(src).unwrap();
    let out = h.analyze(AnalysisConfig::default());
    let json = export_json(&out.facts, &h.program, &h.source, &out.ctxs);
    let rows: Vec<serde_json::Value> = serde_json::from_str(&json).unwrap();
    // The eval-argument fact is exported with its context chain.
    let eval_row = rows
        .iter()
        .find(|r| r["kind"] == "EvalArg")
        .expect("eval fact exported");
    assert_eq!(eval_row["determinate"], true);
    assert_eq!(eval_row["value"], "\"reg['a']\"");
    assert!(!eval_row["context"].as_array().unwrap().is_empty());
}
