// The paper's jQuery.extend motif: dynamic property keys that the
// determinacy analysis proves constant, enabling specialization.
var lib = {};
function extend(target, spec) {
  for (var key in spec) {
    target[key] = spec[key];
  }
  return target;
}
extend(lib, { first: 1, second: 2 });
extend(lib, { third: 3 });
var sum = lib.first + lib.second + lib.third;
