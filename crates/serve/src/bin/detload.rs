//! `detload` — load generator and cold/warm benchmark client for
//! `detserved`.
//!
//! ```text
//! detload --connect HOST:PORT [--suite jquery|smoke | --script FILE]
//!         [--warm N] [--pta-budget B] [--label NAME] [--out FILE]
//!         [--shutdown]
//! ```
//!
//! Drives one request set against a running daemon twice over: a **cold**
//! pass (first sight of every request — the daemon computes) and `N`
//! **warm** passes (byte-identical requests — the daemon must serve pure
//! cache hits). Around each pass it snapshots the daemon's `stats`
//! counters, so the report separates the two regimes exactly:
//!
//! * `counters.cold` / `counters.warm` — per-pass deltas of every
//!   numeric counter the daemon exposes (cache hits/misses, parses,
//!   analyses, PTA solves and propagations). A healthy warm pass shows
//!   `pipeline.pta_propagations = 0` and only `*_hits` moving.
//! * `timing` — requests/sec and p50/p99 latency per regime, plus the
//!   `warm_over_cold` throughput ratio.
//!
//! Timing numbers vary with the machine; the counter deltas are
//! deterministic for a given request set, which is what CI asserts on.
//!
//! Exit codes: 0 on success, 1 on connection/protocol failures or any
//! request settling with an `error` frame, 2 on usage errors.

use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Instant;

fn usage() -> ExitCode {
    eprintln!(
        "usage: detload --connect HOST:PORT [options]\n\
         \n\
         request set (pick one):\n\
         \x20 --suite NAME      built-in set: `jquery` (the jQuery-like 1.0/1.1\n\
         \x20                   pair with fact-injected PTA; the ROADMAP benchmark)\n\
         \x20                   or `smoke` (three tiny programs; CI-sized). The\n\
         \x20                   default is `jquery`.\n\
         \x20 --script FILE     replay raw request lines (one JSON object per line)\n\
         \n\
         options:\n\
         \x20 --warm N          warm passes over the set (default 3)\n\
         \x20 --pta-budget B    PTA propagation budget for suite requests\n\
         \x20                   (default 2000000; 0 skips the PTA stage)\n\
         \x20 --label NAME      label recorded in the report (default: the suite)\n\
         \x20 --out FILE        write the JSON report here (default: stdout)\n\
         \x20 --shutdown        send a shutdown request when done\n\
         \n\
         exit codes: 0 success; 1 connection/protocol/request failure; 2 usage"
    );
    ExitCode::from(2)
}

/// A line-JSON client over one TCP connection.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Request lines must leave immediately or Nagle + delayed ACK
        // inflate every round-trip by tens of milliseconds.
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Sends one request line and reads frames until the terminal frame
    /// (`result`/`error`/`stats`/`pong`/`bye`), which it returns.
    fn round_trip(&mut self, line: &str) -> Result<Value, String> {
        writeln!(self.writer, "{line}").map_err(|e| format!("send: {e}"))?;
        self.writer.flush().map_err(|e| format!("send: {e}"))?;
        loop {
            let mut frame = String::new();
            let n = self
                .reader
                .read_line(&mut frame)
                .map_err(|e| format!("recv: {e}"))?;
            if n == 0 {
                return Err("server closed the connection".to_owned());
            }
            let v: Value =
                serde_json::from_str(frame.trim_end()).map_err(|e| format!("frame: {e:?}"))?;
            match v.get("ev").and_then(Value::as_str) {
                Some("result" | "error" | "stats" | "pong" | "bye") => return Ok(v),
                _ => continue, // progress frame
            }
        }
    }

    fn stats(&mut self) -> Result<Value, String> {
        let frame = self.round_trip(r#"{"op":"stats","id":"detload-stats"}"#)?;
        frame
            .get("stats")
            .cloned()
            .ok_or_else(|| "stats frame missing counters".to_owned())
    }
}

/// Flattens nested counter objects to dotted numeric leaves.
fn flatten(prefix: &str, v: &Value, out: &mut Vec<(String, f64)>) {
    match v {
        Value::Num(n) => out.push((prefix.to_owned(), *n)),
        Value::Object(fields) => {
            for (k, v) in fields {
                let key = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(&key, v, out);
            }
        }
        _ => {}
    }
}

/// The per-pass counter delta (`after - before`) over every numeric leaf.
fn counter_delta(before: &Value, after: &Value) -> Value {
    let (mut b, mut a) = (Vec::new(), Vec::new());
    flatten("", before, &mut b);
    flatten("", after, &mut a);
    let fields = a
        .into_iter()
        .map(|(k, av)| {
            let bv = b
                .iter()
                .find(|(bk, _)| *bk == k)
                .map(|(_, v)| *v)
                .unwrap_or(0.0);
            (k, Value::Num(av - bv))
        })
        .collect();
    Value::Object(fields)
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx]
}

/// One measured pass over the request set.
struct Pass {
    latencies_ms: Vec<f64>,
    secs: f64,
}

fn run_pass(client: &mut Client, requests: &[String]) -> Result<Pass, String> {
    let mut latencies_ms = Vec::with_capacity(requests.len());
    let start = Instant::now();
    for line in requests {
        let t0 = Instant::now();
        let frame = client.round_trip(line)?;
        latencies_ms.push(t0.elapsed().as_secs_f64() * 1000.0);
        if frame.get("ev").and_then(Value::as_str) == Some("error") {
            let msg = frame
                .get("message")
                .and_then(Value::as_str)
                .unwrap_or("unknown");
            return Err(format!("request failed: {msg}"));
        }
    }
    Ok(Pass {
        latencies_ms,
        secs: start.elapsed().as_secs_f64(),
    })
}

fn analyze_line(name: &str, src: &str, pta_budget: u64) -> String {
    let mut fields = vec![
        ("op".to_owned(), Value::Str("analyze".to_owned())),
        ("id".to_owned(), Value::Str(name.to_owned())),
        ("name".to_owned(), Value::Str(name.to_owned())),
        ("src".to_owned(), Value::Str(src.to_owned())),
        ("include_facts".to_owned(), Value::Bool(false)),
    ];
    if pta_budget > 0 {
        fields.push(("pta_budget".to_owned(), Value::Num(pta_budget as f64)));
        fields.push(("inject".to_owned(), Value::Bool(true)));
    }
    serde_json::to_string(&Value::Object(fields)).expect("request serializes")
}

fn suite_requests(suite: &str, pta_budget: u64) -> Option<Vec<String>> {
    match suite {
        "jquery" => {
            let v10 = mujs_corpus::jquery_like::v1_0();
            let v11 = mujs_corpus::jquery_like::v1_1();
            Some(vec![
                analyze_line("jquery-like-1.0", &v10.src, pta_budget),
                analyze_line("jquery-like-1.1", &v11.src, pta_budget),
            ])
        }
        "smoke" => Some(vec![
            analyze_line(
                "smoke-det",
                "var x = { f: 23 }; var y = x.f + 1;",
                pta_budget,
            ),
            analyze_line(
                "smoke-call",
                "function f(a) { return a + 1; } var r = f(41);",
                pta_budget,
            ),
            analyze_line(
                "smoke-dyn",
                "var o = { k: 7 }; var n = 'k'; var v = o[n];",
                pta_budget,
            ),
        ]),
        _ => None,
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut connect = None;
    let mut suite = "jquery".to_owned();
    let mut script: Option<String> = None;
    let mut warm = 3u32;
    let mut pta_budget = 2_000_000u64;
    let mut label: Option<String> = None;
    let mut out: Option<String> = None;
    let mut shutdown = false;

    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        let result: Result<(), String> = (|| {
            match arg.as_str() {
                "--connect" => connect = Some(value("--connect")?),
                "--suite" => suite = value("--suite")?,
                "--script" => script = Some(value("--script")?),
                "--warm" => {
                    warm = value("--warm")?
                        .parse()
                        .map_err(|e| format!("--warm: {e}"))?
                }
                "--pta-budget" => {
                    pta_budget = value("--pta-budget")?
                        .parse()
                        .map_err(|e| format!("--pta-budget: {e}"))?;
                }
                "--label" => label = Some(value("--label")?),
                "--out" => out = Some(value("--out")?),
                "--shutdown" => shutdown = true,
                other => return Err(format!("unknown argument `{other}`")),
            }
            Ok(())
        })();
        if let Err(e) = result {
            eprintln!("detload: {e}");
            return usage();
        }
    }
    let Some(addr) = connect else {
        eprintln!("detload: --connect is required");
        return usage();
    };

    let requests = match &script {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty())
                .map(str::to_owned)
                .collect(),
            Err(e) => {
                eprintln!("detload: read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => match suite_requests(&suite, pta_budget) {
            Some(r) => r,
            None => {
                eprintln!("detload: unknown suite `{suite}` (try jquery or smoke)");
                return usage();
            }
        },
    };
    let label = label.unwrap_or_else(|| {
        script
            .as_deref()
            .map(|p| format!("script:{p}"))
            .unwrap_or_else(|| suite.clone())
    });

    match run_benchmark(&addr, &label, &requests, warm, shutdown) {
        Ok(report) => {
            let text = serde_json::to_string_pretty(&report).expect("report serializes");
            match out {
                Some(path) => {
                    if let Err(e) = std::fs::write(&path, text + "\n") {
                        eprintln!("detload: write {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!("detload: report written to {path}");
                }
                None => println!("{text}"),
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("detload: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_benchmark(
    addr: &str,
    label: &str,
    requests: &[String],
    warm: u32,
    shutdown: bool,
) -> Result<Value, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;

    let before_cold = client.stats()?;
    let cold = run_pass(&mut client, requests)?;
    let after_cold = client.stats()?;

    let mut warm_pass = Pass {
        latencies_ms: Vec::new(),
        secs: 0.0,
    };
    for _ in 0..warm {
        let p = run_pass(&mut client, requests)?;
        warm_pass.latencies_ms.extend(p.latencies_ms);
        warm_pass.secs += p.secs;
    }
    let after_warm = client.stats()?;

    if shutdown {
        client.round_trip(r#"{"op":"shutdown","id":"detload-bye"}"#)?;
    }

    let rps = |p: &Pass| {
        if p.secs > 0.0 {
            p.latencies_ms.len() as f64 / p.secs
        } else {
            0.0
        }
    };
    let (cold_rps, warm_rps) = (rps(&cold), rps(&warm_pass));
    let mut cold_sorted = cold.latencies_ms.clone();
    cold_sorted.sort_by(f64::total_cmp);
    let mut warm_sorted = warm_pass.latencies_ms.clone();
    warm_sorted.sort_by(f64::total_cmp);

    let num = Value::Num;
    Ok(Value::Object(vec![
        ("label".to_owned(), Value::Str(label.to_owned())),
        ("requests_per_pass".to_owned(), num(requests.len() as f64)),
        ("warm_passes".to_owned(), num(f64::from(warm))),
        (
            "counters".to_owned(),
            Value::Object(vec![
                ("cold".to_owned(), counter_delta(&before_cold, &after_cold)),
                ("warm".to_owned(), counter_delta(&after_cold, &after_warm)),
            ]),
        ),
        (
            "timing".to_owned(),
            Value::Object(vec![
                ("cold_rps".to_owned(), num(cold_rps)),
                ("warm_rps".to_owned(), num(warm_rps)),
                (
                    "cold_p50_ms".to_owned(),
                    num(percentile(&cold_sorted, 0.50)),
                ),
                (
                    "cold_p99_ms".to_owned(),
                    num(percentile(&cold_sorted, 0.99)),
                ),
                (
                    "warm_p50_ms".to_owned(),
                    num(percentile(&warm_sorted, 0.50)),
                ),
                (
                    "warm_p99_ms".to_owned(),
                    num(percentile(&warm_sorted, 0.99)),
                ),
                (
                    "warm_over_cold".to_owned(),
                    num(if cold_rps > 0.0 {
                        warm_rps / cold_rps
                    } else {
                        0.0
                    }),
                ),
            ]),
        ),
    ]))
}
