//! The Andersen-style inclusion-constraint solver with on-the-fly call
//! graph construction — the reproduction's stand-in for WALA's JavaScript
//! points-to analysis \[30\].
//!
//! Dynamic property accesses whose names the analysis cannot resolve smear
//! through per-object ⋆-nodes: a dynamic store reaches every read of the
//! object, and a dynamic load sees every store. This is the imprecision
//! engine behind Table 1's baseline blow-ups; the specializer removes it
//! by turning dynamic keys static.
//!
//! The solver counts propagation work and stops when a configured budget
//! is exceeded — the deterministic equivalent of the paper's 10-minute
//! timeout.

use crate::nodes::{AbsObj, Node};
use mujs_ir::ir::{Place, PropKey, StmtKind};
use mujs_ir::resolve::{Binding, Resolver};
use mujs_ir::{FuncId, FuncKind, Program, Stmt, StmtId, Sym};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

/// Determinacy facts injected into the solver: per-site resolutions of
/// dynamic property keys and call targets, keyed by statement id.
///
/// The paper's pipeline removes ⋆-smearing by *rewriting the source*
/// (specialization) and re-running the analysis; fact injection achieves
/// the same precision without touching the program — when a site carries
/// a fact, the solver treats the dynamic key as static (resp. resolves
/// the call directly) instead of routing through the per-object ⋆ nodes.
#[derive(Debug, Clone, Default)]
pub struct InjectedFacts {
    /// Dynamic property accesses (`GetProp`/`SetProp` with
    /// [`PropKey::Dynamic`]) whose key is determinate: site → interned key.
    pub prop_keys: HashMap<StmtId, Sym>,
    /// Call/new sites whose callee is determinate: site → target function.
    pub callees: HashMap<StmtId, FuncId>,
}

impl InjectedFacts {
    /// Total number of injectable facts.
    pub fn len(&self) -> usize {
        self.prop_keys.len() + self.callees.len()
    }

    /// Whether there is anything to inject.
    pub fn is_empty(&self) -> bool {
        self.prop_keys.is_empty() && self.callees.is_empty()
    }
}

/// Solver configuration.
#[derive(Debug, Clone)]
pub struct PtaConfig {
    /// Propagation-work budget (points-to insertions); exceeding it stops
    /// the analysis with [`PtaStatus::BudgetExceeded`].
    pub budget: u64,
    /// Determinacy facts to consult at dynamic property accesses and
    /// call sites (`None` = plain baseline analysis).
    pub facts: Option<InjectedFacts>,
}

impl Default for PtaConfig {
    fn default() -> Self {
        PtaConfig {
            budget: 25_000_000,
            facts: None,
        }
    }
}

/// How a solve ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PtaStatus {
    /// Fixpoint reached within budget.
    Completed,
    /// Budget exhausted (the paper's ✗ / timeout).
    BudgetExceeded,
}

/// Work statistics.
#[derive(Debug, Clone, Default)]
pub struct PtaStats {
    /// Points-to facts inserted (the budgeted quantity).
    pub propagations: u64,
    /// Distinct pointer nodes materialized.
    pub nodes: usize,
    /// Subset edges added.
    pub edges: u64,
    /// Call edges discovered.
    pub call_edges: usize,
    /// Dynamic property accesses resolved by an injected fact.
    pub injected_keys: usize,
    /// Call sites resolved by an injected fact.
    pub injected_calls: usize,
}

/// Precision metrics of a finished solve, comparable across baseline,
/// fact-injected, and specialized runs of the same source program.
#[derive(Debug, Clone, Default)]
pub struct PtaPrecision {
    /// Call sites with at least one resolved target.
    pub call_sites: usize,
    /// Call sites with more than one (canonical) target.
    pub poly_sites: usize,
    /// Mean number of canonical targets per resolved call site.
    pub avg_targets: f64,
    /// Mean points-to set size over variable nodes with non-empty sets.
    pub avg_points_to: f64,
    /// Largest points-to set over variable nodes.
    pub max_points_to: usize,
    /// Distinct (canonical) functions appearing as call targets.
    pub reachable_funcs: usize,
}

/// Result of a solve.
#[derive(Debug)]
pub struct PtaResult {
    /// Completion status.
    pub status: PtaStatus,
    /// Statistics.
    pub stats: PtaStats,
    pts: HashMap<u32, HashSet<u32>>,
    node_ids: HashMap<Node, u32>,
    objs: Vec<AbsObj>,
    call_graph: BTreeMap<StmtId, BTreeSet<FuncId>>,
}

impl PtaResult {
    /// The points-to set of a node (empty if the node never materialized).
    pub fn points_to(&self, node: &Node) -> Vec<AbsObj> {
        let Some(id) = self.node_ids.get(node) else {
            return Vec::new();
        };
        self.points_to_id(*id)
    }

    /// Functions a call/new site may invoke.
    pub fn callees(&self, site: StmtId) -> Vec<FuncId> {
        let mut v: Vec<FuncId> = self
            .call_graph
            .get(&site)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        v.sort();
        v
    }

    /// All resolved call edges, in deterministic (site, target) order.
    pub fn call_graph(&self) -> &BTreeMap<StmtId, BTreeSet<FuncId>> {
        &self.call_graph
    }

    /// Number of call sites with more than `k` targets (a precision
    /// metric).
    pub fn polymorphic_sites(&self, k: usize) -> usize {
        self.call_graph.values().filter(|s| s.len() > k).count()
    }

    /// Every materialized node with its (sorted) points-to set, in
    /// deterministic node order — byte-identical across runs.
    pub fn all_points_to(&self) -> Vec<(Node, Vec<AbsObj>)> {
        let mut v: Vec<(Node, Vec<AbsObj>)> = self
            .node_ids
            .iter()
            .map(|(n, id)| (n.clone(), self.points_to_id(*id)))
            .collect();
        v.sort();
        v
    }

    fn points_to_id(&self, id: u32) -> Vec<AbsObj> {
        let mut v: Vec<AbsObj> = self
            .pts
            .get(&id)
            .map(|s| s.iter().map(|o| self.objs[*o as usize].clone()).collect())
            .unwrap_or_default();
        v.sort();
        v
    }

    /// Precision metrics comparable across baseline / fact-injected /
    /// specialized runs. Call targets are canonicalized through
    /// `specialized_from` so that a specialized program's clones count as
    /// their originals.
    pub fn precision(&self, prog: &Program) -> PtaPrecision {
        let canon = |mut f: FuncId| {
            let mut fuel = 64;
            while let Some(orig) = prog.func(f).specialized_from {
                f = orig;
                fuel -= 1;
                if fuel == 0 {
                    break;
                }
            }
            f
        };
        let call_sites = self.call_graph.len();
        let mut poly_sites = 0;
        let mut total_targets = 0usize;
        let mut reachable: BTreeSet<FuncId> = BTreeSet::new();
        for targets in self.call_graph.values() {
            let canonical: BTreeSet<FuncId> = targets.iter().map(|&f| canon(f)).collect();
            if canonical.len() > 1 {
                poly_sites += 1;
            }
            total_targets += canonical.len();
            reachable.extend(canonical);
        }
        let mut var_nodes = 0usize;
        let mut sum = 0usize;
        let mut max_points_to = 0usize;
        for (node, id) in &self.node_ids {
            if matches!(node, Node::Temp(..) | Node::Local(..)) {
                let sz = self.pts.get(id).map_or(0, |s| s.len());
                if sz > 0 {
                    var_nodes += 1;
                    sum += sz;
                    max_points_to = max_points_to.max(sz);
                }
            }
        }
        PtaPrecision {
            call_sites,
            poly_sites,
            avg_targets: if call_sites > 0 {
                total_targets as f64 / call_sites as f64
            } else {
                0.0
            },
            avg_points_to: if var_nodes > 0 {
                sum as f64 / var_nodes as f64
            } else {
                0.0
            },
            max_points_to,
            reachable_funcs: reachable.len(),
        }
    }
}

/// Runs the analysis over every function of `prog`.
pub fn solve(prog: &Program, cfg: &PtaConfig) -> PtaResult {
    Solver::new(prog, cfg.clone()).run()
}

#[derive(Debug, Clone)]
enum Pending {
    /// `dst ⊇ base.key` (`None` = dynamic key).
    Load { key: Option<Sym>, dst: u32 },
    /// `base.key ⊇ src` (`None` = dynamic key).
    Store { key: Option<Sym>, src: u32 },
    /// A call through the node: wire params/ret when closures arrive.
    Call {
        site: StmtId,
        this: Option<u32>,
        args: Vec<u32>,
        dst: u32,
        is_new: bool,
    },
}

struct Solver<'p> {
    prog: &'p Program,
    cfg: PtaConfig,
    resolver: Resolver,
    node_ids: HashMap<Node, u32>,
    nodes: Vec<Node>,
    obj_ids: HashMap<AbsObj, u32>,
    objs: Vec<AbsObj>,
    pts: Vec<HashSet<u32>>,
    edges: Vec<Vec<u32>>,
    pending: Vec<Vec<Pending>>,
    worklist: VecDeque<(u32, u32)>, // (node, new obj)
    call_graph: BTreeMap<StmtId, BTreeSet<FuncId>>,
    processed_funcs: HashSet<FuncId>,
    func_queue: VecDeque<FuncId>,
    stats: PtaStats,
    exhausted: bool,
}

impl<'p> Solver<'p> {
    fn new(prog: &'p Program, cfg: PtaConfig) -> Self {
        Solver {
            prog,
            cfg,
            resolver: Resolver::new(prog),
            node_ids: HashMap::new(),
            nodes: Vec::new(),
            obj_ids: HashMap::new(),
            objs: Vec::new(),
            pts: Vec::new(),
            edges: Vec::new(),
            pending: Vec::new(),
            worklist: VecDeque::new(),
            call_graph: BTreeMap::new(),
            processed_funcs: HashSet::new(),
            func_queue: VecDeque::new(),
            stats: PtaStats::default(),
            exhausted: false,
        }
    }

    fn node(&mut self, n: Node) -> u32 {
        if let Some(&id) = self.node_ids.get(&n) {
            return id;
        }
        let id = self.nodes.len() as u32;
        self.node_ids.insert(n.clone(), id);
        self.nodes.push(n.clone());
        self.pts.push(HashSet::new());
        self.edges.push(Vec::new());
        self.pending.push(Vec::new());
        // Materializing a named property wires it into the ⋆ join.
        if let Node::Prop(o, _) = &n {
            let star = self.node(Node::StarProps(o.clone()));
            self.add_edge(id, star);
        }
        id
    }

    fn obj(&mut self, o: AbsObj) -> u32 {
        if let Some(&id) = self.obj_ids.get(&o) {
            return id;
        }
        let id = self.objs.len() as u32;
        self.obj_ids.insert(o.clone(), id);
        self.objs.push(o);
        id
    }

    fn add_edge(&mut self, from: u32, to: u32) {
        if from == to || self.edges[from as usize].contains(&to) {
            return;
        }
        self.edges[from as usize].push(to);
        self.stats.edges += 1;
        let existing: Vec<u32> = self.pts[from as usize].iter().copied().collect();
        for o in existing {
            self.insert(to, o);
        }
    }

    fn insert(&mut self, node: u32, obj: u32) {
        if self.exhausted || self.pts[node as usize].contains(&obj) {
            return;
        }
        // Check *before* inserting: a solve that needs exactly `budget`
        // insertions completes, and the recorded propagation count always
        // equals the number of facts actually inserted.
        if self.stats.propagations == self.cfg.budget {
            self.exhausted = true;
            return;
        }
        self.pts[node as usize].insert(obj);
        self.stats.propagations += 1;
        self.worklist.push_back((node, obj));
    }

    fn seed(&mut self, node: u32, o: AbsObj) {
        let oid = self.obj(o);
        self.insert(node, oid);
    }

    // ------------------------------------------------------------ naming

    fn place_node(&mut self, func: FuncId, place: &Place) -> u32 {
        match place {
            Place::Temp(t) => self.node(Node::Temp(func, t.0)),
            // Named and slot-resolved places both resolve by name; the
            // resolver agrees with the lowering's slot coordinates.
            p => {
                let name = p.as_var_sym().expect("non-temp place");
                self.named_node(func, name)
            }
        }
    }

    fn named_node(&mut self, func: FuncId, name: Sym) -> u32 {
        match self.resolver.resolve(self.prog, func, name) {
            // Specializer clones share their original's variable space:
            // nested closures keep referring to the original's locals, so
            // a clone's writes must reach them (sound, slightly merging
            // local-variable contexts while the heap stays per-clone).
            Binding::Local(f) => {
                let f = self.canon(f);
                self.node(Node::Local(f, name))
            }
            Binding::Global => self.node(Node::Prop(AbsObj::Global, name)),
        }
    }

    /// Follows `specialized_from` links to the original function.
    fn canon(&self, mut f: FuncId) -> FuncId {
        let mut fuel = 64;
        while let Some(orig) = self.prog.func(f).specialized_from {
            f = orig;
            fuel -= 1;
            if fuel == 0 {
                break;
            }
        }
        f
    }

    // -------------------------------------------------------- constraints

    fn run(mut self) -> PtaResult {
        if let Some(entry) = self.prog.entry() {
            self.enqueue_func(entry);
            let this_entry = self.node(Node::This(entry));
            self.seed(this_entry, AbsObj::Global);
        }
        // The analysis is flow-insensitive: generate constraints for all
        // reachable functions, then propagate to fixpoint, interleaved
        // because the call graph is discovered on the fly.
        while !self.exhausted {
            if let Some(f) = self.func_queue.pop_front() {
                self.gen_function(f);
                continue;
            }
            let Some((node, obj)) = self.worklist.pop_front() else {
                break;
            };
            self.propagate(node, obj);
        }
        self.stats.nodes = self.nodes.len();
        self.stats.call_edges = self.call_graph.values().map(|s| s.len()).sum();
        PtaResult {
            status: if self.exhausted {
                PtaStatus::BudgetExceeded
            } else {
                PtaStatus::Completed
            },
            stats: self.stats,
            pts: self
                .pts
                .iter()
                .enumerate()
                .map(|(i, s)| (i as u32, s.clone()))
                .collect(),
            node_ids: self.node_ids,
            objs: self.objs,
            call_graph: self.call_graph,
        }
    }

    fn propagate(&mut self, node: u32, obj: u32) {
        let targets = self.edges[node as usize].clone();
        for t in targets {
            self.insert(t, obj);
        }
        let pendings = self.pending[node as usize].clone();
        let o = self.objs[obj as usize].clone();
        for p in pendings {
            self.apply_pending(&p, &o);
        }
    }

    fn attach(&mut self, node: u32, p: Pending) {
        let existing: Vec<u32> = self.pts[node as usize].iter().copied().collect();
        self.pending[node as usize].push(p.clone());
        for oid in existing {
            let o = self.objs[oid as usize].clone();
            self.apply_pending(&p, &o);
        }
    }

    fn apply_pending(&mut self, p: &Pending, o: &AbsObj) {
        match p {
            Pending::Load { key, dst } => self.apply_load(o, *key, *dst),
            Pending::Store { key, src } => self.apply_store(o, *key, *src),
            Pending::Call {
                site,
                this,
                args,
                dst,
                is_new,
            } => self.apply_call(o, *site, *this, args.clone(), *dst, *is_new),
        }
    }

    fn apply_load(&mut self, o: &AbsObj, key: Option<Sym>, dst: u32) {
        let unknown = self.node(Node::UnknownProps(o.clone()));
        self.add_edge(unknown, dst);
        match key {
            Some(k) => {
                let f = self.node(Node::Prop(o.clone(), k));
                self.add_edge(f, dst);
            }
            None => {
                let star = self.node(Node::StarProps(o.clone()));
                self.add_edge(star, dst);
            }
        }
        // Loads fall through the prototype chain.
        let pv = self.proto_var(o);
        self.attach(pv, Pending::Load { key, dst });
    }

    fn apply_store(&mut self, o: &AbsObj, key: Option<Sym>, src: u32) {
        match key {
            Some(k) => {
                let f = self.node(Node::Prop(o.clone(), k));
                self.add_edge(src, f);
            }
            None => {
                let unknown = self.node(Node::UnknownProps(o.clone()));
                self.add_edge(src, unknown);
            }
        }
    }

    fn proto_var(&mut self, o: &AbsObj) -> u32 {
        let pv = self.node(Node::ProtoVar(o.clone()));
        // `ProtoOf(F)` objects chain to Object.prototype, which we fold
        // into Opaque; the chain itself comes from `new` wiring.
        pv
    }

    fn apply_call(
        &mut self,
        o: &AbsObj,
        site: StmtId,
        this: Option<u32>,
        args: Vec<u32>,
        dst: u32,
        is_new: bool,
    ) {
        match o {
            AbsObj::Closure(f) => {
                let f = *f;
                self.call_graph.entry(site).or_default().insert(f);
                self.enqueue_func(f);
                let func = self.prog.func(f).clone();
                let pf = self.canon(f);
                for (i, &p) in func.params.iter().enumerate() {
                    if let Some(&a) = args.get(i) {
                        let pn = self.node(Node::Local(pf, p));
                        self.add_edge(a, pn);
                    }
                }
                let ret = self.node(Node::Ret(f));
                self.add_edge(ret, dst);
                if is_new {
                    // The freshly constructed object.
                    let alloc = AbsObj::Alloc(site);
                    self.seed(dst, alloc.clone());
                    let this_n = self.node(Node::This(f));
                    let alloc_id = self.obj(alloc.clone());
                    self.insert(this_n, alloc_id);
                    // Its prototype chain parent is F.prototype's value.
                    let fproto = self.node(Node::Prop(AbsObj::Closure(f), Sym::PROTOTYPE));
                    let pv = self.node(Node::ProtoVar(alloc));
                    self.add_edge(fproto, pv);
                } else if let Some(t) = this {
                    let this_n = self.node(Node::This(f));
                    self.add_edge(t, this_n);
                }
            }
            AbsObj::Opaque => {
                // Calling the unknown: arguments escape, the result is
                // unknown.
                let sink = self.node(Node::UnknownProps(AbsObj::Opaque));
                for a in args {
                    self.add_edge(a, sink);
                }
                self.seed(dst, AbsObj::Opaque);
            }
            _ => {
                // Calling a non-function abstract object: no effect (the
                // concrete execution would throw).
            }
        }
    }

    fn enqueue_func(&mut self, f: FuncId) {
        if self.processed_funcs.insert(f) {
            self.func_queue.push_back(f);
        }
    }

    // ----------------------------------------------------- per-statement

    /// The effective key of a property access: static keys pass through;
    /// dynamic keys resolve through an injected determinacy fact when one
    /// exists for the site.
    fn site_key(&mut self, site: StmtId, key: &PropKey) -> Option<Sym> {
        match key {
            PropKey::Static(k) => Some(*k),
            PropKey::Dynamic(_) => {
                let injected = self
                    .cfg
                    .facts
                    .as_ref()
                    .and_then(|f| f.prop_keys.get(&site))
                    .copied();
                if injected.is_some() {
                    self.stats.injected_keys += 1;
                }
                injected
            }
        }
    }

    /// The injected determinate callee of a call/new site, if any.
    fn site_callee(&self, site: StmtId) -> Option<FuncId> {
        self.cfg
            .facts
            .as_ref()
            .and_then(|f| f.callees.get(&site))
            .copied()
    }

    fn gen_function(&mut self, fid: FuncId) {
        let f = self.prog.func(fid).clone();
        // Hoisted function declarations.
        for &(name, nested) in &f.decls.funcs {
            let n = self.named_node(fid, name);
            self.seed(n, AbsObj::Closure(nested));
            self.init_closure(nested);
        }
        // `arguments`: coarse—an opaque array.
        if f.kind == FuncKind::Function {
            let cf = self.canon(fid);
            let n = self.node(Node::Local(cf, Sym::ARGUMENTS));
            self.seed(n, AbsObj::Opaque);
        }
        let stmts = f.body.clone();
        self.gen_block(fid, &stmts);
    }

    fn init_closure(&mut self, f: FuncId) {
        let protos = self.node(Node::Prop(AbsObj::Closure(f), Sym::PROTOTYPE));
        self.seed(protos, AbsObj::ProtoOf(f));
        let ctor = self.node(Node::Prop(AbsObj::ProtoOf(f), Sym::CONSTRUCTOR));
        self.seed(ctor, AbsObj::Closure(f));
    }

    fn gen_block(&mut self, fid: FuncId, block: &[Stmt]) {
        // Temps index into `fid`'s own frame; named places resolve through
        // the resolver (which already skips eval-chunk pseudo-scopes).
        let wf = fid;
        for s in block {
            if self.exhausted {
                return;
            }
            match &s.kind {
                StmtKind::Const { .. } => {}
                StmtKind::Copy { dst, src } => {
                    let d = self.place_node(wf, dst);
                    let sn = self.place_node(wf, src);
                    self.add_edge(sn, d);
                }
                StmtKind::Closure { dst, func } => {
                    let d = self.place_node(wf, dst);
                    self.seed(d, AbsObj::Closure(*func));
                    self.init_closure(*func);
                    // On-the-fly call graph: the body is analyzed only
                    // once a call edge reaches the closure.
                }
                StmtKind::NewObject { dst, .. } => {
                    let d = self.place_node(wf, dst);
                    self.seed(d, AbsObj::Alloc(s.id));
                }
                StmtKind::GetProp { dst, obj, key } => {
                    let d = self.place_node(wf, dst);
                    let o = self.place_node(wf, obj);
                    let key = self.site_key(s.id, key);
                    self.attach(o, Pending::Load { key, dst: d });
                }
                StmtKind::SetProp { obj, key, val } => {
                    let o = self.place_node(wf, obj);
                    let v = self.place_node(wf, val);
                    let key = self.site_key(s.id, key);
                    self.attach(o, Pending::Store { key, src: v });
                }
                StmtKind::DeleteProp { .. } => {}
                StmtKind::BinOp { .. } | StmtKind::UnOp { .. } => {}
                StmtKind::Call {
                    dst,
                    callee,
                    this_arg,
                    args,
                } => {
                    let d = self.place_node(wf, dst);
                    let t = this_arg.as_ref().map(|p| self.place_node(wf, p));
                    let a: Vec<u32> = args.iter().map(|p| self.place_node(wf, p)).collect();
                    if let Some(target) = self.site_callee(s.id) {
                        // Determinate callee: wire the one target directly
                        // instead of waiting for closures to flow in.
                        self.stats.injected_calls += 1;
                        self.init_closure(target);
                        self.apply_call(&AbsObj::Closure(target), s.id, t, a, d, false);
                    } else {
                        let c = self.place_node(wf, callee);
                        self.attach(
                            c,
                            Pending::Call {
                                site: s.id,
                                this: t,
                                args: a,
                                dst: d,
                                is_new: false,
                            },
                        );
                    }
                }
                StmtKind::New { dst, callee, args } => {
                    let d = self.place_node(wf, dst);
                    let a: Vec<u32> = args.iter().map(|p| self.place_node(wf, p)).collect();
                    if let Some(target) = self.site_callee(s.id) {
                        self.stats.injected_calls += 1;
                        self.init_closure(target);
                        self.apply_call(&AbsObj::Closure(target), s.id, None, a, d, true);
                    } else {
                        let c = self.place_node(wf, callee);
                        self.attach(
                            c,
                            Pending::Call {
                                site: s.id,
                                this: None,
                                args: a,
                                dst: d,
                                is_new: true,
                            },
                        );
                    }
                }
                StmtKind::If {
                    then_blk, else_blk, ..
                } => {
                    self.gen_block(fid, then_blk);
                    self.gen_block(fid, else_blk);
                }
                StmtKind::Loop {
                    cond_blk,
                    body,
                    update,
                    ..
                } => {
                    self.gen_block(fid, cond_blk);
                    self.gen_block(fid, body);
                    self.gen_block(fid, update);
                }
                StmtKind::Breakable { body } => self.gen_block(fid, body),
                StmtKind::Try {
                    block,
                    catch,
                    finally,
                } => {
                    self.gen_block(fid, block);
                    if let Some((name, b)) = catch {
                        let exc = self.node(Node::ExcPool);
                        let v = self.named_node(wf, *name);
                        self.add_edge(exc, v);
                        self.gen_block(fid, b);
                    }
                    if let Some(b) = finally {
                        self.gen_block(fid, b);
                    }
                }
                StmtKind::Return { arg } => {
                    if let Some(p) = arg {
                        let r = self.node(Node::Ret(wf_ret(self.prog, fid)));
                        let v = self.place_node(wf, p);
                        self.add_edge(v, r);
                    }
                }
                StmtKind::Break | StmtKind::Continue => {}
                StmtKind::Throw { arg } => {
                    let exc = self.node(Node::ExcPool);
                    let v = self.place_node(wf, arg);
                    self.add_edge(v, exc);
                }
                StmtKind::LoadThis { dst } => {
                    let d = self.place_node(wf, dst);
                    let t = self.node(Node::This(wf_ret(self.prog, fid)));
                    self.add_edge(t, d);
                }
                StmtKind::TypeofName { .. } => {}
                StmtKind::HasProp { .. } | StmtKind::InstanceOf { .. } => {}
                StmtKind::EnumProps { dst, .. } => {
                    let d = self.place_node(wf, dst);
                    self.seed(d, AbsObj::Alloc(s.id));
                }
                StmtKind::Eval { dst, .. } => {
                    // Statically unanalyzable; the specializer's job is to
                    // remove these (§2.3).
                    let d = self.place_node(wf, dst);
                    self.seed(d, AbsObj::Opaque);
                }
            }
        }
    }
}

/// The function owning writes for name resolution (eval chunks resolve
/// through their parent).
fn effective_func(prog: &Program, f: FuncId) -> FuncId {
    let mut cur = f;
    loop {
        let func = prog.func(cur);
        if func.kind != FuncKind::EvalChunk {
            return cur;
        }
        match func.parent {
            Some(p) => cur = p,
            None => return cur,
        }
    }
}

/// `this`/`return` of an eval chunk belong to the enclosing function.
fn wf_ret(prog: &Program, f: FuncId) -> FuncId {
    effective_func(prog, f)
}
