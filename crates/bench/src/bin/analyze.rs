//! Command-line front door: run the dynamic determinacy analysis on a
//! JavaScript file and print its facts (human-readable or JSON).
//!
//! ```console
//! $ cargo run -p mujs-bench --bin analyze -- path/to/file.js
//! $ cargo run -p mujs-bench --bin analyze -- file.js --json
//! $ cargo run -p mujs-bench --bin analyze -- file.js --det-dom --seeds 1,2,3
//! $ cargo run -p mujs-bench --bin analyze -- file.js --spec   # + specializer report
//! $ cargo run -p mujs-bench --bin analyze -- file.js --seeds 1,2,3,4 --workers 4
//! $ cargo run -p mujs-bench --bin analyze -- file.js --deadline-ms 5000 --mem-cells 2000000
//! ```
//!
//! Unknown flags are rejected with a usage error rather than silently
//! ignored; `--workers N` fans the seed list out over a job pool and is
//! guaranteed to print the same bytes as the sequential path.

use determinacy::multirun::{analyze_many_with, export_json, MultiRunOutcome};
use determinacy::{AnalysisConfig, DetHarness};
use mujs_dom::document::DocumentBuilder;
use mujs_dom::events::EventPlan;
use mujs_jobs::{analyze_many_pooled, JobPool};
use mujs_specialize::SpecConfig;

struct Options {
    path: String,
    json: bool,
    det_dom: bool,
    spec: bool,
    seeds: Vec<u64>,
    deadline_ms: Option<u64>,
    mem_cells: Option<u64>,
    workers: usize,
}

fn usage(problem: &str) -> ! {
    if !problem.is_empty() {
        eprintln!("error: {problem}");
    }
    eprintln!(
        "usage: analyze <file.js> [--json] [--det-dom] [--spec] [--seeds a,b,c]\n\
         \x20              [--deadline-ms N] [--mem-cells N] [--workers N]\n\
         \n\
         \x20 --json           print the sorted JSON fact export instead of the summary\n\
         \x20 --det-dom        enable the deterministic-DOM analysis mode\n\
         \x20 --spec           also run the specializer and print its report\n\
         \x20 --seeds a,b,c    comma-separated seed list for the multi-run analysis\n\
         \x20 --deadline-ms N  per-run wall-clock budget (AnalysisStatus::Deadline on expiry)\n\
         \x20 --mem-cells N    per-run heap-cell budget (AnalysisStatus::MemLimit on expiry)\n\
         \x20 --workers N      fan seeds out over N worker threads (same output bytes)"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut o = Options {
        path: String::new(),
        json: false,
        det_dom: false,
        spec: false,
        seeds: vec![AnalysisConfig::default().seed],
        deadline_ms: None,
        mem_cells: None,
        workers: 1,
    };
    let value = |args: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        match args.get(*i) {
            Some(v) => v.clone(),
            None => usage(&format!("{flag} needs a value")),
        }
    };
    let number = |args: &[String], i: &mut usize, flag: &str| -> u64 {
        let v = value(args, i, flag);
        match v.parse() {
            Ok(n) => n,
            Err(_) => usage(&format!("{flag} wants an integer, got `{v}`")),
        }
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => o.json = true,
            "--det-dom" => o.det_dom = true,
            "--spec" => o.spec = true,
            "--seeds" => {
                let v = value(&args, &mut i, "--seeds");
                o.seeds = v
                    .split(',')
                    .map(|x| match x.trim().parse() {
                        Ok(n) => n,
                        Err(_) => usage(&format!("--seeds has a non-integer entry `{x}`")),
                    })
                    .collect();
                if o.seeds.is_empty() {
                    usage("--seeds needs at least one seed");
                }
            }
            "--deadline-ms" => o.deadline_ms = Some(number(&args, &mut i, "--deadline-ms")),
            "--mem-cells" => o.mem_cells = Some(number(&args, &mut i, "--mem-cells")),
            "--workers" => {
                o.workers = match number(&args, &mut i, "--workers") {
                    0 => usage("--workers wants a positive integer"),
                    n => n as usize,
                };
            }
            "--help" | "-h" => usage(""),
            flag if flag.starts_with("--") => usage(&format!("unknown flag `{flag}`")),
            positional => {
                if !o.path.is_empty() {
                    usage(&format!("unexpected extra argument `{positional}`"));
                }
                o.path = positional.to_owned();
            }
        }
        i += 1;
    }
    if o.path.is_empty() {
        usage("a <file.js> argument is required");
    }
    o
}

fn main() {
    let o = parse_args();
    let src = match std::fs::read_to_string(&o.path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {}: {e}", o.path);
            std::process::exit(1);
        }
    };
    let mut h = match DetHarness::from_src(&src) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("syntax error: {e}");
            std::process::exit(1);
        }
    };
    let cfg = AnalysisConfig {
        det_dom: o.det_dom,
        deadline_ms: o.deadline_ms,
        mem_cell_budget: o.mem_cells,
        ..Default::default()
    };
    let doc = DocumentBuilder::new().title("analyze-cli").build();
    let plan = EventPlan::new();
    let mut combined: MultiRunOutcome = if o.workers > 1 {
        let pool = JobPool::new(o.workers);
        match analyze_many_pooled(&src, &o.seeds, cfg, Some(&doc), &plan, &pool) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("syntax error: {e}");
                std::process::exit(1);
            }
        }
    } else {
        analyze_many_with(&mut h, &o.seeds, cfg, Some(&doc), &plan)
    };

    if o.json {
        println!(
            "{}",
            export_json(&combined.facts, &h.program, &h.source, &combined.ctxs)
        );
    } else {
        eprintln!(
            "runs: {} | facts: {} ({} determinate) | conflicts: {}",
            combined.runs.len(),
            combined.facts.len(),
            combined.facts.det_count(),
            combined.conflicts
        );
        for run in &combined.runs {
            eprintln!(
                "  run: status={:?} flushes={} counterfactuals={} steps={}",
                run.status, run.stats.heap_flushes, run.stats.counterfactuals, run.stats.steps
            );
        }
        for f in &combined.failures {
            eprintln!("  run failed: {f}");
        }
        let mut lines: Vec<String> = combined
            .facts
            .iter()
            .filter_map(|(k, p, c, _)| {
                combined
                    .facts
                    .describe(k, p, c, &h.program, &h.source, &combined.ctxs)
                    .map(|d| format!("{k:?}\t{d}"))
            })
            .collect();
        lines.sort();
        lines.dedup();
        for l in lines {
            println!("{l}");
        }
    }

    if o.spec {
        let s = mujs_specialize::specialize(
            &h.program,
            &combined.facts,
            &mut combined.ctxs,
            &SpecConfig::default(),
        );
        eprintln!(
            "specializer: clones={} branchesPruned={} keysStatic={} loopsUnrolled={} evalsEliminated={} evalsRemaining={} redirects={}",
            s.report.clones,
            s.report.branches_pruned,
            s.report.keys_staticized,
            s.report.loops_unrolled,
            s.report.evals_eliminated,
            s.report.evals_remaining,
            s.report.calls_redirected
        );
    }
}
