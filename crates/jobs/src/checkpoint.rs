//! Atomic batch checkpoints: crash-safe persistence of completed report
//! rows, keyed by job content.
//!
//! A campaign interrupted at job 7,000 of 10,000 should not redo the first
//! 7,000. While a batch runs, the scheduler periodically persists every
//! *settled* report row (completed or degraded — statuses whose bytes are
//! final) to a checkpoint file; `detjobs --resume <ckpt>` then splices
//! those rows back and schedules only the remainder, producing a final
//! report **byte-identical** to an uninterrupted run.
//!
//! Two properties make that safe:
//!
//! * **Content keying.** Rows are keyed by a content hash of everything
//!   that determines a job's bytes — source, effective
//!   [`AnalysisConfig`], seed list, and the batch-wide memory budget —
//!   *not* by job name or manifest position. A stale checkpoint can never
//!   resurrect a row for a job whose inputs changed; it simply misses and
//!   the job reruns. (This keying is the stepping stone to the ROADMAP's
//!   cached `detserved`: the key is exactly a cache key.)
//! * **Atomic publication.** Checkpoints are written to a `.tmp` sibling
//!   and `rename`d into place. A crash (or the chaos plan's injected
//!   truncation) mid-write leaves the previously published checkpoint
//!   untouched; a torn temp file is never visible under the real path.
//!
//! Rows are stored with their full fact export so a resumed report can be
//! rendered with or without `--facts`; the splice path strips
//! `fact_rows` when facts were not requested.

use crate::spec::JobSpec;
use determinacy::cachekey::KeyHasher;
use serde_json::Value;
use std::io::Write;
use std::path::Path;

/// The checkpoint file format version; bumped on any incompatible layout
/// change so stale files are rejected instead of misread. (The content
/// *keys* inside come from [`determinacy::cachekey`]; a key-scheme change
/// needs no version bump — stale keys simply miss and the jobs rerun.)
const VERSION: f64 = 1.0;

/// The content key of one job: everything that determines its report
/// bytes, hashed with the workspace-wide [`determinacy::cachekey`]
/// scheme (shared with the `mujs-serve` stage cache). Jobs with equal
/// keys produce byte-identical rows (modulo the job name, which the
/// splice path rewrites).
///
/// The PTA budget is folded in only when the batch runs a PTA stage, so
/// checkpoints from PTA-less campaigns keep their keys across versions.
/// The specializer context-depth bound (`--spec-depth`) is folded in only
/// when a PTA stage runs *and* the bound is set, because it changes the
/// solved program and hence the row; batches without it keep their
/// historical keys. The PTA *thread count* is deliberately never part of
/// the key: the parallel solver is deterministic, so rows are reusable
/// across any `--pta-threads` setting.
pub fn job_key(
    spec: &JobSpec,
    batch_mem_budget: Option<u64>,
    pta_budget: Option<u64>,
    spec_depth: Option<usize>,
) -> String {
    let cfg = serde_json::to_string(&spec.effective_config()).expect("config serializes");
    let mut h = KeyHasher::new().str(&spec.src).str(&cfg);
    for seed in spec.effective_seeds() {
        h = h.u64(seed);
    }
    h = h.opt_u64(batch_mem_budget);
    if let Some(budget) = pta_budget {
        h = h.str("pta").u64(budget);
        if let Some(depth) = spec_depth {
            h = h.str("spec").u64(depth as u64);
        }
    }
    h.finish()
}

/// A set of settled report rows, keyed by [`job_key`].
#[derive(Debug, Clone, Default)]
pub struct Checkpoint {
    /// `(key, row)` pairs in completion order. Order is irrelevant to
    /// resume (rows are spliced by manifest order) but keeps saves
    /// deterministic for a given completion sequence.
    rows: Vec<(String, Value)>,
}

impl Checkpoint {
    /// An empty checkpoint.
    pub fn new() -> Self {
        Checkpoint::default()
    }

    /// Number of stored rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the checkpoint holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The stored row for `key`, if any.
    pub fn lookup(&self, key: &str) -> Option<&Value> {
        self.rows.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Stores (or replaces) the row for `key`.
    pub fn insert(&mut self, key: String, row: Value) {
        if let Some(slot) = self.rows.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = row;
        } else {
            self.rows.push((key, row));
        }
    }

    /// Parses a checkpoint previously written by [`Checkpoint::save`].
    ///
    /// # Errors
    ///
    /// A human-readable message for unreadable files, malformed JSON, or a
    /// version mismatch. (A crash mid-save cannot produce any of these:
    /// saves publish atomically, so the file under `path` is always a
    /// complete previous generation.)
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("read checkpoint {}: {e}", path.display()))?;
        let v: Value =
            serde_json::from_str(&text).map_err(|e| format!("checkpoint JSON: {e:?}"))?;
        if v.get("version").and_then(Value::as_f64) != Some(VERSION) {
            return Err("checkpoint version mismatch".to_owned());
        }
        let entries = v
            .get("rows")
            .and_then(Value::as_array)
            .ok_or("checkpoint missing rows")?;
        let mut ck = Checkpoint::new();
        for e in entries {
            let key = e
                .get("key")
                .and_then(Value::as_str)
                .ok_or("checkpoint row missing key")?;
            let row = e.get("row").ok_or("checkpoint row missing body")?;
            ck.insert(key.to_owned(), row.clone());
        }
        Ok(ck)
    }

    fn render(&self) -> String {
        let rows = self
            .rows
            .iter()
            .map(|(k, row)| {
                Value::Object(vec![
                    ("key".to_owned(), Value::Str(k.clone())),
                    ("row".to_owned(), row.clone()),
                ])
            })
            .collect();
        let doc = Value::Object(vec![
            ("version".to_owned(), Value::Num(VERSION)),
            ("rows".to_owned(), Value::Array(rows)),
        ]);
        serde_json::to_string_pretty(&doc).expect("checkpoint serializes")
    }

    /// Atomically publishes the checkpoint to `path` (write `.tmp`
    /// sibling, fsync-free rename). With `truncate_midway` (chaos
    /// injection) the write is abandoned halfway and never renamed,
    /// simulating a crash during the temp write — the previously
    /// published file stays intact.
    ///
    /// # Errors
    ///
    /// I/O errors creating, writing, or renaming the temp file.
    pub fn save(&self, path: &Path, truncate_midway: bool) -> std::io::Result<()> {
        let bytes = self.render().into_bytes();
        let tmp = tmp_path(path);
        let mut f = std::fs::File::create(&tmp)?;
        if truncate_midway {
            f.write_all(&bytes[..bytes.len() / 2])?;
            // Simulated crash: the torn file stays at the temp path and is
            // never published.
            return Ok(());
        }
        f.write_all(&bytes)?;
        drop(f);
        std::fs::rename(&tmp, path)
    }
}

fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &str) -> Value {
        Value::Object(vec![
            ("name".to_owned(), Value::Str(name.to_owned())),
            ("status".to_owned(), Value::Str("completed".to_owned())),
        ])
    }

    #[test]
    fn keys_depend_on_content_not_name() {
        let a = JobSpec::new("a", "var x = 1;");
        let renamed = JobSpec::new("b", "var x = 1;");
        let changed = JobSpec::new("a", "var x = 2;");
        assert_eq!(
            job_key(&a, None, None, None),
            job_key(&renamed, None, None, None)
        );
        assert_ne!(
            job_key(&a, None, None, None),
            job_key(&changed, None, None, None)
        );
        assert_ne!(
            job_key(&a, None, None, None),
            job_key(&a, Some(1000), None, None)
        );
        let reseeded = JobSpec {
            seeds: Some(vec![9]),
            ..JobSpec::new("a", "var x = 1;")
        };
        assert_ne!(
            job_key(&a, None, None, None),
            job_key(&reseeded, None, None, None)
        );
        // Enabling the PTA stage (or changing its budget) moves the key;
        // the stage adds a `pta` object to the row.
        assert_ne!(
            job_key(&a, None, None, None),
            job_key(&a, None, Some(1000), None)
        );
        assert_ne!(
            job_key(&a, None, Some(1000), None),
            job_key(&a, None, Some(2000), None)
        );
        // The specializer depth bound changes the solved program, so it
        // moves the key — but only when a PTA stage actually runs; a
        // PTA-less batch ignores it entirely.
        assert_ne!(
            job_key(&a, None, Some(1000), None),
            job_key(&a, None, Some(1000), Some(2))
        );
        assert_ne!(
            job_key(&a, None, Some(1000), Some(2)),
            job_key(&a, None, Some(1000), Some(3))
        );
        assert_eq!(
            job_key(&a, None, None, None),
            job_key(&a, None, None, Some(2))
        );
    }

    #[test]
    fn save_load_round_trips() {
        let dir = std::env::temp_dir().join("detjobs-ckpt-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ck.json");
        let mut ck = Checkpoint::new();
        ck.insert("k1".into(), row("one"));
        ck.insert("k2".into(), row("two"));
        ck.save(&path, false).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.lookup("k1").unwrap().get("name").unwrap(), &"one");
        assert!(back.lookup("k3").is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_write_never_clobbers_the_published_file() {
        let dir = std::env::temp_dir().join("detjobs-ckpt-torn");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ck.json");
        let mut ck = Checkpoint::new();
        ck.insert("k1".into(), row("one"));
        ck.save(&path, false).unwrap();
        ck.insert("k2".into(), row("two"));
        ck.save(&path, true).unwrap(); // injected crash mid-write
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back.len(), 1, "torn write must not be published");
        ck.save(&path, false).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn insert_replaces_existing_keys() {
        let mut ck = Checkpoint::new();
        ck.insert("k".into(), row("old"));
        ck.insert("k".into(), row("new"));
        assert_eq!(ck.len(), 1);
        assert_eq!(ck.lookup("k").unwrap().get("name").unwrap(), &"new");
    }
}
