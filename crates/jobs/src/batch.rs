//! Running manifests through the pool, and the deterministic batch
//! report.
//!
//! Each job runs entirely inside one worker thread: parse + lower (on the
//! worker's big stack), one supervised analysis run per seed with the
//! batch [`CancelToken`] threaded into the run hooks, per-seed combination
//! via [`MultiRunOutcome::combine`] in seed order. The finished graph
//! (program, source, combined outcome) transfers back through the pool's
//! ordered result slots, so [`BatchOutcome::jobs`] is always in manifest
//! order and [`BatchOutcome::report_json`] is **byte-identical for any
//! worker count**.

use crate::pool::{IsolatedGraph, JobCtx, JobPool, JobVerdict};
use crate::spec::{JobSpec, Manifest};
use determinacy::multirun::{export_json, MultiRunOutcome};
use determinacy::{
    supervised_analyze_dom, AnalysisConfig, AnalysisOutcome, DetHarness, RunFailure, RunHooks,
};
use mujs_dom::document::{Document, DocumentBuilder};
use mujs_dom::events::EventPlan;
use serde::Serialize;

/// Everything a completed job hands back: the combined multi-run outcome
/// plus the program/source needed to render or export its facts.
#[derive(Debug)]
pub struct JobOutcome {
    /// The seeds the job fanned out over, in fan-out (= combination)
    /// order.
    pub seeds: Vec<u64>,
    /// The per-seed runs combined in seed order.
    pub multi: MultiRunOutcome,
    /// The lowered program (for fact rendering/export).
    pub program: mujs_ir::Program,
    /// The source file (for fact rendering/export).
    pub source: mujs_syntax::SourceFile,
}

impl JobOutcome {
    /// The job's combined facts as the canonical sorted JSON export.
    pub fn export_facts_json(&self) -> String {
        export_json(
            &self.multi.facts,
            &self.program,
            &self.source,
            &self.multi.ctxs,
        )
    }
}

/// How a job resolved at the batch level.
#[derive(Debug)]
pub enum JobStatus {
    /// The job ran; its runs may still record per-seed stops (deadline,
    /// mem limit, mid-flight cancellation) in the outcome.
    Completed,
    /// Batch cancellation struck before the job started.
    Cancelled,
    /// The source did not parse.
    Syntax(String),
    /// The job panicked outside any supervised run.
    Panicked(String),
}

/// One manifest entry's result.
#[derive(Debug)]
pub struct JobRecord {
    /// Manifest index.
    pub index: usize,
    /// Job name.
    pub name: String,
    /// How the job resolved.
    pub status: JobStatus,
    /// The outcome, when [`JobStatus::Completed`].
    pub outcome: Option<JobOutcome>,
}

/// The aggregated batch result, in manifest order.
#[derive(Debug)]
pub struct BatchOutcome {
    /// One record per manifest job.
    pub jobs: Vec<JobRecord>,
}

/// One row of the JSON batch report (serialization shape).
#[derive(Debug, Serialize)]
struct ReportRow {
    name: String,
    status: String,
    seeds: Vec<u64>,
    run_statuses: Vec<String>,
    failures: Vec<String>,
    facts: usize,
    determinate: usize,
    conflicts: u64,
    fact_rows: Option<serde_json::Value>,
}

#[derive(Debug, Serialize)]
struct Report {
    jobs: Vec<ReportRow>,
}

impl BatchOutcome {
    /// Number of jobs that ran to a [`JobStatus::Completed`] record.
    pub fn completed(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| matches!(j.status, JobStatus::Completed))
            .count()
    }

    /// Whether any job failed outright (syntax error or unsupervised
    /// panic). Cancelled jobs are not failures.
    pub fn has_failures(&self) -> bool {
        self.jobs.iter().any(|j| {
            matches!(j.status, JobStatus::Syntax(_) | JobStatus::Panicked(_))
                || j.outcome
                    .as_ref()
                    .is_some_and(|o| !o.multi.failures.is_empty())
        })
    }

    /// The batch report as pretty JSON, in manifest order. Contains no
    /// timing or worker information, so the bytes depend only on the
    /// manifest and the analysis semantics — not on scheduling. With
    /// `include_facts` each completed job embeds its full sorted fact
    /// export.
    pub fn report_json(&self, include_facts: bool) -> String {
        let rows = self
            .jobs
            .iter()
            .map(|j| {
                let status = match &j.status {
                    JobStatus::Completed => "completed".to_owned(),
                    JobStatus::Cancelled => "cancelled".to_owned(),
                    JobStatus::Syntax(e) => format!("syntax error: {e}"),
                    JobStatus::Panicked(e) => format!("panicked: {e}"),
                };
                let (seeds, run_statuses, failures, facts, determinate, conflicts) =
                    match &j.outcome {
                        Some(o) => (
                            o.seeds.clone(),
                            o.multi
                                .runs
                                .iter()
                                .map(|r| format!("{:?}", r.status))
                                .collect(),
                            o.multi.failures.iter().map(|f| f.to_string()).collect(),
                            o.multi.facts.len(),
                            o.multi.facts.det_count(),
                            o.multi.conflicts,
                        ),
                        None => (Vec::new(), Vec::new(), Vec::new(), 0, 0, 0),
                    };
                let fact_rows = match (&j.outcome, include_facts) {
                    (Some(o), true) => Some(
                        serde_json::from_str(&o.export_facts_json())
                            .expect("fact export re-parses"),
                    ),
                    _ => None,
                };
                ReportRow {
                    name: j.name.clone(),
                    status,
                    seeds,
                    run_statuses,
                    failures,
                    facts,
                    determinate,
                    conflicts,
                    fact_rows,
                }
            })
            .collect();
        serde_json::to_string_pretty(&Report { jobs: rows }).expect("report serializes")
    }
}

/// Runs every manifest job through the pool and aggregates the results in
/// manifest order.
pub fn run_manifest(manifest: &Manifest, pool: &JobPool) -> BatchOutcome {
    let jobs: Vec<(String, _)> = manifest
        .jobs
        .iter()
        .map(|spec| {
            let spec = spec.clone();
            (spec.name.clone(), move |ctx: &JobCtx| run_spec(&spec, ctx))
        })
        .collect();
    let verdicts = pool.run(jobs);
    let records = verdicts
        .into_iter()
        .enumerate()
        .map(|(index, v)| {
            let name = manifest.jobs[index].name.clone();
            let (status, outcome) = match v {
                JobVerdict::Done(iso) => iso.into_inner(),
                JobVerdict::Panicked(p) => (JobStatus::Panicked(p), None),
                JobVerdict::Cancelled => (JobStatus::Cancelled, None),
            };
            JobRecord {
                index,
                name,
                status,
                outcome,
            }
        })
        .collect();
    BatchOutcome { jobs: records }
}

/// The worker-side body of one manifest job. Everything `Rc`-threaded is
/// built here, inside the worker, and transferred back wholesale (see
/// [`IsolatedGraph`]).
fn run_spec(spec: &JobSpec, ctx: &JobCtx) -> IsolatedGraph<(JobStatus, Option<JobOutcome>)> {
    let harness = match DetHarness::from_src(&spec.src) {
        Ok(h) => h,
        Err(e) => return IsolatedGraph::new((JobStatus::Syntax(e.to_string()), None)),
    };
    let cfg = spec.effective_config();
    let seeds = spec.effective_seeds();
    let doc = DocumentBuilder::new().title(&spec.name).build();
    let plan = EventPlan::new();
    let outcome = analyze_seeds(harness, &seeds, cfg, &doc, &plan, ctx);
    IsolatedGraph::new((JobStatus::Completed, Some(outcome)))
}

/// Runs one seed fan-out sequentially on the current (worker) thread,
/// short-circuiting remaining seeds to [`RunFailure::Cancelled`] once the
/// batch token fires, and combining in seed order.
fn analyze_seeds(
    mut harness: DetHarness,
    seeds: &[u64],
    base_cfg: AnalysisConfig,
    doc: &Document,
    plan: &EventPlan,
    ctx: &JobCtx,
) -> JobOutcome {
    let hooks = RunHooks::with_cancel(ctx.cancel.clone());
    let n = seeds.len();
    let results: Vec<Result<AnalysisOutcome, RunFailure>> = seeds
        .iter()
        .enumerate()
        .map(|(i, &seed)| {
            if ctx.is_cancelled() {
                return Err(RunFailure::Cancelled { seed });
            }
            let cfg = AnalysisConfig {
                seed,
                ..base_cfg.clone()
            };
            let r = supervised_analyze_dom(&mut harness, cfg, doc.clone(), plan, &hooks);
            ctx.progress(format!("seed {}/{n} done", i + 1));
            r
        })
        .collect();
    let multi = MultiRunOutcome::combine(results, base_cfg.max_facts);
    JobOutcome {
        seeds: seeds.to_vec(),
        multi,
        program: harness.program,
        source: harness.source,
    }
}

/// The pool-backed variant of
/// [`analyze_many_hooked`][determinacy::multirun::analyze_many_hooked]:
/// fans the seed list out over the pool's workers (each worker re-parses
/// the source on its own thread, so no `Rc` is shared across threads) and
/// combines the per-seed outcomes **in seed order**, making the merged
/// facts identical to the sequential path for any worker count.
///
/// # Errors
///
/// A [`mujs_syntax::SyntaxError`] when `src` does not parse (checked up
/// front, before any job is scheduled).
pub fn analyze_many_pooled(
    src: &str,
    seeds: &[u64],
    base_cfg: AnalysisConfig,
    doc: Option<&Document>,
    plan: &EventPlan,
    pool: &JobPool,
) -> Result<MultiRunOutcome, mujs_syntax::SyntaxError> {
    // Surface parse errors eagerly and identically to the sequential API.
    mujs_syntax::parse_spawned(src)?;
    let jobs: Vec<(String, _)> = seeds
        .iter()
        .map(|&seed| {
            let label = format!("seed-{seed}");
            let cfg = AnalysisConfig {
                seed,
                ..base_cfg.clone()
            };
            let job = move |ctx: &JobCtx| -> IsolatedGraph<Result<AnalysisOutcome, RunFailure>> {
                let r = match DetHarness::from_src(src) {
                    Ok(mut h) => {
                        let hooks = RunHooks::with_cancel(ctx.cancel.clone());
                        let d = doc.cloned().unwrap_or_else(|| {
                            DocumentBuilder::new().title("analyze-pooled").build()
                        });
                        supervised_analyze_dom(&mut h, cfg, d, plan, &hooks)
                    }
                    Err(e) => {
                        // Unreachable after the eager parse; keep the seed
                        // isolated rather than poisoning the batch.
                        Err(RunFailure::EnginePanic {
                            payload: format!("late parse failure: {e}"),
                            steps: 0,
                            seed,
                        })
                    }
                };
                IsolatedGraph::new(r)
            };
            (label, job)
        })
        .collect();
    let verdicts = pool.run(jobs);
    let results = verdicts
        .into_iter()
        .zip(seeds)
        .map(|(v, &seed)| match v {
            JobVerdict::Done(iso) => iso.into_inner(),
            JobVerdict::Panicked(payload) => Err(RunFailure::EnginePanic {
                payload,
                steps: 0,
                seed,
            }),
            JobVerdict::Cancelled => Err(RunFailure::Cancelled { seed }),
        })
        .collect::<Vec<_>>();
    Ok(MultiRunOutcome::combine(results, base_cfg.max_facts))
}
