//! Scheduler-level chaos: the fault-tolerance headline guarantee.
//!
//! For any seed-deterministic [`SchedulerFaultPlan`] whose faults are all
//! *retryable* (worker kills below the retry budget, dropped/delayed
//! events, truncated checkpoint writes), the final batch report must be
//! **byte-identical** to the fault-free run — at any worker count. CI
//! runs this suite across a worker-count × fault-seed matrix; on
//! divergence the offending reports are written under
//! `CARGO_TARGET_TMPDIR/chaos-divergence/` for artifact upload.
#![cfg(feature = "fault-inject")]

use mujs_jobs::chaos::SchedulerFaultPlan;
use mujs_jobs::{
    run_manifest_with, BatchOptions, BatchOutcome, Checkpoint, JobCtx, JobPool, JobSpec,
    JobVerdict, Manifest, RetryPolicy,
};
use std::path::PathBuf;
use std::sync::Arc;

fn chaos_manifest() -> Manifest {
    Manifest::new(vec![
        JobSpec {
            seeds: Some(vec![1, 2, 3]),
            ..JobSpec::new(
                "coin",
                "var coin = Math.random() < 0.5;\n\
                 var picked = 0;\n\
                 if (coin) { var a = 11; picked = 1; } else { var b = 22; picked = 2; }",
            )
        },
        JobSpec {
            seeds: Some(vec![7]),
            ..JobSpec::new(
                "calls",
                "function id(v) { var echo = v; return echo; }\n\
                 id(1); id(2); var r = id(Math.random());",
            )
        },
        JobSpec::new(
            "loop",
            "var i = 0; var acc = 0; while (i < 50) { i = i + 1; acc = acc + i; }",
        ),
        JobSpec::new("plain", "var x = 1 + 2; var y = x * 3;"),
        JobSpec::new("strings", "var s = 'a' + 'b'; var t = s + 'c';"),
    ])
}

fn divergence_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("chaos-divergence");
    std::fs::create_dir_all(&dir).expect("create divergence dir");
    dir
}

fn assert_identical(baseline: &str, got: &str, tag: &str) {
    if baseline != got {
        let dir = divergence_dir();
        std::fs::write(dir.join("baseline.json"), baseline).unwrap();
        std::fs::write(dir.join(format!("{tag}.json")), got).unwrap();
        panic!(
            "chaos divergence for {tag}; reports written to {}",
            dir.display()
        );
    }
}

fn run_chaos(
    m: &Manifest,
    workers: usize,
    plan: Option<Arc<SchedulerFaultPlan>>,
    opts_extra: impl FnOnce(&mut BatchOptions),
) -> BatchOutcome {
    let mut pool = JobPool::new(workers);
    if let Some(p) = &plan {
        pool = pool.with_scheduler_faults(p.clone());
    }
    let mut opts = BatchOptions {
        retry: RetryPolicy::attempts(3),
        chaos: plan,
        ..Default::default()
    };
    opts_extra(&mut opts);
    run_manifest_with(m, &pool, &opts)
}

/// The acceptance-criteria matrix: fault seeds × worker counts {1, 2, 8},
/// every leg byte-identical to the fault-free single-worker baseline.
#[test]
fn retryable_fault_schedules_leave_the_report_byte_identical() {
    let m = chaos_manifest();
    let baseline = run_chaos(&m, 1, None, |_| {}).report_json(true);
    let mut total_retried = 0u32;
    // CI widens the seed matrix through the environment.
    let mut fault_seeds = vec![1u64, 2, 3];
    if let Some(extra) = std::env::var("DETJOBS_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    {
        if !fault_seeds.contains(&extra) {
            fault_seeds.push(extra);
        }
    }
    for fault_seed in fault_seeds {
        for workers in [1usize, 2, 8] {
            let plan = Arc::new(SchedulerFaultPlan {
                delay_event_ms: 1,
                ..SchedulerFaultPlan::from_seed(fault_seed)
            });
            let batch = run_chaos(&m, workers, Some(plan), |_| {});
            assert_identical(
                &baseline,
                &batch.report_json(true),
                &format!("seed{fault_seed}-workers{workers}"),
            );
            total_retried += batch.jobs.iter().filter(|j| j.attempts > 1).count() as u32;
            // Attempt counters live outside the report; sanity-check they
            // stayed within the retry budget.
            assert!(batch.jobs.iter().all(|j| j.attempts <= 3));
        }
    }
    assert!(
        total_retried > 0,
        "a 40% kill rate across 9 matrix legs must force at least one retry"
    );
}

/// Injected checkpoint truncation (a crash during the temp-file write)
/// never publishes a torn file, and resuming from whatever generation
/// survived reproduces the baseline bytes.
#[test]
fn truncated_checkpoint_writes_stay_atomic_and_resumable() {
    let m = chaos_manifest();
    let baseline = run_chaos(&m, 2, None, |_| {}).report_json(true);
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("chaos-ckpt");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("ck.json");
    let plan = Arc::new(SchedulerFaultPlan {
        kill_pct: 0, // isolate the checkpoint fault
        drop_event_pct: 0,
        delay_event_pct: 0,
        truncate_checkpoint_every: Some(2),
        ..SchedulerFaultPlan::from_seed(9)
    });
    let first = run_chaos(&m, 2, Some(plan), |o| {
        o.checkpoint_path = Some(ckpt.clone());
        o.checkpoint_every = 1;
    });
    assert_identical(&baseline, &first.report_json(true), "ckpt-truncation-run");
    // Every other write was torn mid-file, but publication is atomic: the
    // file on disk is always a complete earlier generation.
    let ck = Checkpoint::load(&ckpt).expect("published checkpoint parses");
    assert!(!ck.is_empty());
    let resumed = run_chaos(&m, 2, None, |o| o.resume = Some(ck));
    assert_identical(
        &baseline,
        &resumed.report_json(true),
        "ckpt-truncation-resume",
    );
    let restored = resumed.jobs.iter().filter(|j| j.restored.is_some()).count();
    assert!(restored > 0, "resume must splice at least one settled row");
    assert!(resumed
        .jobs
        .iter()
        .filter(|j| j.restored.is_some())
        .all(|j| j.attempts == 0));
    std::fs::remove_dir_all(&dir).ok();
}

/// A deadline-accounting bug (the `ignore_deadline` fault suppresses the
/// cooperative deadline check while cancel polling keeps working) wedges
/// the job instead of wedging its worker forever: the watchdog fires the
/// job's private cancel token, the attempt resolves `Wedged`, and the
/// pool keeps draining sibling jobs.
#[test]
fn watchdog_unwedges_a_job_whose_deadline_enforcement_is_broken() {
    use determinacy::{supervised_analyze, AnalysisConfig, DetHarness, FaultPlan, RunHooks};
    let pool = JobPool::new(2);
    type Job = Box<dyn Fn(&JobCtx) -> u32 + Send>;
    let jobs: Vec<(String, Job)> = vec![
        (
            "broken-deadline".into(),
            Box::new(|ctx| {
                // Real integration: a supervised run whose cooperative
                // deadline check is faulted out. Only the watchdog's
                // cancel (same poll sites) can stop it.
                ctx.arm_watchdog(150);
                let mut h = DetHarness::from_src("var i = 0; while (i < 99) { i = (i + 1) % 97; }")
                    .unwrap();
                let cfg = AnalysisConfig {
                    deadline_ms: Some(10),
                    max_steps: u64::MAX,
                    ..AnalysisConfig::default()
                };
                let hooks = RunHooks::with_cancel(ctx.cancel.clone()).with_faults(FaultPlan {
                    ignore_deadline: true,
                    ..FaultPlan::default()
                });
                let _ = supervised_analyze(&mut h, cfg, &hooks);
                0
            }),
        ),
        ("sibling".into(), Box::new(|_| 7)),
    ];
    let out = pool.run(jobs);
    assert!(
        matches!(out[0], JobVerdict::Wedged),
        "faulted deadline must resolve as wedged, got {:?}",
        out[0]
    );
    assert!(matches!(out[1], JobVerdict::Done(7)));
}
