//! Runtime values, objects, and property maps shared by the concrete
//! interpreter (and reused, with determinacy annotations layered on top of
//! *slots*, by the instrumented interpreter in the `determinacy` crate).

use mujs_dom::document::NodeId;
use mujs_ir::{FuncId, Sym};
use std::fmt;
use std::rc::Rc;

/// Identifier of an object on an interpreter heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u32);

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// Identifier of a scope on an interpreter's scope arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScopeId(pub u32);

/// Index into an interpreter's native-function table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NativeId(pub u32);

/// A muJS runtime value. Functions, arrays and DOM nodes are all objects;
/// the distinction lives in [`ObjClass`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `undefined`
    Undefined,
    /// `null`
    Null,
    /// A boolean.
    Bool(bool),
    /// A number.
    Num(f64),
    /// A string.
    Str(Rc<str>),
    /// A heap object.
    Object(ObjId),
}

impl Value {
    /// Whether the value is an object reference.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// A short type tag used in diagnostics (`typeof` semantics live in the
    /// machines, which can inspect object classes).
    pub fn kind_str(&self) -> &'static str {
        match self {
            Value::Undefined => "undefined",
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Object(_) => "object",
        }
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(Rc::from(s))
    }
}

/// What kind of object something is.
#[derive(Debug, Clone, PartialEq)]
pub enum ObjClass {
    /// A plain object (`{}` or object literal).
    Plain,
    /// An array.
    Array,
    /// A user function: its code plus captured scope (`None` for
    /// not-yet-activated global functions of the entry script).
    Function {
        /// The lowered function.
        func: FuncId,
        /// The captured scope chain.
        env: Option<ScopeId>,
    },
    /// A built-in function.
    Native(NativeId),
    /// The `document` object.
    DomDocument,
    /// A DOM element wrapper.
    DomElement(NodeId),
}

impl ObjClass {
    /// Whether objects of this class are callable.
    pub fn is_callable(&self) -> bool {
        matches!(self, ObjClass::Function { .. } | ObjClass::Native(_))
    }

    /// Whether this is a DOM wrapper (document or element).
    pub fn is_dom(&self) -> bool {
        matches!(self, ObjClass::DomDocument | ObjClass::DomElement(_))
    }
}

/// A property slot: the value plus the annotation payload `A` the machine
/// attaches to slots (the concrete machine uses `()`, the instrumented
/// machine uses determinacy flags and epochs).
#[derive(Debug, Clone, PartialEq)]
pub struct Slot<A> {
    /// The stored value.
    pub value: Value,
    /// Machine-specific slot annotation.
    pub ann: A,
}

/// Entry count above which a [`PropMap`] builds a hash index. Most µJS
/// objects (and real-page objects, per the engine folklore the hidden-class
/// literature measures) have a handful of properties; for those a linear
/// scan over a dense `Vec<(Sym, _)>` beats hashing the key.
const SMALL_OBJ_THRESHOLD: usize = 8;

/// An insertion-ordered property map (for-in enumerates in insertion
/// order, which all major engines implement and the paper relies on for
/// determinate iteration order, §5.2).
///
/// Keys are interned [`Sym`]s. Storage is a single entry vector: below
/// [`SMALL_OBJ_THRESHOLD`] entries lookups are linear scans (comparing
/// `u32`s), above it a hash index from key to entry position is built
/// lazily and kept incrementally up to date. Deletion leaves a tombstone
/// so existing positions stay valid; a key therefore appears at most once
/// live, possibly after dead occurrences, and lookups scan from the back
/// to find the most recent entry first.
#[derive(Debug, Clone, PartialEq)]
pub struct PropMap<A> {
    entries: Vec<(Sym, Option<Slot<A>>)>,
    live: u32,
    index: Option<std::collections::HashMap<Sym, u32>>,
}

impl<A> Default for PropMap<A> {
    fn default() -> Self {
        PropMap {
            entries: Vec::new(),
            live: 0,
            index: None,
        }
    }
}

impl<A> PropMap<A> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Position of the most recent entry for `key`, live or tombstoned.
    fn find(&self, key: Sym) -> Option<usize> {
        if let Some(index) = &self.index {
            return index.get(&key).map(|&i| i as usize);
        }
        self.entries.iter().rposition(|(k, _)| *k == key)
    }

    /// Builds the hash index once the entry vector outgrows the
    /// linear-scan sweet spot.
    fn maybe_index(&mut self) {
        if self.index.is_none() && self.entries.len() > SMALL_OBJ_THRESHOLD {
            let mut index = std::collections::HashMap::with_capacity(self.entries.len() * 2);
            for (i, (k, _)) in self.entries.iter().enumerate() {
                index.insert(*k, i as u32);
            }
            self.index = Some(index);
        }
    }

    /// Looks up a live slot.
    pub fn get(&self, key: Sym) -> Option<&Slot<A>> {
        let i = self.find(key)?;
        self.entries[i].1.as_ref()
    }

    /// Mutably looks up a live slot.
    pub fn get_mut(&mut self, key: Sym) -> Option<&mut Slot<A>> {
        let i = self.find(key)?;
        self.entries[i].1.as_mut()
    }

    /// Inserts or overwrites; returns the previous slot if the property was
    /// live. A deleted property re-inserted moves to the end of the
    /// enumeration order, as in real engines.
    pub fn insert(&mut self, key: Sym, slot: Slot<A>) -> Option<Slot<A>> {
        let prev = match self.find(key) {
            Some(i) if self.entries[i].1.is_some() => {
                return self.entries[i].1.replace(slot);
            }
            Some(_) => {
                // Tombstone stays where it is; the fresh entry appended
                // below restores insertion-order semantics.
                None
            }
            None => None,
        };
        if let Some(index) = &mut self.index {
            index.insert(key, self.entries.len() as u32);
        }
        self.entries.push((key, Some(slot)));
        self.live += 1;
        self.maybe_index();
        prev
    }

    /// Deletes a property; returns its slot if it was live.
    pub fn remove(&mut self, key: Sym) -> Option<Slot<A>> {
        let i = self.find(key)?;
        let slot = self.entries[i].1.take();
        if slot.is_some() {
            self.live -= 1;
        }
        slot
    }

    /// Whether the property is live.
    pub fn contains(&self, key: Sym) -> bool {
        self.get(key).is_some()
    }

    /// Live keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = Sym> + '_ {
        self.entries
            .iter()
            .filter(|(_, s)| s.is_some())
            .map(|(k, _)| *k)
    }

    /// Live `(key, slot)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &Slot<A>)> {
        self.entries
            .iter()
            .filter_map(|(k, s)| s.as_ref().map(|s| (*k, s)))
    }

    /// Mutable iteration over live slots in insertion order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (Sym, &mut Slot<A>)> {
        self.entries
            .iter_mut()
            .filter_map(|(k, s)| s.as_mut().map(|s| (*k, s)))
    }

    /// Number of live properties.
    pub fn len(&self) -> usize {
        self.live as usize
    }

    /// Whether there are no live properties.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

/// A heap object generic over the slot annotation `A`.
#[derive(Debug, Clone, PartialEq)]
pub struct Object<A> {
    /// The object's class.
    pub class: ObjClass,
    /// Own properties.
    pub props: PropMap<A>,
    /// Prototype link.
    pub proto: Option<ObjId>,
    /// Built-in library objects are skipped by `for-in` enumeration (their
    /// properties play the role of non-enumerable descriptors).
    pub builtin: bool,
}

impl<A> Object<A> {
    /// Creates an object of the given class and prototype.
    pub fn new(class: ObjClass, proto: Option<ObjId>) -> Self {
        Object {
            class,
            props: PropMap::new(),
            proto,
            builtin: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(v: Value) -> Slot<()> {
        Slot { value: v, ann: () }
    }

    const A: Sym = Sym(100);
    const B: Sym = Sym(101);
    const C: Sym = Sym(102);

    #[test]
    fn propmap_preserves_insertion_order() {
        let mut m: PropMap<()> = PropMap::new();
        m.insert(B, slot(Value::Num(1.0)));
        m.insert(A, slot(Value::Num(2.0)));
        m.insert(C, slot(Value::Num(3.0)));
        let keys: Vec<Sym> = m.keys().collect();
        assert_eq!(keys, vec![B, A, C]);
    }

    #[test]
    fn overwrite_keeps_position() {
        let mut m: PropMap<()> = PropMap::new();
        m.insert(A, slot(Value::Num(1.0)));
        m.insert(B, slot(Value::Num(2.0)));
        m.insert(A, slot(Value::Num(9.0)));
        let keys: Vec<Sym> = m.keys().collect();
        assert_eq!(keys, vec![A, B]);
        assert_eq!(m.get(A).unwrap().value, Value::Num(9.0));
    }

    #[test]
    fn delete_then_reinsert_moves_to_end() {
        let mut m: PropMap<()> = PropMap::new();
        m.insert(A, slot(Value::Num(1.0)));
        m.insert(B, slot(Value::Num(2.0)));
        assert!(m.remove(A).is_some());
        assert!(!m.contains(A));
        m.insert(A, slot(Value::Num(3.0)));
        let keys: Vec<Sym> = m.keys().collect();
        assert_eq!(keys, vec![B, A]);
    }

    #[test]
    fn len_counts_live_only() {
        let mut m: PropMap<()> = PropMap::new();
        m.insert(A, slot(Value::Num(1.0)));
        m.insert(B, slot(Value::Num(2.0)));
        m.remove(A);
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
    }

    #[test]
    fn behaves_identically_across_the_index_threshold() {
        // Push past SMALL_OBJ_THRESHOLD so the hash index kicks in, then
        // check lookups, order, overwrite, and delete/reinsert all still
        // behave like the linear-scan regime.
        let mut m: PropMap<()> = PropMap::new();
        let syms: Vec<Sym> = (0..32).map(Sym).collect();
        for (i, &s) in syms.iter().enumerate() {
            m.insert(s, slot(Value::Num(i as f64)));
        }
        assert_eq!(m.len(), 32);
        for (i, &s) in syms.iter().enumerate() {
            assert_eq!(m.get(s).unwrap().value, Value::Num(i as f64));
        }
        m.insert(syms[3], slot(Value::Num(99.0)));
        assert_eq!(m.len(), 32);
        assert_eq!(m.keys().nth(3), Some(syms[3]));
        assert!(m.remove(syms[5]).is_some());
        assert!(!m.contains(syms[5]));
        m.insert(syms[5], slot(Value::Num(55.0)));
        assert_eq!(m.keys().last(), Some(syms[5]));
        assert_eq!(m.get(syms[5]).unwrap().value, Value::Num(55.0));
        assert_eq!(m.len(), 32);
    }

    #[test]
    fn value_kind_strings() {
        assert_eq!(Value::Undefined.kind_str(), "undefined");
        assert_eq!(Value::Num(1.0).kind_str(), "number");
        assert_eq!(Value::Object(ObjId(0)).kind_str(), "object");
    }
}
