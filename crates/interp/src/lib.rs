//! # mujs-interp
//!
//! The concrete big-step interpreter for the muJS subset — the trace
//! semantics of the paper's Figure 8, scaled up to the full subset
//! (closures with scope chains, prototype chains, `this`/`new`,
//! exceptions, `for-in`, direct and indirect `eval`, and DOM bindings over
//! the [`mujs_dom`] substrate).
//!
//! The instrumented determinacy machine in the `determinacy` crate reuses
//! this crate's value representation ([`values`]), primitive operator
//! semantics ([`coerce`]), pure stdlib helpers ([`stdlib`]), and calling
//! contexts ([`context`]), guaranteeing both machines agree on concrete
//! behavior — the property the soundness theorem is stated over.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), mujs_interp::driver::DriveError> {
//! let output = mujs_interp::driver::run_src(
//!     "var x = { f: 23 }; x.g = x.f + 19; console.log(x.g);",
//! )?;
//! assert_eq!(output, vec!["42"]);
//! # Ok(())
//! # }
//! ```

pub mod coerce;
pub mod context;
pub mod dom_binding;
pub mod driver;
pub mod machine;
pub mod natives;
pub mod stdlib;
pub mod values;

pub use context::{ContextTable, CtxId};
pub use driver::{run_src, DriveError, Harness, Outcome};
pub use machine::{
    Flow, Frame, HeapTrace, Interp, InterpOptions, Observation, RunError, TraceAbs, TraceCall,
    TraceConfig,
};
pub use values::{NativeId, ObjClass, ObjId, Object, PropMap, ScopeId, Slot, Value};
