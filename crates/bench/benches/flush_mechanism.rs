//! §4's epoch-counter heap flush is O(1) in heap size: flushing a heap of
//! N objects costs the same as flushing an empty one. This bench sweeps
//! the live-heap size while holding the flush count fixed; flat timings
//! validate the design choice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use determinacy::AnalysisConfig;

fn flush_heavy_src(n_objects: usize, n_flushes: usize) -> String {
    format!(
        "var store = [];\n\
         for (var i = 0; i < {n_objects}; i++) {{ store.push({{ idx: i, even: i % 2 }}); }}\n\
         for (var f = 0; f < {n_flushes}; f++) {{ __opaque(); }}\n\
         console.log(store.length);"
    )
}

fn analyze(src: &str) -> u32 {
    let mut h = determinacy::DetHarness::from_src(src).expect("parses");
    let out = h.analyze(AnalysisConfig {
        flush_cap: None,
        ..Default::default()
    });
    out.stats.heap_flushes
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("flush_mechanism");
    g.sample_size(10);
    // Fixed flush count, growing heap: epoch flushes should stay ~flat
    // after subtracting the (linear) allocation phase, which the
    // "no_flushes" control measures.
    for n in [100usize, 400, 1600] {
        let with = flush_heavy_src(n, 200);
        let without = flush_heavy_src(n, 0);
        g.bench_with_input(BenchmarkId::new("with_200_flushes", n), &with, |b, s| {
            b.iter(|| analyze(s))
        });
        g.bench_with_input(BenchmarkId::new("no_flushes", n), &without, |b, s| {
            b.iter(|| analyze(s))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
