//! Batch-analysis front door: run a manifest (or a directory of `.js`
//! files, or a built-in corpus suite) through the job pool, streaming
//! progress lines to stderr and writing a deterministic JSON report.
//!
//! ```console
//! $ detjobs --manifest batch.json --workers 8 --report out.json
//! $ detjobs --dir examples/js --workers 4
//! $ detjobs --suite all --workers 8 --no-facts --report corpus.json
//! ```
//!
//! The report bytes depend only on the manifest and the analysis
//! semantics — `--workers 1` and `--workers 8` produce identical output.

use mujs_jobs::{run_manifest, JobEvent, JobPool, Manifest};
use std::sync::mpsc::channel;

struct Options {
    manifest: Option<String>,
    dir: Option<String>,
    suite: Option<String>,
    workers: usize,
    report: Option<String>,
    include_facts: bool,
    quiet: bool,
    lint: bool,
}

fn usage(problem: &str) -> ! {
    if !problem.is_empty() {
        eprintln!("error: {problem}");
    }
    eprintln!(
        "usage: detjobs (--manifest FILE | --dir DIR | --suite jquery|evalbench|all)\n\
         \x20              [--workers N] [--report FILE] [--no-facts] [--quiet]\n\
         \n\
         \x20 --manifest FILE  JSON job manifest (see DESIGN.md §5c for the format)\n\
         \x20 --dir DIR        one default job per *.js file, sorted by name\n\
         \x20 --suite NAME     built-in corpus suite manifest\n\
         \x20 --workers N      worker threads (default: available parallelism)\n\
         \x20 --report FILE    write the JSON report there (default: stdout)\n\
         \x20 --no-facts       omit per-job fact rows from the report\n\
         \x20 --quiet          suppress progress lines on stderr\n\
         \x20 --lint           validate each job's lowered IR before running\n\
         \x20                  (structural detlint; off by default — reports\n\
         \x20                  stay byte-identical either way)"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut o = Options {
        manifest: None,
        dir: None,
        suite: None,
        workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
        report: None,
        include_facts: true,
        quiet: false,
        lint: false,
    };
    let mut i = 0;
    let value = |args: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        match args.get(*i) {
            Some(v) => v.clone(),
            None => usage(&format!("{flag} needs a value")),
        }
    };
    while i < args.len() {
        match args[i].as_str() {
            "--manifest" => o.manifest = Some(value(&args, &mut i, "--manifest")),
            "--dir" => o.dir = Some(value(&args, &mut i, "--dir")),
            "--suite" => o.suite = Some(value(&args, &mut i, "--suite")),
            "--workers" => {
                let v = value(&args, &mut i, "--workers");
                o.workers = match v.parse() {
                    Ok(n) if n >= 1 => n,
                    _ => usage(&format!("--workers wants a positive integer, got `{v}`")),
                };
            }
            "--report" => o.report = Some(value(&args, &mut i, "--report")),
            "--no-facts" => o.include_facts = false,
            "--quiet" => o.quiet = true,
            "--lint" => o.lint = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    if [&o.manifest, &o.dir, &o.suite]
        .iter()
        .filter(|s| s.is_some())
        .count()
        != 1
    {
        usage("exactly one of --manifest, --dir, --suite is required");
    }
    o
}

fn load_manifest(o: &Options) -> Manifest {
    let loaded = if let Some(path) = &o.manifest {
        std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {path}: {e}"))
            .and_then(|s| Manifest::from_json(&s))
    } else if let Some(dir) = &o.dir {
        Manifest::from_dir(std::path::Path::new(dir))
    } else {
        let suite = o.suite.as_deref().unwrap_or_default();
        Manifest::suite(suite)
            .ok_or_else(|| format!("unknown suite `{suite}` (jquery, evalbench, all)"))
    };
    match loaded {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// Pre-flight IR validation of every job source; exits 1 on any
/// violation so a bad batch fails before burning worker time.
fn lint_manifest(manifest: &Manifest) {
    let mut bad = 0usize;
    for job in &manifest.jobs {
        let lowered = mujs_syntax::with_parser_stack(|| {
            mujs_syntax::parse(&job.src).map(|ast| mujs_ir::lower_program(&ast))
        });
        match lowered {
            Err(e) => {
                eprintln!("lint {}: parse error: {e}", job.name);
                bad += 1;
            }
            Ok(prog) => {
                let violations = mujs_analysis::validate_program(&prog);
                if !violations.is_empty() {
                    eprintln!("lint {}: {} violation(s)", job.name, violations.len());
                    for v in &violations {
                        eprintln!("  {}", v.describe(&prog));
                    }
                    bad += 1;
                }
            }
        }
    }
    if bad > 0 {
        eprintln!("detjobs: lint failed for {bad} job(s)");
        std::process::exit(1);
    }
    eprintln!("detjobs: lint ok ({} jobs)", manifest.jobs.len());
}

fn main() {
    let o = parse_args();
    let manifest = load_manifest(&o);
    let total = manifest.jobs.len();
    if o.lint {
        lint_manifest(&manifest);
    }
    eprintln!("detjobs: {total} jobs on {} workers", o.workers);

    let (tx, rx) = channel();
    let pool = JobPool::new(o.workers).with_events(tx);
    let quiet = o.quiet;
    // Stream progress lines until the pool drops its sender at batch end.
    let printer = std::thread::spawn(move || {
        for e in rx {
            if quiet {
                continue;
            }
            match e {
                JobEvent::Started { job, label, worker } => {
                    eprintln!(
                        "[{:>3}/{total}] started   {label} (worker {worker})",
                        job + 1
                    );
                }
                JobEvent::Progress { job, detail } => {
                    eprintln!("[{:>3}/{total}] progress  {detail}", job + 1);
                }
                JobEvent::Finished { job, label } => {
                    eprintln!("[{:>3}/{total}] finished  {label}", job + 1);
                }
                JobEvent::Failed { job, label, error } => {
                    eprintln!("[{:>3}/{total}] FAILED    {label}: {error}", job + 1);
                }
                JobEvent::Cancelled { job, label } => {
                    eprintln!("[{:>3}/{total}] cancelled {label}", job + 1);
                }
            }
        }
    });

    let batch = run_manifest(&manifest, &pool);
    drop(pool); // closes the event channel so the printer drains and exits
    let _ = printer.join();

    eprintln!(
        "detjobs: {}/{} jobs completed{}",
        batch.completed(),
        total,
        if batch.has_failures() {
            " (with failures)"
        } else {
            ""
        }
    );

    let report = batch.report_json(o.include_facts);
    match &o.report {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &report) {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("detjobs: report written to {path}");
        }
        None => println!("{report}"),
    }
    if batch.has_failures() {
        std::process::exit(1);
    }
}
