//! Edge-case behavior of the instrumented semantics: nesting, eval inside
//! counterfactuals, deletion under indeterminacy, DetDOM specifics,
//! flush-cap interactions, prototype-chain determinacy, and the
//! merge-point treatment of abrupt control.

use determinacy::driver::{AnalysisOutcome, DetHarness};
use determinacy::{AnalysisConfig, AnalysisStatus, Fact, FactValue};
use mujs_dom::document::DocumentBuilder;
use mujs_dom::events::EventPlan;
use mujs_ir::ir::StmtKind;
use mujs_ir::Program;

fn analyze(src: &str) -> (DetHarness, AnalysisOutcome) {
    analyze_cfg(src, AnalysisConfig::default())
}

fn analyze_cfg(src: &str, cfg: AnalysisConfig) -> (DetHarness, AnalysisOutcome) {
    let mut h = DetHarness::from_src(src).expect("parses");
    let out = h.analyze(cfg);
    (h, out)
}

fn var_fact(h: &DetHarness, out: &AnalysisOutcome, name: &str) -> Vec<Fact> {
    let Some(sym) = h.program.interner.get(name) else {
        return Vec::new();
    };
    let mut facts = Vec::new();
    for f in &h.program.funcs {
        Program::walk_block(&f.body, &mut |s| {
            if let StmtKind::Copy { dst, .. } = &s.kind {
                if dst.as_var_sym() == Some(sym) {
                    for (_, fact) in out.facts.at_point(determinacy::FactKind::Define, s.id) {
                        facts.push(fact.clone());
                    }
                }
            }
        });
    }
    facts
}

fn assert_det(h: &DetHarness, out: &AnalysisOutcome, name: &str, v: FactValue) {
    let fs = var_fact(h, out, name);
    assert!(
        fs.iter().all(|f| matches!(f, Fact::Det(x) if x.same(&v))) && !fs.is_empty(),
        "{name}: expected {v}, got {fs:?}"
    );
}

fn assert_indet(h: &DetHarness, out: &AnalysisOutcome, name: &str) {
    let fs = var_fact(h, out, name);
    assert!(
        fs.iter().all(|f| matches!(f, Fact::Indet)) && !fs.is_empty(),
        "{name}: expected ?, got {fs:?}"
    );
}

#[test]
fn nested_counterfactuals_within_budget() {
    let src = r#"
var o = { v: 0, w: 0 };
if (__indet(false)) {
  o.v = 1;
  if (__indet(false)) {
    o.w = 2;
  }
}
var after_v = o.v;
var after_w = o.w;
console.log(o.v, o.w);
"#;
    let (h, out) = analyze(src);
    assert_eq!(out.output, vec!["0 0"], "all writes undone");
    assert_indet(&h, &out, "after_v");
    assert_indet(&h, &out, "after_w");
    assert!(out.stats.counterfactuals >= 2);
    assert_eq!(out.stats.cf_aborts, 0);
}

#[test]
fn eval_inside_counterfactual_is_undone() {
    // Counterfactually executed eval declares a variable and assigns a
    // global; both effects must be rolled back and marked.
    let src = r#"
gl = 1;
if (__indet(false)) {
  eval("gl = 99;");
}
var after = gl;
console.log(gl);
"#;
    let (h, out) = analyze(src);
    assert_eq!(out.output, vec!["1"]);
    assert_indet(&h, &out, "after");
}

#[test]
fn delete_under_indeterminate_control_opens_record() {
    let src = r#"
var o = { a: 1, b: 2 };
if (__indet(false)) {
  delete o.a;
}
var ra = o.a;
var missing = o.zzz;
console.log(o.a);
"#;
    let (h, out) = analyze(src);
    assert_eq!(out.output, vec!["1"], "deletion undone");
    assert_indet(&h, &out, "ra");
    // The record was opened by the maybe-deletion, so even absence of an
    // unrelated key is unknowable... actually only `a` was touched, but
    // our marking conservatively opens the record when the counterfactual
    // leaves a once-present property. Accept either for `missing`, but it
    // must not be *wrongly* determinate-present.
    let fs = var_fact(&h, &out, "missing");
    assert!(!fs.is_empty());
}

#[test]
fn counterfactual_abort_on_opaque_native() {
    let src = r#"
var x = 5;
if (__indet(false)) {
  __opaque();
  x = 9;
}
var after = x;
console.log(x);
"#;
    let (h, out) = analyze(src);
    assert_eq!(out.output, vec!["5"]);
    assert!(
        out.stats.cf_aborts >= 1,
        "opaque native aborts counterfactual"
    );
    assert!(out.stats.heap_flushes >= 1, "abort flushes");
    assert_indet(&h, &out, "after");
}

#[test]
fn cf_step_budget_aborts_runaway_counterfactual() {
    let src = r#"
var n = 0;
if (__indet(false)) {
  for (var i = 0; i < 1000000; i++) { n = n + 1; }
}
console.log(n);
"#;
    let cfg = AnalysisConfig {
        cf_step_budget: 500,
        ..Default::default()
    };
    let (_, out) = analyze_cfg(src, cfg);
    assert_eq!(out.status, AnalysisStatus::Completed);
    assert_eq!(out.output, vec!["0"]);
    assert!(out.stats.cf_aborts >= 1);
}

#[test]
fn prototype_chain_determinacy_flows() {
    let src = r#"
function F() {}
F.prototype.m = 7;
var o = new F();
var inherited = o.m;
F.prototype.m = __indet(8);
var tainted = o.m;
"#;
    let (h, out) = analyze(src);
    assert_det(&h, &out, "inherited", FactValue::Num(7.0));
    assert_indet(&h, &out, "tainted");
}

#[test]
fn indeterminate_prototype_slot_taints_instances() {
    let src = r#"
function A() {}
function B() {}
var Ctor = __indet(true) ? A : B;
"#;
    // (Covered more deeply by the flush tests; here we just ensure no
    // panic when constructing through an indeterminate callee.)
    let src2 = format!("{src}\nvar inst = new Ctor();\nvar probe = inst.anything;");
    let (h, out) = analyze(&src2);
    assert_indet(&h, &out, "probe");
    assert!(out.stats.heap_flushes >= 1);
}

#[test]
fn arguments_object_carries_arg_determinacy() {
    let src = r#"
function f() { return arguments[0]; }
var det = f(5);
var indet = f(__indet(5));
"#;
    let (h, out) = analyze(src);
    assert_det(&h, &out, "det", FactValue::Num(5.0));
    assert_indet(&h, &out, "indet");
}

#[test]
fn call_and_apply_models_propagate() {
    let src = r#"
function add(a, b) { return a + b; }
var det = add.call(null, 1, 2);
var indet = add.apply(null, [1, __indet(2)]);
"#;
    let (h, out) = analyze(src);
    assert_det(&h, &out, "det", FactValue::Num(3.0));
    assert_indet(&h, &out, "indet");
}

#[test]
fn string_methods_propagate_receiver_indeterminacy() {
    let src = r#"
var s = __indet("Width");
var low = s.toLowerCase();
var part = "getWidth".substr(3);
"#;
    let (h, out) = analyze(src);
    assert_indet(&h, &out, "low");
    assert_det(&h, &out, "part", FactValue::Str("Width".into()));
}

#[test]
fn array_methods_propagate() {
    let src = r#"
var a = [1, 2, 3];
var joined = a.join("-");
a.push(__indet(4));
var joined2 = a.join("-");
var idx = a.indexOf(2);
"#;
    let (h, out) = analyze(src);
    assert_det(&h, &out, "joined", FactValue::Str("1-2-3".into()));
    assert_indet(&h, &out, "joined2");
    // indexOf scans elements including the indeterminate one; the found
    // index 1 precedes it, but the scan joins all visited element flags —
    // element 4 is never reached, so this stays determinate.
    assert_det(&h, &out, "idx", FactValue::Num(1.0));
}

#[test]
fn detdom_makes_dom_reads_determinate() {
    let doc = DocumentBuilder::new()
        .title("T")
        .element("div", Some("x"), &[("data-k", "v")])
        .build();
    let src = r#"
var el = document.getElementById("x");
var attr = el.getAttribute("data-k");
var title = document.title;
"#;
    for (det_dom, expect_det) in [(false, false), (true, true)] {
        let mut h = DetHarness::from_src(src).unwrap();
        let out = h.analyze_dom(
            AnalysisConfig {
                det_dom,
                ..Default::default()
            },
            doc.clone(),
            &EventPlan::new(),
        );
        let fs = var_fact(&h, &out, "attr");
        let all_det = fs.iter().all(Fact::is_det);
        assert_eq!(all_det, expect_det, "det_dom={det_dom}: {fs:?}");
        let ts = var_fact(&h, &out, "title");
        assert_eq!(ts.iter().all(Fact::is_det), expect_det);
    }
}

#[test]
fn handler_entry_flush_applies_even_under_detdom() {
    let doc = DocumentBuilder::new()
        .element("button", Some("b"), &[])
        .build();
    let src = r#"
var state = { n: 7 };
document.getElementById("b").addEventListener("click", function() {
  var inside = state.n;
  window.seen = inside;
});
"#;
    let mut h = DetHarness::from_src(src).unwrap();
    let out = h.analyze_dom(
        AnalysisConfig {
            det_dom: true,
            ..Default::default()
        },
        doc,
        &EventPlan::new().click("b"),
    );
    assert_eq!(out.status, AnalysisStatus::Completed);
    assert!(out.stats.handlers_fired >= 1);
    assert!(out.stats.heap_flushes >= 1, "entry flush is unconditional");
    // `inside` reads flushed heap state: indeterminate even under DetDOM.
    let fs = var_fact(&h, &out, "inside");
    assert!(fs.iter().all(|f| matches!(f, Fact::Indet)), "{fs:?}");
}

#[test]
fn facts_keep_soundness_after_flush_cap_stop() {
    let src = r#"
var early = 2 + 3;
for (var i = 0; i < 50; i++) { __opaque(); }
var never = 1;
"#;
    let cfg = AnalysisConfig {
        flush_cap: Some(5),
        ..Default::default()
    };
    let (h, out) = analyze_cfg(src, cfg);
    assert_eq!(out.status, AnalysisStatus::FlushCapReached);
    // Facts recorded before the stop survive and stay correct.
    assert_det(&h, &out, "early", FactValue::Num(5.0));
    // Code after the stop produced no facts.
    assert!(var_fact(&h, &out, "never").is_empty());
}

#[test]
fn break_out_of_nested_loop_under_indeterminacy() {
    let src = r#"
var total = 0;
for (var i = 0; i < 3; i++) {
  for (var j = 0; j < 3; j++) {
    if (__indet(false)) { break; }
    total = total + 1;
  }
}
var after = total;
console.log(total);
"#;
    let (h, out) = analyze(src);
    assert_eq!(out.output, vec!["9"]);
    assert_indet(&h, &out, "after");
}

#[test]
fn continue_under_indeterminacy() {
    let src = r#"
var hits = 0;
for (var i = 0; i < 4; i++) {
  if (__indet(true)) { continue; }
  hits = hits + 1;
}
var after = hits;
console.log(hits);
"#;
    let (h, out) = analyze(src);
    assert_eq!(out.output, vec!["0"]);
    assert_indet(&h, &out, "after");
}

#[test]
fn do_while_first_iteration_unconditional() {
    let src = r#"
var ran = 0;
do { ran = 1; } while (false);
var after = ran;
"#;
    let (h, out) = analyze(src);
    assert_det(&h, &out, "after", FactValue::Num(1.0));
}

#[test]
fn switch_determinacy() {
    let src = r#"
function route(x) {
  var label = "";
  switch (x) {
    case 1: label = "one"; break;
    case 2: label = "two"; break;
    default: label = "other";
  }
  return label;
}
var det = route(2);
var indet = route(__indet(1));
"#;
    let (h, out) = analyze(src);
    assert_det(&h, &out, "det", FactValue::Str("two".into()));
    assert_indet(&h, &out, "indet");
}

#[test]
fn for_in_inherited_properties() {
    let src = r#"
function F() { this.own = 1; }
F.prototype.inh = 2;
var o = new F();
var ks = "";
for (var k in o) { ks = ks + k + ";"; }
var after = ks;
console.log(ks);
"#;
    let (h, out) = analyze(src);
    assert_eq!(out.output, vec!["own;constructor;inh;"]);
    assert_det(
        &h,
        &out,
        "after",
        FactValue::Str("own;constructor;inh;".into()),
    );
}

#[test]
fn typeof_unbound_after_flush_is_indeterminate() {
    let src = r#"
var before = typeof neverDeclared;
__opaque();
var after = typeof neverDeclared;
"#;
    let (h, out) = analyze(src);
    assert_det(&h, &out, "before", FactValue::Str("undefined".into()));
    // After a flush, an unknown callee could have created the global.
    assert_indet(&h, &out, "after");
}

#[test]
fn counterfactual_output_and_events_suppressed() {
    let doc = DocumentBuilder::new()
        .element("button", Some("b"), &[])
        .build();
    let src = r#"
if (__indet(false)) {
  console.log("ghost");
}
console.log("real");
"#;
    let mut h = DetHarness::from_src(src).unwrap();
    let out = h.analyze_dom(AnalysisConfig::default(), doc, &EventPlan::new());
    assert_eq!(out.output, vec!["real"]);
}

#[test]
fn addeventlistener_in_counterfactual_aborts() {
    let doc = DocumentBuilder::new()
        .element("button", Some("b"), &[])
        .build();
    let src = r#"
var el = document.getElementById("b");
if (__indet(false)) {
  el.addEventListener("click", function() { console.log("never"); });
}
"#;
    let mut h = DetHarness::from_src(src).unwrap();
    let out = h.analyze_dom(AnalysisConfig::default(), doc, &EventPlan::new().click("b"));
    assert_eq!(out.status, AnalysisStatus::Completed);
    // The registration was aborted, not kept: the click fires nothing.
    assert!(out.output.is_empty());
    assert!(out.stats.cf_aborts >= 1);
}

#[test]
fn named_function_expression_recursion_analyzed() {
    let src = r#"
var fact = function rec(n) { return n <= 1 ? 1 : n * rec(n - 1); };
var det = fact(5);
var indet = fact(__indet(5));
"#;
    let (h, out) = analyze(src);
    assert_det(&h, &out, "det", FactValue::Num(120.0));
    assert_indet(&h, &out, "indet");
}

#[test]
fn closure_counter_stays_determinate() {
    let src = r#"
function counter() {
  var c = 0;
  return function() { c = c + 1; return c; };
}
var next = counter();
next();
var third_is = next() + 1;
"#;
    let (h, out) = analyze(src);
    assert_det(&h, &out, "third_is", FactValue::Num(3.0));
}

#[test]
fn closure_captured_var_flushed_when_closure_written() {
    let src = r#"
function make() {
  var c = 0;
  return function() { c = c + 1; return c; };
}
var next = make();
__opaque();
var after = next();
"#;
    let (h, out) = analyze(src);
    // `c` is closure-written, so the flush invalidates it; the call result
    // is indeterminate. (`next` itself is a global: also flushed.)
    assert_indet(&h, &out, "after");
}
