//! The content-addressed stage cache: an in-memory LRU over pipeline
//! artifacts, with optional on-disk persistence.
//!
//! Every entry is keyed by a [`determinacy::cachekey`] digest of the
//! *exact inputs* of one pipeline stage (see [`crate::stage`] for the
//! keying scheme), and every stored artifact is a plain JSON value —
//! deterministic bytes, no interior `Rc`s — so entries are safely shared
//! across worker threads and across daemon restarts.
//!
//! Persistence is write-through and best-effort: artifacts land on disk
//! via the same atomic temp-file + rename discipline as the `mujs-jobs`
//! checkpoint, and a memory miss falls back to a disk read before
//! counting as a true miss. A full disk or a torn file never fails a
//! request — the stage simply recomputes.
//!
//! All counters are monotone atomics exposed through
//! [`StageCache::stats`]; the service's warm/cold guarantees are asserted
//! against them (a warm request increments only hit counters).

use serde_json::Value;
use std::collections::HashMap;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// On-disk artifact envelope version; entries with any other version are
/// ignored (treated as a miss) instead of misread.
const DISK_VERSION: f64 = 1.0;

/// The pipeline stages the cache distinguishes. Keys are already
/// content-hashes of stage inputs, but the stage tag keeps artifacts of
/// different shapes from ever colliding in one namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Parse + lower + intern (artifact: program digest or syntax error).
    Parse,
    /// Dynamic determinacy analysis over the seed fan-out (artifact: the
    /// combined fact export plus injectable pairs).
    Facts,
    /// Concrete-replay region summaries (artifact: portable shortcut
    /// summaries plus extractor counts).
    Summary,
    /// Budgeted pointer analysis (artifact: precision + work summary).
    Pta,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 4] = [Stage::Parse, Stage::Facts, Stage::Summary, Stage::Pta];

    /// The stage's stable name (stats keys, disk file prefixes).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Facts => "facts",
            Stage::Summary => "summary",
            Stage::Pta => "pta",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Parse => 0,
            Stage::Facts => 1,
            Stage::Summary => 2,
            Stage::Pta => 3,
        }
    }
}

/// Cache sizing and persistence knobs.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Maximum in-memory entries across all stages (LRU-evicted beyond
    /// it; clamped to at least 1).
    pub capacity: usize,
    /// When set, artifacts are persisted here (one file per entry) and
    /// memory misses fall back to disk.
    pub disk_dir: Option<PathBuf>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 256,
            disk_dir: None,
        }
    }
}

/// Monotone cache counters (one snapshot is embedded in every `stats`
/// response; the CI smoke gate diffs warm-request deltas against zero
/// recomputation).
#[derive(Debug, Default)]
struct Counters {
    hits: [AtomicU64; 4],
    misses: [AtomicU64; 4],
    disk_hits: [AtomicU64; 4],
    insertions: AtomicU64,
    evictions: AtomicU64,
}

struct Lru {
    map: HashMap<(Stage, String), (u64, Arc<Value>)>,
    tick: u64,
}

/// The shared stage cache. Artifacts are stored behind `Arc`, so a hit
/// hands back a shared reference instead of deep-cloning the (possibly
/// multi-megabyte) JSON tree — the clone under the lock is one refcount
/// bump, which is what keeps warm requests orders of magnitude cheaper
/// than cold ones.
pub struct StageCache {
    cfg: CacheConfig,
    inner: Mutex<Lru>,
    counters: Counters,
}

impl std::fmt::Debug for StageCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StageCache")
            .field("capacity", &self.cfg.capacity)
            .field("disk_dir", &self.cfg.disk_dir)
            .finish()
    }
}

impl StageCache {
    /// An empty cache over `cfg` (creating the disk directory eagerly so
    /// later write failures are the only I/O surprise).
    pub fn new(cfg: CacheConfig) -> Self {
        if let Some(dir) = &cfg.disk_dir {
            let _ = std::fs::create_dir_all(dir);
        }
        StageCache {
            cfg,
            inner: Mutex::new(Lru {
                map: HashMap::new(),
                tick: 0,
            }),
            counters: Counters::default(),
        }
    }

    /// Looks `key` up in `stage`'s namespace: memory first, then disk.
    /// A disk restore is promoted into memory and counted separately
    /// from a warm in-memory hit.
    pub fn get(&self, stage: Stage, key: &str) -> Option<Arc<Value>> {
        let idx = stage.index();
        {
            let mut lru = self.inner.lock().unwrap();
            lru.tick += 1;
            let tick = lru.tick;
            if let Some(slot) = lru.map.get_mut(&(stage, key.to_owned())) {
                slot.0 = tick;
                self.counters.hits[idx].fetch_add(1, Ordering::Relaxed);
                return Some(slot.1.clone());
            }
        }
        if let Some(v) = self.disk_load(stage, key) {
            self.counters.disk_hits[idx].fetch_add(1, Ordering::Relaxed);
            let v = Arc::new(v);
            self.insert_memory(stage, key, v.clone());
            return Some(v);
        }
        self.counters.misses[idx].fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Stores an artifact (write-through to disk when persistence is
    /// configured) and returns the shared handle. Concurrent puts of the
    /// same key are idempotent — artifacts are deterministic functions of
    /// the key's inputs.
    pub fn put(&self, stage: Stage, key: &str, value: Value) -> Arc<Value> {
        self.counters.insertions.fetch_add(1, Ordering::Relaxed);
        if self.cfg.disk_dir.is_some() {
            self.disk_store(stage, key, &value);
        }
        let value = Arc::new(value);
        self.insert_memory(stage, key, value.clone());
        value
    }

    fn insert_memory(&self, stage: Stage, key: &str, value: Arc<Value>) {
        let mut lru = self.inner.lock().unwrap();
        lru.tick += 1;
        let tick = lru.tick;
        lru.map.insert((stage, key.to_owned()), (tick, value));
        let cap = self.cfg.capacity.max(1);
        while lru.map.len() > cap {
            // O(n) victim scan; service caches are hundreds of entries,
            // not millions, and the lock is held briefly.
            if let Some(victim) = lru
                .map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k.clone())
            {
                lru.map.remove(&victim);
                self.counters.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn disk_path(&self, stage: Stage, key: &str) -> Option<PathBuf> {
        self.cfg
            .disk_dir
            .as_ref()
            .map(|d| d.join(format!("{}-{key}.json", stage.name())))
    }

    fn disk_load(&self, stage: Stage, key: &str) -> Option<Value> {
        let path = self.disk_path(stage, key)?;
        let text = std::fs::read_to_string(path).ok()?;
        let v: Value = serde_json::from_str(&text).ok()?;
        if v.get("version").and_then(Value::as_f64) != Some(DISK_VERSION) {
            return None;
        }
        v.get("artifact").cloned()
    }

    /// Best-effort atomic persistence (tmp + rename, errors swallowed —
    /// a full disk must not fail the request the cache is accelerating).
    fn disk_store(&self, stage: Stage, key: &str, value: &Value) {
        let Some(path) = self.disk_path(stage, key) else {
            return;
        };
        let doc = Value::Object(vec![
            ("version".to_owned(), Value::Num(DISK_VERSION)),
            ("stage".to_owned(), Value::Str(stage.name().to_owned())),
            ("key".to_owned(), Value::Str(key.to_owned())),
            ("artifact".to_owned(), value.clone()),
        ]);
        let bytes = serde_json::to_string_pretty(&doc)
            .expect("artifact serializes")
            .into_bytes();
        let tmp = path.with_extension("json.tmp");
        let written = std::fs::File::create(&tmp)
            .and_then(|mut f| f.write_all(&bytes))
            .is_ok();
        if written {
            let _ = std::fs::rename(&tmp, &path);
        }
    }

    /// Number of in-memory entries.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// Whether the in-memory cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A deterministic JSON snapshot of the counters.
    pub fn stats(&self) -> Value {
        let num = |a: &AtomicU64| Value::Num(a.load(Ordering::Relaxed) as f64);
        let mut fields = Vec::new();
        for stage in Stage::ALL {
            let i = stage.index();
            fields.push((
                format!("{}_hits", stage.name()),
                num(&self.counters.hits[i]),
            ));
            fields.push((
                format!("{}_misses", stage.name()),
                num(&self.counters.misses[i]),
            ));
            fields.push((
                format!("{}_disk_hits", stage.name()),
                num(&self.counters.disk_hits[i]),
            ));
        }
        fields.push(("insertions".to_owned(), num(&self.counters.insertions)));
        fields.push(("evictions".to_owned(), num(&self.counters.evictions)));
        fields.push(("entries".to_owned(), Value::Num(self.len() as f64)));
        Value::Object(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Value {
        Value::Object(vec![("x".to_owned(), Value::Str(s.to_owned()))])
    }

    #[test]
    fn hits_and_misses_are_counted_per_stage() {
        let c = StageCache::new(CacheConfig::default());
        assert!(c.get(Stage::Parse, "k").is_none());
        c.put(Stage::Parse, "k", v("a"));
        assert_eq!(c.get(Stage::Parse, "k").as_deref(), Some(&v("a")));
        // Same key in a different stage namespace is a distinct entry.
        assert!(c.get(Stage::Facts, "k").is_none());
        let s = c.stats();
        assert_eq!(s.get("parse_hits").unwrap(), &1.0);
        assert_eq!(s.get("parse_misses").unwrap(), &1.0);
        assert_eq!(s.get("facts_misses").unwrap(), &1.0);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let c = StageCache::new(CacheConfig {
            capacity: 2,
            disk_dir: None,
        });
        c.put(Stage::Parse, "a", v("a"));
        c.put(Stage::Parse, "b", v("b"));
        assert!(c.get(Stage::Parse, "a").is_some()); // refresh a
        c.put(Stage::Parse, "c", v("c")); // evicts b
        assert!(c.get(Stage::Parse, "b").is_none());
        assert!(c.get(Stage::Parse, "a").is_some());
        assert!(c.get(Stage::Parse, "c").is_some());
        assert_eq!(c.stats().get("evictions").unwrap(), &1.0);
    }

    #[test]
    fn disk_persistence_survives_a_fresh_cache() {
        let dir = std::env::temp_dir().join("detserved-cache-persist");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = CacheConfig {
            capacity: 8,
            disk_dir: Some(dir.clone()),
        };
        let c1 = StageCache::new(cfg.clone());
        c1.put(Stage::Facts, "deadbeef", v("persisted"));
        drop(c1);
        let c2 = StageCache::new(cfg);
        assert_eq!(
            c2.get(Stage::Facts, "deadbeef").as_deref(),
            Some(&v("persisted"))
        );
        let s = c2.stats();
        assert_eq!(s.get("facts_disk_hits").unwrap(), &1.0);
        assert_eq!(s.get("facts_misses").unwrap(), &0.0);
        // A second lookup is a warm in-memory hit.
        assert!(c2.get(Stage::Facts, "deadbeef").is_some());
        assert_eq!(c2.stats().get("facts_hits").unwrap(), &1.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_disk_entries_read_as_misses() {
        let dir = std::env::temp_dir().join("detserved-cache-corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("pta-badkey.json"), "{ not json").unwrap();
        std::fs::write(
            dir.join("pta-oldver.json"),
            r#"{"version": 99.0, "artifact": {"x": "stale"}}"#,
        )
        .unwrap();
        let c = StageCache::new(CacheConfig {
            capacity: 8,
            disk_dir: Some(dir.clone()),
        });
        assert!(c.get(Stage::Pta, "badkey").is_none());
        assert!(c.get(Stage::Pta, "oldver").is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
