//! Regenerates the §5.2 eval-elimination study over the 24 runnable
//! benchmarks: how many programs have *all* their `eval` uses specialized
//! away, under the plain analysis and under DetDOM, with the failure
//! breakdown.
//!
//! Run with `cargo run -p mujs-bench --bin eval_elim --release`.

use determinacy::AnalysisConfig;
use mujs_bench::analyze_page;
use mujs_corpus::evalbench::{all, Expected};
use mujs_specialize::SpecConfig;

fn eliminate(b: &mujs_corpus::evalbench::EvalBenchmark, det_dom: bool) -> (bool, usize) {
    let cfg = AnalysisConfig {
        det_dom,
        ..Default::default()
    };
    let doc = b.doc();
    let plan = b.plan();
    // A benchmark whose analysis fails (parse error, engine panic) counts
    // as "not handled" rather than killing the study.
    let (h, mut out) = match analyze_page(&b.src, &doc, &plan, cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{}: {e}", b.name);
            return (false, 0);
        }
    };
    let spec = mujs_specialize::specialize(
        &h.program,
        &out.facts,
        &mut out.ctxs,
        &SpecConfig::default(),
    );
    // Per-site aggregation over all rewrite visits: a site counts as
    // specialized when every visit eliminated it or erased it with dead
    // code; a site with no events was never reached by the dynamic run
    // (the paper's "not covered" category) and counts as a failure.
    use mujs_specialize::EvalStatus;
    use std::collections::HashMap;
    let mut per_site: HashMap<mujs_ir::StmtId, bool> = HashMap::new();
    for (site, st) in &spec.report.eval_events {
        let ok = matches!(st, EvalStatus::Eliminated | EvalStatus::DeadCode);
        per_site
            .entry(*site)
            .and_modify(|v| *v = *v && ok)
            .or_insert(ok);
    }
    let mut failures = 0usize;
    let mut total_sites = 0usize;
    for f in &h.program.funcs {
        mujs_ir::Program::walk_block(&f.body, &mut |s| {
            if matches!(s.kind, mujs_ir::StmtKind::Eval { .. }) {
                total_sites += 1;
                match per_site.get(&s.id) {
                    Some(true) => {}
                    _ => failures += 1,
                }
            }
        });
    }
    let _ = out;
    (failures == 0, failures)
}

fn main() {
    let suite = all();
    let runnable: Vec<_> = suite.iter().filter(|b| b.runnable).collect();
    println!(
        "§5.2 eval elimination — {} benchmarks, {} runnable ({} excluded as in the paper)",
        suite.len(),
        runnable.len(),
        suite.len() - runnable.len()
    );
    println!();
    println!(
        "{:<24} {:<10} {:<10} {:<22} expected(DetDOM)",
        "benchmark", "plain", "DetDOM", "expected(plain)"
    );
    let mut plain_ok = 0;
    let mut detdom_ok = 0;
    let mut mismatches = 0;
    for b in &runnable {
        let (p, _) = eliminate(b, false);
        let (d, _) = eliminate(b, true);
        if p {
            plain_ok += 1;
        }
        if d {
            detdom_ok += 1;
        }
        let exp_p = b.expected == Expected::Eliminated;
        let exp_d = b.expected_detdom == Expected::Eliminated;
        let marker = if p == exp_p && d == exp_d { "" } else { "  <-- MISMATCH" };
        if !marker.is_empty() {
            mismatches += 1;
        }
        println!(
            "{:<24} {:<10} {:<10} {:<22} {:?}{}",
            b.name,
            if p { "handled" } else { "fails" },
            if d { "handled" } else { "fails" },
            format!("{:?}", b.expected),
            b.expected_detdom,
            marker
        );
    }
    println!();
    println!("plain analysis handles {plain_ok}/{} (paper: 14/24)", runnable.len());
    println!("DetDOM handles        {detdom_ok}/{} (paper: 20/24)", runnable.len());
    if mismatches > 0 {
        println!("WARNING: {mismatches} benchmarks deviate from their expected outcome");
        std::process::exit(1);
    }
}
