//! `detbench` — the repo's interpreter-performance harness.
//!
//! Measures two layers and emits one JSON document (`BENCH_interp.json`
//! feedstock):
//!
//! * **micro** — the concrete interpreter (S1) over the synthetic
//!   `mujs_corpus::workload` programs, reported as steps/sec;
//! * **corpus** — the instrumented analysis (S2) over the Table 1
//!   jQuery-like corpus and the §5.2 eval suite, reported as wall time
//!   and corpus-level steps/sec.
//!
//! ```console
//! $ cargo run --release -p mujs-bench --bin detbench -- --out bench.json
//! $ cargo run --release -p mujs-bench --bin detbench -- --check BENCH_interp.json
//! ```
//!
//! `--check` reruns the corpus measurements and fails (exit 1) if the
//! Table 1 analysis wall time regresses more than `--max-regress`
//! (default 0.25 = 25%) against the baseline file's `after` section —
//! the CI smoke gate.
//!
//! With `--pta` the harness instead runs the pointer-analysis precision
//! workload (`BENCH_pta.json` feedstock): baseline vs fact-injected vs
//! specialized solves over the Table 1 corpus, measured with both the
//! naive reference solver (`before`) and the delta-propagating bitset
//! solver (`after`) at a budget (`PTA_COMPARE_BUDGET`) where the
//! uninjected baseline reaches a real fixpoint. The precision metrics it
//! gates are deterministic (propagation work, call-graph shape), so
//! `--pta --check` gates exactly — injected must complete wherever
//! specialized does, the baseline must keep reaching its fixpoint, its
//! precision must stay within `--max-regress` of specialized, and its
//! work must not regress against the checked-in baseline. Wall time is
//! reported per row (`wall_ms`, `work_per_sec`) but only gated
//! *relatively*: in release builds the delta solver must sustain at
//! least 1.5x the reference solver's same-run throughput:
//!
//! ```console
//! $ cargo run --release -p mujs-bench --bin detbench -- --pta --out BENCH_pta.json
//! $ cargo run --release -p mujs-bench --bin detbench -- --pta --check BENCH_pta.json --max-regress 0.1
//! ```
//!
//! `--pta` also measures the epoch-sharded parallel solver: the
//! `--threads` list (default `1,2,8`) produces a `threads` scaling
//! section — the uninjected baseline solve per corpus version at each
//! thread count — with a result-identity check (export digests must
//! agree across thread counts, the parallel solver's determinism
//! contract) and a same-run scaling gate: at least 1.8x the
//! single-thread throughput at 8 threads on the non-trivial versions.
//! The scaling gate needs hardware parallelism to be measurable, so it
//! arms only in release builds on hosts with 8+ CPUs (`host_cpus` is
//! recorded in the JSON so a baseline file documents where it was
//! produced); the identity check runs everywhere.

use determinacy::{AnalysisConfig, DetHarness, RunHooks};
use mujs_corpus::{evalbench, jquery_like, workload};
use mujs_interp::driver::Harness;
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct MicroResult {
    name: String,
    wall_ms: f64,
    steps: u64,
    steps_per_sec: f64,
}

#[derive(Debug, Serialize)]
struct CorpusResult {
    wall_ms: f64,
    steps: u64,
    steps_per_sec: f64,
}

#[derive(Debug, Serialize)]
struct Measurement {
    label: String,
    mode: &'static str,
    micro: Vec<MicroResult>,
    table1_analysis: CorpusResult,
    eval_elim_analysis: CorpusResult,
    table1_full_wall_ms: f64,
}

const MODE: &str = if cfg!(debug_assertions) {
    "debug"
} else {
    "release"
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut label = String::from("current");
    let mut max_regress = 0.25f64;
    let mut iters = 3usize;
    let mut pta = false;
    let mut threads: Vec<usize> = vec![1, 2, 8];
    let mut shards: Vec<usize> = vec![16, 32, 64];
    let mut spec_depth: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        let need = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .cloned()
                .unwrap_or_else(|| usage("flag needs a value"))
        };
        match args[i].as_str() {
            "--out" => out_path = Some(need(&mut i)),
            "--check" => check_path = Some(need(&mut i)),
            "--label" => label = need(&mut i),
            "--iters" => {
                iters = need(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage("--iters wants an integer"))
            }
            "--max-regress" => {
                max_regress = need(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage("--max-regress wants a float"))
            }
            "--pta" => pta = true,
            "--spec-depth" => {
                spec_depth = Some(
                    need(&mut i)
                        .parse()
                        .unwrap_or_else(|_| usage("--spec-depth wants an integer")),
                )
            }
            "--threads" => {
                threads = need(&mut i)
                    .split(',')
                    .map(|t| {
                        t.trim()
                            .parse()
                            .unwrap_or_else(|_| usage("--threads wants a comma-separated list"))
                    })
                    .collect();
                if threads.is_empty() {
                    usage("--threads wants at least one thread count");
                }
            }
            "--shards" => {
                shards = need(&mut i)
                    .split(',')
                    .map(|t| {
                        t.trim()
                            .parse()
                            .unwrap_or_else(|_| usage("--shards wants a comma-separated list"))
                    })
                    .collect();
                if shards.is_empty() {
                    usage("--shards wants at least one shard count");
                }
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }

    if pta {
        run_pta(
            &label,
            out_path.as_deref(),
            check_path.as_deref(),
            max_regress,
            &threads,
            &shards,
            spec_depth,
        );
        return;
    }

    let m = measure(&label, iters, spec_depth);
    let json = serde_json::to_string_pretty(&m).expect("measurement serializes");
    match &out_path {
        Some(p) => {
            std::fs::write(p, format!("{json}\n")).expect("write bench output");
            eprintln!("wrote {p}");
        }
        None => println!("{json}"),
    }
    report(&m);

    if let Some(p) = check_path {
        let base = std::fs::read_to_string(&p).expect("read baseline");
        let base: serde_json::Value = serde_json::from_str(&base).expect("baseline parses");
        // Accept either a bare measurement or the checked-in
        // {before, after} document; gate against `after`.
        let after = if base.get("after").is_some() {
            &base["after"]
        } else {
            &base
        };
        let base_wall = after["table1_analysis"]["wall_ms"]
            .as_f64()
            .expect("baseline table1_analysis.wall_ms");
        let cur = m.table1_analysis.wall_ms;
        let limit = base_wall * (1.0 + max_regress);
        eprintln!(
            "check: table1 analysis wall {cur:.1}ms vs baseline {base_wall:.1}ms \
             (limit {limit:.1}ms)"
        );
        if MODE == "debug" {
            eprintln!("check: debug build — wall-time gate is advisory only");
        } else if cur > limit {
            eprintln!(
                "FAIL: corpus wall time regressed more than {:.0}%",
                max_regress * 100.0
            );
            std::process::exit(1);
        }
        eprintln!("check: ok");
    }
}

fn usage(problem: &str) -> ! {
    if !problem.is_empty() {
        eprintln!("error: {problem}");
    }
    eprintln!(
        "usage: detbench [--pta] [--threads N,N,...] [--shards N,N,...]\n\
         \x20               [--spec-depth N] [--out FILE]\n\
         \x20               [--label L] [--iters N] [--check BASELINE.json]\n\
         \x20               [--max-regress F]\n\
         \n\
         \x20 --spec-depth N  specializer context-depth bound (default 4). Unlike\n\
         \x20                 --threads this changes results, so baselines produced\n\
         \x20                 at different depths are not comparable"
    );
    std::process::exit(2);
}

#[derive(Debug, Serialize)]
struct PtaSolverRows {
    solver: &'static str,
    rows: Vec<mujs_bench::pipeline::PtaCompareRow>,
}

#[derive(Debug, Serialize)]
struct PtaThreadsSection {
    threads: usize,
    rows: Vec<mujs_bench::pipeline::PtaScaleRow>,
}

#[derive(Debug, Serialize)]
struct PtaShardsSection {
    shards: usize,
    /// The epoch-sharded driver needs >= 2 threads (or provenance) to
    /// engage; the sweep pins this so the shard knob is what varies.
    threads: usize,
    rows: Vec<mujs_bench::pipeline::PtaScaleRow>,
}

#[derive(Debug, Serialize)]
struct ShortcutSection {
    /// The tight Table 1 budget the comparison runs at — the point of
    /// shortcuts is completing where injection-only starves.
    budget: u64,
    rows: Vec<mujs_bench::pipeline::ShortcutCompareRow>,
}

#[derive(Debug, Serialize)]
struct PtaMeasurement {
    label: String,
    mode: &'static str,
    /// CPUs visible to the measuring host — the scaling rows are only
    /// meaningful where this covers the largest thread count.
    host_cpus: usize,
    budget: u64,
    /// The naive reference solver (pre-optimization algorithm).
    before: PtaSolverRows,
    /// The delta-propagating bitset solver.
    after: PtaSolverRows,
    /// Thread-scaling study: the baseline solve per version at each
    /// requested thread count (epoch-sharded solver for counts >= 2).
    threads: Vec<PtaThreadsSection>,
    /// Shard-count sweep: the baseline solve of the non-trivial versions
    /// at each requested shard count (2 threads), identity-checked
    /// against the first shard count.
    shards: Vec<PtaShardsSection>,
    /// Shortcut comparison: injection-only vs injection+summaries at the
    /// Table 1 budget.
    shortcuts: ShortcutSection,
}

/// The `--pta` workload: three-way solver comparison over the Table 1
/// corpus, measured with both the reference ("before") and the
/// delta-propagating ("after") solver, with a deterministic `--check`
/// gate plus a same-run relative throughput gate (release only).
fn run_pta(
    label: &str,
    out_path: Option<&str>,
    check_path: Option<&str>,
    max_regress: f64,
    thread_counts: &[usize],
    shard_counts: &[usize],
    spec_depth: Option<usize>,
) {
    let budget = mujs_bench::pipeline::PTA_COMPARE_BUDGET;
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let solve_all = |solver| -> Vec<_> {
        mujs_corpus::jquery_like::all_versions()
            .iter()
            .map(|v| {
                mujs_bench::pipeline::run_pta_compare_with(v, budget, solver, spec_depth)
                    .expect("pta compare runs")
            })
            .collect()
    };

    // Thread-scaling study: each version's baseline program solved at
    // every requested thread count; digests collected per (thread,
    // version) for the cross-thread result-identity check.
    let cases = mujs_bench::pipeline::pta_scale_cases().expect("scale cases prepare");
    let mut digests: Vec<Vec<u64>> = Vec::new();
    let threads: Vec<PtaThreadsSection> = thread_counts
        .iter()
        .map(|&t| {
            let mut section_digests = Vec::new();
            let rows = cases
                .iter()
                .map(|c| {
                    let (row, digest) = mujs_bench::pipeline::pta_scale_solve(c, budget, t);
                    section_digests.push(digest);
                    row
                })
                .collect();
            digests.push(section_digests);
            PtaThreadsSection { threads: t, rows }
        })
        .collect();

    // Shard-count sweep: the non-trivial versions re-solved at each
    // requested shard count under the epoch-sharded driver (2 threads —
    // the smallest count that engages it). Shards are the unit of
    // determinism, so every count must reproduce the same export.
    let sweep_cases: Vec<&mujs_bench::pipeline::PtaScaleCase> = cases
        .iter()
        .enumerate()
        .filter(|(ci, _)| threads.first().is_some_and(|s| s.rows[*ci].work >= 100_000))
        .map(|(_, c)| c)
        .collect();
    let mut shard_digests: Vec<Vec<u64>> = Vec::new();
    let shards: Vec<PtaShardsSection> = shard_counts
        .iter()
        .map(|&s| {
            let mut section_digests = Vec::new();
            let rows = sweep_cases
                .iter()
                .map(|c| {
                    let (row, digest) =
                        mujs_bench::pipeline::pta_scale_solve_sharded(c, budget, 2, s);
                    section_digests.push(digest);
                    row
                })
                .collect();
            shard_digests.push(section_digests);
            PtaShardsSection {
                shards: s,
                threads: 2,
                rows,
            }
        })
        .collect();

    // Shortcut comparison at the tight Table 1 budget.
    let shortcut_budget = mujs_bench::pipeline::TABLE1_PTA_BUDGET;
    let shortcuts = ShortcutSection {
        budget: shortcut_budget,
        rows: mujs_corpus::jquery_like::all_versions()
            .iter()
            .map(|v| {
                mujs_bench::pipeline::run_shortcut_compare(v, shortcut_budget)
                    .expect("shortcut compare runs")
            })
            .collect(),
    };

    let m = PtaMeasurement {
        label: label.to_owned(),
        mode: MODE,
        host_cpus,
        budget,
        before: PtaSolverRows {
            solver: "reference",
            rows: solve_all(mujs_bench::pipeline::PtaSolverKind::Reference),
        },
        after: PtaSolverRows {
            solver: "delta",
            rows: solve_all(mujs_bench::pipeline::PtaSolverKind::Delta),
        },
        threads,
        shards,
        shortcuts,
    };
    let json = serde_json::to_string_pretty(&m).expect("pta measurement serializes");
    match out_path {
        Some(p) => {
            std::fs::write(p, format!("{json}\n")).expect("write pta bench output");
            eprintln!("wrote {p}");
        }
        None => println!("{json}"),
    }
    let mut failed = false;
    for (r, b) in m.after.rows.iter().zip(&m.before.rows) {
        eprintln!(
            "  pta {:<6} sites={:<4} base: ok={} work={} poly={} {:>6.1}ms {:>5.1}M/s \
             (ref {:>7.1}ms)  inj: ok={} work={}  spec: ok={} work={}",
            r.version,
            r.injected_sites,
            r.baseline.ok,
            r.baseline.work,
            r.baseline.poly_sites,
            r.baseline.wall_ms,
            r.baseline.work_per_sec / 1e6,
            b.baseline.wall_ms,
            r.injected.ok,
            r.injected.work,
            r.specialized.ok,
            r.specialized.work,
        );
        for (rank, c) in r.root_causes.iter().enumerate() {
            eprintln!(
                "        cause #{:<2} {:<14} {:>8} tuples  {} suggestion(s)  {}",
                rank + 1,
                c.kind,
                c.tuples,
                c.suggestions,
                c.label,
            );
        }
        // Hard invariant, baseline file or not: injection must reach a
        // fixpoint wherever source rewriting does.
        if r.specialized.ok && !r.injected.ok {
            eprintln!(
                "FAIL: {} — specialized completes but injected does not",
                r.version
            );
            failed = true;
        }
        // The raised comparison budget exists so the baseline measures a
        // real fixpoint on jQuery 1.0–1.2 (1.3 is allowed to starve).
        if r.version != "1.3" && !r.baseline.ok {
            eprintln!(
                "FAIL: {} — uninjected baseline no longer reaches fixpoint at budget {budget}",
                r.version
            );
            failed = true;
        }
        // Same-run relative throughput: wall clocks are machine-dependent,
        // but the delta/reference ratio on the same machine moments apart
        // is robust. Gate only non-trivial workloads, release builds only.
        if MODE == "release" && r.baseline.work >= 100_000 && b.baseline.work_per_sec > 0.0 {
            let ratio = r.baseline.work_per_sec / b.baseline.work_per_sec;
            if ratio < 1.5 {
                eprintln!(
                    "FAIL: {} — delta solver only {ratio:.2}x reference throughput",
                    r.version
                );
                failed = true;
            }
        }
    }
    for section in &m.threads {
        for r in &section.rows {
            eprintln!(
                "  pta-scale t={:<2} {:<6} ok={} work={:<8} {:>8.1}ms {:>5.1}M/s",
                section.threads,
                r.version,
                r.ok,
                r.work,
                r.wall_ms,
                r.work_per_sec / 1e6,
            );
        }
    }
    for section in &m.shards {
        for r in &section.rows {
            eprintln!(
                "  pta-shards s={:<3} {:<6} ok={} work={:<8} {:>8.1}ms {:>5.1}M/s",
                section.shards,
                r.version,
                r.ok,
                r.work,
                r.wall_ms,
                r.work_per_sec / 1e6,
            );
        }
    }
    for r in &m.shortcuts.rows {
        eprintln!(
            "  pta-shortcut {:<6} regions={:<3} tuples={:<5} inj: ok={} work={} poly={} avg={:.3}  \
             sc: ok={} work={} poly={} avg={:.3}",
            r.version,
            r.regions,
            r.tuples,
            r.injected.ok,
            r.injected.work,
            r.injected.poly_sites,
            r.injected.avg_points_to,
            r.shortcut.ok,
            r.shortcut.work,
            r.shortcut.poly_sites,
            r.shortcut.avg_points_to,
        );
        // The headline claim, gated baseline file or not: shortcut mode
        // completes every version at the tight budget and dominates the
        // injection-only rows on both precision axes.
        if !r.shortcut.ok {
            eprintln!(
                "FAIL: {} — shortcut mode does not complete at budget {}",
                r.version, m.shortcuts.budget
            );
            failed = true;
        }
        if r.shortcut.poly_sites > r.injected.poly_sites {
            eprintln!(
                "FAIL: {} — shortcut poly sites {} worse than injected {}",
                r.version, r.shortcut.poly_sites, r.injected.poly_sites
            );
            failed = true;
        }
        if r.shortcut.avg_points_to > r.injected.avg_points_to + f64::EPSILON {
            eprintln!(
                "FAIL: {} — shortcut avg points-to {:.3} worse than injected {:.3}",
                r.version, r.shortcut.avg_points_to, r.injected.avg_points_to
            );
            failed = true;
        }
    }
    // Shard-count determinism: every shard count must reproduce the
    // first shard count's work and export digest per version. Gated
    // unconditionally — this is what makes `shards` safe to leave out
    // of cache keys.
    for (ci, case) in sweep_cases.iter().enumerate() {
        for (si, section) in m.shards.iter().enumerate() {
            let r = &section.rows[ci];
            let r0 = &m.shards[0].rows[ci];
            if r.work != r0.work || shard_digests[si][ci] != shard_digests[0][ci] {
                eprintln!(
                    "FAIL: {} — results diverge between {} and {} shards \
                     (work {} vs {}, digest {:#x} vs {:#x})",
                    case.version,
                    m.shards[0].shards,
                    section.shards,
                    r0.work,
                    r.work,
                    shard_digests[0][ci],
                    shard_digests[si][ci],
                );
                failed = true;
            }
        }
    }
    // Determinism contract: every thread count must produce the same
    // work count and the same export digest per version. This holds on
    // any host — it is what makes `threads` safe to leave out of cache
    // keys — so it is gated unconditionally.
    for (ci, case) in cases.iter().enumerate() {
        for (si, section) in m.threads.iter().enumerate() {
            let r = &section.rows[ci];
            let r0 = &m.threads[0].rows[ci];
            if r.work != r0.work || digests[si][ci] != digests[0][ci] {
                eprintln!(
                    "FAIL: {} — results diverge between {} and {} threads \
                     (work {} vs {}, digest {:#x} vs {:#x})",
                    case.version,
                    m.threads[0].threads,
                    section.threads,
                    r0.work,
                    r.work,
                    digests[0][ci],
                    digests[si][ci],
                );
                failed = true;
            }
        }
    }
    // Scaling gate: the epoch-sharded solver must actually buy
    // throughput where hardware parallelism exists. Wall clocks need a
    // release build and enough real CPUs to host the largest thread
    // count, and the ratio is only meaningful on versions with
    // non-trivial baseline work.
    let one = m.threads.iter().find(|s| s.threads == 1);
    let eight = m.threads.iter().find(|s| s.threads == 8);
    if let (Some(one), Some(eight)) = (one, eight) {
        if MODE == "release" && host_cpus >= 8 {
            for (r1, r8) in one.rows.iter().zip(&eight.rows) {
                if r1.work < 100_000 || r1.work_per_sec <= 0.0 {
                    continue;
                }
                let ratio = r8.work_per_sec / r1.work_per_sec;
                eprintln!(
                    "  pta-scale gate {:<6} 8t/1t throughput {ratio:.2}x",
                    r1.version
                );
                if ratio < 1.8 {
                    eprintln!(
                        "FAIL: {} — 8-thread solver only {ratio:.2}x single-thread throughput",
                        r1.version
                    );
                    failed = true;
                }
            }
        } else {
            eprintln!(
                "  pta-scale gate skipped (mode={MODE}, host_cpus={host_cpus}; \
                 needs release and 8+ CPUs)"
            );
        }
    }
    if let Some(p) = check_path {
        let base = std::fs::read_to_string(p).expect("read pta baseline");
        let base: serde_json::Value = serde_json::from_str(&base).expect("pta baseline parses");
        let slack = 1.0 + max_regress;
        // Accept both the {before, after} document (gate against `after`)
        // and the flat legacy {rows} layout.
        let base_rows = if base.get("after").is_some() {
            &base["after"]["rows"]
        } else {
            &base["rows"]
        };
        for r in &m.after.rows {
            let Some(b) = base_rows
                .as_array()
                .and_then(|rs| rs.iter().find(|b| b["version"] == r.version.as_str()))
            else {
                eprintln!("FAIL: baseline has no row for version {}", r.version);
                failed = true;
                continue;
            };
            // Work and precision are deterministic: gate them directly.
            let base_work = b["injected"]["work"].as_f64().unwrap_or(0.0);
            if (r.injected.work as f64) > base_work * slack {
                eprintln!(
                    "FAIL: {} injected work {} regressed past baseline {} (slack {:.0}%)",
                    r.version,
                    r.injected.work,
                    base_work,
                    max_regress * 100.0
                );
                failed = true;
            }
            // Injection must stay within `max_regress` of the specialized
            // run's call-graph precision on the current measurement.
            // (`avg_points_to` is NOT comparable across the two programs —
            // specialization multiplies variable nodes via clone temps,
            // diluting the average — so it is gated same-mode against the
            // baseline file instead.)
            let spec_poly = r.specialized.poly_sites as f64;
            if r.injected.poly_sites as f64 > spec_poly * slack + 1.0 {
                eprintln!(
                    "FAIL: {} injected poly sites {} vs specialized {}",
                    r.version, r.injected.poly_sites, r.specialized.poly_sites
                );
                failed = true;
            }
            let spec_reach = r.specialized.reachable_funcs as f64;
            if r.injected.reachable_funcs as f64 > spec_reach * slack + 1.0 {
                eprintln!(
                    "FAIL: {} injected reachable funcs {} vs specialized {}",
                    r.version, r.injected.reachable_funcs, r.specialized.reachable_funcs
                );
                failed = true;
            }
            let base_avg = b["injected"]["avg_points_to"].as_f64().unwrap_or(0.0);
            if r.injected.avg_points_to > base_avg * slack + f64::EPSILON {
                eprintln!(
                    "FAIL: {} injected avg points-to {:.3} regressed past baseline {:.3}",
                    r.version, r.injected.avg_points_to, base_avg
                );
                failed = true;
            }
        }
        if !failed {
            eprintln!("check: ok");
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn measure(label: &str, iters: usize, spec_depth: Option<usize>) -> Measurement {
    let micro_cases: Vec<(&str, String)> = vec![
        ("arith_chain_4k", workload::arithmetic_chain(4000)),
        ("object_graph_1500", workload::object_graph(1500)),
        ("call_tree_fib18", workload::call_tree(18)),
        ("string_workload_800", workload::string_workload(800)),
    ];
    let micro = micro_cases
        .into_iter()
        .map(|(name, src)| {
            let mut h = Harness::from_src(&src).expect("workload parses");
            // Warm-up run (also populates eval-lowered functions, if any).
            h.run(Default::default()).expect_ok();
            let mut best = f64::INFINITY;
            let mut steps = 0;
            for _ in 0..iters.max(1) {
                let t0 = Instant::now();
                let out = h.run(Default::default());
                let dt = t0.elapsed().as_secs_f64() * 1e3;
                out.expect_ok();
                steps = out.steps;
                if dt < best {
                    best = dt;
                }
            }
            MicroResult {
                name: name.to_owned(),
                wall_ms: best,
                steps,
                steps_per_sec: steps as f64 / (best / 1e3),
            }
        })
        .collect();

    // Corpus-level: instrumented analysis over the Table 1 corpus (the
    // headline number) and the eval suite, best-of-iters.
    let table1_analysis = best_of(iters, || {
        let mut steps = 0u64;
        let t0 = Instant::now();
        for v in jquery_like::all_versions() {
            let (_, out) = mujs_bench::pipeline::analyze_page(
                &v.src,
                &v.doc,
                &v.plan,
                AnalysisConfig::default(),
            )
            .expect("table1 version analyzes");
            steps += out.stats.steps;
        }
        (t0.elapsed().as_secs_f64() * 1e3, steps)
    });

    let eval_elim_analysis = best_of(iters, || {
        let mut steps = 0u64;
        let t0 = Instant::now();
        for b in evalbench::all().iter().filter(|b| b.runnable) {
            let mut h = match DetHarness::from_src(&b.src) {
                Ok(h) => h,
                Err(_) => continue,
            };
            let out = determinacy::supervised_analyze_dom(
                &mut h,
                AnalysisConfig::default(),
                b.doc(),
                &b.plan(),
                &RunHooks::supervised(),
            );
            if let Ok(out) = out {
                steps += out.stats.steps;
            }
        }
        (t0.elapsed().as_secs_f64() * 1e3, steps)
    });

    // Full Table 1 (analysis + specializer + PTA), single shot: tracked
    // for context, not gated.
    let t0 = Instant::now();
    for v in jquery_like::all_versions() {
        let _ = mujs_bench::pipeline::run_table1_at_depth(
            &v,
            mujs_bench::pipeline::TABLE1_PTA_BUDGET,
            spec_depth,
        );
    }
    let table1_full_wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    Measurement {
        label: label.to_owned(),
        mode: MODE,
        micro,
        table1_analysis,
        eval_elim_analysis,
        table1_full_wall_ms,
    }
}

fn best_of(iters: usize, mut f: impl FnMut() -> (f64, u64)) -> CorpusResult {
    let mut best = f64::INFINITY;
    let mut steps = 0;
    for _ in 0..iters.max(1) {
        let (wall, s) = f();
        steps = s;
        if wall < best {
            best = wall;
        }
    }
    CorpusResult {
        wall_ms: best,
        steps,
        steps_per_sec: steps as f64 / (best / 1e3),
    }
}

fn report(m: &Measurement) {
    eprintln!("detbench [{}] mode={}", m.label, m.mode);
    for r in &m.micro {
        eprintln!(
            "  micro {:<22} {:>9.2} ms  {:>12.0} steps/s",
            r.name, r.wall_ms, r.steps_per_sec
        );
    }
    eprintln!(
        "  table1 analysis        {:>9.2} ms  {:>12.0} steps/s",
        m.table1_analysis.wall_ms, m.table1_analysis.steps_per_sec
    );
    eprintln!(
        "  eval-elim analysis     {:>9.2} ms  {:>12.0} steps/s",
        m.eval_elim_analysis.wall_ms, m.eval_elim_analysis.steps_per_sec
    );
    eprintln!("  table1 full pipeline   {:>9.2} ms", m.table1_full_wall_ms);
}
