//! Specializer edge cases: caps, nested unrolling with occurrence
//! contexts, and interactions between transformations.

use determinacy::driver::DetHarness;
use determinacy::AnalysisConfig;
use mujs_interp::{Interp, InterpOptions};
use mujs_specialize::{specialize, SpecConfig, Specialized};

fn run_spec_cfg(src: &str, cfg: SpecConfig) -> (DetHarness, Specialized) {
    let mut h = DetHarness::from_src(src).expect("parses");
    let mut out = h.analyze(AnalysisConfig::default());
    let spec = specialize(&h.program, &out.facts, &mut out.ctxs, &cfg);
    (h, spec)
}

fn run_spec(src: &str) -> (DetHarness, Specialized) {
    run_spec_cfg(src, SpecConfig::default())
}

fn run_output(prog: &mujs_ir::Program) -> Vec<String> {
    let mut p = prog.clone();
    let mut i = Interp::new(&mut p, InterpOptions::default());
    i.run().expect("runs");
    i.output.clone()
}

#[test]
fn nested_unrolled_loops_get_per_iteration_facts() {
    // Four distinct eval strings across a 2×2 nest: the occurrence
    // contexts must line up between the dynamic run and the unroller.
    let src = r#"
var log = "";
for (var i = 0; i < 2; i++) {
  for (var j = 0; j < 2; j++) {
    log += eval("'" + i + "-" + j + ";'");
  }
}
console.log(log);
"#;
    let (_, spec) = run_spec(src);
    // outer once + inner twice (once per unrolled outer iteration)
    assert_eq!(spec.report.loops_unrolled, 3, "{:?}", spec.report);
    assert_eq!(spec.report.evals_eliminated, 4, "{:?}", spec.report);
    assert_eq!(run_output(&spec.program), vec!["0-0;0-1;1-0;1-1;"]);
}

#[test]
fn max_unroll_cap_respected() {
    let src = r#"
var n = 0;
for (var i = 0; i < 40; i++) { n += eval("1"); }
console.log(n);
"#;
    let cfg = SpecConfig {
        max_unroll: 8,
        ..Default::default()
    };
    let (_, spec) = run_spec_cfg(src, cfg);
    assert_eq!(spec.report.loops_unrolled, 0, "40 > cap of 8");
    // Eval stays (inside a kept loop).
    assert_eq!(spec.report.evals_eliminated, 0);
    assert_eq!(run_output(&spec.program), vec!["40"]);
}

#[test]
fn max_clones_cap_respected() {
    let mut src = String::new();
    src.push_str("function probe(k) { if (k === 0) { return 1; } return 2; }\n");
    for i in 0..40 {
        src.push_str(&format!("probe({});\n", i % 2));
    }
    let cfg = SpecConfig {
        max_clones: 5,
        ..Default::default()
    };
    let (_, spec) = run_spec_cfg(&src, cfg);
    assert!(spec.report.clones <= 5, "{:?}", spec.report);
    assert!(run_output(&spec.program).is_empty());
}

#[test]
fn pruning_inside_unrolled_loop() {
    // Per-iteration conditions become determinate through the Cond facts
    // at ROOT context once the loop is unrolled... conditions here depend
    // on the loop variable, so the *merged* per-(point,ctx) fact is
    // indeterminate and must NOT be pruned — correctness over aggression.
    let src = r#"
var s = "";
for (var i = 0; i < 3; i++) {
  if (i === 1) { s += "mid;"; } else { s += eval("'edge;'"); }
}
console.log(s);
"#;
    let (_, spec) = run_spec(src);
    assert_eq!(run_output(&spec.program), vec!["edge;mid;edge;"]);
}

#[test]
fn eval_declaring_function_used_after_inline() {
    let src = r#"
eval("function mk(n) { return n + 1; }");
console.log(mk(41));
"#;
    let (_, spec) = run_spec(src);
    assert_eq!(spec.report.evals_eliminated, 1);
    assert_eq!(run_output(&spec.program), vec!["42"]);
}

#[test]
fn chained_clone_depth_is_bounded() {
    let src = r#"
function l1(x) { return l2(x); }
function l2(x) { return l3(x); }
function l3(x) { return l4(x); }
function l4(x) { return l5(x); }
function l5(x) { if (x === 1) { return "one"; } return "other"; }
console.log(l1(1));
"#;
    let cfg = SpecConfig {
        max_context_depth: 4,
        ..Default::default()
    };
    let (_, spec) = run_spec_cfg(src, cfg);
    // The chain is 5 deep; cloning stops at depth 4, so l5's branch is
    // not pruned, but behavior is preserved.
    assert!(spec.report.clones <= 4, "{:?}", spec.report);
    assert_eq!(run_output(&spec.program), vec!["one"]);
}

#[test]
fn redirect_skipped_for_closure_valued_callees_with_foreign_env() {
    // A closure factory: the inner function's captured environment varies
    // per factory call, so the specializer must not redirect calls to it
    // (its parent is neither the entry nor on the specialization chain).
    let src = r#"
function make(tag) {
  return function inner(x) {
    if (tag === "a") { return "A" + x; }
    return "B" + x;
  };
}
var fa = make("a");
var fb = make("b");
console.log(fa(1), fb(2));
"#;
    let (_, spec) = run_spec(src);
    assert_eq!(run_output(&spec.program), vec!["A1 B2"]);
}

#[test]
fn idempotent_on_already_specialized_output() {
    let src = r#"
var k = "wi" + "dth";
var o = {};
o[k] = 20;
console.log(o.width);
"#;
    let (h, spec1) = run_spec(src);
    // Re-analyze the specialized program and specialize again: nothing new.
    let mut prog = spec1.program.clone();
    let mut m = determinacy::DMachine::new(&mut prog, AnalysisConfig::default());
    let status = m.run();
    assert_eq!(status, determinacy::AnalysisStatus::Completed);
    let facts = std::mem::replace(&mut m.facts, determinacy::FactDb::new(0));
    let mut ctxs = std::mem::take(&mut m.ctxs);
    drop(m);
    let spec2 = specialize(&prog, &facts, &mut ctxs, &SpecConfig::default());
    assert_eq!(spec2.report.keys_staticized, 0, "{:?}", spec2.report);
    assert_eq!(run_output(&spec2.program), vec!["20"]);
    let _ = h;
}

#[test]
fn break_exited_loops_are_not_unrolled() {
    // `trips` counts completed iterations; the break iteration's prefix
    // effects must survive, so the loop must not be unrolled.
    let src = r#"
var log = "";
for (var i = 0; i < 10; i++) {
  log += "pre" + i + ";";
  if (i === 2) { break; }
  log += eval("'post" + i + ";'");
}
console.log(log);
"#;
    let (_, spec) = run_spec(src);
    assert_eq!(spec.report.loops_unrolled, 0, "{:?}", spec.report);
    assert_eq!(
        run_output(&spec.program),
        vec!["pre0;post0;pre1;post1;pre2;"]
    );
}
