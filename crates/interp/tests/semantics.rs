//! End-to-end semantics tests for the concrete interpreter: each test runs
//! a small program and checks its observable output.

use mujs_dom::document::DocumentBuilder;
use mujs_dom::events::EventPlan;
use mujs_interp::driver::{run_src, Harness};
use mujs_interp::{InterpOptions, RunError};

fn out(src: &str) -> Vec<String> {
    run_src(src).expect("parses")
}

fn log1(src: &str) -> String {
    let o = out(src);
    assert_eq!(o.len(), 1, "expected one line, got {o:?}");
    o.into_iter().next().unwrap()
}

#[test]
fn arithmetic_and_precedence() {
    assert_eq!(log1("console.log(2 + 3 * 4);"), "14");
    assert_eq!(log1("console.log((2 + 3) * 4);"), "20");
    assert_eq!(log1("console.log(7 % 3);"), "1");
    assert_eq!(log1("console.log(1 / 0);"), "Infinity");
}

#[test]
fn string_concatenation() {
    assert_eq!(log1(r#"console.log("get" + "Width");"#), "getWidth");
    assert_eq!(log1(r#"console.log("x" + 1 + 2);"#), "x12");
    assert_eq!(log1(r#"console.log(1 + 2 + "x");"#), "3x");
}

#[test]
fn variables_and_scoping() {
    assert_eq!(
        log1("var x = 1; function f() { x = 2; } f(); console.log(x);"),
        "2"
    );
    assert_eq!(
        log1("var x = 1; function f() { var x = 2; } f(); console.log(x);"),
        "1"
    );
}

#[test]
fn closures_capture_environment() {
    assert_eq!(
        log1(
            "function mk(n) { return function() { return n; }; }\n\
             var f = mk(7); console.log(f());"
        ),
        "7"
    );
    assert_eq!(
        log1(
            "function counter() { var c = 0; return function() { c = c + 1; return c; }; }\n\
             var next = counter(); next(); next(); console.log(next());"
        ),
        "3"
    );
}

#[test]
fn objects_and_property_access() {
    assert_eq!(log1("var o = { f: 23 }; console.log(o.f);"), "23");
    assert_eq!(log1("var o = { f: 23 }; console.log(o[\"f\"]);"), "23");
    assert_eq!(log1("var o = {}; console.log(o.missing);"), "undefined");
    assert_eq!(
        log1("var o = {}; var k = \"a\" + \"b\"; o[k] = 5; console.log(o.ab);"),
        "5"
    );
}

#[test]
fn delete_removes_properties() {
    assert_eq!(
        log1("var o = { a: 1 }; delete o.a; console.log(o.a);"),
        "undefined"
    );
}

#[test]
fn prototype_chain_via_new() {
    let src = r#"
function Rectangle(w, h) { this.width = w; this.height = h; }
Rectangle.prototype.area = function() { return this.width * this.height; };
var r = new Rectangle(4, 5);
console.log(r.area());
console.log(r instanceof Rectangle);
"#;
    assert_eq!(out(src), vec!["20", "true"]);
}

#[test]
fn constructor_returning_object_overrides_this() {
    let src = r#"
function F() { this.a = 1; return { b: 2 }; }
var o = new F();
console.log(o.b, o.a);
"#;
    assert_eq!(out(src), vec!["2 undefined"]);
}

#[test]
fn figure2_program_concrete_run() {
    // The paper's Figure 2, with a deterministic stand-in check: whichever
    // branch Math.random takes, x.g is written on line 16's call (p.f=23<32).
    let src = r#"
(function() {
  function checkf(p) { if (p.f < 32) setg(p, 42); }
  function setg(r, v) { r.g = v; }
  var x = { f: 23 }, y = { f: Math.random() * 100 };
  checkf(x);
  console.log(x.f, x.g);
  checkf(y);
  (y.f > 50 ? checkf : setg)(x, 72);
  var z = { f: x.g - 16, h: true };
  checkf(z);
  console.log(typeof z.h);
})();
"#;
    let o = out(src);
    assert_eq!(o[0], "23 42");
    assert_eq!(o[1], "boolean");
}

#[test]
fn figure3_accessors_program() {
    let src = r#"
function Rectangle(w, h) { this.width = w; this.height = h; }
Rectangle.prototype.toString = function() {
  return "[" + this.width + "x" + this.height + "]";
};
String.prototype.cap = function() {
  return this[0].toUpperCase() + this.substr(1);
};
function defAccessors(prop) {
  Rectangle.prototype["get" + prop.cap()] = function() { return this[prop]; };
  Rectangle.prototype["set" + prop.cap()] = function(v) { this[prop] = v; };
}
var props = ["width", "height"];
for (var i = 0; i < props.length; i++) defAccessors(props[i]);
var r = new Rectangle(20, 30);
r.setWidth(r.getWidth() + 20);
alert(r.toString());
"#;
    let mut h = Harness::from_src(src).unwrap();
    let o = h.run(InterpOptions::default());
    o.expect_ok();
    assert_eq!(o.output, vec!["alert: [40x30]"]);
}

#[test]
fn loops_break_continue() {
    assert_eq!(
        log1("var s = 0; for (var i = 0; i < 10; i++) { if (i % 2) continue; if (i > 6) break; s += i; } console.log(s);"),
        "12" // 0+2+4+6
    );
    assert_eq!(
        log1("var i = 0; do { i++; } while (i < 5); console.log(i);"),
        "5"
    );
    assert_eq!(
        log1("var i = 10; while (i < 5) { i++; } console.log(i);"),
        "10"
    );
}

#[test]
fn for_in_enumerates_insertion_order() {
    assert_eq!(
        log1("var o = { b: 1, a: 2, c: 3 }; var ks = \"\"; for (var k in o) ks += k; console.log(ks);"),
        "bac"
    );
}

#[test]
fn for_in_sees_inherited_user_props_once() {
    let src = r#"
function F() { this.own = 1; }
F.prototype.inh = 2;
var o = new F();
var ks = [];
for (var k in o) ks.push(k);
console.log(ks.join(","));
"#;
    // "constructor" is an inherited user-written prototype property too.
    assert_eq!(log1(src), "own,constructor,inh");
}

#[test]
fn switch_fallthrough_and_default() {
    let src = r#"
function f(x) {
  var r = "";
  switch (x) {
    case 1: r += "one ";
    case 2: r += "two "; break;
    default: r += "other";
  }
  return r;
}
console.log(f(1)); console.log(f(2)); console.log(f(9));
"#;
    assert_eq!(out(src), vec!["one two ", "two ", "other"]);
}

#[test]
fn try_catch_finally_semantics() {
    assert_eq!(
        log1("try { throw 42; } catch (e) { console.log(e); }"),
        "42"
    );
    assert_eq!(
        out("function f() { try { return 1; } finally { console.log(\"fin\"); } }\nconsole.log(f());"),
        vec!["fin", "1"]
    );
    // catch variable is scoped to the handler.
    assert_eq!(
        log1("var e = \"outer\"; try { throw \"inner\"; } catch (e) {} console.log(e);"),
        "outer"
    );
}

#[test]
fn exceptions_cross_call_boundaries() {
    let src = r#"
function boom() { throw new Error("x"); }
function mid() { boom(); }
try { mid(); } catch (e) { console.log(e.message); }
"#;
    assert_eq!(log1(src), "x");
}

#[test]
fn uncaught_exception_reported() {
    let mut h = Harness::from_src("null.f;").unwrap();
    let o = h.run(InterpOptions::default());
    assert!(matches!(o.result, Err(RunError::Thrown(_))));
}

#[test]
fn typeof_variants() {
    assert_eq!(
        out("console.log(typeof 1, typeof \"s\", typeof true, typeof undefined, typeof null, typeof {}, typeof function(){});"),
        vec!["number string boolean undefined object object function"]
    );
    assert_eq!(log1("console.log(typeof neverDeclared);"), "undefined");
}

#[test]
fn logical_operators_short_circuit() {
    assert_eq!(
        log1("function boom() { throw 1; } console.log(false && boom());"),
        "false"
    );
    assert_eq!(log1("console.log(null || \"fallback\");"), "fallback");
    assert_eq!(log1("console.log(1 && 2);"), "2");
}

#[test]
fn equality_table() {
    assert_eq!(
        out("console.log(1 == \"1\", 1 === \"1\", null == undefined, null === undefined, NaN == NaN);"),
        vec!["true false true false false"]
    );
}

#[test]
fn arrays_push_length_index() {
    let src = r#"
var a = [];
a.push(10); a.push(20, 30);
console.log(a.length, a[1]);
a[5] = 99;
console.log(a.length);
a.length = 2;
console.log(a[5], a.join("-"));
"#;
    assert_eq!(out(src), vec!["3 20", "6", "undefined 10-20"]);
}

#[test]
fn array_methods() {
    assert_eq!(log1("console.log([1,2,3].indexOf(2));"), "1");
    assert_eq!(
        log1("console.log([1,2,3,4].slice(1, 3).join(\",\"));"),
        "2,3"
    );
    assert_eq!(
        log1("console.log([1].concat([2,3], 4).join(\"\"));"),
        "1234"
    );
    assert_eq!(log1("var a=[1,2]; console.log(a.pop(), a.length);"), "2 1");
    assert_eq!(log1("var a=[1,2]; console.log(a.shift(), a[0]);"), "1 2");
}

#[test]
fn string_methods() {
    assert_eq!(log1(r#"console.log("width".toUpperCase());"#), "WIDTH");
    assert_eq!(log1(r#"console.log("Width".substr(1));"#), "idth");
    assert_eq!(log1(r#"console.log("a,b,c".split(",").length);"#), "3");
    assert_eq!(log1(r#"console.log("hello".indexOf("ll"));"#), "2");
    assert_eq!(log1(r#"console.log("hello"[1]);"#), "e");
    assert_eq!(log1(r#"console.log("hello".length);"#), "5");
    assert_eq!(log1(r#"console.log("a-b-c".replace("-", "+"));"#), "a+b-c");
}

#[test]
fn string_prototype_extension() {
    assert_eq!(
        log1(
            r#"String.prototype.cap = function() { return this[0].toUpperCase() + this.substr(1); };
               console.log("width".cap());"#
        ),
        "Width"
    );
}

#[test]
fn this_binding_rules() {
    let src = r#"
var o = { x: 1, get: function() { return this.x; } };
console.log(o.get());
var f = o.get;
var x = 99; // global fallback: this === window, window.x === 99
console.log(f());
"#;
    assert_eq!(out(src), vec!["1", "99"]);
}

#[test]
fn call_and_apply() {
    let src = r#"
function add(a, b) { return this.base + a + b; }
console.log(add.call({ base: 10 }, 1, 2));
console.log(add.apply({ base: 20 }, [3, 4]));
"#;
    assert_eq!(out(src), vec!["13", "27"]);
}

#[test]
fn arguments_object() {
    assert_eq!(
        log1("function f() { return arguments.length; } console.log(f(1, 2, 3));"),
        "3"
    );
}

#[test]
fn direct_eval_in_local_scope() {
    let src = r#"
function f() {
  var local = 5;
  return eval("local + 1");
}
console.log(f());
"#;
    assert_eq!(log1(src), "6");
}

#[test]
fn direct_eval_declares_vars_in_caller() {
    let src = r#"
function f() {
  eval("var injected = 7;");
  return injected;
}
console.log(f());
"#;
    assert_eq!(log1(src), "7");
}

#[test]
fn eval_returns_last_expression_value() {
    assert_eq!(log1("console.log(eval(\"1; 2; 3\"));"), "3");
    assert_eq!(log1("console.log(eval(\"var q = 1;\"));"), "undefined");
}

#[test]
fn figure4_ivymap_eval() {
    let src = r#"
ivymap = window.ivymap || {};
ivymap["pc.sy.banner.tcck."] = function() { console.log("tcck handler"); };
function showIvyViaJs(locationId) {
  var _f = undefined;
  var _fconv = "ivymap['" + locationId + "']";
  try {
    _f = eval(_fconv);
    if (_f != undefined) { _f(); }
  } catch (e) {}
}
showIvyViaJs('pc.sy.banner.tcck.');
showIvyViaJs('pc.sy.banner.duilian.');
"#;
    assert_eq!(out(src), vec!["tcck handler"]);
}

#[test]
fn indirect_eval_runs_globally() {
    let src = r#"
var g = 1;
function f() {
  var g = 2;
  var e = eval;
  return e("g"); // indirect: global g
}
console.log(f());
"#;
    assert_eq!(log1(src), "1");
}

#[test]
fn math_functions() {
    assert_eq!(
        log1("console.log(Math.floor(3.7), Math.max(1, 5, 3));"),
        "3 5"
    );
    let r = log1("console.log(Math.random());");
    let v: f64 = r.parse().unwrap();
    assert!((0.0..1.0).contains(&v));
}

#[test]
fn math_random_is_seeded() {
    let mut h1 = Harness::from_src("console.log(Math.random());").unwrap();
    let mut h2 = Harness::from_src("console.log(Math.random());").unwrap();
    let a = h1.run(InterpOptions {
        seed: 7,
        ..Default::default()
    });
    let b = h2.run(InterpOptions {
        seed: 7,
        ..Default::default()
    });
    let c = h1.run(InterpOptions {
        seed: 8,
        ..Default::default()
    });
    assert_eq!(a.output, b.output);
    assert_ne!(a.output, c.output);
}

#[test]
fn named_function_expression_recursion() {
    assert_eq!(
        log1(
            "var f = function fact(n) { return n <= 1 ? 1 : n * fact(n - 1); }; console.log(f(5));"
        ),
        "120"
    );
}

#[test]
fn hoisted_functions_callable_before_declaration() {
    assert_eq!(log1("console.log(f()); function f() { return 1; }"), "1");
}

#[test]
fn in_operator_and_hasownproperty() {
    let src = r#"
function F() { this.own = 1; }
F.prototype.inh = 2;
var o = new F();
console.log("own" in o, "inh" in o, "nope" in o);
console.log(o.hasOwnProperty("own"), o.hasOwnProperty("inh"));
"#;
    assert_eq!(out(src), vec!["true true false", "true false"]);
}

#[test]
fn step_limit_stops_infinite_loops() {
    let mut h = Harness::from_src("while (true) {}").unwrap();
    let o = h.run(InterpOptions {
        max_steps: 10_000,
        ..Default::default()
    });
    assert_eq!(o.result, Err(RunError::StepLimit));
}

#[test]
fn dom_get_element_and_attributes() {
    let doc = DocumentBuilder::new()
        .element("div", Some("banner"), &[("class", "top")])
        .title("Hello")
        .build();
    let src = r#"
var el = document.getElementById("banner");
console.log(el.tagName, el.className);
console.log(document.title);
el.setAttribute("data-x", "1");
console.log(el.getAttribute("data-x"));
console.log(document.getElementById("missing"));
"#;
    let mut h = Harness::from_src(src).unwrap();
    let o = h.run_dom(InterpOptions::default(), doc, &EventPlan::new());
    o.expect_ok();
    assert_eq!(o.output, vec!["DIV top", "Hello", "1", "null"]);
}

#[test]
fn dom_create_append_and_query() {
    let src = r#"
var d = document.createElement("p");
document.body.appendChild(d);
console.log(document.getElementsByTagName("p").length);
console.log(d.parentNode.tagName);
"#;
    let mut h = Harness::from_src(src).unwrap();
    let o = h.run_dom(
        InterpOptions::default(),
        DocumentBuilder::new().build(),
        &EventPlan::new(),
    );
    o.expect_ok();
    assert_eq!(o.output, vec!["1", "BODY"]);
}

#[test]
fn dom_events_fire_after_script() {
    let doc = DocumentBuilder::new()
        .element("button", Some("b1"), &[])
        .build();
    let src = r#"
window.addEventListener("load", function() { console.log("loaded"); });
document.getElementById("b1").addEventListener("click", function(ev) {
  console.log("clicked " + ev.type);
});
console.log("script done");
"#;
    let mut h = Harness::from_src(src).unwrap();
    let o = h.run_dom(InterpOptions::default(), doc, &EventPlan::new().click("b1"));
    o.expect_ok();
    assert_eq!(o.output, vec!["script done", "loaded", "clicked click"]);
}

#[test]
fn global_vars_alias_window_properties() {
    assert_eq!(log1("xyz = 5; console.log(window.xyz);"), "5");
    assert_eq!(log1("window.abc = 6; console.log(abc);"), "6");
}

#[test]
fn observations_are_recorded() {
    let mut h = Harness::from_src("var x = 1; var y = x + 2;").unwrap();
    let o = h.run(InterpOptions {
        record_observations: true,
        ..Default::default()
    });
    o.expect_ok();
    assert!(!o.observations.is_empty());
    // Some observation holds the value 3 (y's definition).
    assert!(o
        .observations
        .iter()
        .any(|obs| obs.value == mujs_interp::Value::Num(3.0)));
}

#[test]
fn parse_int_and_friends() {
    assert_eq!(
        out("console.log(parseInt(\"42px\"), parseFloat(\"2.5x\"), isNaN(\"q\"), isFinite(1));"),
        vec!["42 2.5 true true"]
    );
}

#[test]
fn comparison_operators_on_mixed_types() {
    assert_eq!(
        out("console.log(\"10\" < \"9\", 10 < 9, \"10\" < 9, true + true);"),
        vec!["true false false 2"]
    );
}

#[test]
fn update_expressions() {
    assert_eq!(
        out("var i = 5; console.log(i++, i, ++i, i--, --i);"),
        vec!["5 6 7 7 5"]
    );
    assert_eq!(log1("var o = { n: 1 }; o.n++; console.log(o.n);"), "2");
}

#[test]
fn compound_assignment() {
    assert_eq!(
        log1("var s = \"a\"; s += \"b\"; var n = 10; n -= 4; n *= 2; console.log(s, n);"),
        "ab 12"
    );
}
