//! Command-line front door: run the dynamic determinacy analysis on a
//! JavaScript file and print its facts (human-readable or JSON).
//!
//! ```console
//! $ cargo run -p mujs-bench --bin analyze -- path/to/file.js
//! $ cargo run -p mujs-bench --bin analyze -- file.js --json
//! $ cargo run -p mujs-bench --bin analyze -- file.js --det-dom --seeds 1,2,3
//! $ cargo run -p mujs-bench --bin analyze -- file.js --spec   # + specializer report
//! ```

use determinacy::multirun::{analyze_many_with, export_json};
use determinacy::{AnalysisConfig, DetHarness};
use mujs_dom::document::DocumentBuilder;
use mujs_dom::events::EventPlan;
use mujs_specialize::SpecConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!("usage: analyze <file.js> [--json] [--det-dom] [--spec] [--seeds a,b,c]");
        std::process::exit(2);
    };
    let json = args.iter().any(|a| a == "--json");
    let det_dom = args.iter().any(|a| a == "--det-dom");
    let spec = args.iter().any(|a| a == "--spec");
    let seeds: Vec<u64> = args
        .iter()
        .position(|a| a == "--seeds")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.split(',').filter_map(|x| x.parse().ok()).collect())
        .unwrap_or_else(|| vec![0xD5EA51DE]);

    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let mut h = match DetHarness::from_src(&src) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("syntax error: {e}");
            std::process::exit(1);
        }
    };
    let cfg = AnalysisConfig {
        det_dom,
        ..Default::default()
    };
    let doc = DocumentBuilder::new().title("analyze-cli").build();
    let mut combined =
        analyze_many_with(&mut h, &seeds, cfg, Some(&doc), &EventPlan::new());

    if json {
        println!(
            "{}",
            export_json(&combined.facts, &h.program, &h.source, &combined.ctxs)
        );
    } else {
        eprintln!(
            "runs: {} | facts: {} ({} determinate) | conflicts: {}",
            combined.runs.len(),
            combined.facts.len(),
            combined.facts.det_count(),
            combined.conflicts
        );
        for run in &combined.runs {
            eprintln!(
                "  run: status={:?} flushes={} counterfactuals={} steps={}",
                run.status, run.stats.heap_flushes, run.stats.counterfactuals, run.stats.steps
            );
        }
        let mut lines: Vec<String> = combined
            .facts
            .iter()
            .filter_map(|(k, p, c, _)| {
                combined
                    .facts
                    .describe(k, p, c, &h.program, &h.source, &combined.ctxs)
                    .map(|d| format!("{k:?}\t{d}"))
            })
            .collect();
        lines.sort();
        lines.dedup();
        for l in lines {
            println!("{l}");
        }
    }

    if spec {
        let s = mujs_specialize::specialize(
            &h.program,
            &combined.facts,
            &mut combined.ctxs,
            &SpecConfig::default(),
        );
        eprintln!(
            "specializer: clones={} branchesPruned={} keysStatic={} loopsUnrolled={} evalsEliminated={} evalsRemaining={} redirects={}",
            s.report.clones,
            s.report.branches_pruned,
            s.report.keys_staticized,
            s.report.loops_unrolled,
            s.report.evals_eliminated,
            s.report.evals_remaining,
            s.report.calls_redirected
        );
    }
}
