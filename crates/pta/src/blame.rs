//! Imprecision provenance: compact blame tags threaded through
//! propagation.
//!
//! When [`crate::PtaConfig::provenance`] is on, every points-to tuple
//! `(node, object)` carries a `Blame` tag — a `u32` index into an interned
//! side table of [`BlameCause`]s — recording the *first cause* that
//! introduced the tuple:
//!
//! * tuples seeded by a precisely modeled constraint (allocation sites,
//!   closure values, prototype records, the global object) are [`Base`];
//! * tuples seeded at an unanalyzable construct name the construct — an
//!   eval-lowered chunk ([`Eval`]), an unmodeled native / opaque call
//!   result ([`Native`]), the coarse `arguments` array ([`Arguments`]);
//! * tuples introduced because an injected determinacy fact resolved a
//!   site are [`Injected`];
//! * tuples applied from a concrete-execution region summary are
//!   [`Shortcut`];
//! * tuples flowing *out of* a havoc node are stamped with that node's
//!   cause: the per-object ⋆-join feeding dynamic reads
//!   ([`StarSmear`]), the unknown-name store pool flushed into every read
//!   ([`UnknownSmear`]), the thrown-value pool ([`ExcFlow`]);
//! * tuples arriving over an ordinary copy edge inherit the blame of the
//!   source tuple.
//!
//! Because points-to growth is monotone, a tuple is inserted exactly once
//! and its blame is assigned at that insertion — difference propagation
//! never revisits it. Online Tarjan collapse drains member blame rows
//! into the representative (conflicts resolve to the [`Ord`]-least cause,
//! so merged SCC members share one canonical blame set), and the epoch-
//! sharded parallel driver threads blame through its insertion logs and
//! cross-shard messages, keeping blame exports byte-identical for every
//! thread count (see `crate::parallel`).
//!
//! [`Base`]: BlameCause::Base
//! [`Eval`]: BlameCause::Eval
//! [`Native`]: BlameCause::Native
//! [`Arguments`]: BlameCause::Arguments
//! [`Injected`]: BlameCause::Injected
//! [`Shortcut`]: BlameCause::Shortcut
//! [`StarSmear`]: BlameCause::StarSmear
//! [`UnknownSmear`]: BlameCause::UnknownSmear
//! [`ExcFlow`]: BlameCause::ExcFlow

use crate::hash::FastMap;
use crate::nodes::AbsObj;
use mujs_ir::{FuncId, StmtId};

/// Sentinel outflow stamp: the node is not a havoc node; tuples flowing
/// out of it keep their inherited blame.
pub(crate) const INHERIT: u32 = u32::MAX;

/// The interned tag id of [`BlameCause::Base`] (always interned first).
pub(crate) const BASE_TAG: u32 = 0;

/// The root cause that first introduced a points-to tuple.
///
/// The derived [`Ord`] doubles as the deterministic conflict-resolution
/// order when union-find merges bring two blames for the same tuple
/// together: the least cause wins, so more precisely modeled origins
/// (earlier variants) take precedence over havoc smears.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BlameCause {
    /// Seeded by a precisely modeled base constraint: an allocation site,
    /// a closure value, a prototype record, or the global object.
    Base,
    /// Introduced because an injected determinacy fact resolved the site
    /// (a determinate dynamic key or callee).
    Injected(StmtId),
    /// Introduced by applying a concrete-execution region summary at the
    /// named function instead of generating its constraints.
    Shortcut(FuncId),
    /// The coarse `arguments` array of a function (modeled as opaque).
    Arguments(FuncId),
    /// The result of an eval-lowered chunk (statically unanalyzable).
    Eval(StmtId),
    /// The result of calling an unmodeled native / opaque value at a
    /// call site (arguments escape, the result is unknown).
    Native(StmtId),
    /// Flowed out of the coarse thrown-value pool (exception havoc).
    ExcFlow,
    /// Flowed out of an object's ⋆-props join: a dynamic property *read*
    /// with an unresolved key smeared every named property through.
    StarSmear(AbsObj),
    /// Flowed out of an object's unknown-props pool: a dynamic property
    /// *write* with an unresolved key (or a native escape) flushed the
    /// value into every read of the object.
    UnknownSmear(AbsObj),
}

impl BlameCause {
    /// Stable machine-readable kind label.
    pub fn kind(&self) -> &'static str {
        match self {
            BlameCause::Base => "base",
            BlameCause::Injected(_) => "injected",
            BlameCause::Shortcut(_) => "shortcut",
            BlameCause::Arguments(_) => "arguments",
            BlameCause::Eval(_) => "eval",
            BlameCause::Native(_) => "native",
            BlameCause::ExcFlow => "exc-flow",
            BlameCause::StarSmear(_) => "star-smear",
            BlameCause::UnknownSmear(_) => "unknown-smear",
        }
    }

    /// The program point the cause names, when it names one.
    pub fn site(&self) -> Option<StmtId> {
        match self {
            BlameCause::Injected(s) | BlameCause::Eval(s) | BlameCause::Native(s) => Some(*s),
            _ => None,
        }
    }

    /// The smeared object, for the ⋆ / unknown-props causes.
    pub fn smeared_obj(&self) -> Option<&AbsObj> {
        match self {
            BlameCause::StarSmear(o) | BlameCause::UnknownSmear(o) => Some(o),
            _ => None,
        }
    }

    /// Deterministic human/export rendering, e.g.
    /// `star-smear(Alloc(StmtId(12)))`.
    pub fn label(&self) -> String {
        match self {
            BlameCause::Base => "base".to_owned(),
            BlameCause::ExcFlow => "exc-flow".to_owned(),
            BlameCause::Injected(s) => format!("injected({s:?})"),
            BlameCause::Shortcut(f) => format!("shortcut({f:?})"),
            BlameCause::Arguments(f) => format!("arguments({f:?})"),
            BlameCause::Eval(s) => format!("eval({s:?})"),
            BlameCause::Native(s) => format!("native({s:?})"),
            BlameCause::StarSmear(o) => format!("star-smear({o:?})"),
            BlameCause::UnknownSmear(o) => format!("unknown-smear({o:?})"),
        }
    }
}

/// The outflow tag of object `obj` leaving a node with blame row `row`
/// and outflow stamp `stamp`: havoc nodes stamp their own cause, ordinary
/// nodes pass the tuple's recorded blame through (defaulting to
/// [`BASE_TAG`], which cannot happen for tuples inserted under an active
/// provenance layer).
#[inline]
pub(crate) fn outflow(row: &FastMap<u32, u32>, stamp: u32, obj: u32) -> u32 {
    if stamp != INHERIT {
        stamp
    } else {
        row.get(&obj).copied().unwrap_or(BASE_TAG)
    }
}

/// The solver's provenance side state: the interned cause table, one
/// blame row per node (canonical rows own the entries; merged members'
/// rows are drained), and the per-node outflow stamp.
#[derive(Debug, Default)]
pub(crate) struct Provenance {
    /// Interned causes, indexed by tag id. Interning happens only on the
    /// driving thread (node creation, seeds, barrier-phase flows), so the
    /// table is frozen — read-only — during parallel flow phases.
    pub tags: Vec<BlameCause>,
    tag_ids: FastMap<BlameCause, u32>,
    /// `node → (obj → tag)`, indexed like the solver's set columns.
    pub blame: Vec<FastMap<u32, u32>>,
    /// Per-node outflow stamp ([`INHERIT`] for ordinary nodes).
    pub stamp: Vec<u32>,
}

impl Provenance {
    pub(crate) fn new() -> Self {
        let mut p = Provenance::default();
        let base = p.intern(BlameCause::Base);
        debug_assert_eq!(base, BASE_TAG);
        p
    }

    /// Interns `cause`, returning its stable tag id.
    pub(crate) fn intern(&mut self, cause: BlameCause) -> u32 {
        if let Some(&t) = self.tag_ids.get(&cause) {
            return t;
        }
        let t = self.tags.len() as u32;
        self.tags.push(cause.clone());
        self.tag_ids.insert(cause, t);
        t
    }

    /// Extends the per-node columns for a freshly materialized node.
    pub(crate) fn push_node(&mut self, stamp: u32) {
        self.blame.push(FastMap::default());
        self.stamp.push(stamp);
    }

    /// Records `tag` as the first cause of `(node, obj)` (no-op when a
    /// cause was already recorded — insertions are monotone, so this only
    /// guards re-derivations surfaced by union-find merges).
    #[inline]
    pub(crate) fn record(&mut self, node: u32, obj: u32, tag: u32) {
        self.blame[node as usize].entry(obj).or_insert(tag);
    }
}

/// The finished blame relation carried by a [`crate::PtaResult`].
#[derive(Debug)]
pub struct BlameData {
    pub(crate) tags: Vec<BlameCause>,
    pub(crate) map: Vec<FastMap<u32, u32>>,
}

impl BlameData {
    /// The cause recorded for `(canonical node, obj)`, if any.
    pub(crate) fn cause_of(&self, node: u32, obj: u32) -> Option<&BlameCause> {
        self.map[node as usize]
            .get(&obj)
            .map(|&t| &self.tags[t as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_deduplicated() {
        let mut p = Provenance::new();
        assert_eq!(p.tags[BASE_TAG as usize], BlameCause::Base);
        let a = p.intern(BlameCause::ExcFlow);
        let b = p.intern(BlameCause::StarSmear(AbsObj::Global));
        assert_eq!(p.intern(BlameCause::ExcFlow), a);
        assert_eq!(p.intern(BlameCause::StarSmear(AbsObj::Global)), b);
        assert_ne!(a, b);
        assert_eq!(p.intern(BlameCause::Base), BASE_TAG);
    }

    #[test]
    fn cause_order_prefers_precise_origins() {
        // The merge conflict rule keeps the Ord-least cause; precise
        // origins must order before havoc smears.
        assert!(BlameCause::Base < BlameCause::StarSmear(AbsObj::Global));
        assert!(BlameCause::Injected(StmtId(0)) < BlameCause::UnknownSmear(AbsObj::Opaque));
        assert!(BlameCause::Eval(StmtId(1)) < BlameCause::ExcFlow);
    }

    #[test]
    fn outflow_stamps_override_inherited_blame() {
        let mut row = FastMap::default();
        row.insert(7u32, 3u32);
        assert_eq!(outflow(&row, INHERIT, 7), 3);
        assert_eq!(outflow(&row, INHERIT, 8), BASE_TAG);
        assert_eq!(outflow(&row, 5, 7), 5);
    }

    #[test]
    fn labels_and_kinds_are_stable() {
        let c = BlameCause::StarSmear(AbsObj::Alloc(StmtId(12)));
        assert_eq!(c.kind(), "star-smear");
        assert_eq!(c.label(), "star-smear(Alloc(StmtId(12)))");
        assert_eq!(c.site(), None);
        assert!(c.smeared_obj().is_some());
        let i = BlameCause::Injected(StmtId(4));
        assert_eq!(i.site(), Some(StmtId(4)));
        assert_eq!(i.label(), "injected(StmtId(4))");
    }
}
