//! Control-flow graphs over the structured IR.
//!
//! The IR keeps control flow structured (`if`/`loop`/`try` trees) because
//! the instrumented semantics needs lexical branch extents. The dataflow
//! pass needs the opposite view: basic blocks and edges. This module
//! flattens one function body into a [`Cfg`], modelling the parts of the
//! dynamic semantics that matter for a *sound* intraprocedural analysis:
//!
//! * A `catch` block can be entered from anywhere inside the protected
//!   block, so its entry edge comes from the state *before* the `try`
//!   with every place in the protected block's write domain havocked
//!   ([`mujs_ir::vd::write_domain`] — the same function the instrumented
//!   semantics uses for (ĈNTRABORT)).
//! * A `finally` block is also entered exceptionally; that entry havocs
//!   both the protected and catch write domains.
//! * `break`/`continue`/`return` that exit a `try` with a `finally` run
//!   the finally first. Rather than duplicating the finally body per
//!   abrupt edge, the edge havocs the finally's write domain — sound,
//!   since havoc over-approximates executing it.
//!
//! Direct `eval` in a havocked region is modelled by
//! [`Havoc::all_locals`]: eval can assign any named variable in scope,
//! but never a temporary (temps are invisible to source code).

use mujs_ir::ir::{Function, Place, Stmt, StmtId, StmtKind};
use mujs_ir::vd::write_domain;

/// The conditional exit of a basic block.
#[derive(Debug, Clone)]
pub struct BranchInfo {
    /// The `If`/`Loop` statement owning the test — the program point a
    /// `Cond` fact attaches to.
    pub stmt: StmtId,
    /// The tested place.
    pub cond: Place,
    /// `true` for `If` tests, `false` for loop tests.
    pub is_if: bool,
}

/// Places to invalidate on entry to a block (exceptional edges and
/// finally-bypass edges).
#[derive(Debug, Clone, Default)]
pub struct Havoc {
    /// Individual places (temps and canonical named variables, as
    /// produced by `write_domain`).
    pub places: Vec<Place>,
    /// The havocked region contains a direct `eval`: every named local
    /// may have been written.
    pub all_locals: bool,
}

impl Havoc {
    fn is_empty(&self) -> bool {
        self.places.is_empty() && !self.all_locals
    }
}

/// A basic block: straight-line simple statements plus an optional
/// conditional exit.
#[derive(Debug, Clone, Default)]
pub struct BasicBlock {
    /// The simple statements, in execution order.
    pub stmts: Vec<Stmt>,
    /// Conditional exit; when present, `succs[0]` is the true edge and
    /// `succs[1]` the false edge.
    pub branch: Option<BranchInfo>,
    /// Havoc applied at block entry.
    pub havoc: Havoc,
    /// Successor block indices.
    pub succs: Vec<usize>,
    /// Predecessor block indices.
    pub preds: Vec<usize>,
}

/// A function body flattened into basic blocks.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// All blocks; indices are stable.
    pub blocks: Vec<BasicBlock>,
    /// The entry block (no statements precede it).
    pub entry: usize,
    /// The synthetic exit block (`return`/`throw`/falling off the end).
    pub exit: usize,
}

impl Cfg {
    /// Blocks reachable from the entry, in reverse-postorder-ish
    /// (depth-first discovery) order.
    pub fn reachable(&self) -> Vec<usize> {
        let mut seen = vec![false; self.blocks.len()];
        let mut order = Vec::new();
        let mut stack = vec![self.entry];
        seen[self.entry] = true;
        while let Some(b) = stack.pop() {
            order.push(b);
            for &s in &self.blocks[b].succs {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        order
    }
}

/// Builds the CFG of `f`'s body.
pub fn build_cfg(f: &Function) -> Cfg {
    let mut b = Builder {
        blocks: Vec::new(),
        breaks: Vec::new(),
        conts: Vec::new(),
        fins: Vec::new(),
        exit: 0,
    };
    let entry = b.new_block();
    let exit = b.new_block();
    b.exit = exit;
    let end = b.build(&f.body, entry);
    b.edge(end, exit);
    Cfg {
        blocks: b.blocks,
        entry,
        exit,
    }
}

/// An abrupt-jump target plus the finally-nesting depth at which it was
/// established (jumps to it must havoc every finally entered since).
#[derive(Clone, Copy)]
struct JumpTarget {
    block: usize,
    fin_depth: usize,
}

struct Builder {
    blocks: Vec<BasicBlock>,
    breaks: Vec<JumpTarget>,
    conts: Vec<JumpTarget>,
    /// Havoc sets of the `finally` clauses currently being protected.
    fins: Vec<Havoc>,
    exit: usize,
}

impl Builder {
    fn new_block(&mut self) -> usize {
        self.blocks.push(BasicBlock::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        self.blocks[from].succs.push(to);
        self.blocks[to].preds.push(from);
    }

    /// An abrupt jump from `cur` to `target`, havocking the write
    /// domains of every finally clause the jump exits (those at depth
    /// `fin_depth` and above).
    fn abrupt(&mut self, cur: usize, target: usize, fin_depth: usize) {
        if self.fins[fin_depth..].iter().all(|h| h.is_empty()) {
            self.edge(cur, target);
            return;
        }
        let mut havoc = Havoc::default();
        for h in &self.fins[fin_depth..] {
            havoc.places.extend(h.places.iter().cloned());
            havoc.all_locals |= h.all_locals;
        }
        let via = self.new_block();
        self.blocks[via].havoc = havoc;
        self.edge(cur, via);
        self.edge(via, target);
    }

    /// Lowers `block` starting in basic block `cur`; returns the open
    /// block control falls out of.
    fn build(&mut self, block: &[Stmt], mut cur: usize) -> usize {
        for s in block {
            match &s.kind {
                StmtKind::If {
                    cond,
                    then_blk,
                    else_blk,
                } => {
                    self.blocks[cur].branch = Some(BranchInfo {
                        stmt: s.id,
                        cond: cond.clone(),
                        is_if: true,
                    });
                    let then_start = self.new_block();
                    let else_start = self.new_block();
                    let join = self.new_block();
                    self.edge(cur, then_start);
                    self.edge(cur, else_start);
                    let t_end = self.build(then_blk, then_start);
                    self.edge(t_end, join);
                    let e_end = self.build(else_blk, else_start);
                    self.edge(e_end, join);
                    cur = join;
                }
                StmtKind::Loop {
                    cond_blk,
                    cond,
                    body,
                    update,
                    check_cond_first,
                } => {
                    let head = self.new_block();
                    let body_start = self.new_block();
                    let update_start = self.new_block();
                    let after = self.new_block();
                    self.edge(cur, if *check_cond_first { head } else { body_start });
                    let h_end = self.build(cond_blk, head);
                    self.blocks[h_end].branch = Some(BranchInfo {
                        stmt: s.id,
                        cond: cond.clone(),
                        is_if: false,
                    });
                    self.edge(h_end, body_start);
                    self.edge(h_end, after);
                    let depth = self.fins.len();
                    self.breaks.push(JumpTarget {
                        block: after,
                        fin_depth: depth,
                    });
                    self.conts.push(JumpTarget {
                        block: update_start,
                        fin_depth: depth,
                    });
                    let b_end = self.build(body, body_start);
                    self.edge(b_end, update_start);
                    self.breaks.pop();
                    self.conts.pop();
                    let u_end = self.build(update, update_start);
                    self.edge(u_end, head);
                    cur = after;
                }
                StmtKind::Breakable { body } => {
                    let body_start = self.new_block();
                    let after = self.new_block();
                    self.edge(cur, body_start);
                    self.breaks.push(JumpTarget {
                        block: after,
                        fin_depth: self.fins.len(),
                    });
                    let b_end = self.build(body, body_start);
                    self.breaks.pop();
                    self.edge(b_end, after);
                    cur = after;
                }
                StmtKind::Try {
                    block,
                    catch,
                    finally,
                } => {
                    cur = self.build_try(cur, block, catch.as_ref(), finally.as_deref());
                }
                StmtKind::Break => {
                    if let Some(t) = self.breaks.last().copied() {
                        self.abrupt(cur, t.block, t.fin_depth);
                    }
                    cur = self.new_block(); // unreachable continuation
                }
                StmtKind::Continue => {
                    if let Some(t) = self.conts.last().copied() {
                        self.abrupt(cur, t.block, t.fin_depth);
                    }
                    cur = self.new_block();
                }
                StmtKind::Return { .. } | StmtKind::Throw { .. } => {
                    self.blocks[cur].stmts.push(s.clone());
                    let exit = self.exit;
                    self.abrupt(cur, exit, 0);
                    cur = self.new_block();
                }
                _ => self.blocks[cur].stmts.push(s.clone()),
            }
        }
        cur
    }

    fn build_try(
        &mut self,
        pre: usize,
        block: &[Stmt],
        catch: Option<&(mujs_ir::Sym, Vec<Stmt>)>,
        finally: Option<&[Stmt]>,
    ) -> usize {
        let wd_block = write_domain(block);
        if let Some(fin) = finally {
            let wd_fin = write_domain(fin);
            self.fins.push(Havoc {
                places: wd_fin.places.iter().cloned().collect(),
                all_locals: wd_fin.contains_eval,
            });
        }
        // Normal path through the protected block.
        let p_start = self.new_block();
        self.edge(pre, p_start);
        let p_end = self.build(block, p_start);
        // Catch handler: entered from the pre-try state with everything
        // the protected block can write havocked (plus the binding).
        let mut wd_catch_places: Vec<Place> = Vec::new();
        let mut wd_catch_eval = false;
        let c_end = catch.map(|(sym, handler)| {
            let wd_handler = write_domain(handler);
            wd_catch_places = wd_handler.places.iter().cloned().collect();
            wd_catch_eval = wd_handler.contains_eval;
            let c_entry = self.new_block();
            self.blocks[c_entry].havoc = Havoc {
                places: wd_block
                    .places
                    .iter()
                    .cloned()
                    .chain(std::iter::once(Place::Named(*sym)))
                    .collect(),
                all_locals: wd_block.contains_eval,
            };
            self.edge(pre, c_entry);
            self.build(handler, c_entry)
        });
        match finally {
            Some(fin) => {
                self.fins.pop();
                let f_start = self.new_block();
                self.edge(p_end, f_start);
                if let Some(c) = c_end {
                    self.edge(c, f_start);
                }
                // Exceptional entry: an uncaught throw from the protected
                // block or the handler still runs the finally.
                let exc = self.new_block();
                let mut havoc = Havoc {
                    places: wd_block.places.iter().cloned().collect(),
                    all_locals: wd_block.contains_eval || wd_catch_eval,
                };
                havoc.places.extend(wd_catch_places);
                if let Some((sym, _)) = catch {
                    havoc.places.push(Place::Named(*sym));
                }
                self.blocks[exc].havoc = havoc;
                self.edge(pre, exc);
                self.edge(exc, f_start);
                self.build(fin, f_start)
            }
            None => {
                let after = self.new_block();
                self.edge(p_end, after);
                if let Some(c) = c_end {
                    self.edge(c, after);
                }
                after
            }
        }
    }
}
