//! §2.2 end to end: the Figure 3 accessor-definition program is analyzed
//! dynamically, specialized (loop unrolled, dynamic property accesses made
//! static, `defAccessors` cloned per iteration context), and fed to the
//! pointer analysis — which goes from smeared call targets to precise
//! ones.
//!
//! Run with `cargo run --example accessor_specialization`.

use determinacy::{AnalysisConfig, DetHarness};
use mujs_ir::Program;
use mujs_pta::{solve, PtaConfig};
use mujs_specialize::{specialize, SpecConfig};

const FIGURE3: &str = r#"
function Rectangle(w, h) { this.width = w; this.height = h; }
Rectangle.prototype.toString = function() {
  return "[" + this.width + "x" + this.height + "]";
};
String.prototype.cap = function() {
  return this[0].toUpperCase() + this.substr(1);
};
function defAccessors(prop) {
  Rectangle.prototype["get" + prop.cap()] = function getter() { return this[prop]; };
  Rectangle.prototype["set" + prop.cap()] = function setter(v) { this[prop] = v; };
}
var props = ["width", "height"];
for (var i = 0; i < props.length; i++) defAccessors(props[i]);
var r = new Rectangle(20, 30);
r.setWidth(r.getWidth() + 20);
alert(r.toString());
"#;

fn max_callees(prog: &Program, result: &mujs_pta::PtaResult) -> usize {
    let _ = prog;
    result
        .call_graph()
        .values()
        .map(|s| s.len())
        .max()
        .unwrap_or(0)
}

fn main() {
    println!("Figure 3: accessor definition via dynamic property names");
    println!("=========================================================");

    let mut h = DetHarness::from_src(FIGURE3).expect("figure 3 parses");
    let mut out = h.analyze(AnalysisConfig::default());
    println!(
        "dynamic analysis: {} facts ({} determinate), {} flushes",
        out.facts.len(),
        out.facts.det_count(),
        out.stats.heap_flushes
    );

    let baseline = solve(&h.program, &PtaConfig::default());
    println!(
        "\nbaseline pointer analysis: work={} maxCalleesPerSite={}",
        baseline.stats.propagations,
        max_callees(&h.program, &baseline)
    );

    let spec = specialize(
        &h.program,
        &out.facts,
        &mut out.ctxs,
        &SpecConfig::default(),
    );
    println!(
        "\nspecializer: {} clones, {} loops unrolled, {} keys made static, {} branches pruned",
        spec.report.clones,
        spec.report.loops_unrolled,
        spec.report.keys_staticized,
        spec.report.branches_pruned
    );

    let after = solve(&spec.program, &PtaConfig::default());
    println!(
        "specialized pointer analysis: work={} maxCalleesPerSite={}",
        after.stats.propagations,
        max_callees(&spec.program, &after)
    );

    // The specialized program still runs and produces the paper's [40x30].
    let mut prog = spec.program.clone();
    let mut interp = mujs_interp::Interp::new(&mut prog, mujs_interp::InterpOptions::default());
    interp.run().expect("specialized program runs");
    println!("\nspecialized program output: {:?}", interp.output);
    assert_eq!(interp.output, vec!["alert: [40x30]"]);
}
